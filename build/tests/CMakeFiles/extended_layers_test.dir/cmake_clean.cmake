file(REMOVE_RECURSE
  "CMakeFiles/extended_layers_test.dir/graph/extended_layers_test.cc.o"
  "CMakeFiles/extended_layers_test.dir/graph/extended_layers_test.cc.o.d"
  "extended_layers_test"
  "extended_layers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
