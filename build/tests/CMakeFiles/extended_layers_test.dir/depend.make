# Empty dependencies file for extended_layers_test.
# This may be replaced when dependencies are built.
