file(REMOVE_RECURSE
  "CMakeFiles/staleness_test.dir/runtime/staleness_test.cc.o"
  "CMakeFiles/staleness_test.dir/runtime/staleness_test.cc.o.d"
  "staleness_test"
  "staleness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
