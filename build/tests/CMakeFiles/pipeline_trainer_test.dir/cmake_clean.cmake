file(REMOVE_RECURSE
  "CMakeFiles/pipeline_trainer_test.dir/runtime/pipeline_trainer_test.cc.o"
  "CMakeFiles/pipeline_trainer_test.dir/runtime/pipeline_trainer_test.cc.o.d"
  "pipeline_trainer_test"
  "pipeline_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
