# Empty compiler generated dependencies file for weight_store_test.
# This may be replaced when dependencies are built.
