file(REMOVE_RECURSE
  "CMakeFiles/weight_store_test.dir/runtime/weight_store_test.cc.o"
  "CMakeFiles/weight_store_test.dir/runtime/weight_store_test.cc.o.d"
  "weight_store_test"
  "weight_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weight_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
