# Empty compiler generated dependencies file for asp_trainer_test.
# This may be replaced when dependencies are built.
