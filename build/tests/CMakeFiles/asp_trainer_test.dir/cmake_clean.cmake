file(REMOVE_RECURSE
  "CMakeFiles/asp_trainer_test.dir/runtime/asp_trainer_test.cc.o"
  "CMakeFiles/asp_trainer_test.dir/runtime/asp_trainer_test.cc.o.d"
  "asp_trainer_test"
  "asp_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asp_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
