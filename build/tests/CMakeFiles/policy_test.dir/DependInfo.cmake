
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/schedule/policy_test.cc" "tests/CMakeFiles/policy_test.dir/schedule/policy_test.cc.o" "gcc" "tests/CMakeFiles/policy_test.dir/schedule/policy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/simexec/CMakeFiles/pd_simexec.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/pd_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/pd_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pd_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/pd_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
