
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/layer_profile.cc" "src/profile/CMakeFiles/pd_profile.dir/layer_profile.cc.o" "gcc" "src/profile/CMakeFiles/pd_profile.dir/layer_profile.cc.o.d"
  "/root/repo/src/profile/model_zoo.cc" "src/profile/CMakeFiles/pd_profile.dir/model_zoo.cc.o" "gcc" "src/profile/CMakeFiles/pd_profile.dir/model_zoo.cc.o.d"
  "/root/repo/src/profile/profiler.cc" "src/profile/CMakeFiles/pd_profile.dir/profiler.cc.o" "gcc" "src/profile/CMakeFiles/pd_profile.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
