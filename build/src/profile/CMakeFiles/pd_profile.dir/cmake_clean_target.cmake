file(REMOVE_RECURSE
  "libpd_profile.a"
)
