file(REMOVE_RECURSE
  "CMakeFiles/pd_profile.dir/layer_profile.cc.o"
  "CMakeFiles/pd_profile.dir/layer_profile.cc.o.d"
  "CMakeFiles/pd_profile.dir/model_zoo.cc.o"
  "CMakeFiles/pd_profile.dir/model_zoo.cc.o.d"
  "CMakeFiles/pd_profile.dir/profiler.cc.o"
  "CMakeFiles/pd_profile.dir/profiler.cc.o.d"
  "libpd_profile.a"
  "libpd_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
