# Empty dependencies file for pd_profile.
# This may be replaced when dependencies are built.
