file(REMOVE_RECURSE
  "CMakeFiles/pd_optim.dir/adam.cc.o"
  "CMakeFiles/pd_optim.dir/adam.cc.o.d"
  "CMakeFiles/pd_optim.dir/lars.cc.o"
  "CMakeFiles/pd_optim.dir/lars.cc.o.d"
  "CMakeFiles/pd_optim.dir/lr_schedule.cc.o"
  "CMakeFiles/pd_optim.dir/lr_schedule.cc.o.d"
  "CMakeFiles/pd_optim.dir/sgd.cc.o"
  "CMakeFiles/pd_optim.dir/sgd.cc.o.d"
  "libpd_optim.a"
  "libpd_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
