file(REMOVE_RECURSE
  "libpd_optim.a"
)
