# Empty compiler generated dependencies file for pd_optim.
# This may be replaced when dependencies are built.
