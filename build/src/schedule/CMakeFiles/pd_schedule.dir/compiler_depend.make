# Empty compiler generated dependencies file for pd_schedule.
# This may be replaced when dependencies are built.
