file(REMOVE_RECURSE
  "libpd_schedule.a"
)
