file(REMOVE_RECURSE
  "CMakeFiles/pd_schedule.dir/policy.cc.o"
  "CMakeFiles/pd_schedule.dir/policy.cc.o.d"
  "CMakeFiles/pd_schedule.dir/trace.cc.o"
  "CMakeFiles/pd_schedule.dir/trace.cc.o.d"
  "libpd_schedule.a"
  "libpd_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
