# CMake generated Testfile for 
# Source directory: /root/repo/src/simexec
# Build directory: /root/repo/build/src/simexec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
