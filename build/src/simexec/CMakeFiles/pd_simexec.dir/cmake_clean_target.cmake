file(REMOVE_RECURSE
  "libpd_simexec.a"
)
