# Empty compiler generated dependencies file for pd_simexec.
# This may be replaced when dependencies are built.
