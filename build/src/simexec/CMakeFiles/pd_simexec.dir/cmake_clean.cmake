file(REMOVE_RECURSE
  "CMakeFiles/pd_simexec.dir/pipeline_sim.cc.o"
  "CMakeFiles/pd_simexec.dir/pipeline_sim.cc.o.d"
  "libpd_simexec.a"
  "libpd_simexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_simexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
