file(REMOVE_RECURSE
  "libpd_data.a"
)
