# Empty dependencies file for pd_data.
# This may be replaced when dependencies are built.
