file(REMOVE_RECURSE
  "CMakeFiles/pd_data.dir/dataset.cc.o"
  "CMakeFiles/pd_data.dir/dataset.cc.o.d"
  "CMakeFiles/pd_data.dir/loader.cc.o"
  "CMakeFiles/pd_data.dir/loader.cc.o.d"
  "libpd_data.a"
  "libpd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
