file(REMOVE_RECURSE
  "libpd_tensor.a"
)
