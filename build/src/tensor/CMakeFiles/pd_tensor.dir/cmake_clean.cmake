file(REMOVE_RECURSE
  "CMakeFiles/pd_tensor.dir/init.cc.o"
  "CMakeFiles/pd_tensor.dir/init.cc.o.d"
  "CMakeFiles/pd_tensor.dir/ops.cc.o"
  "CMakeFiles/pd_tensor.dir/ops.cc.o.d"
  "CMakeFiles/pd_tensor.dir/tensor.cc.o"
  "CMakeFiles/pd_tensor.dir/tensor.cc.o.d"
  "libpd_tensor.a"
  "libpd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
