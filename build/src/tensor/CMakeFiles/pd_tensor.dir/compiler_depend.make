# Empty compiler generated dependencies file for pd_tensor.
# This may be replaced when dependencies are built.
