file(REMOVE_RECURSE
  "CMakeFiles/pd_common.dir/logging.cc.o"
  "CMakeFiles/pd_common.dir/logging.cc.o.d"
  "CMakeFiles/pd_common.dir/stats.cc.o"
  "CMakeFiles/pd_common.dir/stats.cc.o.d"
  "CMakeFiles/pd_common.dir/strings.cc.o"
  "CMakeFiles/pd_common.dir/strings.cc.o.d"
  "CMakeFiles/pd_common.dir/table.cc.o"
  "CMakeFiles/pd_common.dir/table.cc.o.d"
  "libpd_common.a"
  "libpd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
