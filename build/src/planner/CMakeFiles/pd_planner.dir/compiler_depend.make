# Empty compiler generated dependencies file for pd_planner.
# This may be replaced when dependencies are built.
