file(REMOVE_RECURSE
  "libpd_planner.a"
)
