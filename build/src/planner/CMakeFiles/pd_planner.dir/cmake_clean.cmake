file(REMOVE_RECURSE
  "CMakeFiles/pd_planner.dir/partitioner.cc.o"
  "CMakeFiles/pd_planner.dir/partitioner.cc.o.d"
  "CMakeFiles/pd_planner.dir/plan.cc.o"
  "CMakeFiles/pd_planner.dir/plan.cc.o.d"
  "CMakeFiles/pd_planner.dir/predictor.cc.o"
  "CMakeFiles/pd_planner.dir/predictor.cc.o.d"
  "libpd_planner.a"
  "libpd_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
