
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/partitioner.cc" "src/planner/CMakeFiles/pd_planner.dir/partitioner.cc.o" "gcc" "src/planner/CMakeFiles/pd_planner.dir/partitioner.cc.o.d"
  "/root/repo/src/planner/plan.cc" "src/planner/CMakeFiles/pd_planner.dir/plan.cc.o" "gcc" "src/planner/CMakeFiles/pd_planner.dir/plan.cc.o.d"
  "/root/repo/src/planner/predictor.cc" "src/planner/CMakeFiles/pd_planner.dir/predictor.cc.o" "gcc" "src/planner/CMakeFiles/pd_planner.dir/predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/pd_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
