file(REMOVE_RECURSE
  "CMakeFiles/pd_core.dir/pipedream.cc.o"
  "CMakeFiles/pd_core.dir/pipedream.cc.o.d"
  "libpd_core.a"
  "libpd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
