file(REMOVE_RECURSE
  "CMakeFiles/pd_runtime.dir/asp_trainer.cc.o"
  "CMakeFiles/pd_runtime.dir/asp_trainer.cc.o.d"
  "CMakeFiles/pd_runtime.dir/checkpoint.cc.o"
  "CMakeFiles/pd_runtime.dir/checkpoint.cc.o.d"
  "CMakeFiles/pd_runtime.dir/pipeline_trainer.cc.o"
  "CMakeFiles/pd_runtime.dir/pipeline_trainer.cc.o.d"
  "CMakeFiles/pd_runtime.dir/weight_store.cc.o"
  "CMakeFiles/pd_runtime.dir/weight_store.cc.o.d"
  "libpd_runtime.a"
  "libpd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
