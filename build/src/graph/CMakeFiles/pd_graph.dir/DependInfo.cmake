
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/activation.cc" "src/graph/CMakeFiles/pd_graph.dir/activation.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/activation.cc.o.d"
  "/root/repo/src/graph/attention.cc" "src/graph/CMakeFiles/pd_graph.dir/attention.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/attention.cc.o.d"
  "/root/repo/src/graph/conv.cc" "src/graph/CMakeFiles/pd_graph.dir/conv.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/conv.cc.o.d"
  "/root/repo/src/graph/dense.cc" "src/graph/CMakeFiles/pd_graph.dir/dense.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/dense.cc.o.d"
  "/root/repo/src/graph/embedding.cc" "src/graph/CMakeFiles/pd_graph.dir/embedding.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/embedding.cc.o.d"
  "/root/repo/src/graph/grad_check.cc" "src/graph/CMakeFiles/pd_graph.dir/grad_check.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/grad_check.cc.o.d"
  "/root/repo/src/graph/loss.cc" "src/graph/CMakeFiles/pd_graph.dir/loss.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/loss.cc.o.d"
  "/root/repo/src/graph/lstm.cc" "src/graph/CMakeFiles/pd_graph.dir/lstm.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/lstm.cc.o.d"
  "/root/repo/src/graph/models.cc" "src/graph/CMakeFiles/pd_graph.dir/models.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/models.cc.o.d"
  "/root/repo/src/graph/pool.cc" "src/graph/CMakeFiles/pd_graph.dir/pool.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/pool.cc.o.d"
  "/root/repo/src/graph/residual.cc" "src/graph/CMakeFiles/pd_graph.dir/residual.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/residual.cc.o.d"
  "/root/repo/src/graph/sequential.cc" "src/graph/CMakeFiles/pd_graph.dir/sequential.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/sequential.cc.o.d"
  "/root/repo/src/graph/shape_ops.cc" "src/graph/CMakeFiles/pd_graph.dir/shape_ops.cc.o" "gcc" "src/graph/CMakeFiles/pd_graph.dir/shape_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/pd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
