file(REMOVE_RECURSE
  "CMakeFiles/pd_graph.dir/activation.cc.o"
  "CMakeFiles/pd_graph.dir/activation.cc.o.d"
  "CMakeFiles/pd_graph.dir/attention.cc.o"
  "CMakeFiles/pd_graph.dir/attention.cc.o.d"
  "CMakeFiles/pd_graph.dir/conv.cc.o"
  "CMakeFiles/pd_graph.dir/conv.cc.o.d"
  "CMakeFiles/pd_graph.dir/dense.cc.o"
  "CMakeFiles/pd_graph.dir/dense.cc.o.d"
  "CMakeFiles/pd_graph.dir/embedding.cc.o"
  "CMakeFiles/pd_graph.dir/embedding.cc.o.d"
  "CMakeFiles/pd_graph.dir/grad_check.cc.o"
  "CMakeFiles/pd_graph.dir/grad_check.cc.o.d"
  "CMakeFiles/pd_graph.dir/loss.cc.o"
  "CMakeFiles/pd_graph.dir/loss.cc.o.d"
  "CMakeFiles/pd_graph.dir/lstm.cc.o"
  "CMakeFiles/pd_graph.dir/lstm.cc.o.d"
  "CMakeFiles/pd_graph.dir/models.cc.o"
  "CMakeFiles/pd_graph.dir/models.cc.o.d"
  "CMakeFiles/pd_graph.dir/pool.cc.o"
  "CMakeFiles/pd_graph.dir/pool.cc.o.d"
  "CMakeFiles/pd_graph.dir/residual.cc.o"
  "CMakeFiles/pd_graph.dir/residual.cc.o.d"
  "CMakeFiles/pd_graph.dir/sequential.cc.o"
  "CMakeFiles/pd_graph.dir/sequential.cc.o.d"
  "CMakeFiles/pd_graph.dir/shape_ops.cc.o"
  "CMakeFiles/pd_graph.dir/shape_ops.cc.o.d"
  "libpd_graph.a"
  "libpd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
