# Empty dependencies file for pd_graph.
# This may be replaced when dependencies are built.
