file(REMOVE_RECURSE
  "libpd_graph.a"
)
