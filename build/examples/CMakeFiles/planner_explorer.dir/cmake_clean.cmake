file(REMOVE_RECURSE
  "CMakeFiles/planner_explorer.dir/planner_explorer.cpp.o"
  "CMakeFiles/planner_explorer.dir/planner_explorer.cpp.o.d"
  "planner_explorer"
  "planner_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
