file(REMOVE_RECURSE
  "CMakeFiles/translation_pipeline.dir/translation_pipeline.cpp.o"
  "CMakeFiles/translation_pipeline.dir/translation_pipeline.cpp.o.d"
  "translation_pipeline"
  "translation_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
