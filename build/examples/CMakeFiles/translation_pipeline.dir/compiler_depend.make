# Empty compiler generated dependencies file for translation_pipeline.
# This may be replaced when dependencies are built.
