# Empty dependencies file for translation_pipeline.
# This may be replaced when dependencies are built.
