# Empty dependencies file for bench_fig13_lars.
# This may be replaced when dependencies are built.
