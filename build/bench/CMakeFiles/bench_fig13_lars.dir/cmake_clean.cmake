file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_lars.dir/fig13_lars.cpp.o"
  "CMakeFiles/bench_fig13_lars.dir/fig13_lars.cpp.o.d"
  "bench_fig13_lars"
  "bench_fig13_lars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_lars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
