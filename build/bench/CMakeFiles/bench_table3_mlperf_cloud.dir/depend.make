# Empty dependencies file for bench_table3_mlperf_cloud.
# This may be replaced when dependencies are built.
