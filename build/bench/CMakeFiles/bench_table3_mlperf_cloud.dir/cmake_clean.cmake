file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mlperf_cloud.dir/table3_mlperf_cloud.cpp.o"
  "CMakeFiles/bench_table3_mlperf_cloud.dir/table3_mlperf_cloud.cpp.o.d"
  "bench_table3_mlperf_cloud"
  "bench_table3_mlperf_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mlperf_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
