# Empty dependencies file for bench_fig01_dp_overhead.
# This may be replaced when dependencies are built.
