# Empty compiler generated dependencies file for bench_fig14_intra_batch.
# This may be replaced when dependencies are built.
