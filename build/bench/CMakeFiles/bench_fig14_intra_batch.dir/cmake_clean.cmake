file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_intra_batch.dir/fig14_intra_batch.cpp.o"
  "CMakeFiles/bench_fig14_intra_batch.dir/fig14_intra_batch.cpp.o.d"
  "bench_fig14_intra_batch"
  "bench_fig14_intra_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_intra_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
