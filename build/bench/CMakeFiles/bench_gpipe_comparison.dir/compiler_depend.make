# Empty compiler generated dependencies file for bench_gpipe_comparison.
# This may be replaced when dependencies are built.
