file(REMOVE_RECURSE
  "CMakeFiles/bench_gpipe_comparison.dir/gpipe_comparison.cpp.o"
  "CMakeFiles/bench_gpipe_comparison.dir/gpipe_comparison.cpp.o.d"
  "bench_gpipe_comparison"
  "bench_gpipe_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpipe_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
