# Empty compiler generated dependencies file for bench_fig02_model_parallel_timeline.
# This may be replaced when dependencies are built.
