file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_planner.dir/micro_planner.cpp.o"
  "CMakeFiles/bench_micro_planner.dir/micro_planner.cpp.o.d"
  "bench_micro_planner"
  "bench_micro_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
