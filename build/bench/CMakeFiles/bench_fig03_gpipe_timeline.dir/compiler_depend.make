# Empty compiler generated dependencies file for bench_fig03_gpipe_timeline.
# This may be replaced when dependencies are built.
