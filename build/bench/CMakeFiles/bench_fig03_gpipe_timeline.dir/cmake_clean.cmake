file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_gpipe_timeline.dir/fig03_gpipe_timeline.cpp.o"
  "CMakeFiles/bench_fig03_gpipe_timeline.dir/fig03_gpipe_timeline.cpp.o.d"
  "bench_fig03_gpipe_timeline"
  "bench_fig03_gpipe_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_gpipe_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
