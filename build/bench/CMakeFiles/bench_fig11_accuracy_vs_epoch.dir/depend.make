# Empty dependencies file for bench_fig11_accuracy_vs_epoch.
# This may be replaced when dependencies are built.
