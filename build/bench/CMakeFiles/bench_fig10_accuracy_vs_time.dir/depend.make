# Empty dependencies file for bench_fig10_accuracy_vs_time.
# This may be replaced when dependencies are built.
