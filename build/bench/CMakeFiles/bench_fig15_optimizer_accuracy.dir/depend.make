# Empty dependencies file for bench_fig15_optimizer_accuracy.
# This may be replaced when dependencies are built.
