file(REMOVE_RECURSE
  "CMakeFiles/bench_asp_comparison.dir/asp_comparison.cpp.o"
  "CMakeFiles/bench_asp_comparison.dir/asp_comparison.cpp.o.d"
  "bench_asp_comparison"
  "bench_asp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
