# Empty dependencies file for bench_asp_comparison.
# This may be replaced when dependencies are built.
