file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_1f1b_timeline.dir/fig04_1f1b_timeline.cpp.o"
  "CMakeFiles/bench_fig04_1f1b_timeline.dir/fig04_1f1b_timeline.cpp.o.d"
  "bench_fig04_1f1b_timeline"
  "bench_fig04_1f1b_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_1f1b_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
