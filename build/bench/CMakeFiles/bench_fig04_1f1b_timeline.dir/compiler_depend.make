# Empty compiler generated dependencies file for bench_fig04_1f1b_timeline.
# This may be replaced when dependencies are built.
