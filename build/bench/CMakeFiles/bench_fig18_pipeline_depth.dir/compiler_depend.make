# Empty compiler generated dependencies file for bench_fig18_pipeline_depth.
# This may be replaced when dependencies are built.
