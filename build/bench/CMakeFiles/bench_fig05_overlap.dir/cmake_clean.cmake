file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_overlap.dir/fig05_overlap.cpp.o"
  "CMakeFiles/bench_fig05_overlap.dir/fig05_overlap.cpp.o.d"
  "bench_fig05_overlap"
  "bench_fig05_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
