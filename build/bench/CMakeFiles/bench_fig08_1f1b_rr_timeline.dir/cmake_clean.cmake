file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_1f1b_rr_timeline.dir/fig08_1f1b_rr_timeline.cpp.o"
  "CMakeFiles/bench_fig08_1f1b_rr_timeline.dir/fig08_1f1b_rr_timeline.cpp.o.d"
  "bench_fig08_1f1b_rr_timeline"
  "bench_fig08_1f1b_rr_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_1f1b_rr_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
