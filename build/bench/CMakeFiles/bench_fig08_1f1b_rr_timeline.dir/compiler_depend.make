# Empty compiler generated dependencies file for bench_fig08_1f1b_rr_timeline.
# This may be replaced when dependencies are built.
