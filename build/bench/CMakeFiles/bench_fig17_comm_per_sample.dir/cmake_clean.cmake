file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_comm_per_sample.dir/fig17_comm_per_sample.cpp.o"
  "CMakeFiles/bench_fig17_comm_per_sample.dir/fig17_comm_per_sample.cpp.o.d"
  "bench_fig17_comm_per_sample"
  "bench_fig17_comm_per_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_comm_per_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
