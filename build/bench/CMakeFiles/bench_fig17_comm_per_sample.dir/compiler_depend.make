# Empty compiler generated dependencies file for bench_fig17_comm_per_sample.
# This may be replaced when dependencies are built.
