// Fault tolerance scenario (paper §4): two acts.
//
// Act 1 — checkpointing: every stage dumps its parameters locally at each epoch boundary
// with no global coordination. The example trains a pipeline, "crashes" it mid-run, and
// restarts from the newest epoch for which every stage has a checkpoint.
//
// Act 2 — live failure and automatic recovery: a FaultInjector kills a stage worker
// mid-epoch; the trainer's watchdog detects the death, quiesces the in-flight minibatches,
// restores every stage from the newest complete checkpoint, respawns the worker, and
// replays — all inside a single TrainEpoch call.
//
// Run: ./fault_tolerance
// Set PIPEDREAM_FAULT_PLAN (e.g. "kill:stage=1,mb=40") or PIPEDREAM_FAULT_SEED=<n> to
// override Act 2's scripted failure with your own.
#include <cstdio>
#include <filesystem>

#include "src/common/rng.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/fault.h"
#include "src/runtime/pipeline_trainer.h"

using namespace pipedream;

namespace {

std::unique_ptr<PipelineTrainer> MakeTrainer(const Dataset* train, const Loss* loss) {
  Rng rng(21);
  const auto model = BuildMlpClassifier(8, {24, 16}, 3, &rng);
  const auto plan = MakeStraightPlan(static_cast<int>(model->size()), {2, 4});
  Sgd sgd(0.1, 0.9);
  return std::make_unique<PipelineTrainer>(*model, plan, loss, sgd, train, /*batch_size=*/16,
                                           /*seed=*/5);
}

}  // namespace

int main() {
  std::printf("== Per-stage checkpointing and restart (paper §4) ==\n\n");

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pipedream_fault_tolerance_demo";
  std::filesystem::create_directories(dir);
  CheckpointManager manager(dir.string());

  const Dataset all = MakeGaussianMixture(3, 8, 160, 0.3, 13);
  Dataset train;
  Dataset eval;
  SplitDataset(all, 0.8, &train, &eval);
  SoftmaxCrossEntropy loss;

  // --- First life: train 3 epochs, checkpointing after each.
  auto trainer = MakeTrainer(&train, &loss);
  const int num_stages = trainer->plan().num_stages();
  for (int epoch = 0; epoch < 3; ++epoch) {
    const EpochStats stats = trainer->TrainEpoch();
    const Status saved = trainer->SaveCheckpoint(&manager, epoch);
    std::printf("epoch %d: loss %.4f, acc %.3f, checkpoint %s\n", epoch, stats.mean_loss,
                trainer->EvaluateAccuracy(eval, 16), saved.ok() ? "saved" : "FAILED");
  }

  // Simulate a crash that interrupts epoch 3's checkpoint: only stage 0 gets written.
  trainer->TrainEpoch();
  {
    // (Reaching into the manager the way a dying process would: write one stage only.)
    auto partial = MakeTrainer(&train, &loss);
    const Status s = manager.SaveStage(0, 3, partial->AssembleModel()->Params());
    std::printf("\n-- simulated crash during epoch 3's checkpoint (only stage 0 written: %s)\n",
                s.ok() ? "ok" : s.ToString().c_str());
  }
  trainer.reset();  // the "crash"

  // --- Second life: find the newest complete checkpoint and resume.
  const int64_t resume_epoch = manager.LatestCompleteEpoch(num_stages, /*max_epoch=*/10);
  std::printf("\nrestart: newest complete checkpoint is epoch %lld (epoch 3 is incomplete)\n",
              static_cast<long long>(resume_epoch));

  auto resumed = MakeTrainer(&train, &loss);
  const Status loaded = resumed->LoadCheckpoint(manager, resume_epoch);
  std::printf("restored all %d stages: %s\n", num_stages, loaded.ToString().c_str());
  std::printf("accuracy after restore: %.3f (matches end of epoch %lld)\n",
              resumed->EvaluateAccuracy(eval, 16), static_cast<long long>(resume_epoch));

  for (int epoch = 0; epoch < 3; ++epoch) {
    const EpochStats stats = resumed->TrainEpoch();
    std::printf("resumed epoch %d: loss %.4f, acc %.3f\n", epoch, stats.mean_loss,
                resumed->EvaluateAccuracy(eval, 16));
  }

  // --- Act 2: a worker dies mid-epoch and the trainer recovers on its own.
  std::printf("\n== Live failure: injected kill + automatic recovery ==\n\n");
  const std::filesystem::path dir2 = dir / "live_recovery";
  std::filesystem::create_directories(dir2);
  CheckpointManager live_manager(dir2.string());

  auto live = MakeTrainer(&train, &loss);
  RecoveryOptions recovery;
  recovery.heartbeat_timeout_ms = 1000;
  recovery.progress_timeout_ms = 500;
  recovery.worker_tick_ms = 5;
  live->EnableRecovery(&live_manager, recovery);

  // The environment (PIPEDREAM_FAULT_PLAN / PIPEDREAM_FAULT_SEED) wins; otherwise kill
  // stage 1 in the middle of epoch 1.
  const int64_t bpe = live->batches_per_epoch();
  FaultPlan fault_plan = FaultPlan::FromEnv(live->plan(), 3 * bpe);
  if (fault_plan.empty()) {
    fault_plan.events.push_back({FaultKind::kKillWorker, /*stage=*/1, /*replica=*/0,
                                 /*minibatch=*/bpe + bpe / 2, WorkType::kForward, 0.0});
  }
  std::printf("fault plan: %s\n", fault_plan.ToString().c_str());
  FaultInjector injector(fault_plan);
  live->SetFaultInjector(&injector);

  for (int epoch = 0; epoch < 3; ++epoch) {
    const EpochStats stats = live->TrainEpoch();
    std::printf("epoch %d: loss %.4f, %lld minibatches, %d failure(s) survived\n", epoch,
                stats.mean_loss, static_cast<long long>(stats.minibatches),
                stats.failures_detected);
  }
  for (const FailureRecord& failure : live->failures()) {
    std::printf("detected: %s (stage %d, resumed from epoch %lld%s)\n",
                failure.reason.c_str(), failure.stage,
                static_cast<long long>(failure.resumed_epoch),
                failure.degraded ? ", degraded" : "");
  }

  std::filesystem::remove_all(dir);
  std::printf("\ndone — no global coordination was needed for any checkpoint.\n");
  return 0;
}
