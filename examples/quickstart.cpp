// Quickstart: the full PipeDream workflow (paper Figure 6) in ~80 lines.
//
//   1. Build a model and profile it (per-layer compute time / activation size / weights).
//   2. Let the optimizer partition it across 4 simulated workers.
//   3. Simulate the 1F1B pipeline to see throughput and utilization.
//   4. Actually train it with the multi-threaded pipeline runtime (weight stashing on)
//      until it reaches 90% validation accuracy.
//
// Run: ./quickstart
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/pipedream.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/profile/profiler.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("== PipeDream quickstart ==\n\n");

  // A small MLP classifier and a synthetic 3-class dataset split into train/validation.
  Rng rng(7);
  const auto model = BuildMlpClassifier(/*in=*/16, /*hidden=*/{48, 32, 24}, /*classes=*/3, &rng);
  const Dataset all = MakeGaussianMixture(3, 16, 200, 0.35, 11);
  Dataset train;
  Dataset eval;
  SplitDataset(all, 0.8, &train, &eval);

  // 1. Profile: measure each layer's forward/backward time and sizes on this machine.
  Tensor sample({16, 16});
  const ModelProfile profile = ProfileModel(*model, sample, "quickstart-mlp");
  std::printf("profiled %d layers, total compute %.3f ms/minibatch\n", profile.num_layers(),
              profile.TotalComputeSeconds() * 1e3);

  // 2. Partition over 4 workers joined by a simulated 1 GB/s interconnect.
  const auto topology = HardwareTopology::Flat(4, 1e9, /*latency_sec=*/1e-6);
  const AutoPlanResult planned = AutoPlan(profile, topology);
  std::printf("\noptimizer chose:\n%s", DescribePlan(planned.partition.plan, profile).c_str());
  std::printf("predicted throughput: %.0f samples/s, NOAM = %d\n",
              planned.prediction.throughput_samples_per_sec, planned.partition.plan.Noam());

  // 3. Simulate the 1F1B schedule in virtual time.
  SimOptions sim_options;
  sim_options.num_minibatches = 200;
  const SimResult sim = SimulatePipeline(profile, planned.partition.plan, topology, sim_options);
  std::printf("simulated throughput: %.0f samples/s\n", sim.throughput_samples_per_sec);
  for (size_t w = 0; w < sim.worker_utilization.size(); ++w) {
    std::printf("  worker %zu utilization: %.0f%%\n", w, 100.0 * sim.worker_utilization[w]);
  }

  // 4. Train for real: one OS thread per stage, 1F1B scheduling, weight stashing.
  SoftmaxCrossEntropy loss;
  Sgd sgd(/*learning_rate=*/0.05, /*momentum=*/0.8);
  PipelineTrainer trainer(*model, planned.partition.plan, &loss, sgd, &train,
                          /*batch_size=*/16, /*seed=*/5);
  TtaOptions tta;
  tta.target_accuracy = 0.90;
  tta.max_epochs = 40;
  tta.eval_batch = 20;
  std::printf("\ntraining to %.0f%% validation accuracy...\n", 100.0 * tta.target_accuracy);
  const TtaResult result = TrainToAccuracy(&trainer, eval, tta);
  for (int e = 0; e < result.epochs; ++e) {
    std::printf("  epoch %2d: train loss %.4f, val accuracy %.1f%%\n", e + 1,
                result.loss_curve[static_cast<size_t>(e)],
                100.0 * result.accuracy_curve[static_cast<size_t>(e)]);
  }
  std::printf(result.reached ? "\nreached target in %d epochs\n"
                             : "\ndid not reach target in %d epochs\n",
              result.epochs);
  return result.reached ? 0 : 1;
}
