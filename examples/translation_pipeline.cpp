// Translation scenario: the GNMT-style workload from the paper's evaluation, scaled down.
//
// A stacked-LSTM sequence model learns the synthetic sequence-copy task (every output token
// must reproduce the input token — the model's recurrent state has to carry information the
// way an encoder-decoder does). The model is split into a straight pipeline — the
// configuration the paper's optimizer picks for GNMT on Cluster-A — and trained with 1F1B +
// weight stashing. Per-epoch token accuracy, perplexity, and the observed per-stage weight
// staleness are printed; the staleness column demonstrates the §3.3 formulas live.
//
// Run: ./translation_pipeline
#include <cstdio>

#include "src/common/rng.h"
#include "src/data/dataset.h"
#include "src/data/loader.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/adam.h"
#include "src/runtime/pipeline_trainer.h"

using namespace pipedream;

int main() {
  std::printf("== GNMT-style translation pipeline (sequence copy task) ==\n\n");

  constexpr int64_t kVocab = 8;
  constexpr int64_t kSeqLen = 6;
  const Dataset all = MakeSequenceCopy(kVocab, kSeqLen, 512, /*reverse=*/false, 3);
  Dataset train;
  Dataset eval;
  SplitDataset(all, 0.75, &train, &eval);

  // embedding -> LSTM -> LSTM -> per-token softmax head, like a miniature GNMT stack.
  Rng rng(17);
  const auto model = BuildLstmSeqModel(kVocab, /*embed=*/12, /*hidden=*/32, /*layers=*/2, &rng);
  std::printf("model: %zu layers, %.1f KB of parameters\n", model->size(),
              static_cast<double>(model->ParamBytes()) / 1e3);

  // A "straight" 3-stage pipeline: [embedding] [lstm0] [lstm1 + head] — the shape the
  // paper's optimizer chooses for GNMT (§5.2, Table 1).
  const auto plan = MakeStraightPlan(static_cast<int>(model->size()), {1, 2});
  std::printf("plan: %s over %d workers, NOAM = %d\n\n",
              plan.ConfigString(static_cast<int>(model->size())).c_str(),
              plan.total_workers(), plan.Noam());

  SoftmaxCrossEntropy loss;
  Adam adam(0.01);  // the paper trains GNMT with Adam
  PipelineTrainer trainer(*model, plan, &loss, adam, &train, /*batch_size=*/16, /*seed=*/9);

  std::printf("%-6s  %-12s  %-12s  %-10s  %s\n", "epoch", "train loss", "perplexity",
              "token acc", "stage staleness (updates)");
  for (int epoch = 1; epoch <= 15; ++epoch) {
    const EpochStats stats = trainer.TrainEpoch();
    const double acc = trainer.EvaluateAccuracy(eval, 16);
    std::printf("%-6d  %-12.4f  %-12.2f  %-10.3f  [%.2f, %.2f, %.2f]\n", epoch,
                stats.mean_loss, PerplexityFromLoss(stats.mean_loss), acc,
                trainer.StageStaleness(0).mean(), trainer.StageStaleness(1).mean(),
                trainer.StageStaleness(2).mean());
    if (acc > 0.99) {
      std::printf("\nsolved the copy task at epoch %d\n", epoch);
      break;
    }
  }
  std::printf("\n(note the staleness gradient: the input stage applies updates computed ~2\n"
              " versions earlier, the output stage 0 — exactly n-1-s of paper §3.3.)\n");
  return 0;
}
