// Planner explorer: runs PipeDream's partitioning optimizer for each of the paper's seven
// models on each cluster from Table 2 and prints the chosen configuration, the predicted
// throughput, and the speedup over data parallelism — a live rendition of the "PipeDream
// Config" column of Table 1.
//
// Run: ./planner_explorer
#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/pipedream.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("== PipeDream planner explorer ==\n");
  std::printf("(per-model optimizer output on each Table 2 cluster)\n");

  struct ClusterSetup {
    const char* label;
    HardwareTopology topology;
    DeviceSpec device;
  };
  const ClusterSetup clusters[] = {
      {"4x4 Cluster-A (V100, PCIe, 10Gbps)", HardwareTopology::ClusterA(4),
       DeviceSpec::V100()},
      {"2x8 Cluster-B (V100, NVLink, 25Gbps)", HardwareTopology::ClusterB(2),
       DeviceSpec::V100()},
      {"4x1 Cluster-C (TitanX, 40Gbps)", HardwareTopology::ClusterC(4),
       DeviceSpec::TitanX()},
  };

  for (const ClusterSetup& cluster : clusters) {
    Table table({"model", "config", "stages", "predicted samples/s", "DP samples/s",
                 "speedup vs DP"});
    for (const auto& name : ModelZooNames()) {
      const ModelProfile profile = MakeProfileByName(name, cluster.device);
      const AutoPlanResult planned = AutoPlan(profile, cluster.topology);
      const DataParallelResult dp =
          SimulateDataParallelBsp(profile, cluster.topology, cluster.topology.num_workers());
      const double speedup =
          planned.prediction.throughput_samples_per_sec / dp.throughput_samples_per_sec;
      table.AddRow({name, planned.partition.plan.ConfigString(profile.num_layers()),
                    std::to_string(planned.partition.plan.num_stages()),
                    StrFormat("%.0f", planned.prediction.throughput_samples_per_sec),
                    StrFormat("%.0f", dp.throughput_samples_per_sec),
                    StrFormat("%.2fx", speedup)});
    }
    table.Print(cluster.label);
  }

  std::printf(
      "\nReading the table: \"16\" means vanilla data parallelism, \"straight\" an\n"
      "unreplicated pipeline, and \"15-1\"-style strings give per-stage replica counts —\n"
      "the same notation as the paper's Table 1.\n");
  return 0;
}
