// Serving demo: train a small model, then serve it as a pipeline of stage servers.
//
//   1. Train an MLP classifier with the 1F1B pipeline trainer (weight stashing on).
//   2. Stand the trained model up as a PipelineServer: one resident server thread per
//      stage, connected by the pluggable transport (in-proc here; set
//      PIPEDREAM_TRANSPORT=socket to push every activation through the CRC-framed
//      byte-stream transport instead — same code, same results).
//   3. Stream requests through the pipeline concurrently and read the tail-latency
//      quantiles off the serving histogram.
//
// Run: ./serving            (in-proc transport)
//      PIPEDREAM_TRANSPORT=socket ./serving
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/runtime/pipeline_trainer.h"
#include "src/runtime/serving.h"

using namespace pipedream;

int main() {
  std::printf("== PipeDream pipelined serving ==\n\n");

  // Train a small classifier with the pipeline runtime (2 stages, 1F1B + stashing).
  Rng rng(7);
  const auto model = BuildMlpClassifier(/*in=*/16, /*hidden=*/{48, 32}, /*classes=*/3, &rng);
  const Dataset all = MakeGaussianMixture(3, 16, 200, 0.35, 11);
  Dataset train;
  Dataset eval;
  SplitDataset(all, 0.8, &train, &eval);
  SoftmaxCrossEntropy loss;
  Sgd sgd(0.05);
  const auto train_plan = MakeStraightPlan(static_cast<int>(model->size()), {2});
  PipelineTrainer trainer(*model, train_plan, &loss, sgd, &train, /*batch=*/16, /*seed=*/5);
  for (int epoch = 0; epoch < 8; ++epoch) {
    trainer.TrainEpoch();
  }
  const auto trained = trainer.AssembleModel();
  std::printf("trained 8 epochs, eval accuracy %.1f%%\n\n",
              100.0 * trainer.EvaluateAccuracy(eval, 16));

  // Serve it: stage servers behind the transport, bounded admission window of 4.
  ServingOptions options;
  options.max_inflight = 4;
  const auto serve_plan = MakeStraightPlan(static_cast<int>(trained->size()), {2});
  PipelineServer server(*trained, serve_plan, options);
  PD_CHECK(server.Start().ok());
  std::printf("serving over the '%s' transport, admission window %d\n",
              server.transport_name(), options.max_inflight);

  // Stream 64 single-sample requests, keeping the window full so stages overlap.
  Tensor request({1, 16});
  std::vector<int64_t> ids;
  int64_t answered = 0;
  for (int i = 0; i < 64; ++i) {
    request.Fill(static_cast<float>(i % 3));
    ids.push_back(server.Submit(request));
    if (ids.size() == 4) {
      for (const int64_t id : ids) {
        const Tensor logits = server.Wait(id);
        answered += logits.numel() > 0 ? 1 : 0;
      }
      ids.clear();
    }
  }
  for (const int64_t id : ids) {
    server.Wait(id);
    ++answered;
  }

  const ServingStats stats = server.Stats();
  server.Stop();
  std::printf("answered %lld requests: p50 %.3f ms, p99 %.3f ms, p999 %.3f ms\n",
              static_cast<long long>(answered), stats.p50_seconds * 1e3,
              stats.p99_seconds * 1e3, stats.p999_seconds * 1e3);
  std::printf("ingress depth high-water %lld (window %d) — backpressure %s\n",
              static_cast<long long>(server.IngressDepthHighWater()), options.max_inflight,
              server.IngressDepthHighWater() <= options.max_inflight ? "held" : "FAILED");
  return 0;
}
