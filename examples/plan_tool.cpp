// Command-line planning tool: run PipeDream's optimizer (or evaluate a hand-written config)
// for any zoo model on any Table 2 cluster, printing the plan, its analytic prediction, and
// its simulated performance.
//
// Usage:
//   plan_tool <model> <cluster> <servers> [config]
//     model:   VGG-16 | ResNet-50 | AlexNet | GNMT-8 | GNMT-16 | AWD-LM | S2VT
//     cluster: A | B | C        (Table 2: 4xV100/PCIe/10G, 8xV100/NVLink/25G, 1xTitanX/40G)
//     servers: number of servers
//     config:  optional "15-1" / "straight" / "16"-style config; omitted = run the optimizer
//
// Examples:
//   plan_tool VGG-16 A 4            # optimizer's pick for 16 GPUs on Cluster-A
//   plan_tool VGG-16 A 4 15-1       # evaluate the paper's hand config instead
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/pipedream.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <model> <cluster A|B|C> <servers> [config]\n"
               "models: ",
               argv0);
  for (const auto& name : ModelZooNames()) {
    std::fprintf(stderr, "%s ", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4 || argc > 5) {
    return Usage(argv[0]);
  }
  const std::string model_name = argv[1];
  const std::string cluster = argv[2];
  const int servers = std::atoi(argv[3]);
  if (servers < 1) {
    return Usage(argv[0]);
  }

  HardwareTopology topology = HardwareTopology::Flat(1, 1e9);
  DeviceSpec device = DeviceSpec::V100();
  if (cluster == "A") {
    topology = HardwareTopology::ClusterA(servers);
  } else if (cluster == "B") {
    topology = HardwareTopology::ClusterB(servers);
  } else if (cluster == "C") {
    topology = HardwareTopology::ClusterC(servers);
    device = DeviceSpec::TitanX();
  } else {
    return Usage(argv[0]);
  }

  bool known = false;
  for (const auto& name : ModelZooNames()) {
    known = known || name == model_name;
  }
  if (!known) {
    return Usage(argv[0]);
  }
  const ModelProfile profile = MakeProfileByName(model_name, device);

  std::printf("model:    %s (%d layers, %.1f MB params, %.3f s compute/minibatch of %lld)\n",
              model_name.c_str(), profile.num_layers(),
              static_cast<double>(profile.TotalParamBytes()) / 1e6,
              profile.TotalComputeSeconds(),
              static_cast<long long>(profile.minibatch_size));
  std::printf("cluster:  %s\n\n", topology.ToString().c_str());

  PipelinePlan plan;
  if (argc == 5) {
    const auto parsed = MakePlanFromConfigString(profile, argv[4], topology.num_workers());
    if (!parsed.ok()) {
      PD_LOG(ERROR) << "bad config: " << parsed.status().ToString();
      return 2;
    }
    plan = *parsed;
    std::printf("evaluating hand-written config '%s'\n\n", argv[4]);
  } else {
    const AutoPlanResult planned = AutoPlan(profile, topology);
    plan = planned.partition.plan;
    std::printf("optimizer's pick:\n");
  }

  std::printf("%s\n", DescribePlan(plan, profile).c_str());

  const PlanPrediction prediction = PredictPlan(profile, plan, topology);
  SimOptions options;
  options.num_minibatches = 128;
  const SimResult sim = SimulatePipeline(profile, plan, topology, options);
  const DataParallelResult dp =
      SimulateDataParallelBsp(profile, topology, topology.num_workers());

  std::printf("predicted throughput:  %10.0f samples/s\n",
              prediction.throughput_samples_per_sec);
  std::printf("simulated throughput:  %10.0f samples/s\n", sim.throughput_samples_per_sec);
  std::printf("DP baseline:           %10.0f samples/s  (speedup %.2fx)\n",
              dp.throughput_samples_per_sec,
              sim.throughput_samples_per_sec / dp.throughput_samples_per_sec);
  std::printf("comm per sample:       %10s\n",
              HumanBytes(prediction.comm_bytes_per_sample).c_str());
  int64_t max_memory = 0;
  for (int64_t m : sim.worker_peak_memory) {
    max_memory = std::max(max_memory, m);
  }
  std::printf("peak worker memory:    %10s\n",
              HumanBytes(static_cast<double>(max_memory)).c_str());
  std::printf("NOAM (pipeline depth): %10d\n", plan.Noam());
  return 0;
}
