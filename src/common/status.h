// Lightweight recoverable-error type (Status / Result<T>), used for conditions a caller can
// reasonably handle: infeasible partitioning requests, malformed configs, I/O failures.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace pipedream {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

// Returns the canonical lowercase name of a status code ("ok", "invalid_argument", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
  }
  return "unknown";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "ok";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error return type. Dereferencing a non-ok Result aborts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    PD_CHECK(!status_.ok()) << "Result constructed from an ok Status without a value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PD_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    PD_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PD_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace pipedream

#endif  // SRC_COMMON_STATUS_H_
