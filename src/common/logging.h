// Minimal leveled logging. Thread-safe at the line level; output goes to stderr.
//
// Usage:   PD_LOG(INFO) << "profiled " << n << " layers";
// Levels:  DEBUG < INFO < WARNING < ERROR. The global threshold defaults to INFO and can be
// changed with SetLogThreshold() (e.g. tests silence INFO, debugging enables DEBUG).
//
// Each line carries a compact per-thread id ("t0", "t1", ...) and, when the thread has
// called SetThreadLogLabel (usually via obs::SetThreadLabel), that label instead — so
// interleaved multi-worker logs read "[I 12.345 s1/r0 trainer.cc:88] ...". Lines at
// WARNING and ERROR are also counted regardless of the threshold; the obs metrics registry
// exposes the counts as "log/warnings"/"log/errors".
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace pipedream {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets the minimum level that is actually emitted. Returns the previous threshold.
LogLevel SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

// Names the calling thread in its log prefix ("s1/r0" instead of "t3"). Empty restores the
// default id. Runtime code should prefer obs::SetThreadLabel, which also names the thread's
// trace track.
void SetThreadLogLabel(const std::string& label);

// Number of lines recorded at `level` since process start. WARNING/ERROR lines count even
// when suppressed by the threshold, so a quiet run still reports its health.
int64_t GetLogCount(LogLevel level);

namespace internal {

// Accumulates one log line and flushes it (with timestamp and level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pipedream

#define PD_LOG_DEBUG ::pipedream::internal::LogMessage(::pipedream::LogLevel::kDebug, __FILE__, __LINE__)
#define PD_LOG_INFO ::pipedream::internal::LogMessage(::pipedream::LogLevel::kInfo, __FILE__, __LINE__)
#define PD_LOG_WARNING \
  ::pipedream::internal::LogMessage(::pipedream::LogLevel::kWarning, __FILE__, __LINE__)
#define PD_LOG_ERROR ::pipedream::internal::LogMessage(::pipedream::LogLevel::kError, __FILE__, __LINE__)
#define PD_LOG(severity) PD_LOG_##severity

#endif  // SRC_COMMON_LOGGING_H_
