// CRC-32 (IEEE 802.3 polynomial, reflected) over arbitrary byte ranges.
//
// Used wherever the system needs to tell "bytes arrived/persisted intact" from "bytes were
// torn or flipped": the checkpoint file footer and the runtime's inter-stage message
// checksums. Incremental: feed chunks through repeated calls, passing the previous result.
#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace pipedream {
namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

// Extends `crc` (the running checksum of everything fed so far; 0 for a fresh stream) with
// `size` bytes at `data`.
inline uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = internal::kCrc32Table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace pipedream

#endif  // SRC_COMMON_CRC32_H_
