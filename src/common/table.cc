#include "src/common/table.h"

#include <cstdio>
#include <fstream>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace pipedream {
namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

void Table::AddRow(std::vector<std::string> row) {
  PD_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  render(header_);
  for (const auto& row : rows_) {
    render(row);
  }
  return out;
}

void Table::Print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToText().c_str());
  std::fflush(stdout);
}

void Table::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    PD_LOG(WARNING) << "failed to open " << path << " for CSV output";
    return;
  }
  file << ToCsv();
}

}  // namespace pipedream
