// Invariant-checking macros.
//
// PD_CHECK aborts with a diagnostic when an invariant is violated. These are used for
// programmer errors (bad arguments, violated preconditions); recoverable conditions use
// pipedream::Status instead (see src/common/status.h).
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pipedream {
namespace internal {

// Terminates the process after printing a formatted check-failure message.
[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "PD_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream sink that collects the optional message attached to a failing check. The process
// terminates when the temporary is destroyed at the end of the full expression.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

// Swallows the streamed message when a debug check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace pipedream

// The switch wrapper makes the trailing if/else immune to dangling-else ambiguity when the
// macro is used un-braced inside another if statement.
#define PD_CHECK(cond)                 \
  switch (0)                           \
  case 0:                              \
  default:                             \
    if (cond) {                        \
    } else /* NOLINT */                \
      ::pipedream::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define PD_CHECK_OP(a, op, b) PD_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define PD_CHECK_EQ(a, b) PD_CHECK_OP(a, ==, b)
#define PD_CHECK_NE(a, b) PD_CHECK_OP(a, !=, b)
#define PD_CHECK_LT(a, b) PD_CHECK_OP(a, <, b)
#define PD_CHECK_LE(a, b) PD_CHECK_OP(a, <=, b)
#define PD_CHECK_GT(a, b) PD_CHECK_OP(a, >, b)
#define PD_CHECK_GE(a, b) PD_CHECK_OP(a, >=, b)

#ifndef NDEBUG
#define PD_DCHECK(cond) PD_CHECK(cond)
#else
#define PD_DCHECK(cond)                \
  switch (0)                           \
  case 0:                              \
  default:                             \
    if (true) {                        \
    } else /* NOLINT */                \
      ::pipedream::internal::NullStream()
#endif

#endif  // SRC_COMMON_CHECK_H_
