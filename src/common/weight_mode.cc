#include "src/common/weight_mode.h"

#include <cstdlib>

#include "src/common/check.h"

namespace pipedream {

const char* WeightModeName(WeightMode mode) {
  switch (mode) {
    case WeightMode::kNaive:
      return "naive";
    case WeightMode::kStashing:
      return "stashing";
    case WeightMode::kVerticalSync:
      return "vertical_sync";
    case WeightMode::kDoubleBuffered:
      return "double_buffered";
  }
  return "?";
}

std::optional<WeightMode> WeightModeFromName(const std::string& name) {
  if (name == "naive") {
    return WeightMode::kNaive;
  }
  if (name == "stashing") {
    return WeightMode::kStashing;
  }
  if (name == "vertical_sync") {
    return WeightMode::kVerticalSync;
  }
  if (name == "double_buffered" || name == "2bw") {
    return WeightMode::kDoubleBuffered;
  }
  return std::nullopt;
}

std::optional<WeightMode> WeightModeFromEnv() {
  const char* env = std::getenv("PIPEDREAM_WEIGHT_MODE");
  if (env == nullptr || env[0] == '\0') {
    return std::nullopt;
  }
  const std::optional<WeightMode> mode = WeightModeFromName(env);
  PD_CHECK(mode.has_value()) << "PIPEDREAM_WEIGHT_MODE=" << env
                             << " is not one of naive|stashing|vertical_sync|"
                                "double_buffered|2bw";
  return mode;
}

}  // namespace pipedream
