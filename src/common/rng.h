// Deterministic pseudo-random number generation.
//
// A from-scratch xoshiro256** generator seeded through splitmix64. Every stochastic component
// in the repository (weight init, dataset synthesis, shuffling) draws from an explicitly
// seeded Rng so that experiments are bit-reproducible across runs and platforms.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "src/common/check.h"

namespace pipedream {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  // Re-seeds the generator. Distinct seeds produce statistically independent streams.
  void Seed(uint64_t seed) {
    // splitmix64 expansion of the scalar seed into the 256-bit xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  // Next raw 64-bit value (xoshiro256**).
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f; }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). n must be positive. Uses rejection to avoid modulo bias.
  uint64_t UniformInt(uint64_t n) {
    PD_CHECK_GT(n, 0u);
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) {
        return r % n;
      }
    }
  }

  // Standard normal via Box–Muller (caches the second deviate).
  double Gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

  // Fisher–Yates shuffle of [first, first + n).
  template <typename T>
  void Shuffle(T* first, size_t n) {
    for (size_t i = n; i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      T tmp = first[i - 1];
      first[i - 1] = first[j];
      first[j] = tmp;
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pipedream

#endif  // SRC_COMMON_RNG_H_
