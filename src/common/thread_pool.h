// A small shared worker pool with a deterministic parallel-for partitioner.
//
// Kernels (GEMM, conv, elementwise, reductions) split their work into chunks whose
// boundaries depend only on the problem shape and a grain size — never on the number of
// threads. Threads merely race to execute pre-defined chunks, and every chunk writes a
// disjoint output region (or an indexed partial slot combined in chunk order), so results
// are bitwise identical whether a loop runs inline, on 2 workers, or on 16. That invariant
// is what lets the equivalence tests demand *identical weights* between the threaded
// pipeline runtime and its single-threaded oracle.
//
// Sharing policy: the pipeline trainer runs one OS thread per stage replica, each of which
// calls into the same kernels. To avoid oversubscription the pool is a process-wide
// singleton and every caller has a thread-local *parallelism budget* — the maximum number
// of chunks it may run concurrently (itself included). Stage workers receive
// max(1, total_threads / num_stage_workers) via ScopedKernelBudget; a budget of 1 makes
// every kernel run inline on the calling thread.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pipedream {

class ThreadPool {
 public:
  // `workers` is the number of pool threads (callers participate too, so total achievable
  // parallelism is workers + 1). Zero workers is valid: every ParallelFor runs inline.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  // Enqueues a task. Tasks must not block waiting for other pool tasks.
  void Submit(std::function<void()> task);

  // Process-wide pool, created on first use with PIPEDREAM_NUM_THREADS - 1 workers
  // (default: hardware concurrency - 1).
  static ThreadPool& Global();

  // Total parallelism the global pool was configured for (workers + 1).
  static int GlobalThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

// The calling thread's kernel-parallelism budget; 0 means "unset" (use the full pool).
int KernelBudget();

// RAII override of the calling thread's budget, used by trainer worker threads so that
// concurrent pipeline stages share the machine instead of each fanning out to every core.
class ScopedKernelBudget {
 public:
  explicit ScopedKernelBudget(int budget);
  ~ScopedKernelBudget();

  ScopedKernelBudget(const ScopedKernelBudget&) = delete;
  ScopedKernelBudget& operator=(const ScopedKernelBudget&) = delete;

 private:
  int previous_;
};

// Fair per-worker budget when `concurrent_workers` threads will run kernels at once.
int KernelBudgetForWorkers(int concurrent_workers);

// Runs fn(chunk_index, begin, end) over [begin, end) split into ceil(n / grain) contiguous
// chunks. Chunk boundaries depend only on (begin, end, grain); the caller's budget and the
// pool decide how many run concurrently. fn must write only to chunk-private state or to
// the disjoint [begin, end) slice it was handed. Blocks until every chunk has run.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t, int64_t)>& fn);

// Number of chunks ParallelFor will create for a range — for sizing partial-result arrays
// when implementing deterministic reductions (combine partials in chunk order).
int64_t ParallelChunkCount(int64_t begin, int64_t end, int64_t grain);

}  // namespace pipedream

#endif  // SRC_COMMON_THREAD_POOL_H_
