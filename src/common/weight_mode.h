// Weight-versioning modes for pipeline-parallel training.
//
// The enum lives in common/ (not runtime/) because every layer of the stack keys off it:
// the runtime's WeightStore implements the protocols, the simulator prices their memory
// and sync cadence in virtual time, and the planner carries a per-stage mode in the plan so
// the partitioner can trade stash memory against staleness semantics per stage.
//
//   kNaive          — no versioning. Backward runs against whatever the weights are at that
//                     moment (the paper's "invalid gradients" baseline; also the correct
//                     mode for GPipe, whose flushes prevent any version skew).
//   kStashing       — PipeDream weight stashing (§3.2/3.3): one stashed version per
//                     in-flight minibatch, so stash memory grows with pipeline depth.
//   kVerticalSync   — stashing plus a cross-stage version pin: every stage runs both passes
//                     of a minibatch at the version stamped by the input stage.
//   kDoubleBuffered — PipeDream-2BW (Memory-Efficient Pipeline-Parallel DNN Training):
//                     gradients accumulate over m >= pipeline-depth microbatches and
//                     exactly two weight buffers (current + shadow) serve all in-flight
//                     minibatches. Update rule W(t+1) = W(t) - γ·∇f(W(t-1)): a constant
//                     staleness of one update for every stage, and a constant
//                     2×-weights + 1×-gradient-accumulator footprint regardless of depth.
#ifndef SRC_COMMON_WEIGHT_MODE_H_
#define SRC_COMMON_WEIGHT_MODE_H_

#include <optional>
#include <string>

namespace pipedream {

enum class WeightMode {
  kNaive,
  kStashing,
  kVerticalSync,
  kDoubleBuffered,
};

const char* WeightModeName(WeightMode mode);

// Inverse of WeightModeName, plus the "2bw" alias for kDoubleBuffered. Returns nullopt for
// unrecognized names.
std::optional<WeightMode> WeightModeFromName(const std::string& name);

// The mode named by PIPEDREAM_WEIGHT_MODE, if set. Aborts on an unrecognized value (a typo
// silently falling back to stashing would invalidate a memory experiment).
std::optional<WeightMode> WeightModeFromEnv();

}  // namespace pipedream

#endif  // SRC_COMMON_WEIGHT_MODE_H_
