#include "src/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace pipedream {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};
std::mutex g_output_mutex;

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

// Strips leading directories so log lines show "tensor.cc:42" rather than the full path.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel SetLogThreshold(LogLevel level) {
  return static_cast<LogLevel>(g_threshold.exchange(static_cast<int>(level)));
}

LogLevel GetLogThreshold() { return static_cast<LogLevel>(g_threshold.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_threshold.load(std::memory_order_relaxed)),
      level_(level),
      file_(file),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) {
    return;
  }
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::fprintf(stderr, "[%c %lld.%03lld %s:%d] %s\n", LevelTag(level_),
               static_cast<long long>(ms / 1000), static_cast<long long>(ms % 1000),
               Basename(file_), line_, stream_.str().c_str());
}

}  // namespace internal
}  // namespace pipedream
