#include "src/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace pipedream {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};
std::mutex g_output_mutex;

std::atomic<int64_t> g_level_counts[4] = {};

// Compact per-thread ids ("t0", "t1", ...) — stable for the thread's lifetime, far more
// readable than pthread handles when eyeballing interleaved worker logs.
std::atomic<int> g_next_thread_id{0};

struct ThreadLogState {
  int id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  std::string label;
};

ThreadLogState& GetThreadLogState() {
  thread_local ThreadLogState state;
  return state;
}

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

// Strips leading directories so log lines show "tensor.cc:42" rather than the full path.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel SetLogThreshold(LogLevel level) {
  return static_cast<LogLevel>(g_threshold.exchange(static_cast<int>(level)));
}

LogLevel GetLogThreshold() { return static_cast<LogLevel>(g_threshold.load()); }

void SetThreadLogLabel(const std::string& label) { GetThreadLogState().label = label; }

int64_t GetLogCount(LogLevel level) {
  return g_level_counts[static_cast<int>(level)].load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_threshold.load(std::memory_order_relaxed)),
      level_(level),
      file_(file),
      line_(line) {
  // Count every WARNING/ERROR construction, emitted or not, so suppressed problems still
  // surface in the metrics dump; DEBUG/INFO only count when actually logged.
  if (enabled_ || level >= LogLevel::kWarning) {
    g_level_counts[static_cast<int>(level)].fetch_add(1, std::memory_order_relaxed);
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) {
    return;
  }
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  const ThreadLogState& thread = GetThreadLogState();
  char who[64];
  if (thread.label.empty()) {
    std::snprintf(who, sizeof(who), "t%d", thread.id);
  } else {
    std::snprintf(who, sizeof(who), "%s", thread.label.c_str());
  }
  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::fprintf(stderr, "[%c %lld.%03lld %s %s:%d] %s\n", LevelTag(level_),
               static_cast<long long>(ms / 1000), static_cast<long long>(ms % 1000), who,
               Basename(file_), line_, stream_.str().c_str());
}

}  // namespace internal
}  // namespace pipedream
