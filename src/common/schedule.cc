#include "src/common/schedule.h"

#include <cstdlib>

#include "src/common/check.h"

namespace pipedream {

bool IsFlushFamily(ScheduleKind kind) {
  return kind == ScheduleKind::kGPipe || kind == ScheduleKind::kModelParallel ||
         kind == ScheduleKind::kPipeDreamFlush;
}

const char* ScheduleKindName(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kOneFOneB:
      return "1f1b";
    case ScheduleKind::kGPipe:
      return "gpipe";
    case ScheduleKind::kModelParallel:
      return "model_parallel";
    case ScheduleKind::kPipeDreamFlush:
      return "flush";
    case ScheduleKind::kInterleaved:
      return "interleaved";
  }
  return "unknown";
}

std::optional<ScheduleKind> ScheduleKindFromName(const std::string& name) {
  if (name == "1f1b") return ScheduleKind::kOneFOneB;
  if (name == "gpipe") return ScheduleKind::kGPipe;
  if (name == "model_parallel") return ScheduleKind::kModelParallel;
  if (name == "flush" || name == "pipedream_flush") return ScheduleKind::kPipeDreamFlush;
  if (name == "interleaved") return ScheduleKind::kInterleaved;
  return std::nullopt;
}

std::optional<ScheduleKind> ScheduleKindFromEnv() {
  const char* env = std::getenv("PIPEDREAM_SCHEDULE");
  if (env == nullptr || env[0] == '\0') return std::nullopt;
  std::optional<ScheduleKind> kind = ScheduleKindFromName(env);
  PD_CHECK(kind.has_value()) << "PIPEDREAM_SCHEDULE=" << env
                             << " is not a schedule (want 1f1b, gpipe, model_parallel, "
                                "flush, or interleaved)";
  return kind;
}

std::optional<int> InterleaveChunksFromEnv() {
  const char* env = std::getenv("PIPEDREAM_CHUNKS");
  if (env == nullptr || env[0] == '\0') return std::nullopt;
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  PD_CHECK(end != env && *end == '\0' && value >= 1)
      << "PIPEDREAM_CHUNKS=" << env << " is not a positive integer";
  return static_cast<int>(value);
}

std::optional<bool> RecomputeFromEnv() {
  const char* env = std::getenv("PIPEDREAM_RECOMPUTE");
  if (env == nullptr || env[0] == '\0') return std::nullopt;
  const std::string value(env);
  if (value == "1" || value == "on" || value == "true") return true;
  if (value == "0" || value == "off" || value == "false") return false;
  PD_CHECK(false) << "PIPEDREAM_RECOMPUTE=" << env << " is not a boolean (want 0/1/on/off)";
  return std::nullopt;
}

}  // namespace pipedream
