#include "src/common/stats.h"

namespace pipedream {

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  PD_CHECK_EQ(x.size(), y.size());
  PD_CHECK_GE(x.size(), 2u);
  const double n = static_cast<double>(x.size());
  double sum_x = 0.0;
  double sum_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;
  double cov = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_x * var_y);
}

}  // namespace pipedream
