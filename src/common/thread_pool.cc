#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "src/common/check.h"

namespace pipedream {
namespace {

thread_local int tls_kernel_budget = 0;   // 0 = unset (full pool)
thread_local bool tls_in_pool_worker = false;

int ConfiguredThreads() {
  if (const char* env = std::getenv("PIPEDREAM_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

ThreadPool::ThreadPool(int workers) {
  PD_CHECK_GE(workers, 0);
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(std::max(0, ConfiguredThreads() - 1));
  return *pool;
}

int ThreadPool::GlobalThreads() { return Global().workers() + 1; }

int KernelBudget() {
  return tls_kernel_budget > 0 ? tls_kernel_budget : ThreadPool::GlobalThreads();
}

ScopedKernelBudget::ScopedKernelBudget(int budget) : previous_(tls_kernel_budget) {
  PD_CHECK_GE(budget, 1);
  tls_kernel_budget = budget;
}

ScopedKernelBudget::~ScopedKernelBudget() { tls_kernel_budget = previous_; }

int KernelBudgetForWorkers(int concurrent_workers) {
  PD_CHECK_GE(concurrent_workers, 1);
  return std::max(1, ThreadPool::GlobalThreads() / concurrent_workers);
}

int64_t ParallelChunkCount(int64_t begin, int64_t end, int64_t grain) {
  PD_CHECK_GT(grain, 0);
  const int64_t n = end - begin;
  return n <= 0 ? 0 : (n + grain - 1) / grain;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  const int64_t chunks = ParallelChunkCount(begin, end, grain);
  if (chunks <= 0) {
    return;
  }
  // Pool workers never re-enter the pool (a nested wait could deadlock on a saturated
  // queue), and a budget of 1 or a single chunk needs no coordination at all.
  const int budget = tls_in_pool_worker ? 1 : KernelBudget();
  const int helpers =
      static_cast<int>(std::min<int64_t>(chunks - 1, std::min(budget - 1, ThreadPool::Global().workers())));
  if (helpers <= 0) {
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t lo = begin + c * grain;
      fn(c, lo, std::min(end, lo + grain));
    }
    return;
  }

  // Chunks are fixed up front; caller and helpers race to claim them via an atomic cursor.
  struct State {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  auto run_chunks = [state, begin, end, grain, chunks, &fn] {
    for (;;) {
      const int64_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) {
        return;
      }
      const int64_t lo = begin + c * grain;
      fn(c, lo, std::min(end, lo + grain));
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };
  // Helpers capture fn by reference: the caller blocks below until every chunk completed,
  // so fn outlives all uses. A helper that never claimed a chunk touches nothing.
  for (int h = 0; h < helpers; ++h) {
    ThreadPool::Global().Submit(run_chunks);
  }
  run_chunks();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load(std::memory_order_acquire) == chunks; });
}

}  // namespace pipedream
