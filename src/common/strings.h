// Small string helpers: printf-style formatting, split/join, human-readable byte counts.
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pipedream {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits on a single-character delimiter. Consecutive delimiters produce empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delim);

// Joins elements with the given separator.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Returns e.g. "1.50 MB" for 1572864. Uses binary-ish decimal units matching the paper's
// convention (KB = 1e3, MB = 1e6, GB = 1e9).
std::string HumanBytes(double bytes);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace pipedream

#endif  // SRC_COMMON_STRINGS_H_
