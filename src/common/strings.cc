#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace pipedream {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string HumanBytes(double bytes) {
  if (bytes >= 1e9) {
    return StrFormat("%.2f GB", bytes / 1e9);
  }
  if (bytes >= 1e6) {
    return StrFormat("%.2f MB", bytes / 1e6);
  }
  if (bytes >= 1e3) {
    return StrFormat("%.2f KB", bytes / 1e3);
  }
  return StrFormat("%.0f B", bytes);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace pipedream
