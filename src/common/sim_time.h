// Virtual time for the discrete-event simulator.
//
// SimTime is a strongly typed count of integer nanoseconds. Integer (rather than floating
// point) time keeps event ordering exact and the simulator bit-deterministic regardless of
// the order arithmetic is performed in.
#ifndef SRC_COMMON_SIM_TIME_H_
#define SRC_COMMON_SIM_TIME_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/check.h"

namespace pipedream {

class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}

  static constexpr SimTime Nanos(int64_t ns) { return SimTime(ns); }
  static constexpr SimTime Micros(int64_t us) { return SimTime(us * 1000); }
  static constexpr SimTime Millis(int64_t ms) { return SimTime(ms * 1000000); }
  static constexpr SimTime Seconds(int64_t s) { return SimTime(s * 1000000000); }

  // Converts a floating-point duration in seconds, rounding to the nearest nanosecond.
  static SimTime FromSeconds(double seconds) {
    PD_CHECK(seconds >= 0.0) << "negative duration: " << seconds;
    return SimTime(static_cast<int64_t>(seconds * 1e9 + 0.5));
  }

  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr SimTime operator+(SimTime other) const { return SimTime(ns_ + other.ns_); }
  constexpr SimTime operator-(SimTime other) const { return SimTime(ns_ - other.ns_); }
  SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  SimTime& operator-=(SimTime other) {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr SimTime operator*(int64_t k) const { return SimTime(ns_ * k); }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const {
    char buf[48];
    if (ns_ >= 1000000000) {
      std::snprintf(buf, sizeof(buf), "%.6gs", ToSeconds());
    } else if (ns_ >= 1000000) {
      std::snprintf(buf, sizeof(buf), "%.6gms", ToMillis());
    } else if (ns_ >= 1000) {
      std::snprintf(buf, sizeof(buf), "%.6gus", ToMicros());
    } else {
      std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
    }
    return buf;
  }

 private:
  explicit constexpr SimTime(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

}  // namespace pipedream

#endif  // SRC_COMMON_SIM_TIME_H_
