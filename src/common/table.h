// Aligned-text table printer with optional CSV export. Used by every figure/table
// reproduction binary in bench/ so output is uniform and machine-readable.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace pipedream {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  // Adds a fully formatted row. Row width must match the header.
  void AddRow(std::vector<std::string> row);

  // Renders an aligned text table with a separator under the header.
  std::string ToText() const;

  // Renders RFC-4180-ish CSV (fields containing commas or quotes are quoted).
  std::string ToCsv() const;

  // Prints ToText() to stdout, preceded by a title line.
  void Print(const std::string& title) const;

  // Writes ToCsv() to the given path; logs a warning (does not abort) on I/O failure.
  void WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pipedream

#endif  // SRC_COMMON_TABLE_H_
