// Streaming statistics helpers used by the runtime metrics and the benchmark harnesses.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace pipedream {

// Welford's online mean/variance plus min/max.
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

// Stores samples; supports exact quantiles. Suitable for the modest sample counts produced by
// simulation runs (thousands, not billions).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Quantile in [0, 1], by linear interpolation between order statistics.
  double Quantile(double q) {
    PD_CHECK(!samples_.empty());
    PD_CHECK(q >= 0.0 && q <= 1.0);
    EnsureSorted();
    const double idx = q * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double Mean() const {
    double total = 0.0;
    for (double s : samples_) {
      total += s;
    }
    return samples_.empty() ? 0.0 : total / static_cast<double>(samples_.size());
  }

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

// Pearson correlation of two equal-length series (used by the Figure 15 reproduction to show
// the optimizer's predictions are linearly correlated with simulated throughput).
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace pipedream

#endif  // SRC_COMMON_STATS_H_
