// Pipeline schedule kinds — the zoo of docs/SCHEDULES.md.
//
// Like WeightMode, the enum lives in common/ because every layer of the stack keys off it:
// the runtime executes a schedule, the simulator prices it in virtual time, and the planner
// treats it as a first-class dimension alongside the partition and the per-stage weight
// mode (PredictPlanScheduled / EnumerateScheduleFrontier). Memory formulas per kind are
// documented in docs/SCHEDULES.md and implemented once in src/planner/memory_model.h.
//
//   kOneFOneB       — PipeDream 1F1B / 1F1B-RR: startup-depth forwards, then strict
//                     alternation. Stash depth at stage s of a straight S-stage pipeline
//                     is S - s; weights need versioning (stashing / 2BW / vertical sync).
//   kGPipe          — microbatch rounds of m with a full pipeline flush per round: all m
//                     forwards, then all m backwards, then a synchronous weight update.
//                     Stash depth is m at every stage; weights never skew (kNaive).
//   kModelParallel  — one minibatch in flight (GPipe with m = 1).
//   kPipeDreamFlush — PipeDream-Flush (the 2BW follow-up paper): 1F1B ordering *within* a
//                     round of m microbatches, then a pipeline drain and one aggregated
//                     update. Same bubble as GPipe, but the stash depth is min(S - s, m)
//                     instead of m, and weights stay kNaive-correct like GPipe's.
//   kInterleaved    — interleaved virtual stages (Megatron-style, cf. BaPipe): a straight
//                     plan of S = k * W chunk-stages where physical worker w = s mod W owns
//                     k non-contiguous chunks and serializes their work under a static
//                     1F1B-derived schedule (src/schedule/interleaved.h). Per-chunk
//                     semantics (weight modes, updates) are exactly 1F1B's; k = 1 is
//                     bitwise-identical to kOneFOneB.
#ifndef SRC_COMMON_SCHEDULE_H_
#define SRC_COMMON_SCHEDULE_H_

#include <optional>
#include <string>

namespace pipedream {

enum class ScheduleKind {
  kOneFOneB,
  kGPipe,
  kModelParallel,
  kPipeDreamFlush,
  kInterleaved,
};

// Schedules that drain the pipeline and apply one aggregated update per round of m
// microbatches (kGPipe, kModelParallel, kPipeDreamFlush). They share the flush barrier,
// the round-gated admission, and the kNaive weight discipline — within a round no update
// commits between a minibatch's forward and backward, so versioning is unnecessary.
bool IsFlushFamily(ScheduleKind kind);

const char* ScheduleKindName(ScheduleKind kind);

// Inverse of ScheduleKindName, accepting "1f1b", "gpipe", "model_parallel", "flush"
// (alias "pipedream_flush"), and "interleaved". Returns nullopt for unrecognized names.
std::optional<ScheduleKind> ScheduleKindFromName(const std::string& name);

// The schedule named by PIPEDREAM_SCHEDULE, if set. Aborts on an unrecognized value (a
// typo silently training under the wrong schedule would invalidate an experiment).
std::optional<ScheduleKind> ScheduleKindFromEnv();

// Virtual chunks per worker named by PIPEDREAM_CHUNKS (kInterleaved only; >= 1), if set.
// Aborts on a non-positive or non-numeric value.
std::optional<int> InterleaveChunksFromEnv();

// The global recomputation override named by PIPEDREAM_RECOMPUTE, if set: "1"/"on"/"true"
// forces activation recomputation for every stage, "0"/"off"/"false" disables it
// everywhere including plan-assigned per-stage flags. Aborts on other values.
std::optional<bool> RecomputeFromEnv();

}  // namespace pipedream

#endif  // SRC_COMMON_SCHEDULE_H_
