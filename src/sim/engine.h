// Discrete-event simulation engine: a virtual clock plus an event queue.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>

#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"

namespace pipedream {

class SimEngine {
 public:
  SimTime now() const { return now_; }
  int64_t events_processed() const { return events_processed_; }

  // Schedules a callback at an absolute virtual time (must not be in the past).
  void ScheduleAt(SimTime at, EventQueue::Callback callback) {
    PD_CHECK(at >= now_) << "scheduling into the past: " << at.ToString() << " < "
                         << now_.ToString();
    queue_.Push(at, std::move(callback));
  }

  // Schedules a callback `delay` after the current virtual time.
  void ScheduleAfter(SimTime delay, EventQueue::Callback callback) {
    ScheduleAt(now_ + delay, std::move(callback));
  }

  // Runs until the queue drains or the virtual clock passes `until`.
  // Returns the number of events processed by this call.
  int64_t Run(SimTime until = SimTime::Max()) {
    int64_t processed = 0;
    while (!queue_.empty() && queue_.PeekTime() <= until) {
      SimTime at;
      EventQueue::Callback cb = queue_.Pop(&at);
      now_ = at;
      cb();
      ++processed;
      ++events_processed_;
    }
    return processed;
  }

  bool idle() const { return queue_.empty(); }

 private:
  SimTime now_;
  EventQueue queue_;
  int64_t events_processed_ = 0;
};

// Tracks when a serially shared resource (a GPU's compute engine, a NIC's egress port) is
// next free, serializing acquisitions in request order.
class ResourceTimeline {
 public:
  // Reserves the resource for `duration` starting no earlier than `earliest`.
  // Returns the actual start time; the resource is then busy until start + duration.
  SimTime Acquire(SimTime earliest, SimTime duration) {
    const SimTime start = next_free_ > earliest ? next_free_ : earliest;
    next_free_ = start + duration;
    busy_ += duration;
    return start;
  }

  SimTime next_free() const { return next_free_; }
  // Total busy time accumulated — used for utilization accounting.
  SimTime total_busy() const { return busy_; }

 private:
  SimTime next_free_;
  SimTime busy_;
};

}  // namespace pipedream

#endif  // SRC_SIM_ENGINE_H_
