// Deterministic discrete-event queue.
//
// Events at equal timestamps are dispatched in insertion (FIFO) order via a monotonically
// increasing sequence number, so simulation results never depend on heap tie-breaking.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/sim_time.h"

namespace pipedream {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  void Push(SimTime at, Callback callback) {
    events_.push(Event{at, next_seq_++, std::move(callback)});
  }

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  SimTime PeekTime() const {
    PD_CHECK(!events_.empty());
    return events_.top().at;
  }

  // Removes and returns the earliest event's callback (FIFO among ties).
  Callback Pop(SimTime* at) {
    PD_CHECK(!events_.empty());
    // std::priority_queue::top returns const&; the callback must be moved out, which is safe
    // because the element is popped immediately after.
    Event& top = const_cast<Event&>(events_.top());
    *at = top.at;
    Callback cb = std::move(top.callback);
    events_.pop();
    return cb;
  }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    Callback callback;

    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  uint64_t next_seq_ = 0;
};

}  // namespace pipedream

#endif  // SRC_SIM_EVENT_QUEUE_H_
