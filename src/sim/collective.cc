#include "src/sim/collective.h"

namespace pipedream {

double RingAllReduceSeconds(int64_t bytes, int m, double bandwidth_bytes_per_sec,
                            double latency_sec) {
  PD_CHECK_GE(m, 1);
  PD_CHECK_GT(bandwidth_bytes_per_sec, 0.0);
  if (m == 1) {
    return 0.0;
  }
  const double factor = 2.0 * static_cast<double>(m - 1) / static_cast<double>(m);
  const double transfer = factor * static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  const double steps = 2.0 * static_cast<double>(m - 1);
  return transfer + steps * latency_sec;
}

double HierarchicalAllReduceSeconds(int64_t bytes, const HardwareTopology& topology, int first,
                                    int count) {
  if (count <= 1 || bytes == 0) {
    return 0.0;
  }
  const double bandwidth = topology.BottleneckBandwidthAmong(first, count);
  // Latency charged at the bottleneck level's figure; a refinement could mix levels, but the
  // bandwidth term dominates for DNN-sized tensors.
  double latency = 0.0;
  for (int k = 1; k <= topology.num_levels(); ++k) {
    if (topology.level(k).bandwidth_bytes_per_sec == bandwidth) {
      latency = topology.level(k).latency_sec;
      break;
    }
  }
  return RingAllReduceSeconds(bytes, count, bandwidth, latency);
}

double PointToPointSeconds(int64_t bytes, const HardwareTopology& topology, int worker_a,
                           int worker_b) {
  if (worker_a == worker_b || bytes == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / topology.BandwidthBetween(worker_a, worker_b) +
         topology.LatencyBetween(worker_a, worker_b);
}

}  // namespace pipedream
