// Collective-communication cost models.
//
// The paper (§3.1) estimates data-parallel weight synchronization assuming an efficient ring
// all_reduce: each of m workers sends 2(m-1)/m * |w| bytes and receives the same. These
// helpers implement that estimate, including the hierarchical-bottleneck variant used by the
// optimizer and the Figure 1 reproduction.
#ifndef SRC_SIM_COLLECTIVE_H_
#define SRC_SIM_COLLECTIVE_H_

#include <cstdint>

#include "src/sim/topology.h"

namespace pipedream {

// Time for a ring all_reduce of `bytes` over `m` workers on links of `bandwidth` bytes/s.
// m == 1 returns 0. Latency is charged per ring step (2(m-1) steps).
double RingAllReduceSeconds(int64_t bytes, int m, double bandwidth_bytes_per_sec,
                            double latency_sec = 0.0);

// Ring all_reduce over workers [first, first+count) of a hierarchical topology: the slowest
// link the ring must cross bounds the transfer.
double HierarchicalAllReduceSeconds(int64_t bytes, const HardwareTopology& topology, int first,
                                    int count);

// Point-to-point transfer time between two specific workers.
double PointToPointSeconds(int64_t bytes, const HardwareTopology& topology, int worker_a,
                           int worker_b);

}  // namespace pipedream

#endif  // SRC_SIM_COLLECTIVE_H_
