// Hierarchical interconnect topology (paper §3.1, Figure 7).
//
// A topology is a list of levels, bottom-up. Level k groups m_k components of level k-1 and
// connects them with links of bandwidth B_k; level 0 is a single device. Workers are numbered
// consecutively, filling innermost groups first (workers 0..m_1-1 share the first level-1
// group, and so on).
#ifndef SRC_SIM_TOPOLOGY_H_
#define SRC_SIM_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/common/check.h"

namespace pipedream {

struct TopologyLevel {
  int fanout = 1;                    // m_k: components of level k-1 per level-k component
  double bandwidth_bytes_per_sec = 0;  // B_k: nominal link bandwidth at this level
  double latency_sec = 0;            // per-message latency at this level
  // Achieved fraction of nominal bandwidth. Collectives over TCP/Ethernet reach ~30% of
  // line rate in practice (protocol overhead, imperfect overlap — this is what makes the
  // paper's Figure 1 overheads as high as they are); point-to-point streams do better.
  // NVLink/PCIe collectives are much closer to nominal.
  double collective_efficiency = 1.0;
  double p2p_efficiency = 1.0;
  // True when the level's bandwidth is one shared medium (a PCIe tree through the root
  // complex): a collective's traffic contends for the same B, costing 2(m-1)|w|/B wall.
  // False for per-participant links (NVLink lanes, per-server NICs), where a ring overlaps
  // transfers and costs 2(m-1)|w|/(m B).
  bool shared_bus = false;

  double effective_collective_bandwidth() const {
    return bandwidth_bytes_per_sec * collective_efficiency;
  }
  double effective_p2p_bandwidth() const { return bandwidth_bytes_per_sec * p2p_efficiency; }
};

class HardwareTopology {
 public:
  HardwareTopology(std::string name, std::vector<TopologyLevel> levels);

  const std::string& name() const { return name_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  // Level k in 1..num_levels(); level(1) is the innermost interconnect.
  const TopologyLevel& level(int k) const {
    PD_CHECK(k >= 1 && k <= num_levels()) << "level " << k << " out of range";
    return levels_[static_cast<size_t>(k - 1)];
  }

  int num_workers() const { return num_workers_; }

  // Number of workers inside one level-k component (k = 0 means a single device).
  int WorkersPerComponent(int k) const;

  // Smallest level whose component contains both workers (1..num_levels); 0 if a == b.
  int SharedLevel(int worker_a, int worker_b) const;

  // Bandwidth / latency of the link crossed between two distinct workers (the shared level's
  // parameters — the slowest hop on the path, which bounds the transfer).
  double BandwidthBetween(int worker_a, int worker_b) const;
  double LatencyBetween(int worker_a, int worker_b) const;
  // Effective point-to-point bandwidth between two workers (nominal x p2p efficiency).
  double EffectiveP2pBandwidthBetween(int worker_a, int worker_b) const;

  // Bandwidth of the slowest level spanned when `count` consecutive workers starting at
  // `first` must all communicate (used for replicated-stage weight sync estimates).
  double BottleneckBandwidthAmong(int first, int count) const;
  // Same, derated by that level's collective efficiency.
  double EffectiveCollectiveBandwidthAmong(int first, int count) const;
  // The level whose component is the smallest containing the whole range.
  int ContainingLevel(int first, int count) const;

  std::string ToString() const;

  // --- Cluster presets matching the paper's Table 2 (plus the Figure 1 private cluster).
  // Cluster-A: Azure NC24 v3 — 4x V100 per server on shared PCIe, 10 Gbps Ethernet across.
  static HardwareTopology ClusterA(int num_servers);
  // Cluster-B: AWS p3.16xlarge — 8x V100 per server with NVLink, 25 Gbps across.
  static HardwareTopology ClusterB(int num_servers);
  // Cluster-C: one Titan X per server, 40 Gbps across.
  static HardwareTopology ClusterC(int num_servers);
  // Private cluster from Figure 1a: 8x 1080Ti per server on PCIe, 25 Gbps across.
  static HardwareTopology Private1080Ti(int num_servers);
  // Dedicated supercomputer-style cluster (MLPerf entries, Table 3): NVLink + 100 Gbps.
  static HardwareTopology DedicatedCluster(int num_servers);
  // Single flat level, for unit tests and microbenchmarks.
  static HardwareTopology Flat(int num_workers, double bandwidth_bytes_per_sec,
                               double latency_sec = 10e-6);

 private:
  std::string name_;
  std::vector<TopologyLevel> levels_;
  int num_workers_ = 1;
};

}  // namespace pipedream

#endif  // SRC_SIM_TOPOLOGY_H_
