#include "src/sim/topology.h"

#include "src/common/strings.h"

namespace pipedream {
namespace {

constexpr double kGbps = 1e9 / 8.0;   // bits/s -> bytes/s
constexpr double kGBps = 1e9;         // gigabytes/s -> bytes/s

}  // namespace

HardwareTopology::HardwareTopology(std::string name, std::vector<TopologyLevel> levels)
    : name_(std::move(name)), levels_(std::move(levels)) {
  PD_CHECK(!levels_.empty()) << "a topology needs at least one level";
  for (const TopologyLevel& level : levels_) {
    PD_CHECK_GE(level.fanout, 1);
    PD_CHECK_GT(level.bandwidth_bytes_per_sec, 0.0);
    num_workers_ *= level.fanout;
  }
}

int HardwareTopology::WorkersPerComponent(int k) const {
  PD_CHECK(k >= 0 && k <= num_levels());
  int workers = 1;
  for (int i = 1; i <= k; ++i) {
    workers *= level(i).fanout;
  }
  return workers;
}

int HardwareTopology::SharedLevel(int worker_a, int worker_b) const {
  PD_CHECK(worker_a >= 0 && worker_a < num_workers_);
  PD_CHECK(worker_b >= 0 && worker_b < num_workers_);
  if (worker_a == worker_b) {
    return 0;
  }
  for (int k = 1; k <= num_levels(); ++k) {
    const int span = WorkersPerComponent(k);
    if (worker_a / span == worker_b / span) {
      return k;
    }
  }
  PD_CHECK(false) << "workers " << worker_a << " and " << worker_b
                  << " share no level — inconsistent topology";
  return -1;
}

double HardwareTopology::BandwidthBetween(int worker_a, int worker_b) const {
  const int k = SharedLevel(worker_a, worker_b);
  PD_CHECK_GT(k, 0) << "no link between a worker and itself";
  return level(k).bandwidth_bytes_per_sec;
}

double HardwareTopology::LatencyBetween(int worker_a, int worker_b) const {
  const int k = SharedLevel(worker_a, worker_b);
  PD_CHECK_GT(k, 0);
  return level(k).latency_sec;
}

int HardwareTopology::ContainingLevel(int first, int count) const {
  PD_CHECK_GE(count, 1);
  PD_CHECK(first >= 0 && first + count <= num_workers_);
  if (count == 1) {
    return 1;
  }
  for (int k = 1; k <= num_levels(); ++k) {
    const int span = WorkersPerComponent(k);
    if (first / span == (first + count - 1) / span) {
      return k;
    }
  }
  PD_CHECK(false) << "worker range [" << first << ", " << first + count
                  << ") not contained in the topology";
  return -1;
}

double HardwareTopology::BottleneckBandwidthAmong(int first, int count) const {
  // The slowest link used is the one at the smallest level whose component contains the
  // whole range (any collective among these workers must cross links of that level).
  return level(ContainingLevel(first, count)).bandwidth_bytes_per_sec;
}

double HardwareTopology::EffectiveCollectiveBandwidthAmong(int first, int count) const {
  return level(ContainingLevel(first, count)).effective_collective_bandwidth();
}

double HardwareTopology::EffectiveP2pBandwidthBetween(int worker_a, int worker_b) const {
  const int k = SharedLevel(worker_a, worker_b);
  PD_CHECK_GT(k, 0);
  return level(k).effective_p2p_bandwidth();
}

std::string HardwareTopology::ToString() const {
  std::string out = name_ + " (" + StrFormat("%d workers", num_workers_) + "):";
  for (int k = 1; k <= num_levels(); ++k) {
    const TopologyLevel& l = level(k);
    out += StrFormat(" L%d[x%d @ %.2f GB/s]", k, l.fanout,
                     l.bandwidth_bytes_per_sec / 1e9);
  }
  return out;
}

HardwareTopology HardwareTopology::ClusterA(int num_servers) {
  // 4x V100 per server on a shared PCIe tree (~12 GB/s effective), 10 Gbps Ethernet across.
  std::vector<TopologyLevel> levels;
  levels.push_back({4, 12.0 * kGBps, 10e-6, 0.70, 0.90, /*shared_bus=*/true});
  if (num_servers > 1) {
    levels.push_back({num_servers, 10.0 * kGbps, 50e-6, 0.30, 0.70});
  }
  return HardwareTopology(StrFormat("Cluster-A(%dx4xV100,PCIe,10Gbps)", num_servers),
                          std::move(levels));
}

HardwareTopology HardwareTopology::ClusterB(int num_servers) {
  // 8x V100 per server with point-to-point NVLink (~25 GB/s), 25 Gbps Ethernet across.
  std::vector<TopologyLevel> levels;
  levels.push_back({8, 25.0 * kGBps, 5e-6, 0.80, 0.90});
  if (num_servers > 1) {
    levels.push_back({num_servers, 25.0 * kGbps, 50e-6, 0.30, 0.70});
  }
  return HardwareTopology(StrFormat("Cluster-B(%dx8xV100,NVLink,25Gbps)", num_servers),
                          std::move(levels));
}

HardwareTopology HardwareTopology::ClusterC(int num_servers) {
  // One Titan X per server, 40 Gbps Ethernet across — a single interconnect level.
  std::vector<TopologyLevel> levels;
  levels.push_back({num_servers, 40.0 * kGbps, 50e-6, 0.30, 0.70});
  return HardwareTopology(StrFormat("Cluster-C(%dx1xTitanX,40Gbps)", num_servers),
                          std::move(levels));
}

HardwareTopology HardwareTopology::Private1080Ti(int num_servers) {
  std::vector<TopologyLevel> levels;
  levels.push_back({8, 10.0 * kGBps, 10e-6, 0.70, 0.90, /*shared_bus=*/true});
  if (num_servers > 1) {
    levels.push_back({num_servers, 25.0 * kGbps, 50e-6, 0.30, 0.70});
  }
  return HardwareTopology(StrFormat("Private(%dx8x1080Ti,PCIe,25Gbps)", num_servers),
                          std::move(levels));
}

HardwareTopology HardwareTopology::DedicatedCluster(int num_servers) {
  std::vector<TopologyLevel> levels;
  levels.push_back({8, 25.0 * kGBps, 5e-6, 0.80, 0.90});
  if (num_servers > 1) {
    // Dedicated RDMA-class fabric: far better collective efficiency than cloud TCP.
    levels.push_back({num_servers, 100.0 * kGbps, 20e-6, 0.70, 0.85});
  }
  return HardwareTopology(StrFormat("Dedicated(%dx8xV100,NVLink,100Gbps)", num_servers),
                          std::move(levels));
}

HardwareTopology HardwareTopology::Flat(int num_workers, double bandwidth_bytes_per_sec,
                                        double latency_sec) {
  std::vector<TopologyLevel> levels;
  levels.push_back({num_workers, bandwidth_bytes_per_sec, latency_sec});
  return HardwareTopology(StrFormat("Flat(%d)", num_workers), std::move(levels));
}

}  // namespace pipedream
