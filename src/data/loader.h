// Deterministic minibatch loader with per-epoch reshuffling.
#ifndef SRC_DATA_LOADER_H_
#define SRC_DATA_LOADER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/data/dataset.h"

namespace pipedream {

// Iterates a Dataset in shuffled minibatches. The shuffle order is a pure function of
// (seed, epoch), so two loaders constructed identically produce identical batch streams —
// this is what lets the pipelined and data-parallel runtimes consume *the same* sequence of
// minibatches and makes statistical-efficiency comparisons apples-to-apples.
class MinibatchLoader {
 public:
  MinibatchLoader(const Dataset* dataset, int64_t batch_size, uint64_t seed);

  // Fills *inputs / *targets with the next minibatch (first dimension = batch_size).
  // Wraps to the next epoch automatically; partial trailing batches are dropped.
  void NextBatch(Tensor* inputs, Tensor* targets);

  // Random-access variant: fills the minibatch with global index `index` (epoch =
  // index / batches_per_epoch). Two loaders with the same (dataset, batch_size, seed)
  // return identical batches for every index, regardless of call order — the property the
  // pipeline runtime relies on to give every input-stage replica its round-robin share of
  // one deterministic stream.
  void BatchAt(int64_t index, Tensor* inputs, Tensor* targets);

  int64_t batches_per_epoch() const { return batches_per_epoch_; }
  int64_t epoch() const { return cursor_ / batches_per_epoch_; }
  int64_t batch_size() const { return batch_size_; }

  // Copies example rows `order[begin..begin+count)` from the dataset. Exposed for the
  // round-robin input routing of replicated stages.
  void GatherExamples(const std::vector<int64_t>& indices, Tensor* inputs,
                      Tensor* targets) const;

 private:
  void Reshuffle();

  const Dataset* dataset_;
  int64_t batch_size_;
  uint64_t seed_;
  int64_t epoch_ = 0;   // epoch the current permutation belongs to
  int64_t cursor_ = 0;  // next global batch index for NextBatch
  int64_t batches_per_epoch_;
  std::vector<int64_t> order_;
};

}  // namespace pipedream

#endif  // SRC_DATA_LOADER_H_
