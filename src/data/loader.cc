#include "src/data/loader.h"

#include <numeric>

#include "src/common/check.h"

namespace pipedream {

MinibatchLoader::MinibatchLoader(const Dataset* dataset, int64_t batch_size, uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), seed_(seed) {
  PD_CHECK(dataset != nullptr);
  PD_CHECK_GT(batch_size, 0);
  PD_CHECK_GE(dataset->size(), batch_size)
      << "dataset smaller than one minibatch (" << dataset->size() << " < " << batch_size << ")";
  batches_per_epoch_ = dataset->size() / batch_size;
  order_.resize(static_cast<size_t>(dataset->size()));
  Reshuffle();
}

void MinibatchLoader::Reshuffle() {
  // (Re)builds the permutation for epoch_. The permutation is a pure function of
  // (seed, epoch), which is what makes BatchAt order-independent.
  std::iota(order_.begin(), order_.end(), 0);
  Rng rng(seed_ * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(epoch_) + 1);
  rng.Shuffle(order_.data(), order_.size());
}

void MinibatchLoader::NextBatch(Tensor* inputs, Tensor* targets) {
  BatchAt(cursor_, inputs, targets);
  ++cursor_;
}

void MinibatchLoader::BatchAt(int64_t index, Tensor* inputs, Tensor* targets) {
  PD_CHECK_GE(index, 0);
  const int64_t target_epoch = index / batches_per_epoch_;
  if (target_epoch != epoch_) {
    epoch_ = target_epoch;
    Reshuffle();
  }
  const int64_t pos = index % batches_per_epoch_;
  std::vector<int64_t> indices(static_cast<size_t>(batch_size_));
  for (int64_t i = 0; i < batch_size_; ++i) {
    indices[static_cast<size_t>(i)] = order_[static_cast<size_t>(pos * batch_size_ + i)];
  }
  GatherExamples(indices, inputs, targets);
}

void MinibatchLoader::GatherExamples(const std::vector<int64_t>& indices, Tensor* inputs,
                                     Tensor* targets) const {
  const int64_t n = dataset_->size();
  const int64_t in_width = dataset_->inputs.numel() / n;
  const int64_t tgt_width = dataset_->targets.numel() / n;
  const auto batch = static_cast<int64_t>(indices.size());

  std::vector<int64_t> in_shape = dataset_->inputs.shape();
  in_shape[0] = batch;
  std::vector<int64_t> tgt_shape = dataset_->targets.shape();
  tgt_shape[0] = batch;
  if (inputs->shape() != in_shape) {
    *inputs = Tensor::Uninitialized(in_shape);  // every row is copied below
  }
  if (targets->shape() != tgt_shape) {
    *targets = Tensor::Uninitialized(tgt_shape);
  }

  const float* src_in = dataset_->inputs.data();
  const float* src_tgt = dataset_->targets.data();
  float* dst_in = inputs->data();
  float* dst_tgt = targets->data();
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t idx = indices[static_cast<size_t>(b)];
    PD_CHECK(idx >= 0 && idx < n);
    std::copy(src_in + idx * in_width, src_in + (idx + 1) * in_width, dst_in + b * in_width);
    std::copy(src_tgt + idx * tgt_width, src_tgt + (idx + 1) * tgt_width,
              dst_tgt + b * tgt_width);
  }
}

}  // namespace pipedream
