// In-memory datasets and synthetic generators.
//
// The paper trains on ImageNet/WMT16/PTB/MSVD; those are proprietary-scale. The statistical-
// efficiency experiments here need datasets that (a) are learnable to a crisp target accuracy
// in seconds and (b) are hard enough that optimizer semantics (staleness, stashing, batch
// size) visibly change convergence. These generators provide that.
#ifndef SRC_DATA_DATASET_H_
#define SRC_DATA_DATASET_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace pipedream {

struct Dataset {
  Tensor inputs;   // [N, ...]; the first dimension indexes examples.
  Tensor targets;  // [N] class ids, or [N, T] per-token ids for sequence tasks.

  int64_t size() const { return inputs.empty() ? 0 : inputs.dim(0); }
};

// Gaussian mixture: `classes` isotropic clusters in `dim` dimensions, `per_class` samples
// each. `spread` scales within-class noise relative to unit-separated centers; larger spread
// means harder classification.
Dataset MakeGaussianMixture(int64_t classes, int64_t dim, int64_t per_class, double spread,
                            uint64_t seed);

// Two-dimensional k-armed spiral embedded into `dim` dimensions (first two coordinates carry
// the signal, the rest are noise). Strongly non-linear; an MLP needs real training to fit it.
Dataset MakeSpirals(int64_t classes, int64_t dim, int64_t per_class, double noise,
                    uint64_t seed);

// Synthetic images [N, channels, size, size]: each class has a fixed random template pattern,
// samples are template + Gaussian pixel noise. The image-classification analogue.
Dataset MakeSyntheticImages(int64_t classes, int64_t channels, int64_t size, int64_t per_class,
                            double noise, uint64_t seed);

// Sequence transduction ("translation" analogue): inputs are random token sequences [N, T]
// over `vocab` symbols, targets are the element-wise reversed sequence [N, T]. Learning it
// requires the recurrent state to carry the whole sequence, like an encoder-decoder.
Dataset MakeSequenceCopy(int64_t vocab, int64_t seq_len, int64_t num_sequences, bool reverse,
                         uint64_t seed);

// Language-modelling analogue: sequences from a random first-order Markov chain over `vocab`
// tokens; targets are the next token at every position. An LSTM can drive perplexity well
// below the uniform baseline by learning the transition matrix.
Dataset MakeMarkovLm(int64_t vocab, int64_t seq_len, int64_t num_sequences, double temperature,
                     uint64_t seed);

// Splits a dataset into train/eval partitions drawn from the same distribution: the first
// `train_fraction` of examples go to *train, the rest to *eval. Use this (not two generator
// calls with different seeds!) to get a validation set for the same underlying problem.
void SplitDataset(const Dataset& data, double train_fraction, Dataset* train, Dataset* eval);

}  // namespace pipedream

#endif  // SRC_DATA_DATASET_H_
