#include "src/data/dataset.h"

#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace pipedream {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Shuffles examples (and their labels) so minibatches mix classes even before the loader's
// own shuffling. Operates on the flattened per-example rows.
void ShuffleExamples(Dataset* data, Rng* rng) {
  const int64_t n = data->size();
  if (n <= 1) {
    return;
  }
  const int64_t in_width = data->inputs.numel() / n;
  const int64_t tgt_width = data->targets.numel() / n;
  float* in = data->inputs.data();
  float* tgt = data->targets.data();
  std::vector<float> tmp(static_cast<size_t>(std::max(in_width, tgt_width)));
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(i + 1)));
    if (i == j) {
      continue;
    }
    std::copy(in + i * in_width, in + (i + 1) * in_width, tmp.begin());
    std::copy(in + j * in_width, in + (j + 1) * in_width, in + i * in_width);
    std::copy(tmp.begin(), tmp.begin() + in_width, in + j * in_width);
    std::copy(tgt + i * tgt_width, tgt + (i + 1) * tgt_width, tmp.begin());
    std::copy(tgt + j * tgt_width, tgt + (j + 1) * tgt_width, tgt + i * tgt_width);
    std::copy(tmp.begin(), tmp.begin() + tgt_width, tgt + j * tgt_width);
  }
}

}  // namespace

Dataset MakeGaussianMixture(int64_t classes, int64_t dim, int64_t per_class, double spread,
                            uint64_t seed) {
  PD_CHECK_GT(classes, 0);
  PD_CHECK_GT(dim, 0);
  Rng rng(seed);
  const int64_t n = classes * per_class;
  Dataset data;
  data.inputs = Tensor({n, dim});
  data.targets = Tensor({n});

  // Random unit-ish centers, re-used for all samples of a class.
  Tensor centers({classes, dim});
  for (int64_t c = 0; c < classes; ++c) {
    for (int64_t d = 0; d < dim; ++d) {
      centers.At(c, d) = static_cast<float>(rng.Gaussian());
    }
  }
  int64_t row = 0;
  for (int64_t c = 0; c < classes; ++c) {
    for (int64_t s = 0; s < per_class; ++s, ++row) {
      for (int64_t d = 0; d < dim; ++d) {
        data.inputs.At(row, d) =
            centers.At(c, d) + static_cast<float>(rng.Gaussian(0.0, spread));
      }
      data.targets[row] = static_cast<float>(c);
    }
  }
  ShuffleExamples(&data, &rng);
  return data;
}

Dataset MakeSpirals(int64_t classes, int64_t dim, int64_t per_class, double noise,
                    uint64_t seed) {
  PD_CHECK_GE(dim, 2);
  Rng rng(seed);
  const int64_t n = classes * per_class;
  Dataset data;
  data.inputs = Tensor({n, dim});
  data.targets = Tensor({n});
  int64_t row = 0;
  for (int64_t c = 0; c < classes; ++c) {
    for (int64_t s = 0; s < per_class; ++s, ++row) {
      const double t = static_cast<double>(s) / static_cast<double>(per_class);
      const double radius = 0.2 + 0.8 * t;
      const double angle =
          2.0 * kPi * (1.75 * t + static_cast<double>(c) / static_cast<double>(classes));
      data.inputs.At(row, 0) =
          static_cast<float>(radius * std::cos(angle) + rng.Gaussian(0.0, noise));
      data.inputs.At(row, 1) =
          static_cast<float>(radius * std::sin(angle) + rng.Gaussian(0.0, noise));
      for (int64_t d = 2; d < dim; ++d) {
        data.inputs.At(row, d) = static_cast<float>(rng.Gaussian(0.0, noise));
      }
      data.targets[row] = static_cast<float>(c);
    }
  }
  ShuffleExamples(&data, &rng);
  return data;
}

Dataset MakeSyntheticImages(int64_t classes, int64_t channels, int64_t size, int64_t per_class,
                            double noise, uint64_t seed) {
  Rng rng(seed);
  const int64_t n = classes * per_class;
  const int64_t pixels = channels * size * size;
  Dataset data;
  data.inputs = Tensor({n, channels, size, size});
  data.targets = Tensor({n});

  Tensor templates({classes, channels, size, size});
  for (int64_t i = 0; i < templates.numel(); ++i) {
    templates[i] = static_cast<float>(rng.Gaussian());
  }
  int64_t row = 0;
  for (int64_t c = 0; c < classes; ++c) {
    for (int64_t s = 0; s < per_class; ++s, ++row) {
      float* dst = data.inputs.data() + row * pixels;
      const float* tpl = templates.data() + c * pixels;
      for (int64_t p = 0; p < pixels; ++p) {
        dst[p] = tpl[p] + static_cast<float>(rng.Gaussian(0.0, noise));
      }
      data.targets[row] = static_cast<float>(c);
    }
  }
  ShuffleExamples(&data, &rng);
  return data;
}

Dataset MakeSequenceCopy(int64_t vocab, int64_t seq_len, int64_t num_sequences, bool reverse,
                         uint64_t seed) {
  PD_CHECK_GT(vocab, 1);
  Rng rng(seed);
  Dataset data;
  data.inputs = Tensor({num_sequences, seq_len});
  data.targets = Tensor({num_sequences, seq_len});
  for (int64_t i = 0; i < num_sequences; ++i) {
    for (int64_t t = 0; t < seq_len; ++t) {
      const auto token = static_cast<float>(rng.UniformInt(static_cast<uint64_t>(vocab)));
      data.inputs.At(i, t) = token;
      const int64_t tgt_pos = reverse ? seq_len - 1 - t : t;
      data.targets.At(i, tgt_pos) = token;
    }
  }
  return data;
}

Dataset MakeMarkovLm(int64_t vocab, int64_t seq_len, int64_t num_sequences, double temperature,
                     uint64_t seed) {
  PD_CHECK_GT(vocab, 1);
  Rng rng(seed);
  // Row-stochastic transition matrix with temperature-controlled peakedness: lower
  // temperature means more predictable chains (lower achievable perplexity).
  std::vector<double> transition(static_cast<size_t>(vocab * vocab));
  for (int64_t a = 0; a < vocab; ++a) {
    double row_sum = 0.0;
    for (int64_t b = 0; b < vocab; ++b) {
      const double e = std::exp(rng.Gaussian() / std::max(temperature, 1e-3));
      transition[static_cast<size_t>(a * vocab + b)] = e;
      row_sum += e;
    }
    for (int64_t b = 0; b < vocab; ++b) {
      transition[static_cast<size_t>(a * vocab + b)] /= row_sum;
    }
  }
  auto sample_next = [&](int64_t current) {
    const double u = rng.NextDouble();
    double acc = 0.0;
    for (int64_t b = 0; b < vocab; ++b) {
      acc += transition[static_cast<size_t>(current * vocab + b)];
      if (u < acc) {
        return b;
      }
    }
    return vocab - 1;
  };

  Dataset data;
  data.inputs = Tensor({num_sequences, seq_len});
  data.targets = Tensor({num_sequences, seq_len});
  for (int64_t i = 0; i < num_sequences; ++i) {
    int64_t state = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(vocab)));
    for (int64_t t = 0; t < seq_len; ++t) {
      data.inputs.At(i, t) = static_cast<float>(state);
      state = sample_next(state);
      data.targets.At(i, t) = static_cast<float>(state);
    }
  }
  return data;
}

void SplitDataset(const Dataset& data, double train_fraction, Dataset* train, Dataset* eval) {
  PD_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  const int64_t n = data.size();
  const int64_t n_train = static_cast<int64_t>(static_cast<double>(n) * train_fraction);
  PD_CHECK(n_train > 0 && n_train < n) << "split produces an empty partition";
  const int64_t in_width = data.inputs.numel() / n;
  const int64_t tgt_width = data.targets.numel() / n;

  auto take = [&](int64_t begin, int64_t count, Dataset* out) {
    std::vector<int64_t> in_shape = data.inputs.shape();
    in_shape[0] = count;
    std::vector<int64_t> tgt_shape = data.targets.shape();
    tgt_shape[0] = count;
    out->inputs = Tensor(in_shape);
    out->targets = Tensor(tgt_shape);
    std::copy(data.inputs.data() + begin * in_width,
              data.inputs.data() + (begin + count) * in_width, out->inputs.data());
    std::copy(data.targets.data() + begin * tgt_width,
              data.targets.data() + (begin + count) * tgt_width, out->targets.data());
  };
  take(0, n_train, train);
  take(n_train, n - n_train, eval);
}

}  // namespace pipedream
