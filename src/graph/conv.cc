#include "src/graph/conv.h"

#include "src/tensor/init.h"

namespace pipedream {

Conv2D::Conv2D(std::string name, int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, Rng* rng)
    : name_(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding) {
  PD_CHECK_GT(stride, 0);
  PD_CHECK_GE(padding, 0);
  weight_.name = name_ + ".weight";
  weight_.value = Tensor({out_channels, in_channels, kernel, kernel});
  InitHe(&weight_.value, in_channels * kernel * kernel, rng);
  weight_.ZeroGrad();
  bias_.name = name_ + ".bias";
  bias_.value = Tensor({out_channels});
  bias_.ZeroGrad();
}

Tensor Conv2D::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  PD_CHECK_EQ(input.rank(), 4u);
  PD_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = OutSize(in_h);
  const int64_t out_w = OutSize(in_w);
  PD_CHECK_GT(out_h, 0);
  PD_CHECK_GT(out_w, 0);

  Tensor out({batch, out_channels_, out_h, out_w});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float b = bias_.value[oc];
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          float acc = b;
          const int64_t h0 = oh * stride_ - padding_;
          const int64_t w0 = ow * stride_ - padding_;
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            for (int64_t kh = 0; kh < kernel_; ++kh) {
              const int64_t ih = h0 + kh;
              if (ih < 0 || ih >= in_h) {
                continue;
              }
              for (int64_t kw = 0; kw < kernel_; ++kw) {
                const int64_t iw = w0 + kw;
                if (iw < 0 || iw >= in_w) {
                  continue;
                }
                acc += input.At4(n, ic, ih, iw) * weight_.value.At4(oc, ic, kh, kw);
              }
            }
          }
          out.At4(n, oc, oh, ow) = acc;
        }
      }
    }
  }
  ctx->Clear();
  ctx->saved.push_back(input);
  return out;
}

Tensor Conv2D::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const Tensor& input = ctx->saved[0];
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = grad_output.dim(2);
  const int64_t out_w = grad_output.dim(3);
  PD_CHECK_EQ(grad_output.dim(0), batch);
  PD_CHECK_EQ(grad_output.dim(1), out_channels_);

  Tensor grad_input(input.shape());
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const float g = grad_output.At4(n, oc, oh, ow);
          if (g == 0.0f) {
            continue;
          }
          bias_.grad[oc] += g;
          const int64_t h0 = oh * stride_ - padding_;
          const int64_t w0 = ow * stride_ - padding_;
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            for (int64_t kh = 0; kh < kernel_; ++kh) {
              const int64_t ih = h0 + kh;
              if (ih < 0 || ih >= in_h) {
                continue;
              }
              for (int64_t kw = 0; kw < kernel_; ++kw) {
                const int64_t iw = w0 + kw;
                if (iw < 0 || iw >= in_w) {
                  continue;
                }
                weight_.grad.At4(oc, ic, kh, kw) += g * input.At4(n, ic, ih, iw);
                grad_input.At4(n, ic, ih, iw) += g * weight_.value.At4(oc, ic, kh, kw);
              }
            }
          }
        }
      }
    }
  }
  ctx->Clear();
  return grad_input;
}

std::unique_ptr<Layer> Conv2D::Clone() const {
  return std::unique_ptr<Layer>(new Conv2D(*this));
}

}  // namespace pipedream
