#include "src/graph/conv.h"

#include "src/tensor/init.h"
#include "src/tensor/ops.h"

namespace pipedream {

Conv2D::Conv2D(std::string name, int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, Rng* rng)
    : name_(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding) {
  PD_CHECK_GT(stride, 0);
  PD_CHECK_GE(padding, 0);
  weight_.name = name_ + ".weight";
  weight_.value = Tensor({out_channels, in_channels, kernel, kernel});
  InitHe(&weight_.value, in_channels * kernel * kernel, rng);
  weight_.ZeroGrad();
  bias_.name = name_ + ".bias";
  bias_.value = Tensor({out_channels});
  bias_.ZeroGrad();
}

ConvGeometry Conv2D::GeometryFor(const Tensor& input) const {
  PD_CHECK_EQ(input.rank(), 4u);
  PD_CHECK_EQ(input.dim(1), in_channels_);
  ConvGeometry g;
  g.batch = input.dim(0);
  g.in_channels = in_channels_;
  g.in_h = input.dim(2);
  g.in_w = input.dim(3);
  g.out_channels = out_channels_;
  g.kernel = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  return g;
}

Tensor Conv2D::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  const ConvGeometry g = GeometryFor(input);
  PD_CHECK_GT(g.out_h(), 0);
  PD_CHECK_GT(g.out_w(), 0);
  Tensor out;
  Conv2dForward(input, weight_.value, bias_.value, g, &out);
  ctx->Clear();
  ctx->saved.push_back(input);
  return out;
}

Tensor Conv2D::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const Tensor& input = ctx->saved[0];
  const ConvGeometry g = GeometryFor(input);
  Tensor grad_input;
  Conv2dBackward(input, weight_.value, grad_output, g, &weight_.grad, &bias_.grad,
                 &grad_input);
  ctx->Clear();
  return grad_input;
}

std::unique_ptr<Layer> Conv2D::Clone() const {
  return std::unique_ptr<Layer>(new Conv2D(*this));
}

}  // namespace pipedream
