// Shape-manipulation layers: Flatten (N-d -> 2-d) and Dropout.
#ifndef SRC_GRAPH_SHAPE_OPS_H_
#define SRC_GRAPH_SHAPE_OPS_H_

#include <memory>
#include <string>

#include "src/graph/layer.h"

namespace pipedream {

// Flattens [B, ...] to [B, prod(...)] keeping the batch dimension.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::unique_ptr<Layer> Clone() const override { return std::make_unique<Flatten>(name_); }

 private:
  std::string name_;
};

// Inverted dropout: at train time zeroes activations with probability `rate` and scales the
// survivors by 1/(1-rate); identity at eval time. The mask is drawn from a per-layer RNG
// stream seeded at construction, so runs are reproducible given the seed.
class Dropout : public Layer {
 public:
  Dropout(std::string name, float rate, uint64_t seed);

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Dropout>(name_, rate_, seed_);
  }

 private:
  std::string name_;
  float rate_;
  uint64_t seed_;
  Rng rng_;
};

// Merges the batch and time axes: [B, T, X] -> [B*T, X]. Used between sequence layers
// (LSTM) and per-token classification heads (Dense), so every token becomes a row.
class TimeFlatten : public Layer {
 public:
  explicit TimeFlatten(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::unique_ptr<Layer> Clone() const override { return std::make_unique<TimeFlatten>(name_); }

 private:
  std::string name_;
};

}  // namespace pipedream

#endif  // SRC_GRAPH_SHAPE_OPS_H_
