// 2-D convolution (NCHW) with stride and zero padding. Lowers onto the tensor library's
// im2col + blocked-GEMM kernels (ops.h); the original direct-loop implementation survives
// as the ref:: oracle behind PIPEDREAM_NAIVE_KERNELS=1.
#ifndef SRC_GRAPH_CONV_H_
#define SRC_GRAPH_CONV_H_

#include <memory>
#include <string>

#include "src/graph/layer.h"
#include "src/tensor/ops.h"

namespace pipedream {

class Conv2D : public Layer {
 public:
  Conv2D(std::string name, int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t padding, Rng* rng);

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> Clone() const override;

  // Spatial output size for a given input size.
  int64_t OutSize(int64_t in_size) const { return (in_size + 2 * padding_ - kernel_) / stride_ + 1; }

 private:
  Conv2D(const Conv2D&) = default;

  // Kernel geometry for an input batch (validates channel count).
  ConvGeometry GeometryFor(const Tensor& input) const;

  std::string name_;
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t stride_;
  int64_t padding_;
  Parameter weight_;  // [OC, IC, K, K]
  Parameter bias_;    // [OC]
};

}  // namespace pipedream

#endif  // SRC_GRAPH_CONV_H_
