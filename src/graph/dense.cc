#include "src/graph/dense.h"

#include "src/tensor/init.h"
#include "src/tensor/ops.h"

namespace pipedream {

Dense::Dense(std::string name, int64_t in_features, int64_t out_features, Rng* rng)
    : name_(std::move(name)), in_features_(in_features), out_features_(out_features) {
  weight_.name = name_ + ".weight";
  weight_.value = Tensor({in_features, out_features});
  InitXavier(&weight_.value, in_features, out_features, rng);
  weight_.ZeroGrad();
  bias_.name = name_ + ".bias";
  bias_.value = Tensor({out_features});
  bias_.ZeroGrad();
}

Tensor Dense::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  PD_CHECK_EQ(input.rank(), 2u);
  PD_CHECK_EQ(input.dim(1), in_features_);
  Tensor out;
  MatMul(input, weight_.value, &out);
  AddBiasRows(&out, bias_.value);
  ctx->Clear();
  ctx->saved.push_back(input);  // x, needed for dW = x^T dy.
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const Tensor& input = ctx->saved[0];
  // dW += x^T dy
  Gemm(input, true, grad_output, false, 1.0f, 1.0f, &weight_.grad);
  // db += column sums of dy
  AccumulateColumnSums(grad_output, &bias_.grad);
  // dx = dy W^T
  Tensor grad_input;
  Gemm(grad_output, false, weight_.value, true, 1.0f, 0.0f, &grad_input);
  ctx->Clear();
  return grad_input;
}

std::unique_ptr<Layer> Dense::Clone() const { return std::unique_ptr<Layer>(new Dense(*this)); }

}  // namespace pipedream
