// 2-D max pooling (NCHW), non-overlapping or strided windows.
#ifndef SRC_GRAPH_POOL_H_
#define SRC_GRAPH_POOL_H_

#include <memory>
#include <string>

#include "src/graph/layer.h"

namespace pipedream {

class MaxPool2D : public Layer {
 public:
  MaxPool2D(std::string name, int64_t window, int64_t stride)
      : name_(std::move(name)), window_(window), stride_(stride) {
    PD_CHECK_GT(window, 0);
    PD_CHECK_GT(stride, 0);
  }

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<MaxPool2D>(name_, window_, stride_);
  }

 private:
  std::string name_;
  int64_t window_;
  int64_t stride_;
};

// 2-D average pooling (NCHW). With window == input size this is global average pooling.
class AvgPool2D : public Layer {
 public:
  AvgPool2D(std::string name, int64_t window, int64_t stride)
      : name_(std::move(name)), window_(window), stride_(stride) {
    PD_CHECK_GT(window, 0);
    PD_CHECK_GT(stride, 0);
  }

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<AvgPool2D>(name_, window_, stride_);
  }

 private:
  std::string name_;
  int64_t window_;
  int64_t stride_;
};

}  // namespace pipedream

#endif  // SRC_GRAPH_POOL_H_
