#include "src/graph/grad_check.h"

#include <cmath>

namespace pipedream {
namespace {

double EvalLoss(const Sequential& model, const Loss& loss, const Tensor& input,
                const Tensor& targets) {
  ModelContext ctx;
  const Tensor out = model.Forward(input, &ctx, /*training=*/false);
  Tensor grad;
  return loss.Compute(out, targets, &grad);
}

}  // namespace

GradCheckReport CheckGradients(const Sequential& model, const Loss& loss, const Tensor& input,
                               const Tensor& targets, const GradCheckOptions& options) {
  GradCheckReport report;
  Rng rng(options.seed);

  // Analytic gradients. Eval mode keeps dropout out of the picture so the loss is a
  // deterministic function of the parameters.
  model.ZeroGrads();
  ModelContext ctx;
  const Tensor out = model.Forward(input, &ctx, /*training=*/false);
  Tensor loss_grad;
  loss.Compute(out, targets, &loss_grad);
  model.Backward(loss_grad, &ctx);

  for (Parameter* param : model.Params()) {
    const int64_t n = param->value.numel();
    const int64_t checks = std::min<int64_t>(n, options.max_checks_per_param);
    for (int64_t c = 0; c < checks; ++c) {
      const int64_t idx = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
      const float original = param->value[idx];
      auto central_difference = [&](double eps) {
        param->value[idx] = original + static_cast<float>(eps);
        const double loss_plus = EvalLoss(model, loss, input, targets);
        param->value[idx] = original - static_cast<float>(eps);
        const double loss_minus = EvalLoss(model, loss, input, targets);
        param->value[idx] = original;
        return (loss_plus - loss_minus) / (2.0 * eps);
      };
      const double numeric_coarse = central_difference(options.epsilon);
      const double numeric_mid = central_difference(options.epsilon / 2.0);
      const double numeric = central_difference(options.epsilon / 4.0);

      const double analytic = param->grad[idx];
      if (std::max(std::abs(numeric), std::abs(analytic)) < options.min_magnitude) {
        continue;  // float32 noise floor — see GradCheckOptions::min_magnitude
      }
      const double scale = std::max(std::abs(numeric), std::abs(analytic));
      // Non-smoothness filter: across a ReLU or max-pool kink the central difference does
      // not converge as the step shrinks; such points say nothing about the backward pass.
      if (std::abs(numeric_mid - numeric_coarse) > 0.2 * scale ||
          std::abs(numeric - numeric_mid) > 0.2 * scale) {
        continue;
      }
      const double rel_err = std::abs(numeric - analytic) / scale;
      ++report.checked;
      if (rel_err > options.tolerance) {
        ++report.outliers;
      }
      if (rel_err > report.worst_relative_error) {
        report.worst_relative_error = rel_err;
        report.worst_param = param->name;
        report.worst_index = idx;
      }
    }
  }
  report.passed = report.outliers <= options.max_outliers;
  return report;
}

}  // namespace pipedream
