#include "src/graph/residual.h"

#include "src/tensor/ops.h"

namespace pipedream {

Tensor Residual::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  const int64_t slot = next_slot_++;
  ModelContext& body_ctx = slots_[slot];
  Tensor out = body_->Forward(input, &body_ctx, training);
  PD_CHECK(out.SameShape(input)) << name_ << ": residual body changed the shape from "
                                 << input.ShapeString() << " to " << out.ShapeString();
  AddInPlace(&out, input);
  ctx->Clear();
  ctx->saved.push_back(Tensor::Scalar(static_cast<float>(slot)));
  return out;
}

Tensor Residual::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const auto slot = static_cast<int64_t>(ctx->saved[0][0]);
  const auto it = slots_.find(slot);
  PD_CHECK(it != slots_.end()) << name_ << ": residual slot " << slot << " missing";
  Tensor grad_input = body_->Backward(grad_output, &it->second);
  slots_.erase(it);
  // d/dx [x + f(x)] = 1 + f'(x): add the skip path's gradient.
  AddInPlace(&grad_input, grad_output);
  ctx->Clear();
  return grad_input;
}

}  // namespace pipedream
