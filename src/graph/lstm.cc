#include "src/graph/lstm.h"

#include <cmath>

#include "src/tensor/init.h"
#include "src/tensor/ops.h"

namespace pipedream {
namespace {

// Copies time step t of a [B, T, X] tensor into a [B, X] matrix.
void GatherStep(const Tensor& seq, int64_t t, Tensor* out) {
  const int64_t batch = seq.dim(0);
  const int64_t steps = seq.dim(1);
  const int64_t width = seq.dim(2);
  if (out->rank() != 2 || out->dim(0) != batch || out->dim(1) != width) {
    *out = Tensor::Uninitialized({batch, width});  // fully written below
  }
  const float* src = seq.data();
  float* dst = out->data();
  for (int64_t b = 0; b < batch; ++b) {
    const float* row = src + (b * steps + t) * width;
    float* drow = dst + b * width;
    for (int64_t x = 0; x < width; ++x) {
      drow[x] = row[x];
    }
  }
}

// Copies a [B, X] matrix into time step t of a [B, T, X] tensor.
void ScatterStep(const Tensor& mat, int64_t t, Tensor* seq) {
  const int64_t batch = seq->dim(0);
  const int64_t steps = seq->dim(1);
  const int64_t width = seq->dim(2);
  const float* src = mat.data();
  float* dst = seq->data();
  for (int64_t b = 0; b < batch; ++b) {
    const float* row = src + b * width;
    float* drow = dst + (b * steps + t) * width;
    for (int64_t x = 0; x < width; ++x) {
      drow[x] = row[x];
    }
  }
}

float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Lstm::Lstm(std::string name, int64_t in_features, int64_t hidden, Rng* rng)
    : name_(std::move(name)), in_features_(in_features), hidden_(hidden) {
  wx_.name = name_ + ".wx";
  wx_.value = Tensor({in_features, 4 * hidden});
  InitXavier(&wx_.value, in_features, hidden, rng);
  wx_.ZeroGrad();
  wh_.name = name_ + ".wh";
  wh_.value = Tensor({hidden, 4 * hidden});
  InitXavier(&wh_.value, hidden, hidden, rng);
  wh_.ZeroGrad();
  bias_.name = name_ + ".bias";
  bias_.value = Tensor({4 * hidden});
  // Forget-gate bias starts at 1 (standard trick to avoid early vanishing memory).
  for (int64_t j = hidden; j < 2 * hidden; ++j) {
    bias_.value[j] = 1.0f;
  }
  bias_.ZeroGrad();
}

Tensor Lstm::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  PD_CHECK_EQ(input.rank(), 3u);
  PD_CHECK_EQ(input.dim(2), in_features_);
  const int64_t batch = input.dim(0);
  const int64_t steps = input.dim(1);
  const int64_t h = hidden_;

  // The time loop writes every step of these, so they start uninitialized.
  Tensor output = Tensor::Uninitialized({batch, steps, h});
  // Stashes, packed as [B, T, X] so one tensor covers all steps.
  Tensor gates = Tensor::Uninitialized({batch, steps, 4 * h});    // post-activation i, f, g, o
  Tensor c_prevs = Tensor::Uninitialized({batch, steps, h});      // c_{t-1}
  Tensor tanh_cs = Tensor::Uninitialized({batch, steps, h});      // tanh(c_t)
  Tensor h_prevs = Tensor::Uninitialized({batch, steps, h});      // h_{t-1}
  float* ptc = tanh_cs.data();

  Tensor h_state({batch, h});
  Tensor c_state({batch, h});
  Tensor x_t;
  Tensor pre;

  for (int64_t t = 0; t < steps; ++t) {
    GatherStep(input, t, &x_t);
    ScatterStep(h_state, t, &h_prevs);
    ScatterStep(c_state, t, &c_prevs);

    MatMul(x_t, wx_.value, &pre);
    Gemm(h_state, false, wh_.value, false, 1.0f, 1.0f, &pre);
    AddBiasRows(&pre, bias_.value);

    float* pg = pre.data();
    float* ph = h_state.data();
    float* pc = c_state.data();
    for (int64_t b = 0; b < batch; ++b) {
      float* row = pg + b * 4 * h;
      for (int64_t j = 0; j < h; ++j) {
        const float gi = SigmoidF(row[j]);
        const float gf = SigmoidF(row[h + j]);
        const float gg = std::tanh(row[2 * h + j]);
        const float go = SigmoidF(row[3 * h + j]);
        row[j] = gi;
        row[h + j] = gf;
        row[2 * h + j] = gg;
        row[3 * h + j] = go;
        const float c_new = gf * pc[b * h + j] + gi * gg;
        pc[b * h + j] = c_new;
        const float tc = std::tanh(c_new);
        ptc[(b * steps + t) * h + j] = tc;
        ph[b * h + j] = go * tc;
      }
    }
    ScatterStep(pre, t, &gates);
    ScatterStep(h_state, t, &output);
  }

  ctx->Clear();
  ctx->saved.push_back(input);
  ctx->saved.push_back(std::move(gates));
  ctx->saved.push_back(std::move(c_prevs));
  ctx->saved.push_back(std::move(tanh_cs));
  ctx->saved.push_back(std::move(h_prevs));
  return output;
}

Tensor Lstm::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 5u) << name_ << ": backward without matching forward";
  const Tensor& input = ctx->saved[0];
  const Tensor& gates = ctx->saved[1];
  const Tensor& c_prevs = ctx->saved[2];
  const Tensor& tanh_cs = ctx->saved[3];
  const Tensor& h_prevs = ctx->saved[4];

  const int64_t batch = input.dim(0);
  const int64_t steps = input.dim(1);
  const int64_t h = hidden_;
  PD_CHECK_EQ(grad_output.dim(0), batch);
  PD_CHECK_EQ(grad_output.dim(1), steps);
  PD_CHECK_EQ(grad_output.dim(2), h);

  Tensor grad_input = Tensor::Uninitialized(input.shape());  // every step is scattered below
  Tensor dh_next({batch, h});  // zero: no gradient flows in from beyond the last step
  Tensor dc_next({batch, h});  // zero, same
  Tensor dpre = Tensor::Uninitialized({batch, 4 * h});  // fully written per step
  Tensor x_t;
  Tensor h_prev_t;
  Tensor dout_t;
  Tensor dx_t;

  for (int64_t t = steps - 1; t >= 0; --t) {
    GatherStep(grad_output, t, &dout_t);
    float* pdh = dh_next.data();
    float* pdc = dc_next.data();
    float* pdp = dpre.data();
    const float* pdo = dout_t.data();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t j = 0; j < h; ++j) {
        const int64_t flat = (b * steps + t) * h + j;
        const float gi = gates[(b * steps + t) * 4 * h + j];
        const float gf = gates[(b * steps + t) * 4 * h + h + j];
        const float gg = gates[(b * steps + t) * 4 * h + 2 * h + j];
        const float go = gates[(b * steps + t) * 4 * h + 3 * h + j];
        const float tc = tanh_cs[flat];
        const float cp = c_prevs[flat];

        const float dh = pdo[b * h + j] + pdh[b * h + j];
        const float d_o = dh * tc;
        const float dtc = dh * go;
        const float dc = dtc * (1.0f - tc * tc) + pdc[b * h + j];
        const float d_i = dc * gg;
        const float d_g = dc * gi;
        const float d_f = dc * cp;
        pdc[b * h + j] = dc * gf;  // becomes dc_next for step t-1

        float* prow = pdp + b * 4 * h;
        prow[j] = d_i * gi * (1.0f - gi);
        prow[h + j] = d_f * gf * (1.0f - gf);
        prow[2 * h + j] = d_g * (1.0f - gg * gg);
        prow[3 * h + j] = d_o * go * (1.0f - go);
      }
    }

    GatherStep(input, t, &x_t);
    GatherStep(h_prevs, t, &h_prev_t);

    // dWx += x_t^T dpre; dWh += h_prev^T dpre; db += colsum(dpre)
    Gemm(x_t, true, dpre, false, 1.0f, 1.0f, &wx_.grad);
    Gemm(h_prev_t, true, dpre, false, 1.0f, 1.0f, &wh_.grad);
    AccumulateColumnSums(dpre, &bias_.grad);

    // dx_t = dpre Wx^T; dh_next = dpre Wh^T
    Gemm(dpre, false, wx_.value, true, 1.0f, 0.0f, &dx_t);
    ScatterStep(dx_t, t, &grad_input);
    Gemm(dpre, false, wh_.value, true, 1.0f, 0.0f, &dh_next);
  }

  ctx->Clear();
  return grad_input;
}

std::unique_ptr<Layer> Lstm::Clone() const { return std::unique_ptr<Layer>(new Lstm(*this)); }

}  // namespace pipedream
