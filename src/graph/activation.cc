#include "src/graph/activation.h"

#include <cmath>

namespace pipedream {

const char* ActivationKindName(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kRelu:
      return "relu";
    case ActivationKind::kTanh:
      return "tanh";
    case ActivationKind::kSigmoid:
      return "sigmoid";
  }
  return "?";
}

Tensor Activation::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  Tensor out = input;
  float* p = out.data();
  const int64_t n = out.numel();
  switch (kind_) {
    case ActivationKind::kRelu:
      for (int64_t i = 0; i < n; ++i) {
        p[i] = p[i] > 0.0f ? p[i] : 0.0f;
      }
      break;
    case ActivationKind::kTanh:
      for (int64_t i = 0; i < n; ++i) {
        p[i] = std::tanh(p[i]);
      }
      break;
    case ActivationKind::kSigmoid:
      for (int64_t i = 0; i < n; ++i) {
        p[i] = 1.0f / (1.0f + std::exp(-p[i]));
      }
      break;
  }
  ctx->Clear();
  ctx->saved.push_back(out);  // All three derivatives are expressible from the output.
  return out;
}

Tensor Activation::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const Tensor& out = ctx->saved[0];
  PD_CHECK(grad_output.SameShape(out));
  Tensor grad_input = grad_output;
  float* pg = grad_input.data();
  const float* po = out.data();
  const int64_t n = out.numel();
  switch (kind_) {
    case ActivationKind::kRelu:
      for (int64_t i = 0; i < n; ++i) {
        pg[i] = po[i] > 0.0f ? pg[i] : 0.0f;
      }
      break;
    case ActivationKind::kTanh:
      for (int64_t i = 0; i < n; ++i) {
        pg[i] *= 1.0f - po[i] * po[i];
      }
      break;
    case ActivationKind::kSigmoid:
      for (int64_t i = 0; i < n; ++i) {
        pg[i] *= po[i] * (1.0f - po[i]);
      }
      break;
  }
  ctx->Clear();
  return grad_input;
}

}  // namespace pipedream
