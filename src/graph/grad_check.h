// Numerical gradient checking via central differences. Used by the test suite to validate
// every layer's backward pass — a prerequisite for trusting the weight-stashing experiments.
#ifndef SRC_GRAPH_GRAD_CHECK_H_
#define SRC_GRAPH_GRAD_CHECK_H_

#include "src/common/rng.h"
#include "src/graph/loss.h"
#include "src/graph/sequential.h"

namespace pipedream {

struct GradCheckOptions {
  double epsilon = 1e-2;          // central-difference step
  double tolerance = 3e-2;        // max allowed relative error
  // Elements where both the numeric and analytic derivative are below this magnitude are
  // skipped: in float32 the central difference is cancellation noise there, not signal.
  double min_magnitude = 1e-3;
  int max_checks_per_param = 24;  // random sample size per parameter tensor
  // Elements allowed to exceed the tolerance before the check fails. Non-zero values are for
  // ReLU/max-pool architectures, where a few sampled points inevitably sit on kinks that the
  // non-smoothness filter cannot fully reject in float32.
  int max_outliers = 0;
  uint64_t seed = 17;
};

struct GradCheckReport {
  bool passed = true;
  double worst_relative_error = 0.0;
  std::string worst_param;
  int64_t worst_index = -1;
  int checked = 0;   // elements actually compared (after noise/kink filtering)
  int outliers = 0;  // elements above tolerance
};

// Compares backprop parameter gradients against central differences of the loss for a fixed
// (input, targets) pair. Perturbs a random sample of elements in every parameter tensor.
GradCheckReport CheckGradients(const Sequential& model, const Loss& loss, const Tensor& input,
                               const Tensor& targets, const GradCheckOptions& options = {});

}  // namespace pipedream

#endif  // SRC_GRAPH_GRAD_CHECK_H_
