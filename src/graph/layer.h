// Layer abstraction with explicit per-minibatch state.
//
// PipeDream's 1F1B schedule interleaves forward and backward passes of *different*
// minibatches on the same worker, so a layer cannot keep "the" saved activations as member
// state. Instead, Forward writes everything the matching Backward needs into a caller-owned
// LayerContext, and Backward reads it back. The runtime keeps one context per in-flight
// minibatch — this is exactly the activation stash of §3.3 / §4 ("Intermediate State").
//
// Parameters are member state (Parameter::value) and are versioned externally by the weight
// store (weight stashing): the runtime copies values out after forward and restores them
// before the matching backward when versions have advanced.
#ifndef SRC_GRAPH_LAYER_H_
#define SRC_GRAPH_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace pipedream {

// A named trainable tensor and its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  void ZeroGrad() {
    if (!grad.SameShape(value)) {
      grad = Tensor(value.shape());
    } else {
      grad.SetZero();
    }
  }
};

// Per-minibatch stash: whatever a layer's Forward saved for its Backward.
struct LayerContext {
  std::vector<Tensor> saved;

  void Clear() { saved.clear(); }

  // Total bytes held by the stash (used for memory-footprint accounting).
  int64_t SizeBytes() const {
    int64_t total = 0;
    for (const Tensor& t : saved) {
      total += t.SizeBytes();
    }
    return total;
  }
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual const std::string& name() const = 0;

  // Computes the layer output. `training` distinguishes train/eval behaviour (dropout).
  // Saves whatever Backward needs into *ctx (overwriting previous contents).
  virtual Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) = 0;

  // Computes the gradient w.r.t. the layer input given the gradient w.r.t. the output,
  // accumulating parameter gradients into Parameter::grad. `ctx` is the context filled by
  // the matching Forward call; layers may consume (move out of) its contents.
  virtual Tensor Backward(const Tensor& grad_output, LayerContext* ctx) = 0;

  // Trainable parameters; empty for stateless layers.
  virtual std::vector<Parameter*> Params() { return {}; }

  // Deep copy (used to instantiate replicated stages with identical initial weights).
  virtual std::unique_ptr<Layer> Clone() const = 0;

  // Total parameter bytes (the w_l of the paper's profile).
  int64_t ParamBytes() {
    int64_t total = 0;
    for (Parameter* p : Params()) {
      total += p->value.SizeBytes();
    }
    return total;
  }

  void ZeroGrads() {
    for (Parameter* p : Params()) {
      p->ZeroGrad();
    }
  }
};

}  // namespace pipedream

#endif  // SRC_GRAPH_LAYER_H_
