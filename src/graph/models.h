// Factory functions for the scaled-down trainable analogues of the paper's models.
//
// The runtime experiments (statistical efficiency, §5.2) need models that train to a target
// accuracy in seconds on one CPU core. These preserve the *structural* properties PipeDream's
// arguments rest on: the VGG analogue has convolutional layers (small weights, large
// activations) followed by dense layers (large weights, small activations); the GNMT/LM
// analogues are stacked LSTMs with dense parameter matrices.
#ifndef SRC_GRAPH_MODELS_H_
#define SRC_GRAPH_MODELS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/sequential.h"

namespace pipedream {

// Multi-layer perceptron with ReLU between Dense layers:
// in -> hidden[0] -> ... -> hidden[k-1] -> classes (no final activation; pair with
// SoftmaxCrossEntropy).
std::unique_ptr<Sequential> BuildMlpClassifier(int64_t in_features,
                                               const std::vector<int64_t>& hidden,
                                               int64_t classes, Rng* rng);

// VGG-style miniature CNN for [B, channels, size, size] images:
// [conv3x3 -> relu -> maxpool2] x 2, flatten, dense -> relu -> dense(classes).
// Mirrors VGG-16's "conv layers cheap to sync, FC layers expensive" profile shape.
std::unique_ptr<Sequential> BuildMiniVgg(int64_t in_channels, int64_t image_size,
                                         int64_t classes, Rng* rng);

// Stacked-LSTM sequence classifier (GNMT analogue for the synthetic sequence-copy task):
// embedding -> LSTM x num_layers -> time-flatten -> dense(vocab). Output rows are per-token
// logits ([B*T, vocab]); pair with SoftmaxCrossEntropy over targets [B*T].
std::unique_ptr<Sequential> BuildLstmSeqModel(int64_t vocab, int64_t embed_dim, int64_t hidden,
                                              int64_t num_layers, Rng* rng);

// GNMT-with-attention analogue: embedding -> LSTM -> self-attention -> LSTM -> head.
std::unique_ptr<Sequential> BuildAttentionSeqModel(int64_t vocab, int64_t embed_dim,
                                                   int64_t hidden, Rng* rng);

// ResNet analogue for [B, channels, size, size] images: stem conv, `blocks` residual blocks
// (conv-relu-conv bodies with identity skips), global average pool, classifier head.
std::unique_ptr<Sequential> BuildMiniResnet(int64_t in_channels, int64_t image_size,
                                            int64_t classes, int blocks, Rng* rng);

}  // namespace pipedream

#endif  // SRC_GRAPH_MODELS_H_
