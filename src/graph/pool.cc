#include "src/graph/pool.h"

namespace pipedream {

Tensor MaxPool2D::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  PD_CHECK_EQ(input.rank(), 4u);
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = (in_h - window_) / stride_ + 1;
  const int64_t out_w = (in_w - window_) / stride_ + 1;
  PD_CHECK_GT(out_h, 0);
  PD_CHECK_GT(out_w, 0);

  // Both are fully written below (one store per output element), so skip the zero fill.
  Tensor out = Tensor::Uninitialized({batch, channels, out_h, out_w});
  // Stores the flat input index of each window's argmax for the backward scatter.
  Tensor argmax = Tensor::Uninitialized({batch, channels, out_h, out_w});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          float best = -3.4e38f;
          int64_t best_idx = 0;
          for (int64_t kh = 0; kh < window_; ++kh) {
            for (int64_t kw = 0; kw < window_; ++kw) {
              const int64_t ih = oh * stride_ + kh;
              const int64_t iw = ow * stride_ + kw;
              const int64_t idx = ((n * channels + c) * in_h + ih) * in_w + iw;
              const float v = input[idx];
              if (v > best) {
                best = v;
                best_idx = idx;
              }
            }
          }
          out.At4(n, c, oh, ow) = best;
          argmax.At4(n, c, oh, ow) = static_cast<float>(best_idx);
        }
      }
    }
  }
  ctx->Clear();
  ctx->saved.push_back(std::move(argmax));
  ctx->saved.push_back(Tensor({4}, {static_cast<float>(batch), static_cast<float>(channels),
                                    static_cast<float>(in_h), static_cast<float>(in_w)}));
  return out;
}

Tensor MaxPool2D::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 2u) << name_ << ": backward without matching forward";
  const Tensor& argmax = ctx->saved[0];
  const Tensor& dims = ctx->saved[1];
  PD_CHECK(grad_output.SameShape(argmax));
  Tensor grad_input({static_cast<int64_t>(dims[0]), static_cast<int64_t>(dims[1]),
                     static_cast<int64_t>(dims[2]), static_cast<int64_t>(dims[3])});
  const int64_t n = grad_output.numel();
  for (int64_t i = 0; i < n; ++i) {
    grad_input[static_cast<int64_t>(argmax[i])] += grad_output[i];
  }
  ctx->Clear();
  return grad_input;
}

Tensor AvgPool2D::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  PD_CHECK_EQ(input.rank(), 4u);
  const int64_t batch = input.dim(0);
  const int64_t channels = input.dim(1);
  const int64_t in_h = input.dim(2);
  const int64_t in_w = input.dim(3);
  const int64_t out_h = (in_h - window_) / stride_ + 1;
  const int64_t out_w = (in_w - window_) / stride_ + 1;
  PD_CHECK_GT(out_h, 0);
  PD_CHECK_GT(out_w, 0);

  Tensor out = Tensor::Uninitialized({batch, channels, out_h, out_w});  // fully written below
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          float acc = 0.0f;
          for (int64_t kh = 0; kh < window_; ++kh) {
            for (int64_t kw = 0; kw < window_; ++kw) {
              acc += input.At4(n, c, oh * stride_ + kh, ow * stride_ + kw);
            }
          }
          out.At4(n, c, oh, ow) = acc * inv;
        }
      }
    }
  }
  ctx->Clear();
  ctx->saved.push_back(Tensor({4}, {static_cast<float>(batch), static_cast<float>(channels),
                                    static_cast<float>(in_h), static_cast<float>(in_w)}));
  return out;
}

Tensor AvgPool2D::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const Tensor& dims = ctx->saved[0];
  Tensor grad_input({static_cast<int64_t>(dims[0]), static_cast<int64_t>(dims[1]),
                     static_cast<int64_t>(dims[2]), static_cast<int64_t>(dims[3])});
  const int64_t batch = grad_output.dim(0);
  const int64_t channels = grad_output.dim(1);
  const int64_t out_h = grad_output.dim(2);
  const int64_t out_w = grad_output.dim(3);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const float g = grad_output.At4(n, c, oh, ow) * inv;
          for (int64_t kh = 0; kh < window_; ++kh) {
            for (int64_t kw = 0; kw < window_; ++kw) {
              grad_input.At4(n, c, oh * stride_ + kh, ow * stride_ + kw) += g;
            }
          }
        }
      }
    }
  }
  ctx->Clear();
  return grad_input;
}

}  // namespace pipedream
