// Residual wrapper: output = input + body(input), where the body is any Sequential whose
// output shape matches its input shape. Gives the runtime ResNet-style models while keeping
// the pipeline's layer-list structure (the wrapper is one partitionable layer).
#ifndef SRC_GRAPH_RESIDUAL_H_
#define SRC_GRAPH_RESIDUAL_H_

#include <map>
#include <memory>
#include <string>

#include "src/graph/sequential.h"

namespace pipedream {

class Residual : public Layer {
 public:
  Residual(std::string name, std::unique_ptr<Sequential> body)
      : name_(std::move(name)), body_(std::move(body)) {
    PD_CHECK(body_ != nullptr && body_->size() > 0) << name_ << ": empty residual body";
  }

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::vector<Parameter*> Params() override { return body_->Params(); }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Residual>(name_, body_->Clone());
  }

 private:
  // The body's per-minibatch contexts cannot live in the body (1F1B interleaving), so they
  // are serialized into this layer's LayerContext via an owned ModelContext store. Each
  // forward allocates a slot; Backward consumes it.
  std::string name_;
  std::unique_ptr<Sequential> body_;
  // Slot storage keyed by an id carried through LayerContext::saved[0].
  std::map<int64_t, ModelContext> slots_;
  int64_t next_slot_ = 0;
};

}  // namespace pipedream

#endif  // SRC_GRAPH_RESIDUAL_H_
