// Stateless elementwise activation layers: ReLU, Tanh, Sigmoid.
#ifndef SRC_GRAPH_ACTIVATION_H_
#define SRC_GRAPH_ACTIVATION_H_

#include <memory>
#include <string>

#include "src/graph/layer.h"

namespace pipedream {

enum class ActivationKind { kRelu, kTanh, kSigmoid };

const char* ActivationKindName(ActivationKind kind);

class Activation : public Layer {
 public:
  Activation(std::string name, ActivationKind kind) : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Activation>(name_, kind_);
  }

  ActivationKind kind() const { return kind_; }

 private:
  std::string name_;
  ActivationKind kind_;
};

}  // namespace pipedream

#endif  // SRC_GRAPH_ACTIVATION_H_
