// Single-layer LSTM over a full sequence: [B, T, in] -> [B, T, hidden].
//
// Gates are computed as pre = x_t Wx + h_{t-1} Wh + b with the 4H axis laid out as
// [input | forget | cell | output]. Backward runs full backpropagation-through-time. The
// initial hidden and cell states are zero for every minibatch (stateless truncation), which
// matches how the runtime feeds independent synthetic sequences.
#ifndef SRC_GRAPH_LSTM_H_
#define SRC_GRAPH_LSTM_H_

#include <memory>
#include <string>

#include "src/graph/layer.h"

namespace pipedream {

class Lstm : public Layer {
 public:
  Lstm(std::string name, int64_t in_features, int64_t hidden, Rng* rng);

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::vector<Parameter*> Params() override { return {&wx_, &wh_, &bias_}; }
  std::unique_ptr<Layer> Clone() const override;

  int64_t hidden() const { return hidden_; }

 private:
  Lstm(const Lstm&) = default;

  std::string name_;
  int64_t in_features_;
  int64_t hidden_;
  Parameter wx_;    // [in, 4H]
  Parameter wh_;    // [H, 4H]
  Parameter bias_;  // [4H]
};

}  // namespace pipedream

#endif  // SRC_GRAPH_LSTM_H_
