#include "src/graph/sequential.h"

namespace pipedream {

Tensor Sequential::Forward(const Tensor& input, ModelContext* ctx, bool training) const {
  if (ctx->per_layer.size() != layers_.size()) {
    ctx->per_layer.assign(layers_.size(), LayerContext{});
  }
  Tensor current = input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    current = layers_[i]->Forward(current, &ctx->per_layer[i], training);
  }
  return current;
}

Tensor Sequential::Backward(const Tensor& grad_output, ModelContext* ctx) const {
  PD_CHECK_EQ(ctx->per_layer.size(), layers_.size())
      << "backward called with a context not produced by this model's forward";
  Tensor current = grad_output;
  for (size_t i = layers_.size(); i > 0; --i) {
    current = layers_[i - 1]->Backward(current, &ctx->per_layer[i - 1]);
  }
  return current;
}

std::vector<Parameter*> Sequential::Params() const {
  std::vector<Parameter*> params;
  for (const auto& layer : layers_) {
    for (Parameter* p : layer->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

void Sequential::ZeroGrads() const {
  for (const auto& layer : layers_) {
    layer->ZeroGrads();
  }
}

int64_t Sequential::ParamBytes() const {
  int64_t total = 0;
  for (const auto& layer : layers_) {
    total += layer->ParamBytes();
  }
  return total;
}

std::unique_ptr<Sequential> Sequential::Clone() const { return CloneSlice(0, layers_.size()); }

std::unique_ptr<Sequential> Sequential::CloneSlice(size_t begin, size_t end) const {
  PD_CHECK_LE(begin, end);
  PD_CHECK_LE(end, layers_.size());
  auto out = std::make_unique<Sequential>();
  for (size_t i = begin; i < end; ++i) {
    out->Add(layers_[i]->Clone());
  }
  return out;
}

}  // namespace pipedream
