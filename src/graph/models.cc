#include "src/graph/models.h"

#include "src/common/strings.h"
#include "src/graph/activation.h"
#include "src/graph/attention.h"
#include "src/graph/conv.h"
#include "src/graph/dense.h"
#include "src/graph/embedding.h"
#include "src/graph/lstm.h"
#include "src/graph/pool.h"
#include "src/graph/residual.h"
#include "src/graph/shape_ops.h"

namespace pipedream {

std::unique_ptr<Sequential> BuildMlpClassifier(int64_t in_features,
                                               const std::vector<int64_t>& hidden,
                                               int64_t classes, Rng* rng) {
  auto model = std::make_unique<Sequential>();
  int64_t prev = in_features;
  for (size_t i = 0; i < hidden.size(); ++i) {
    model->Add(std::make_unique<Dense>(StrFormat("fc%zu", i), prev, hidden[i], rng));
    model->Add(std::make_unique<Activation>(StrFormat("relu%zu", i), ActivationKind::kRelu));
    prev = hidden[i];
  }
  model->Add(std::make_unique<Dense>("head", prev, classes, rng));
  return model;
}

std::unique_ptr<Sequential> BuildMiniVgg(int64_t in_channels, int64_t image_size,
                                         int64_t classes, Rng* rng) {
  auto model = std::make_unique<Sequential>();
  model->Add(std::make_unique<Conv2D>("conv1", in_channels, 8, /*kernel=*/3, /*stride=*/1,
                                      /*padding=*/1, rng));
  model->Add(std::make_unique<Activation>("relu1", ActivationKind::kRelu));
  model->Add(std::make_unique<MaxPool2D>("pool1", /*window=*/2, /*stride=*/2));
  model->Add(std::make_unique<Conv2D>("conv2", 8, 16, /*kernel=*/3, /*stride=*/1,
                                      /*padding=*/1, rng));
  model->Add(std::make_unique<Activation>("relu2", ActivationKind::kRelu));
  model->Add(std::make_unique<MaxPool2D>("pool2", /*window=*/2, /*stride=*/2));
  model->Add(std::make_unique<Flatten>("flatten"));
  const int64_t spatial = image_size / 4;
  model->Add(std::make_unique<Dense>("fc1", 16 * spatial * spatial, 64, rng));
  model->Add(std::make_unique<Activation>("relu3", ActivationKind::kRelu));
  model->Add(std::make_unique<Dense>("head", 64, classes, rng));
  return model;
}

std::unique_ptr<Sequential> BuildAttentionSeqModel(int64_t vocab, int64_t embed_dim,
                                                   int64_t hidden, Rng* rng) {
  auto model = std::make_unique<Sequential>();
  model->Add(std::make_unique<Embedding>("embed", vocab, embed_dim, rng));
  model->Add(std::make_unique<Lstm>("encoder", embed_dim, hidden, rng));
  model->Add(std::make_unique<Attention>("attention", hidden, rng));
  model->Add(std::make_unique<Lstm>("decoder", hidden, hidden, rng));
  model->Add(std::make_unique<TimeFlatten>("tokens"));
  model->Add(std::make_unique<Dense>("head", hidden, vocab, rng));
  return model;
}

std::unique_ptr<Sequential> BuildMiniResnet(int64_t in_channels, int64_t image_size,
                                            int64_t classes, int blocks, Rng* rng) {
  PD_CHECK_GE(blocks, 1);
  auto model = std::make_unique<Sequential>();
  const int64_t width = 8;
  model->Add(std::make_unique<Conv2D>("stem", in_channels, width, 3, 1, 1, rng));
  model->Add(std::make_unique<Activation>("stem_relu", ActivationKind::kRelu));
  for (int b = 0; b < blocks; ++b) {
    auto body = std::make_unique<Sequential>();
    body->Add(std::make_unique<Conv2D>(StrFormat("block%d_conv1", b), width, width, 3, 1, 1,
                                       rng));
    body->Add(std::make_unique<Activation>(StrFormat("block%d_relu", b),
                                           ActivationKind::kRelu));
    body->Add(std::make_unique<Conv2D>(StrFormat("block%d_conv2", b), width, width, 3, 1, 1,
                                       rng));
    model->Add(std::make_unique<Residual>(StrFormat("block%d", b), std::move(body)));
    model->Add(std::make_unique<Activation>(StrFormat("post%d_relu", b),
                                            ActivationKind::kRelu));
  }
  model->Add(std::make_unique<AvgPool2D>("gap", image_size, image_size));
  model->Add(std::make_unique<Flatten>("flatten"));
  model->Add(std::make_unique<Dense>("head", width, classes, rng));
  return model;
}

std::unique_ptr<Sequential> BuildLstmSeqModel(int64_t vocab, int64_t embed_dim, int64_t hidden,
                                              int64_t num_layers, Rng* rng) {
  auto model = std::make_unique<Sequential>();
  model->Add(std::make_unique<Embedding>("embed", vocab, embed_dim, rng));
  int64_t prev = embed_dim;
  for (int64_t i = 0; i < num_layers; ++i) {
    model->Add(std::make_unique<Lstm>(StrFormat("lstm%lld", static_cast<long long>(i)), prev,
                                      hidden, rng));
    prev = hidden;
  }
  model->Add(std::make_unique<TimeFlatten>("tokens"));
  model->Add(std::make_unique<Dense>("head", hidden, vocab, rng));
  return model;
}

}  // namespace pipedream
