#include "src/graph/embedding.h"

#include <utility>

#include "src/tensor/init.h"

namespace pipedream {

Embedding::Embedding(std::string name, int64_t vocab_size, int64_t embed_dim, Rng* rng)
    : name_(std::move(name)), vocab_size_(vocab_size), embed_dim_(embed_dim) {
  table_.name = name_ + ".table";
  table_.value = Tensor({vocab_size, embed_dim});
  InitGaussian(&table_.value, 0.1f, rng);
  table_.ZeroGrad();
}

Tensor Embedding::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  PD_CHECK_EQ(input.rank(), 2u);
  const int64_t batch = input.dim(0);
  const int64_t steps = input.dim(1);
  Tensor out = Tensor::Uninitialized({batch, steps, embed_dim_});  // every row is copied below
  const float* ids = input.data();
  const float* table = std::as_const(table_.value).data();  // const read: must not detach the COW-shared table
  float* po = out.data();
  const int64_t tokens = batch * steps;
  for (int64_t t = 0; t < tokens; ++t) {
    const int64_t id = static_cast<int64_t>(ids[t]);
    PD_CHECK(id >= 0 && id < vocab_size_) << name_ << ": token id " << id << " out of range";
    const float* row = table + id * embed_dim_;
    float* dst = po + t * embed_dim_;
    for (int64_t e = 0; e < embed_dim_; ++e) {
      dst[e] = row[e];
    }
  }
  ctx->Clear();
  ctx->saved.push_back(input);
  return out;
}

Tensor Embedding::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const Tensor& input = ctx->saved[0];
  const int64_t tokens = input.numel();
  PD_CHECK_EQ(grad_output.numel(), tokens * embed_dim_);
  const float* ids = input.data();
  const float* pg = grad_output.data();
  float* pt = table_.grad.data();
  for (int64_t t = 0; t < tokens; ++t) {
    const int64_t id = static_cast<int64_t>(ids[t]);
    float* dst = pt + id * embed_dim_;
    const float* src = pg + t * embed_dim_;
    for (int64_t e = 0; e < embed_dim_; ++e) {
      dst[e] += src[e];
    }
  }
  Tensor grad_input(input.shape());
  ctx->Clear();
  return grad_input;
}

std::unique_ptr<Layer> Embedding::Clone() const {
  return std::unique_ptr<Layer>(new Embedding(*this));
}

}  // namespace pipedream
