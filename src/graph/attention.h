// Single-head scaled dot-product self-attention over a sequence: [B, T, H] -> [B, T, H].
//
// O = softmax(Q K^T / sqrt(H)) V with Q = X Wq, K = X Wk, V = X Wv. This is the attention
// block of the GNMT analogue (the paper's GNMT uses additive attention between encoder and
// decoder; the self-attention form exercises the same compute/memory pattern while staying a
// single partitionable layer).
#ifndef SRC_GRAPH_ATTENTION_H_
#define SRC_GRAPH_ATTENTION_H_

#include <memory>
#include <string>

#include "src/graph/layer.h"

namespace pipedream {

class Attention : public Layer {
 public:
  Attention(std::string name, int64_t hidden, Rng* rng);

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::vector<Parameter*> Params() override { return {&wq_, &wk_, &wv_}; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  Attention(const Attention&) = default;

  std::string name_;
  int64_t hidden_;
  Parameter wq_;
  Parameter wk_;
  Parameter wv_;
};

}  // namespace pipedream

#endif  // SRC_GRAPH_ATTENTION_H_
