// Token embedding lookup: [B, T] integer ids (stored as floats) -> [B, T, E].
#ifndef SRC_GRAPH_EMBEDDING_H_
#define SRC_GRAPH_EMBEDDING_H_

#include <memory>
#include <string>

#include "src/graph/layer.h"

namespace pipedream {

class Embedding : public Layer {
 public:
  Embedding(std::string name, int64_t vocab_size, int64_t embed_dim, Rng* rng);

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  // Returns a zero tensor shaped like the (discrete) input; gradients flow only into the
  // embedding table.
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::vector<Parameter*> Params() override { return {&table_}; }
  std::unique_ptr<Layer> Clone() const override;

  int64_t vocab_size() const { return vocab_size_; }
  int64_t embed_dim() const { return embed_dim_; }

 private:
  Embedding(const Embedding&) = default;

  std::string name_;
  int64_t vocab_size_;
  int64_t embed_dim_;
  Parameter table_;  // [V, E]
};

}  // namespace pipedream

#endif  // SRC_GRAPH_EMBEDDING_H_
