#include "src/graph/shape_ops.h"

namespace pipedream {

Tensor Flatten::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  PD_CHECK_GE(input.rank(), 2u);
  const int64_t batch = input.dim(0);
  const int64_t rest = input.numel() / batch;
  ctx->Clear();
  // Save only the original shape, not the activation — flatten needs no data for backward.
  Tensor shape_record({static_cast<int64_t>(input.rank())});
  for (size_t i = 0; i < input.rank(); ++i) {
    shape_record[static_cast<int64_t>(i)] = static_cast<float>(input.dim(i));
  }
  ctx->saved.push_back(std::move(shape_record));
  return input.Reshaped({batch, rest});
}

Tensor Flatten::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const Tensor& shape_record = ctx->saved[0];
  std::vector<int64_t> shape(static_cast<size_t>(shape_record.numel()));
  for (size_t i = 0; i < shape.size(); ++i) {
    shape[i] = static_cast<int64_t>(shape_record[static_cast<int64_t>(i)]);
  }
  ctx->Clear();
  return grad_output.Reshaped(std::move(shape));
}

Dropout::Dropout(std::string name, float rate, uint64_t seed)
    : name_(std::move(name)), rate_(rate), seed_(seed), rng_(seed) {
  PD_CHECK(rate >= 0.0f && rate < 1.0f) << "dropout rate must be in [0, 1): " << rate;
}

Tensor Dropout::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  ctx->Clear();
  if (!training || rate_ == 0.0f) {
    ctx->saved.push_back(Tensor::Scalar(0.0f));  // Marker: identity pass.
    return input;
  }
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  Tensor mask = Tensor::Uninitialized(input.shape());  // fully written below
  Tensor out = input;
  float* pm = mask.data();
  float* po = out.data();
  const int64_t n = input.numel();
  for (int64_t i = 0; i < n; ++i) {
    const bool kept = rng_.NextFloat() < keep;
    pm[i] = kept ? scale : 0.0f;
    po[i] *= pm[i];
  }
  ctx->saved.push_back(Tensor::Scalar(1.0f));
  ctx->saved.push_back(std::move(mask));
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_GE(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const bool masked = ctx->saved[0][0] != 0.0f;
  if (!masked) {
    ctx->Clear();
    return grad_output;
  }
  const Tensor& mask = ctx->saved[1];
  PD_CHECK(grad_output.SameShape(mask));
  Tensor grad_input = grad_output;
  float* pg = grad_input.data();
  const float* pm = mask.data();
  const int64_t n = grad_input.numel();
  for (int64_t i = 0; i < n; ++i) {
    pg[i] *= pm[i];
  }
  ctx->Clear();
  return grad_input;
}

Tensor TimeFlatten::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  PD_CHECK_EQ(input.rank(), 3u);
  const int64_t batch = input.dim(0);
  const int64_t steps = input.dim(1);
  const int64_t width = input.dim(2);
  ctx->Clear();
  ctx->saved.push_back(Tensor({3}, {static_cast<float>(batch), static_cast<float>(steps),
                                    static_cast<float>(width)}));
  return input.Reshaped({batch * steps, width});
}

Tensor TimeFlatten::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 1u) << name_ << ": backward without matching forward";
  const Tensor& dims = ctx->saved[0];
  const auto batch = static_cast<int64_t>(dims[0]);
  const auto steps = static_cast<int64_t>(dims[1]);
  const auto width = static_cast<int64_t>(dims[2]);
  ctx->Clear();
  return grad_output.Reshaped({batch, steps, width});
}

}  // namespace pipedream
