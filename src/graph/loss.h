// Loss functions. Compute() returns the mean loss over the minibatch and fills the gradient
// w.r.t. the predictions, which seeds the model's backward pass.
#ifndef SRC_GRAPH_LOSS_H_
#define SRC_GRAPH_LOSS_H_

#include "src/tensor/tensor.h"

namespace pipedream {

class Loss {
 public:
  virtual ~Loss() = default;

  // predictions: model output. targets: task-specific encoding (see subclasses).
  // *grad receives d(mean loss)/d(predictions), shaped like predictions.
  virtual double Compute(const Tensor& predictions, const Tensor& targets,
                         Tensor* grad) const = 0;
};

// Softmax + cross-entropy over rows. predictions: [N, C] logits; targets: [N] class ids
// stored as floats. The softmax is fused so the gradient is (softmax - onehot) / N.
class SoftmaxCrossEntropy : public Loss {
 public:
  double Compute(const Tensor& predictions, const Tensor& targets, Tensor* grad) const override;
};

// Mean squared error; targets shaped like predictions. Loss = mean((p - t)^2).
class MeanSquaredError : public Loss {
 public:
  double Compute(const Tensor& predictions, const Tensor& targets, Tensor* grad) const override;
};

// Fraction of rows whose argmax matches the integer label. predictions: [N, C];
// targets: [N] class ids as floats.
double Accuracy(const Tensor& predictions, const Tensor& targets);

// Perplexity = exp(mean cross-entropy). Convenience for language-model evaluation.
double PerplexityFromLoss(double mean_cross_entropy);

}  // namespace pipedream

#endif  // SRC_GRAPH_LOSS_H_
