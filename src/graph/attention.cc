#include "src/graph/attention.h"

#include <cmath>

#include "src/tensor/init.h"
#include "src/tensor/ops.h"

namespace pipedream {
namespace {

// Views row-block b (a [T, H] matrix) of a [B, T, H] tensor as its own tensor (copy).
Tensor BatchSlice(const Tensor& seq, int64_t b) {
  const int64_t steps = seq.dim(1);
  const int64_t width = seq.dim(2);
  Tensor out = Tensor::Uninitialized({steps, width});
  std::copy(seq.data() + b * steps * width, seq.data() + (b + 1) * steps * width, out.data());
  return out;
}

void StoreBatchSlice(const Tensor& mat, int64_t b, Tensor* seq) {
  const int64_t steps = seq->dim(1);
  const int64_t width = seq->dim(2);
  std::copy(mat.data(), mat.data() + steps * width, seq->data() + b * steps * width);
}

}  // namespace

Attention::Attention(std::string name, int64_t hidden, Rng* rng)
    : name_(std::move(name)), hidden_(hidden) {
  for (auto [param, suffix] : {std::pair<Parameter*, const char*>{&wq_, ".wq"},
                               {&wk_, ".wk"},
                               {&wv_, ".wv"}}) {
    param->name = name_ + suffix;
    param->value = Tensor({hidden, hidden});
    InitXavier(&param->value, hidden, hidden, rng);
    param->ZeroGrad();
  }
}

Tensor Attention::Forward(const Tensor& input, LayerContext* ctx, bool training) {
  PD_CHECK_EQ(input.rank(), 3u);
  PD_CHECK_EQ(input.dim(2), hidden_);
  const int64_t batch = input.dim(0);
  const int64_t steps = input.dim(1);

  // Every batch row is stored below, so these start uninitialized.
  Tensor output = Tensor::Uninitialized({batch, steps, hidden_});
  Tensor qs = Tensor::Uninitialized({batch, steps, hidden_});
  Tensor ks = Tensor::Uninitialized({batch, steps, hidden_});
  Tensor vs = Tensor::Uninitialized({batch, steps, hidden_});
  Tensor weights = Tensor::Uninitialized({batch, steps, steps});  // softmax(Q K^T / sqrt(H)) rows

  const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_));
  Tensor q;
  Tensor k;
  Tensor v;
  Tensor scores;
  Tensor probs;
  Tensor out;
  for (int64_t b = 0; b < batch; ++b) {
    const Tensor x = BatchSlice(input, b);
    MatMul(x, wq_.value, &q);
    MatMul(x, wk_.value, &k);
    MatMul(x, wv_.value, &v);
    Gemm(q, false, k, true, scale, 0.0f, &scores);
    SoftmaxRows(scores, &probs);
    MatMul(probs, v, &out);
    StoreBatchSlice(q, b, &qs);
    StoreBatchSlice(k, b, &ks);
    StoreBatchSlice(v, b, &vs);
    StoreBatchSlice(probs, b, &weights);
    StoreBatchSlice(out, b, &output);
  }

  ctx->Clear();
  ctx->saved.push_back(input);
  ctx->saved.push_back(std::move(qs));
  ctx->saved.push_back(std::move(ks));
  ctx->saved.push_back(std::move(vs));
  ctx->saved.push_back(std::move(weights));
  return output;
}

Tensor Attention::Backward(const Tensor& grad_output, LayerContext* ctx) {
  PD_CHECK_EQ(ctx->saved.size(), 5u) << name_ << ": backward without matching forward";
  const Tensor& input = ctx->saved[0];
  const Tensor& qs = ctx->saved[1];
  const Tensor& ks = ctx->saved[2];
  const Tensor& vs = ctx->saved[3];
  const Tensor& weights = ctx->saved[4];
  const int64_t batch = input.dim(0);
  const int64_t steps = input.dim(1);
  PD_CHECK(grad_output.SameShape(input));

  Tensor grad_input = Tensor::Uninitialized(input.shape());  // every batch row is stored below
  const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_));
  Tensor d_out;
  Tensor d_probs;
  Tensor d_scores = Tensor::Uninitialized({steps, steps});  // fully written per batch row
  Tensor d_q;
  Tensor d_k;
  Tensor d_v;
  Tensor d_x({steps, hidden_});
  for (int64_t b = 0; b < batch; ++b) {
    const Tensor x = BatchSlice(input, b);
    const Tensor q = BatchSlice(qs, b);
    const Tensor k = BatchSlice(ks, b);
    const Tensor v = BatchSlice(vs, b);
    const Tensor probs = BatchSlice(weights, b);
    d_out = BatchSlice(grad_output, b);

    // dV = A^T dO; dA = dO V^T.
    Gemm(probs, true, d_out, false, 1.0f, 0.0f, &d_v);
    Gemm(d_out, false, v, true, 1.0f, 0.0f, &d_probs);
    // Softmax backward per row: dS_ij = A_ij * (dA_ij - sum_k dA_ik A_ik).
    for (int64_t i = 0; i < steps; ++i) {
      double dot = 0.0;
      for (int64_t j = 0; j < steps; ++j) {
        dot += static_cast<double>(d_probs.At(i, j)) * probs.At(i, j);
      }
      for (int64_t j = 0; j < steps; ++j) {
        d_scores.At(i, j) =
            probs.At(i, j) * (d_probs.At(i, j) - static_cast<float>(dot));
      }
    }
    // dQ = scale * dS K; dK = scale * dS^T Q.
    Gemm(d_scores, false, k, false, scale, 0.0f, &d_q);
    Gemm(d_scores, true, q, false, scale, 0.0f, &d_k);

    // Parameter gradients: dW* += x^T d*.
    Gemm(x, true, d_q, false, 1.0f, 1.0f, &wq_.grad);
    Gemm(x, true, d_k, false, 1.0f, 1.0f, &wk_.grad);
    Gemm(x, true, d_v, false, 1.0f, 1.0f, &wv_.grad);

    // dX = dQ Wq^T + dK Wk^T + dV Wv^T.
    Gemm(d_q, false, wq_.value, true, 1.0f, 0.0f, &d_x);
    Gemm(d_k, false, wk_.value, true, 1.0f, 1.0f, &d_x);
    Gemm(d_v, false, wv_.value, true, 1.0f, 1.0f, &d_x);
    StoreBatchSlice(d_x, b, &grad_input);
  }
  ctx->Clear();
  return grad_input;
}

std::unique_ptr<Layer> Attention::Clone() const {
  return std::unique_ptr<Layer>(new Attention(*this));
}

}  // namespace pipedream
