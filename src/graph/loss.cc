#include "src/graph/loss.h"

#include <cmath>

#include "src/common/check.h"
#include "src/tensor/ops.h"

namespace pipedream {

double SoftmaxCrossEntropy::Compute(const Tensor& predictions, const Tensor& targets,
                                    Tensor* grad) const {
  PD_CHECK_EQ(predictions.rank(), 2u);
  const int64_t n = predictions.dim(0);
  const int64_t classes = predictions.dim(1);
  PD_CHECK_EQ(targets.numel(), n);

  SoftmaxRows(predictions, grad);
  double total_loss = 0.0;
  float* pg = grad->data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t label = static_cast<int64_t>(targets[i]);
    PD_CHECK(label >= 0 && label < classes) << "label " << label << " out of range";
    const float p = pg[i * classes + label];
    total_loss += -std::log(std::max(p, 1e-12f));
    pg[i * classes + label] -= 1.0f;
  }
  Scale(grad, inv_n);
  return total_loss / static_cast<double>(n);
}

double MeanSquaredError::Compute(const Tensor& predictions, const Tensor& targets,
                                 Tensor* grad) const {
  PD_CHECK(predictions.SameShape(targets));
  const int64_t n = predictions.numel();
  *grad = predictions;
  double total = 0.0;
  float* pg = grad->data();
  const float* pt = targets.data();
  for (int64_t i = 0; i < n; ++i) {
    const float diff = pg[i] - pt[i];
    total += static_cast<double>(diff) * diff;
    pg[i] = 2.0f * diff / static_cast<float>(n);
  }
  return total / static_cast<double>(n);
}

double Accuracy(const Tensor& predictions, const Tensor& targets) {
  PD_CHECK_EQ(predictions.rank(), 2u);
  const int64_t n = predictions.dim(0);
  PD_CHECK_EQ(targets.numel(), n);
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (ArgMaxRow(predictions, i) == static_cast<int64_t>(targets[i])) {
      ++correct;
    }
  }
  return n > 0 ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
}

double PerplexityFromLoss(double mean_cross_entropy) { return std::exp(mean_cross_entropy); }

}  // namespace pipedream
