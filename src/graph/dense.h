// Fully connected layer: y = x W + b, x is [batch, in], W is [in, out], b is [out].
#ifndef SRC_GRAPH_DENSE_H_
#define SRC_GRAPH_DENSE_H_

#include <memory>
#include <string>

#include "src/graph/layer.h"

namespace pipedream {

class Dense : public Layer {
 public:
  // Initializes W with Xavier-uniform and b with zeros using `rng`.
  Dense(std::string name, int64_t in_features, int64_t out_features, Rng* rng);

  const std::string& name() const override { return name_; }
  Tensor Forward(const Tensor& input, LayerContext* ctx, bool training) override;
  Tensor Backward(const Tensor& grad_output, LayerContext* ctx) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::unique_ptr<Layer> Clone() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  Dense(const Dense&) = default;

  std::string name_;
  int64_t in_features_;
  int64_t out_features_;
  Parameter weight_;
  Parameter bias_;
};

}  // namespace pipedream

#endif  // SRC_GRAPH_DENSE_H_
