// Sequential model container: an ordered list of layers, which is exactly the operator-graph
// shape PipeDream partitions (each stage is a consecutive slice of layers, paper §3).
#ifndef SRC_GRAPH_SEQUENTIAL_H_
#define SRC_GRAPH_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/graph/layer.h"

namespace pipedream {

// Per-minibatch stash across every layer of a model (or stage).
struct ModelContext {
  std::vector<LayerContext> per_layer;

  int64_t SizeBytes() const {
    int64_t total = 0;
    for (const LayerContext& ctx : per_layer) {
      total += ctx.SizeBytes();
    }
    return total;
  }
};

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void Add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  size_t size() const { return layers_.size(); }
  Layer* layer(size_t i) const {
    PD_CHECK_LT(i, layers_.size());
    return layers_[i].get();
  }

  // Runs all layers in order, stashing into ctx (resized to match).
  Tensor Forward(const Tensor& input, ModelContext* ctx, bool training) const;

  // Runs all layers in reverse, consuming ctx. Accumulates parameter gradients.
  Tensor Backward(const Tensor& grad_output, ModelContext* ctx) const;

  // All trainable parameters, in layer order.
  std::vector<Parameter*> Params() const;

  void ZeroGrads() const;

  // Total parameter bytes across all layers.
  int64_t ParamBytes() const;

  // Deep copy of the whole model.
  std::unique_ptr<Sequential> Clone() const;

  // Deep copy of layers [begin, end) — used to instantiate a pipeline stage.
  std::unique_ptr<Sequential> CloneSlice(size_t begin, size_t end) const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace pipedream

#endif  // SRC_GRAPH_SEQUENTIAL_H_
