#include "src/obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <variant>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pipedream {
namespace obs {
namespace {

std::string JsonEscapeName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

// %g keeps integers clean (no trailing .000000) and large/small values readable.
std::string NumberJson(double v) { return StrFormat("%.17g", v); }

}  // namespace

double Histogram::Quantile(double q) const {
  PD_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = samples_;
  }
  if (sorted.empty()) {
    return 0.0;
  }
  std::sort(sorted.begin(), sorted.end());
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct MetricsRegistry::Impl {
  using Metric = std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                              std::unique_ptr<Histogram>>;
  mutable std::mutex mutex;
  std::map<std::string, Metric> metrics;                        // sorted for stable dumps
  std::map<std::string, std::function<double()>> callbacks;

  template <typename T>
  T* GetTyped(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = metrics.find(name);
    if (it == metrics.end()) {
      auto metric = std::make_unique<T>();
      T* raw = metric.get();
      metrics.emplace(name, std::move(metric));
      return raw;
    }
    auto* held = std::get_if<std::unique_ptr<T>>(&it->second);
    PD_CHECK(held != nullptr) << "metric '" << name
                              << "' already registered as another kind";
    return held->get();
  }
};

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaky: usable during atexit
  return *registry;
}

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {
  // Log-level counts live in common/logging (which cannot depend on this layer); surface
  // them as dump-time callbacks so WARNING+ diagnostics are visible in every metrics dump.
  SetCallback("log/warnings", [] {
    return static_cast<double>(GetLogCount(LogLevel::kWarning));
  });
  SetCallback("log/errors",
              [] { return static_cast<double>(GetLogCount(LogLevel::kError)); });
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return impl_->GetTyped<Counter>(name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return impl_->GetTyped<Gauge>(name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return impl_->GetTyped<Histogram>(name);
}

void MetricsRegistry::SetCallback(const std::string& name, std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->callbacks[name] = std::move(fn);
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const auto& [name, metric] : impl_->metrics) {
    const std::string key = "\"" + JsonEscapeName(name) + "\": ";
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      if (!counters.empty()) counters += ",\n    ";
      counters += key + StrFormat("%lld", static_cast<long long>((*c)->value()));
    } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      if (!gauges.empty()) gauges += ",\n    ";
      gauges += key + StrFormat("%lld", static_cast<long long>((*g)->value()));
    } else {
      const RunningStat s = std::get<std::unique_ptr<Histogram>>(metric)->snapshot();
      if (!histograms.empty()) histograms += ",\n    ";
      histograms += key +
                    StrFormat("{\"count\": %lld, \"mean\": %s, \"stddev\": %s, \"min\": %s, "
                              "\"max\": %s, \"sum\": %s}",
                              static_cast<long long>(s.count()), NumberJson(s.mean()).c_str(),
                              NumberJson(s.stddev()).c_str(), NumberJson(s.min()).c_str(),
                              NumberJson(s.max()).c_str(), NumberJson(s.sum()).c_str());
    }
  }
  std::string values;
  for (const auto& [name, fn] : impl_->callbacks) {
    if (!values.empty()) values += ",\n    ";
    values += "\"" + JsonEscapeName(name) + "\": " + NumberJson(fn());
  }
  std::string out = "{\n";
  out += "  \"counters\": {\n    " + counters + "\n  },\n";
  out += "  \"gauges\": {\n    " + gauges + "\n  },\n";
  out += "  \"histograms\": {\n    " + histograms + "\n  },\n";
  out += "  \"values\": {\n    " + values + "\n  }\n";
  out += "}\n";
  return out;
}

Table MetricsRegistry::ToTable() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Table table({"metric", "kind", "value", "count", "mean", "min", "max"});
  for (const auto& [name, metric] : impl_->metrics) {
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      table.AddRow({name, "counter", StrFormat("%lld", static_cast<long long>((*c)->value())),
                    "", "", "", ""});
    } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      table.AddRow({name, "gauge", StrFormat("%lld", static_cast<long long>((*g)->value())),
                    "", "", "", ""});
    } else {
      const RunningStat s = std::get<std::unique_ptr<Histogram>>(metric)->snapshot();
      table.AddRow({name, "histogram", "", StrFormat("%lld", static_cast<long long>(s.count())),
                    StrFormat("%.6g", s.mean()), StrFormat("%.6g", s.min()),
                    StrFormat("%.6g", s.max())});
    }
  }
  for (const auto& [name, fn] : impl_->callbacks) {
    table.AddRow({name, "value", StrFormat("%.6g", fn()), "", "", "", ""});
  }
  return table;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PD_LOG(WARNING) << "cannot open metrics file " << path;
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) {
    PD_LOG(WARNING) << "short write to metrics file " << path;
  }
  return ok;
}

void MetricsRegistry::PrintTable() const { ToTable().Print("metrics"); }

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, metric] : impl_->metrics) {
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      (*c)->Reset();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      (*g)->Reset();
    } else {
      std::get<std::unique_ptr<Histogram>>(metric)->Reset();
    }
  }
}

namespace {

void DumpMetricsAtExit() {
  const char* path = std::getenv("PIPEDREAM_METRICS");
  if (path != nullptr && path[0] != '\0') {
    if (std::string(path) == "-") {
      MetricsRegistry::Get().PrintTable();
    } else {
      MetricsRegistry::Get().WriteJson(path);
    }
  }
  const char* table = std::getenv("PIPEDREAM_METRICS_TABLE");
  if (table != nullptr && table[0] == '1') {
    MetricsRegistry::Get().PrintTable();
  }
}

struct MetricsEnvInit {
  MetricsEnvInit() {
    const char* path = std::getenv("PIPEDREAM_METRICS");
    const char* table = std::getenv("PIPEDREAM_METRICS_TABLE");
    if ((path != nullptr && path[0] != '\0') || (table != nullptr && table[0] == '1')) {
      MetricsRegistry::Get();  // construct before atexit so destruction never races the dump
      std::atexit(DumpMetricsAtExit);
    }
  }
};
MetricsEnvInit g_metrics_env_init;

}  // namespace

}  // namespace obs
}  // namespace pipedream
