#include "src/obs/metrics.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <variant>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pipedream {
namespace obs {
namespace {

std::string JsonEscapeName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // Control characters are never legal raw inside a JSON string; metric names are
      // ASCII identifiers in practice, but a hostile name must not produce invalid JSON.
      switch (c) {
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default: out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
      }
    } else {
      out += c;
    }
  }
  return out;
}

// Prometheus metric names admit only [a-zA-Z0-9_:]; everything else (the registry's '/'
// separators included) maps to '_', with a "pipedream_" namespace prefix.
std::string PrometheusName(const std::string& s) {
  std::string out = "pipedream_";
  out.reserve(out.size() + s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// %g keeps integers clean (no trailing .000000) and large/small values readable.
std::string NumberJson(double v) { return StrFormat("%.17g", v); }

}  // namespace

double Histogram::Quantile(double q) const {
  PD_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted = samples_;
  }
  if (sorted.empty()) {
    return 0.0;
  }
  std::sort(sorted.begin(), sorted.end());
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct MetricsRegistry::Impl {
  using Metric = std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                              std::unique_ptr<Histogram>>;
  mutable std::mutex mutex;
  std::map<std::string, Metric> metrics;                        // sorted for stable dumps
  std::map<std::string, std::function<double()>> callbacks;

  template <typename T>
  T* GetTyped(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = metrics.find(name);
    if (it == metrics.end()) {
      auto metric = std::make_unique<T>();
      T* raw = metric.get();
      metrics.emplace(name, std::move(metric));
      return raw;
    }
    auto* held = std::get_if<std::unique_ptr<T>>(&it->second);
    PD_CHECK(held != nullptr) << "metric '" << name
                              << "' already registered as another kind";
    return held->get();
  }
};

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaky: usable during atexit
  return *registry;
}

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {
  // Log-level counts live in common/logging (which cannot depend on this layer); surface
  // them as dump-time callbacks so WARNING+ diagnostics are visible in every metrics dump.
  SetCallback("log/warnings", [] {
    return static_cast<double>(GetLogCount(LogLevel::kWarning));
  });
  SetCallback("log/errors",
              [] { return static_cast<double>(GetLogCount(LogLevel::kError)); });
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return impl_->GetTyped<Counter>(name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return impl_->GetTyped<Gauge>(name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return impl_->GetTyped<Histogram>(name);
}

void MetricsRegistry::SetCallback(const std::string& name, std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->callbacks[name] = std::move(fn);
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const auto& [name, metric] : impl_->metrics) {
    const std::string key = "\"" + JsonEscapeName(name) + "\": ";
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      if (!counters.empty()) counters += ",\n    ";
      counters += key + StrFormat("%lld", static_cast<long long>((*c)->value()));
    } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      if (!gauges.empty()) gauges += ",\n    ";
      gauges += key + StrFormat("%lld", static_cast<long long>((*g)->value()));
    } else {
      const RunningStat s = std::get<std::unique_ptr<Histogram>>(metric)->snapshot();
      if (!histograms.empty()) histograms += ",\n    ";
      histograms += key +
                    StrFormat("{\"count\": %lld, \"mean\": %s, \"stddev\": %s, \"min\": %s, "
                              "\"max\": %s, \"sum\": %s}",
                              static_cast<long long>(s.count()), NumberJson(s.mean()).c_str(),
                              NumberJson(s.stddev()).c_str(), NumberJson(s.min()).c_str(),
                              NumberJson(s.max()).c_str(), NumberJson(s.sum()).c_str());
    }
  }
  std::string values;
  for (const auto& [name, fn] : impl_->callbacks) {
    if (!values.empty()) values += ",\n    ";
    values += "\"" + JsonEscapeName(name) + "\": " + NumberJson(fn());
  }
  std::string out = "{\n";
  out += "  \"counters\": {\n    " + counters + "\n  },\n";
  out += "  \"gauges\": {\n    " + gauges + "\n  },\n";
  out += "  \"histograms\": {\n    " + histograms + "\n  },\n";
  out += "  \"values\": {\n    " + values + "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  // Snapshot the histogram pointers first, then compute quantiles outside the registry
  // mutex: Quantile sorts a copy of the reservoir under the histogram's own lock, and a
  // concurrent Observe must never block on a dump in progress.
  std::string out;
  std::vector<std::pair<std::string, const Histogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& [name, metric] : impl_->metrics) {
      const std::string pname = PrometheusName(name);
      if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
        out += "# TYPE " + pname + " counter\n";
        out += pname + StrFormat(" %lld\n", static_cast<long long>((*c)->value()));
      } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
        out += "# TYPE " + pname + " gauge\n";
        out += pname + StrFormat(" %lld\n", static_cast<long long>((*g)->value()));
      } else {
        hists.emplace_back(name, std::get<std::unique_ptr<Histogram>>(metric).get());
      }
    }
    for (const auto& [name, fn] : impl_->callbacks) {
      const std::string pname = PrometheusName(name);
      out += "# TYPE " + pname + " gauge\n";
      out += pname + " " + NumberJson(fn()) + "\n";
    }
  }
  for (const auto& [name, hist] : hists) {
    const std::string pname = PrometheusName(name);
    const RunningStat s = hist->snapshot();
    out += "# TYPE " + pname + " summary\n";
    for (const double q : {0.5, 0.99, 0.999}) {
      // %g for the label, not NumberJson's round-trip precision: the label is an
      // identifier ("0.99"), and 17 significant digits would print its binary neighbor.
      out += pname + "{quantile=\"" + StrFormat("%g", q) + "\"} " +
             NumberJson(hist->Quantile(q)) + "\n";
    }
    out += pname + "_sum " + NumberJson(s.sum()) + "\n";
    out += pname + StrFormat("_count %lld\n", static_cast<long long>(s.count()));
  }
  return out;
}

Table MetricsRegistry::ToTable() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Table table({"metric", "kind", "value", "count", "mean", "min", "max"});
  for (const auto& [name, metric] : impl_->metrics) {
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      table.AddRow({name, "counter", StrFormat("%lld", static_cast<long long>((*c)->value())),
                    "", "", "", ""});
    } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      table.AddRow({name, "gauge", StrFormat("%lld", static_cast<long long>((*g)->value())),
                    "", "", "", ""});
    } else {
      const RunningStat s = std::get<std::unique_ptr<Histogram>>(metric)->snapshot();
      table.AddRow({name, "histogram", "", StrFormat("%lld", static_cast<long long>(s.count())),
                    StrFormat("%.6g", s.mean()), StrFormat("%.6g", s.min()),
                    StrFormat("%.6g", s.max())});
    }
  }
  for (const auto& [name, fn] : impl_->callbacks) {
    table.AddRow({name, "value", StrFormat("%.6g", fn()), "", "", "", ""});
  }
  return table;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PD_LOG(WARNING) << "cannot open metrics file " << path;
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) {
    PD_LOG(WARNING) << "short write to metrics file " << path;
  }
  return ok;
}

bool MetricsRegistry::WriteJsonAtomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  if (!WriteJson(tmp)) {
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    PD_LOG(WARNING) << "cannot rename " << tmp << " into place as " << path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugesWithPrefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, int64_t>> out;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto it = impl_->metrics.lower_bound(prefix); it != impl_->metrics.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;  // the map is sorted; past the prefix range
    }
    if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&it->second)) {
      out.emplace_back(it->first, (*g)->value());
    }
  }
  return out;
}

void MetricsRegistry::PrintTable() const { ToTable().Print("metrics"); }

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, metric] : impl_->metrics) {
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      (*c)->Reset();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      (*g)->Reset();
    } else {
      std::get<std::unique_ptr<Histogram>>(metric)->Reset();
    }
  }
}

namespace {

void DumpMetricsAtExit() {
  const char* path = std::getenv("PIPEDREAM_METRICS");
  if (path != nullptr && path[0] != '\0') {
    if (std::string(path) == "-") {
      MetricsRegistry::Get().PrintTable();
    } else {
      MetricsRegistry::Get().WriteJson(path);
    }
  }
  const char* table = std::getenv("PIPEDREAM_METRICS_TABLE");
  if (table != nullptr && table[0] == '1') {
    MetricsRegistry::Get().PrintTable();
  }
}

// Mid-run snapshot thread: every PIPEDREAM_METRICS_INTERVAL_S seconds, re-write the
// PIPEDREAM_METRICS file via the atomic-rename path. The thread is joined from this
// global's destructor, which runs before the atexit dump (atexit handlers run after
// static destructors registered earlier — both paths write the same file, so the final
// exit dump always wins).
struct MetricsEnvInit {
  MetricsEnvInit() {
    const char* path = std::getenv("PIPEDREAM_METRICS");
    const char* table = std::getenv("PIPEDREAM_METRICS_TABLE");
    const bool have_path = path != nullptr && path[0] != '\0' && std::string(path) != "-";
    if ((path != nullptr && path[0] != '\0') || (table != nullptr && table[0] == '1')) {
      MetricsRegistry::Get();  // construct before atexit so destruction never races the dump
      std::atexit(DumpMetricsAtExit);
    }
    const char* interval = std::getenv("PIPEDREAM_METRICS_INTERVAL_S");
    if (interval != nullptr && interval[0] != '\0' && have_path) {
      const double seconds = std::atof(interval);
      if (seconds > 0) {
        MetricsRegistry::Get();
        interval_ms_ = static_cast<int64_t>(seconds * 1e3);
        dump_path_ = path;
        dumper_ = std::thread([this] { PeriodicDumpLoop(); });
      }
    } else if (interval != nullptr && interval[0] != '\0') {
      PD_LOG(WARNING)
          << "PIPEDREAM_METRICS_INTERVAL_S set without a PIPEDREAM_METRICS file; ignored";
    }
  }

  ~MetricsEnvInit() {
    if (dumper_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
      }
      cv_.notify_all();
      dumper_.join();
    }
  }

  void PeriodicDumpLoop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      lock.unlock();
      MetricsRegistry::Get().WriteJsonAtomic(dump_path_);
      lock.lock();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  int64_t interval_ms_ = 0;
  std::string dump_path_;
  std::thread dumper_;
};
MetricsEnvInit g_metrics_env_init;

}  // namespace

}  // namespace obs
}  // namespace pipedream
