// Per-thread event tracing: the runtime's swimlane recorder.
//
// Every instrumented thread owns a fixed-capacity ring of timestamped events. Recording a
// span costs one relaxed atomic load when tracing is disabled (the macro's constructor
// checks a single global flag and does nothing else) and a handful of relaxed stores into
// the calling thread's own ring when enabled — no locks on the hot path, no allocation, no
// cross-thread contention. Rings are registered once per thread and drained at flush time
// into Chrome trace_event JSON (chrome://tracing, Perfetto), one track per thread, so a
// `piperun` 1F1B run renders as the paper's pipeline swimlane diagrams.
//
// Arming: set PIPEDREAM_TRACE=out.json in the environment and the trace is recorded for the
// whole process and flushed to that path at exit; or call StartTracing()/StopTracing() and
// WriteTrace()/CollectEvents() programmatically (tests, benches).
//
// The same JSON schema is emitted for the simulator's virtual-time traces via
// ExecutionTrace::ToChromeJson (src/schedule/trace.h), so sim and real runs of one schedule
// are directly overlayable — span names ("fwd", "bwd", ...) and args (stage, minibatch)
// match event for event.
//
// Concurrency contract: each ring has exactly one writer (its owning thread). Readers
// (CollectEvents / WriteTrace) synchronize on the ring's published head; every slot field is
// a relaxed atomic, so a reader racing a wrapping writer may observe a mixed event but never
// tears memory or trips TSan. Flush with workers quiesced for exact traces (the runtime
// joins its workers per epoch, and the atexit flush runs after main).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pipedream {
namespace obs {

enum class EventPhase : uint8_t {
  kSpan = 0,       // has a duration ("X" complete event in Chrome terms)
  kInstant = 1,    // a point in time ("i")
  kFlowStart = 2,  // first hop of a causal chain ("s"), keyed by flow_id
  kFlowStep = 3,   // intermediate hop ("t")
  kFlowEnd = 4,    // final hop ("f")
};

// One event as drained from the rings (flush-side representation).
struct CollectedEvent {
  int track_id = 0;
  std::string track;  // thread label (SetThreadLabel) or "thread-<id>"
  const char* name = "";
  EventPhase phase = EventPhase::kSpan;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int stage = -1;        // -1 = not stage-scoped
  int64_t minibatch = -1;  // -1 = not minibatch-scoped
  int64_t flow_id = -1;  // causal-chain key for kFlow* phases; -1 otherwise
};

namespace internal {
extern std::atomic<bool> g_trace_enabled;
void RecordEvent(const char* name, EventPhase phase, int64_t start_ns, int64_t dur_ns,
                 int stage, int64_t minibatch, int64_t flow_id = -1);
}  // namespace internal

// Monotonic nanoseconds since process start (the trace clock).
int64_t TraceClockNs();

// True when events are being recorded. The only cost instrumentation pays when tracing is
// off is this one relaxed load.
inline bool TracingEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

// Programmatic arm/disarm. PIPEDREAM_TRACE=path arms at startup and writes at exit.
void StartTracing();
void StopTracing();

// Drops every recorded event (all rings and the retired-thread backlog). Call only while no
// instrumented thread is running — typically between runs in a test or bench.
void ClearTrace();

// Snapshot of all recorded events, oldest first (by start time). Events from threads that
// have exited are included. If a ring overflowed, only its newest `capacity` events survive
// (DroppedEvents() counts the overwritten ones).
std::vector<CollectedEvent> CollectEvents();
int64_t DroppedEvents();

// Chrome trace_event JSON of everything recorded so far. WriteTrace returns false (and logs
// a warning) on I/O failure.
std::string TraceToChromeJson();
bool WriteTrace(const std::string& path);

// Names the calling thread's swimlane in the trace AND prefixes its PD_LOG lines (see
// logging.h). The runtime labels its workers "s<stage>/r<replica>".
void SetThreadLabel(const std::string& label);

// Records an explicit span (for call sites that time a region themselves rather than using
// the RAII macro — e.g. the mailbox stall accounting). No-op when tracing is off.
inline void RecordSpan(const char* name, int64_t start_ns, int64_t dur_ns, int stage = -1,
                       int64_t minibatch = -1) {
  if (TracingEnabled()) {
    internal::RecordEvent(name, EventPhase::kSpan, start_ns, dur_ns, stage, minibatch);
  }
}

inline void RecordInstant(const char* name, int stage = -1, int64_t minibatch = -1) {
  if (TracingEnabled()) {
    internal::RecordEvent(name, EventPhase::kInstant, TraceClockNs(), 0, stage, minibatch);
  }
}

// Causal-chain markers: every event recorded with the same `flow_id` (and the same `name`,
// which becomes the flow's category) is stitched into one arrow chain by Perfetto. The
// training runtime keys flows by minibatch id, serving by request id. Record these *inside*
// the compute span they belong to — the writer emits them with `bp:"e"` so the renderer
// binds each hop to its enclosing slice.
inline void RecordFlowStart(const char* name, int64_t flow_id, int stage = -1,
                            int64_t minibatch = -1) {
  if (TracingEnabled()) {
    internal::RecordEvent(name, EventPhase::kFlowStart, TraceClockNs(), 0, stage, minibatch,
                          flow_id);
  }
}

inline void RecordFlowStep(const char* name, int64_t flow_id, int stage = -1,
                           int64_t minibatch = -1) {
  if (TracingEnabled()) {
    internal::RecordEvent(name, EventPhase::kFlowStep, TraceClockNs(), 0, stage, minibatch,
                          flow_id);
  }
}

inline void RecordFlowEnd(const char* name, int64_t flow_id, int stage = -1,
                          int64_t minibatch = -1) {
  if (TracingEnabled()) {
    internal::RecordEvent(name, EventPhase::kFlowEnd, TraceClockNs(), 0, stage, minibatch,
                          flow_id);
  }
}

// RAII span: records [construction, destruction) under `name`. `name` must be a string
// literal (the ring stores the pointer, not a copy).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, int stage = -1, int64_t minibatch = -1) {
    if (TracingEnabled()) {
      name_ = name;
      stage_ = stage;
      minibatch_ = minibatch;
      start_ns_ = TraceClockNs();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      internal::RecordEvent(name_, EventPhase::kSpan, start_ns_, TraceClockNs() - start_ns_,
                            stage_, minibatch_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  int64_t minibatch_ = -1;
  int stage_ = -1;
};

// Serializes events (wall-clock or virtual-time) as Chrome trace_event JSON. Shared by the
// runtime flush and the simulator's ExecutionTrace::ToChromeJson so both substrates emit an
// identical schema: one "M"/thread_name metadata event per track, "X" complete events with
// ts/dur in microseconds and {stage, minibatch} args, "i" instants.
class ChromeTraceWriter {
 public:
  void AddThreadName(int tid, const std::string& name);
  void AddComplete(int tid, const char* name, int64_t ts_ns, int64_t dur_ns, int stage,
                   int64_t minibatch);
  void AddInstant(int tid, const char* name, int64_t ts_ns, int stage, int64_t minibatch);
  // Flow hop: `phase` is the Chrome flow phase character ('s' start, 't' step, 'f' end).
  // `name` doubles as the flow category, `flow_id` keys the chain; `bp:"e"` binds the hop
  // to the slice enclosing its timestamp so Perfetto draws arrows between compute spans.
  void AddFlow(int tid, const char* name, int64_t ts_ns, char phase, int64_t flow_id,
               int stage, int64_t minibatch);

  std::string ToJson() const;
  bool WriteTo(const std::string& path) const;

 private:
  std::vector<std::string> lines_;
};

}  // namespace obs
}  // namespace pipedream

#define PD_TRACE_CONCAT_INNER(a, b) a##b
#define PD_TRACE_CONCAT(a, b) PD_TRACE_CONCAT_INNER(a, b)

// PD_TRACE_SPAN("fwd", stage, minibatch) / PD_TRACE_SPAN("allreduce") — scoped span over
// the rest of the enclosing block. ~single-atomic-load cheap when tracing is disabled.
#define PD_TRACE_SPAN(...) \
  ::pipedream::obs::ScopedSpan PD_TRACE_CONCAT(pd_trace_span_, __COUNTER__)(__VA_ARGS__)

// PD_TRACE_INSTANT("deliver", stage, minibatch) — a point event on the calling thread.
#define PD_TRACE_INSTANT(...) ::pipedream::obs::RecordInstant(__VA_ARGS__)

#endif  // SRC_OBS_TRACE_H_
