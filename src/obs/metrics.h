// Process-wide metrics registry: counters, gauges, and histograms under stable names.
//
// Replaces the scattered ad-hoc stats (pool counters read by hand, per-trainer peak-bytes
// accessors, bench-local RunningStats) with one queryable registry:
//
//   obs::Counter* sends = obs::GetCounter("runtime/messages_sent");
//   sends->Add();                                   // lock-free, relaxed atomic
//   obs::GetHistogram("runtime/stage0/fwd_seconds")->Observe(dt);
//
// Hot paths hold the returned pointer (stable for the process lifetime); the name lookup
// happens once. Sources that already maintain their own counters (the buffer pool, the
// logging level counts) surface them through callback gauges — read lazily at dump time, so
// the registry never inverts a layering dependency.
//
// Dumping: PIPEDREAM_METRICS=out.json writes a JSON snapshot at process exit ("-" prints
// the aligned table to stdout instead); PIPEDREAM_METRICS_TABLE=1 additionally prints the
// table; PIPEDREAM_METRICS_INTERVAL_S=<n> re-writes the snapshot every n seconds mid-run
// (atomic rename, so a tailing reader never sees a torn file). Programmatically: ToJson(),
// ToPrometheus(), WriteJson(), WriteJsonAtomic(), ToTable(), PrintTable().
//
// WARNING/ERROR log lines are counted (see logging.h) and exposed as "log/warnings" and
// "log/errors", so a run's health is visible in the same dump as its throughput.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/table.h"

namespace pipedream {
namespace obs {

// Monotonic event count. Add is wait-free.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-written (or maximum) level. Set/SetMax are wait-free.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  // Raises the gauge to `v` if larger (high-water marks: mailbox depth, peak bytes).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Streaming distribution (count/mean/stddev/min/max plus quantiles) built on RunningStat
// and a bounded sample reservoir. Observe takes an uncontended mutex — cheap relative to
// the millisecond-scale quantities recorded here.
class Histogram {
 public:
  void Observe(double x) {
    std::lock_guard<std::mutex> lock(mutex_);
    stat_.Add(x);
    if (samples_.size() < kMaxSamples) {
      samples_.push_back(x);
    } else {
      // Uniform reservoir sampling with a deterministic (seeded) generator: every
      // observation survives with probability kMaxSamples / count, and identical
      // observation sequences produce identical quantiles.
      rng_ = rng_ * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint64_t slot = (rng_ >> 33) % static_cast<uint64_t>(stat_.count());
      if (slot < kMaxSamples) {
        samples_[static_cast<size_t>(slot)] = x;
      }
    }
  }
  RunningStat snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stat_;
  }
  // Quantile in [0, 1] by linear interpolation over the retained samples — exact while the
  // observation count is below the reservoir bound (65536), a uniform subsample beyond.
  // Returns 0 for an empty histogram. This is what tail-latency consumers (the serving
  // runtime's p50/p99/p999) read.
  double Quantile(double q) const;
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    stat_ = RunningStat();
    samples_.clear();
    // Re-seed so a Reset() bracket behaves exactly like a fresh histogram: identical
    // observation sequences always yield identical reservoirs (and quantiles), whether or
    // not the histogram was used before the bracket.
    rng_ = kReservoirSeed;
  }

 private:
  static constexpr size_t kMaxSamples = 1 << 16;
  static constexpr uint64_t kReservoirSeed = 0x9E3779B97F4A7C15ULL;

  mutable std::mutex mutex_;
  RunningStat stat_;
  std::vector<double> samples_;
  uint64_t rng_ = kReservoirSeed;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  // Returns the metric registered under `name`, creating it on first use. The pointer is
  // stable for the process lifetime. Registering one name as two different kinds aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Registers a value read lazily at dump time (pool stats, log counts — sources that keep
  // their own counters). Re-registering a name replaces the callback.
  void SetCallback(const std::string& name, std::function<double()> fn);

  // JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms": {name: {count, mean,
  // stddev, min, max, sum}}, "values": {callback results}}. Keys sorted.
  std::string ToJson() const;
  // Prometheus text exposition (version 0.0.4): counters as `counter`, gauges and callback
  // values as `gauge`, histograms as `summary` with quantile 0.5/0.99/0.999 labels plus
  // _sum/_count. Names are sanitized to [a-zA-Z0-9_:] and prefixed "pipedream_". This is
  // what the HealthServer's /metrics endpoint serves.
  std::string ToPrometheus() const;
  // One row per metric via common/table (the end-of-run table).
  Table ToTable() const;
  bool WriteJson(const std::string& path) const;
  // Like WriteJson but writes to `path + ".tmp"` and rename()s into place, so a concurrent
  // reader of a periodic snapshot (PIPEDREAM_METRICS_INTERVAL_S) never sees a torn file.
  bool WriteJsonAtomic(const std::string& path) const;
  void PrintTable() const;

  // Snapshot of every gauge whose name starts with `prefix` (name → value). The health
  // endpoint uses this to enumerate per-stage liveness gauges without knowing stage counts.
  std::vector<std::pair<std::string, int64_t>> GaugesWithPrefix(
      const std::string& prefix) const;

  // Zeroes every counter/gauge/histogram (callbacks are left registered). Brackets a
  // measured region in tests and benches.
  void Reset();

 private:
  MetricsRegistry();
  struct Impl;
  Impl* impl_;
};

// Convenience accessors.
inline Counter* GetCounter(const std::string& name) {
  return MetricsRegistry::Get().GetCounter(name);
}
inline Gauge* GetGauge(const std::string& name) {
  return MetricsRegistry::Get().GetGauge(name);
}
inline Histogram* GetHistogram(const std::string& name) {
  return MetricsRegistry::Get().GetHistogram(name);
}

}  // namespace obs
}  // namespace pipedream

#endif  // SRC_OBS_METRICS_H_
