// Stall attribution: where do pipeline bubbles come from?
//
// PipeDream's efficiency argument is entirely about bubbles — time a stage worker spends
// not computing. A flat "stall" span says *that* a worker waited; this layer says *why*,
// with the causes the paper's analysis distinguishes:
//
//   starved_upstream         — ready for a forward, but the previous stage hasn't sent one
//   backpressured_downstream — blocked on the backward path (or, at the input stage, on the
//                              1F1B in-flight cap) waiting for downstream progress
//   weight_sync              — waiting in the replicated-stage AllReduce barrier
//   recovery                 — the whole pipeline quiesced for failure recovery
//
// The trainer classifies each wait at the moment it resolves (the work type that unblocked
// the worker names the cause) and feeds it here; the accountant keeps cumulative
// nanosecond counters per (stage, cause) and, per training attempt, publishes the bubble
// *fraction* by cause into the metrics registry:
//
//   runtime/stage<N>/bubble/<cause>_ns      counter, cumulative (the bench reads these)
//   runtime/stage<N>/bubble_frac/<cause>    callback gauge, last finished window
//
// The same classification rule applied to the simulator's gap structure yields the sim side
// of BENCH_obs.json's bubble-attribution section, so sim and real bubbles are comparable
// cause by cause.
#ifndef SRC_OBS_BUBBLE_H_
#define SRC_OBS_BUBBLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace pipedream {
namespace obs {

enum class StallCause : uint8_t {
  kStarvedUpstream = 0,
  kBackpressuredDownstream = 1,
  kWeightSync = 2,
  kRecovery = 3,
};

inline constexpr int kNumStallCauses = 4;

// "starved_upstream", "backpressured_downstream", "weight_sync", "recovery".
const char* StallCauseName(StallCause cause);

// The trace-span name for a wait attributed to `cause` ("stall/starved_upstream", ...).
// String literals — safe to hand to the trace ring, which stores the pointer.
const char* StallCauseSpanName(StallCause cause);

class Counter;

// Per-(stage, cause) bubble accounting. Add() is wait-free (two relaxed atomics) and may be
// called from any worker thread; FinishWindow() is called by the coordinator once per
// training attempt, with the workers joined.
class BubbleAccountant {
 public:
  explicit BubbleAccountant(int num_stages);

  int num_stages() const { return static_cast<int>(stages_.size()); }

  // Records `ns` of stall on `stage` attributed to `cause`.
  void Add(int stage, StallCause cause, int64_t ns);

  // Records `ns` on every stage at once — recovery stalls the whole pipeline.
  void AddAll(StallCause cause, int64_t ns);

  // Publishes this window's per-cause bubble fraction of `window_seconds` (the stage's
  // total worker-time in the attempt) to the runtime/stage<N>/bubble_frac/* gauges and
  // clears the window accumulators. Fractions stay readable (health endpoint, exit dump)
  // until the next window finishes.
  void FinishWindow(int stage, double window_seconds);

  // This window's accumulated ns for (stage, cause) — test/introspection hook.
  int64_t WindowNs(int stage, StallCause cause) const;

 private:
  struct StageCell {
    std::array<std::atomic<int64_t>, kNumStallCauses> window_ns{};
    std::array<Counter*, kNumStallCauses> total_ns{};
    // Callback-gauge cells: the registry reads these lazily at dump time (the
    // gen_throughput_ pattern), so a fraction survives registry Reset() brackets.
    std::array<std::shared_ptr<double>, kNumStallCauses> fraction{};
  };
  std::vector<StageCell> stages_;
};

}  // namespace obs
}  // namespace pipedream

#endif  // SRC_OBS_BUBBLE_H_
