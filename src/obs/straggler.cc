#include "src/obs/straggler.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace pipedream {
namespace obs {

StragglerDetector::StragglerDetector(int num_stages, Options options) : options_(options) {
  PD_CHECK(num_stages > 0);
  PD_CHECK(options_.baseline_alpha > 0.0 && options_.baseline_alpha <= 1.0);
  PD_CHECK(options_.score_alpha > 0.0 && options_.score_alpha <= 1.0);
  stages_.reserve(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    auto state = std::make_unique<StageState>();
    state->cell = std::make_shared<double>(0.0);
    const std::shared_ptr<double> cell = state->cell;
    MetricsRegistry::Get().SetCallback(StrFormat("obs/straggler_score/stage%d", s),
                                       [cell] { return *cell; });
    stages_.push_back(std::move(state));
  }
}

void StragglerDetector::Observe(int stage, double seconds) {
  if (stage < 0 || stage >= num_stages() || !(seconds >= 0.0)) {
    return;
  }
  StageState& st = *stages_[static_cast<size_t>(stage)];
  std::lock_guard<std::mutex> lock(st.mutex);
  ++st.n;
  if (st.n == 1) {
    st.mean = seconds;
    st.var = 0.0;
    return;
  }
  // Score against the baseline *before* folding the observation in: a sudden slowdown must
  // not dilute the very statistics it is judged against.
  if (st.n > options_.warmup && st.var > 0.0) {
    const double z = (seconds - st.mean) / std::sqrt(st.var);
    const double positive = std::max(z, 0.0);
    st.score += options_.score_alpha * (positive - st.score);
    *st.cell = st.score;
  }
  // West's EWMA update for mean and variance.
  const double diff = seconds - st.mean;
  const double incr = options_.baseline_alpha * diff;
  st.mean += incr;
  st.var = (1.0 - options_.baseline_alpha) * (st.var + diff * incr);
}

double StragglerDetector::Score(int stage) const {
  if (stage < 0 || stage >= num_stages()) {
    return 0.0;
  }
  const StageState& st = *stages_[static_cast<size_t>(stage)];
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.score;
}

int StragglerDetector::WorstStage(double threshold) const {
  int worst = -1;
  double worst_score = 0.0;
  for (int s = 0; s < num_stages(); ++s) {
    const double score = Score(s);
    if (score >= threshold && score > worst_score) {
      worst = s;
      worst_score = score;
    }
  }
  return worst;
}

}  // namespace obs
}  // namespace pipedream
