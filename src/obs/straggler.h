// Online straggler detection: which stage is drifting slow *right now*?
//
// The elastic re-planner (runtime/elastic.h) reacts to a worker dying — a binary, late
// signal. A straggler degrades long before it dies: thermal throttling, a noisy neighbor,
// a background compaction. This detector watches every per-stage op time as it happens and
// keeps, per stage, an exponentially-weighted running mean/variance of op seconds plus a
// smoothed z-score of recent observations against that history:
//
//   z      = (x - ewma_mean) / sqrt(ewma_var)        (after a warmup of kWarmup samples)
//   score  = ewma over max(z, 0)                     (only *slow* drift is a straggler)
//
// Scores are published as obs/straggler_score/stage<N> callback gauges, and
// ElasticTrainer polls WorstStage() when PIPEDREAM_STRAGGLER_REPLAN=<threshold> is set —
// a stage whose smoothed score crosses the threshold triggers a re-plan exactly like a
// detected failure would, but proactively. A re-plan rebuilds the trainer, which resets
// the detector: the new plan starts with fresh statistics instead of the old plan's
// baseline.
#ifndef SRC_OBS_STRAGGLER_H_
#define SRC_OBS_STRAGGLER_H_

#include <memory>
#include <mutex>
#include <vector>

namespace pipedream {
namespace obs {

struct StragglerOptions {
  double baseline_alpha = 0.05;  // EWMA weight for the mean/variance baseline
  double score_alpha = 0.2;      // EWMA weight for the smoothed score
  int warmup = 16;               // observations per stage before scoring starts
};

class StragglerDetector {
 public:
  using Options = StragglerOptions;

  explicit StragglerDetector(int num_stages, Options options = {});

  int num_stages() const { return static_cast<int>(stages_.size()); }

  // Feeds one op-time observation (seconds) for `stage`. Thread-safe; called from stage
  // workers on every fwd/bwd op.
  void Observe(int stage, double seconds);

  // The stage's current smoothed positive-z score (0 until warmed up).
  double Score(int stage) const;

  // The highest-scoring stage with score >= threshold, or -1 if none qualifies.
  int WorstStage(double threshold) const;

 private:
  struct StageState {
    mutable std::mutex mutex;
    int64_t n = 0;
    double mean = 0.0;
    double var = 0.0;
    double score = 0.0;
    std::shared_ptr<double> cell;  // read by the obs/straggler_score/stage<N> callback
  };

  Options options_;
  std::vector<std::unique_ptr<StageState>> stages_;
};

}  // namespace obs
}  // namespace pipedream

#endif  // SRC_OBS_STRAGGLER_H_
