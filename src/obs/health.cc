#include "src/obs/health.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pipedream {
namespace obs {
namespace {

constexpr int kPollIntervalMs = 100;
constexpr size_t kMaxRequestBytes = 4096;
constexpr int64_t kDefaultTraceWindow = 256;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "Bad Request";
  }
}

// "?last=8" → 8. Only the keys the endpoints understand are parsed; everything else is
// ignored so a future client can pass extra parameters without breaking an old server.
int64_t QueryInt(const std::string& query, const std::string& key, int64_t fallback) {
  size_t at = 0;
  while (at < query.size()) {
    size_t end = query.find('&', at);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::string pair = query.substr(at, end - at);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return std::atoll(pair.c_str() + eq + 1);
    }
    at = end + 1;
  }
  return fallback;
}

std::string QueryString(const std::string& query, const std::string& key) {
  size_t at = 0;
  while (at < query.size()) {
    size_t end = query.find('&', at);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::string pair = query.substr(at, end - at);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    at = end + 1;
  }
  return "";
}

// Per-stage liveness, read back out of the gauges the trainer's watchdog maintains. A
// process that never armed the watchdog (pure serving, no recovery) reports zero stages —
// that is "healthy by absence", not an error.
HealthServer::Response Healthz() {
  const auto alive = MetricsRegistry::Get().GaugesWithPrefix("runtime/stage");
  std::string stages;
  bool all_alive = true;
  for (const auto& [name, value] : alive) {
    // runtime/stage<N>/alive
    const size_t slash = name.find('/', std::strlen("runtime/"));
    if (slash == std::string::npos || name.substr(slash) != "/alive") {
      continue;
    }
    const int stage = std::atoi(name.c_str() + std::strlen("runtime/stage"));
    const auto beat = MetricsRegistry::Get().GaugesWithPrefix(
        StrFormat("runtime/stage%d/beat_age_ms", stage));
    const int64_t beat_age_ms = beat.empty() ? -1 : beat.front().second;
    if (!stages.empty()) {
      stages += ",\n    ";
    }
    stages += StrFormat("{\"stage\": %d, \"alive\": %s, \"beat_age_ms\": %lld}", stage,
                        value != 0 ? "true" : "false",
                        static_cast<long long>(beat_age_ms));
    all_alive = all_alive && value != 0;
  }
  HealthServer::Response r;
  r.status = all_alive ? 200 : 503;
  r.content_type = "application/json";
  r.body = std::string("{\n  \"status\": \"") + (all_alive ? "ok" : "degraded") +
           "\",\n  \"stages\": [\n    " + stages + "\n  ]\n}\n";
  return r;
}

HealthServer::Response TraceWindow(int64_t last) {
  if (last <= 0) {
    last = kDefaultTraceWindow;
  }
  std::vector<CollectedEvent> events = CollectEvents();  // sorted oldest-first
  if (static_cast<int64_t>(events.size()) > last) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(last));
  }
  ChromeTraceWriter writer;
  std::vector<int> named;
  for (const CollectedEvent& e : events) {
    if (std::find(named.begin(), named.end(), e.track_id) == named.end()) {
      writer.AddThreadName(e.track_id, e.track);
      named.push_back(e.track_id);
    }
  }
  for (const CollectedEvent& e : events) {
    switch (e.phase) {
      case EventPhase::kSpan:
        writer.AddComplete(e.track_id, e.name, e.start_ns, e.dur_ns, e.stage, e.minibatch);
        break;
      case EventPhase::kInstant:
        writer.AddInstant(e.track_id, e.name, e.start_ns, e.stage, e.minibatch);
        break;
      case EventPhase::kFlowStart:
        writer.AddFlow(e.track_id, e.name, e.start_ns, 's', e.flow_id, e.stage, e.minibatch);
        break;
      case EventPhase::kFlowStep:
        writer.AddFlow(e.track_id, e.name, e.start_ns, 't', e.flow_id, e.stage, e.minibatch);
        break;
      case EventPhase::kFlowEnd:
        writer.AddFlow(e.track_id, e.name, e.start_ns, 'f', e.flow_id, e.stage, e.minibatch);
        break;
    }
  }
  HealthServer::Response r;
  r.content_type = "application/json";
  r.body = writer.ToJson();
  return r;
}

}  // namespace

HealthServer::HealthServer(std::string socket_path) : path_(std::move(socket_path)) {}

HealthServer::~HealthServer() { Stop(); }

HealthServer::Response HealthServer::Handle(const std::string& target) {
  std::string route = target;
  std::string query;
  const size_t q = target.find('?');
  if (q != std::string::npos) {
    route = target.substr(0, q);
    query = target.substr(q + 1);
  }
  if (route == "/metrics") {
    Response r;
    if (QueryString(query, "format") == "json") {
      r.content_type = "application/json";
      r.body = MetricsRegistry::Get().ToJson();
    } else {
      r.content_type = "text/plain; version=0.0.4";
      r.body = MetricsRegistry::Get().ToPrometheus();
    }
    return r;
  }
  if (route == "/healthz") {
    return Healthz();
  }
  if (route == "/trace") {
    return TraceWindow(QueryInt(query, "last", kDefaultTraceWindow));
  }
  Response r;
  r.status = 404;
  r.content_type = "text/plain";
  r.body = "unknown endpoint: " + route +
           " (try /metrics, /metrics?format=json, /healthz, /trace?last=N)\n";
  return r;
}

Status HealthServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("health server already started");
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket(AF_UNIX): %s", std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("health socket path too long: " + path_);
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  ::unlink(path_.c_str());  // replace a stale socket from a dead process
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    const Status status =
        Status::Internal(StrFormat("bind/listen %s: %s", path_.c_str(),
                                   std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  stop_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] {
    SetThreadLabel("health");
    AcceptLoop();
  });
  started_ = true;
  PD_LOG(INFO) << "health endpoint listening on " << path_;
  return Status::Ok();
}

void HealthServer::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(path_.c_str());
  started_ = false;
}

void HealthServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) {
      continue;  // timeout (re-check stop_) or EINTR
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    // Requests are tiny and local; serving inline keeps the loop single-threaded and the
    // stop discipline trivial. A stuck client can only stall the *next* poller.
    ServeConnection(fd);
    ::close(fd);
  }
}

void HealthServer::ServeConnection(int fd) {
  // Read until the request line is complete (clients send at most a few hundred bytes).
  std::string request;
  char buf[512];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  // "GET <target> HTTP/1.x" — anything else is a 400-class response with status text only.
  std::string target;
  if (request.compare(0, 4, "GET ") == 0) {
    const size_t end = request.find(' ', 4);
    if (end != std::string::npos) {
      target = request.substr(4, end - 4);
    }
  }
  Response response;
  if (target.empty()) {
    response.status = 400;
    response.content_type = "text/plain";
    response.body = "only GET requests are supported\n";
  } else {
    response = Handle(target);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string header = StrFormat(
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\nConnection: close"
      "\r\n\r\n",
      response.status, StatusText(response.status), response.content_type.c_str(),
      response.body.size());
  std::string reply = header + response.body;
  size_t sent = 0;
  while (sent < reply.size()) {
    const ssize_t n = ::write(fd, reply.data() + sent, reply.size() - sent);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
}

HealthServer* StartHealthServerFromEnv() {
  static std::mutex mutex;
  static HealthServer* server = nullptr;
  static bool attempted = false;
  std::lock_guard<std::mutex> lock(mutex);
  if (attempted) {
    return server;
  }
  attempted = true;
  const char* path = std::getenv("PIPEDREAM_HEALTH_SOCK");
  if (path == nullptr || path[0] == '\0') {
    return nullptr;
  }
  auto* candidate = new HealthServer(path);  // leaky: serves until process exit
  const Status status = candidate->Start();
  if (!status.ok()) {
    PD_LOG(WARNING) << "PIPEDREAM_HEALTH_SOCK: " << status.ToString();
    delete candidate;
    return nullptr;
  }
  server = candidate;
  std::atexit([] {
    std::lock_guard<std::mutex> exit_lock(mutex);
    if (server != nullptr) {
      server->Stop();
    }
  });
  return server;
}

}  // namespace obs
}  // namespace pipedream
