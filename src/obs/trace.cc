#include "src/obs/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pipedream {
namespace obs {
namespace internal {

std::atomic<bool> g_trace_enabled{false};

}  // namespace internal

namespace {

int64_t ProcessStartNs() {
  static const int64_t t0 = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now().time_since_epoch())
                                .count();
  return t0;
}

// One ring slot. Every field is a relaxed atomic: the owning thread is the only writer, but
// a flush may read concurrently (and a wrapping writer may overwrite what a flush is
// reading) — relaxed atomics make that benign-by-construction instead of UB.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> dur_ns{0};
  std::atomic<int64_t> minibatch{-1};
  std::atomic<int64_t> flow_id{-1};
  std::atomic<int32_t> stage{-1};
  std::atomic<uint8_t> phase{0};
};

struct TraceRing {
  static constexpr uint64_t kCapacity = 1 << 14;  // 16384 events per thread

  std::array<Slot, kCapacity> slots;
  // Total events ever written; slot index is head % kCapacity. Published with release so a
  // reader that acquires `head` sees every slot the owner filled before it.
  std::atomic<uint64_t> head{0};

  int track_id = 0;     // guarded by g_mutex
  std::string label;    // guarded by g_mutex

  void Record(const char* name, EventPhase phase, int64_t start_ns, int64_t dur_ns, int stage,
              int64_t minibatch, int64_t flow) {
    const uint64_t i = head.load(std::memory_order_relaxed);
    Slot& s = slots[i % kCapacity];
    s.name.store(name, std::memory_order_relaxed);
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.minibatch.store(minibatch, std::memory_order_relaxed);
    s.flow_id.store(flow, std::memory_order_relaxed);
    s.stage.store(stage, std::memory_order_relaxed);
    s.phase.store(static_cast<uint8_t>(phase), std::memory_order_relaxed);
    head.store(i + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<TraceRing*> active;        // rings owned by live threads
  std::vector<TraceRing*> free_rings;    // recycled from exited threads
  std::deque<CollectedEvent> retired;    // events preserved from exited threads
  int64_t dropped = 0;                   // ring-overflow overwrites (all time)
  int next_track_id = 0;
  std::string flush_path;                // PIPEDREAM_TRACE target ("" = none)
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaky: outlives every thread and the atexit flush
  return *r;
}

// Reads min(head, capacity) events out of a ring, oldest first. Caller holds no lock (slot
// reads are atomic); `head` is acquired so fully published events are seen consistently.
void DrainRing(const TraceRing& ring, int64_t* dropped, std::vector<CollectedEvent>* out) {
  const uint64_t h = ring.head.load(std::memory_order_acquire);
  const uint64_t n = std::min<uint64_t>(h, TraceRing::kCapacity);
  *dropped += static_cast<int64_t>(h - n);
  for (uint64_t i = h - n; i < h; ++i) {
    const Slot& s = ring.slots[i % TraceRing::kCapacity];
    const char* name = s.name.load(std::memory_order_relaxed);
    if (name == nullptr) {
      continue;  // slot claimed but not yet fully written by a racing writer
    }
    CollectedEvent e;
    e.track_id = ring.track_id;
    e.track = ring.label;
    e.name = name;
    e.phase = static_cast<EventPhase>(s.phase.load(std::memory_order_relaxed));
    e.start_ns = s.start_ns.load(std::memory_order_relaxed);
    e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    e.stage = static_cast<int>(s.stage.load(std::memory_order_relaxed));
    e.minibatch = s.minibatch.load(std::memory_order_relaxed);
    e.flow_id = s.flow_id.load(std::memory_order_relaxed);
    out->push_back(std::move(e));
  }
}

// Thread-local handle. On thread exit the ring's events are preserved in the retired
// backlog and the ring storage is recycled — worker threads are spawned per epoch, so rings
// must not leak per thread.
struct ThreadRingHandle {
  TraceRing* ring = nullptr;
  std::string pending_label;  // label set before the ring existed

  ~ThreadRingHandle() {
    if (ring == nullptr) {
      return;
    }
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<CollectedEvent> events;
    DrainRing(*ring, &reg.dropped, &events);
    for (CollectedEvent& e : events) {
      reg.retired.push_back(std::move(e));
    }
    ring->head.store(0, std::memory_order_relaxed);
    ring->label.clear();
    reg.active.erase(std::find(reg.active.begin(), reg.active.end(), ring));
    reg.free_rings.push_back(ring);
  }
};

thread_local ThreadRingHandle t_ring_handle;

TraceRing* GetThreadRing() {
  ThreadRingHandle& handle = t_ring_handle;
  if (handle.ring == nullptr) {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    TraceRing* ring;
    if (!reg.free_rings.empty()) {
      ring = reg.free_rings.back();
      reg.free_rings.pop_back();
    } else {
      ring = new TraceRing();  // leaked by design; recycled across threads
    }
    ring->track_id = reg.next_track_id++;
    ring->label = handle.pending_label.empty() ? StrFormat("thread-%d", ring->track_id)
                                               : handle.pending_label;
    reg.active.push_back(ring);
    handle.ring = ring;
  }
  return handle.ring;
}

void FlushAtExit() {
  Registry& reg = GetRegistry();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    path = reg.flush_path;
  }
  if (!path.empty()) {
    WriteTrace(path);
  }
}

// Arms tracing from the environment. Runs once when any binary linking the tracer starts.
struct TraceEnvInit {
  TraceEnvInit() {
    ProcessStartNs();  // pin the trace epoch as early as possible
    const char* path = std::getenv("PIPEDREAM_TRACE");
    if (path != nullptr && path[0] != '\0') {
      GetRegistry().flush_path = path;
      internal::g_trace_enabled.store(true, std::memory_order_relaxed);
      std::atexit(FlushAtExit);
    }
  }
};
TraceEnvInit g_trace_env_init;

// Escapes the characters JSON strings cannot contain raw. Labels and span names are ASCII
// identifiers in practice; this keeps arbitrary input from producing invalid JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Cast before the varargs promotion: a negative signed char would otherwise
          // sign-extend and format as \\uffffffXX, which is not a JSON escape.
          out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ArgsJson(int stage, int64_t minibatch) {
  std::string args;
  if (stage >= 0) {
    args += StrFormat("\"stage\":%d", stage);
  }
  if (minibatch >= 0) {
    if (!args.empty()) {
      args += ',';
    }
    args += StrFormat("\"minibatch\":%lld", static_cast<long long>(minibatch));
  }
  return "{" + args + "}";
}

}  // namespace

namespace internal {

void RecordEvent(const char* name, EventPhase phase, int64_t start_ns, int64_t dur_ns,
                 int stage, int64_t minibatch, int64_t flow_id) {
  GetThreadRing()->Record(name, phase, start_ns, dur_ns, stage, minibatch, flow_id);
}

}  // namespace internal

int64_t TraceClockNs() {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  return now - ProcessStartNs();
}

void StartTracing() { internal::g_trace_enabled.store(true, std::memory_order_relaxed); }

void StopTracing() { internal::g_trace_enabled.store(false, std::memory_order_relaxed); }

void ClearTrace() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.retired.clear();
  reg.dropped = 0;
  for (TraceRing* ring : reg.active) {
    ring->head.store(0, std::memory_order_relaxed);
  }
}

std::vector<CollectedEvent> CollectEvents() {
  Registry& reg = GetRegistry();
  std::vector<CollectedEvent> events;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    events.assign(reg.retired.begin(), reg.retired.end());
    int64_t dropped = 0;
    for (const TraceRing* ring : reg.active) {
      DrainRing(*ring, &dropped, &events);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const CollectedEvent& a, const CollectedEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

int64_t DroppedEvents() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  int64_t dropped = reg.dropped;
  for (const TraceRing* ring : reg.active) {
    const uint64_t h = ring->head.load(std::memory_order_acquire);
    if (h > TraceRing::kCapacity) {
      dropped += static_cast<int64_t>(h - TraceRing::kCapacity);
    }
  }
  return dropped;
}

void SetThreadLabel(const std::string& label) {
  SetThreadLogLabel(label);
  ThreadRingHandle& handle = t_ring_handle;
  handle.pending_label = label;
  if (handle.ring != nullptr) {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    handle.ring->label = label;
  }
}

void ChromeTraceWriter::AddThreadName(int tid, const std::string& name) {
  lines_.push_back(StrFormat(
      "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
      tid, JsonEscape(name).c_str()));
}

void ChromeTraceWriter::AddComplete(int tid, const char* name, int64_t ts_ns, int64_t dur_ns,
                                    int stage, int64_t minibatch) {
  // Chrome's ts/dur are microseconds; three decimals keep full nanosecond precision.
  lines_.push_back(StrFormat("{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"name\":\"%s\",\"ts\":%.3f,"
                             "\"dur\":%.3f,\"args\":%s}",
                             tid, JsonEscape(name).c_str(),
                             static_cast<double>(ts_ns) * 1e-3,
                             static_cast<double>(dur_ns) * 1e-3,
                             ArgsJson(stage, minibatch).c_str()));
}

void ChromeTraceWriter::AddInstant(int tid, const char* name, int64_t ts_ns, int stage,
                                   int64_t minibatch) {
  lines_.push_back(StrFormat("{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"name\":\"%s\",\"ts\":%.3f,"
                             "\"s\":\"t\",\"args\":%s}",
                             tid, JsonEscape(name).c_str(),
                             static_cast<double>(ts_ns) * 1e-3,
                             ArgsJson(stage, minibatch).c_str()));
}

void ChromeTraceWriter::AddFlow(int tid, const char* name, int64_t ts_ns, char phase,
                                int64_t flow_id, int stage, int64_t minibatch) {
  // "bp":"e" binds the hop to the slice enclosing ts on this track; without it the flow
  // attaches to the next slice and Perfetto draws the arrow one op too late.
  lines_.push_back(StrFormat(
      "{\"ph\":\"%c\",\"pid\":0,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s\",\"id\":%lld,"
      "\"ts\":%.3f,\"bp\":\"e\",\"args\":%s}",
      phase, tid, JsonEscape(name).c_str(), JsonEscape(name).c_str(),
      static_cast<long long>(flow_id), static_cast<double>(ts_ns) * 1e-3,
      ArgsJson(stage, minibatch).c_str()));
}

std::string ChromeTraceWriter::ToJson() const {
  std::string out = "{\n\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  for (size_t i = 0; i < lines_.size(); ++i) {
    out += lines_[i];
    if (i + 1 < lines_.size()) {
      out += ',';
    }
    out += '\n';
  }
  out += "]\n}\n";
  return out;
}

bool ChromeTraceWriter::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PD_LOG(WARNING) << "cannot open trace file " << path;
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) {
    PD_LOG(WARNING) << "short write to trace file " << path;
  }
  return ok;
}

std::string TraceToChromeJson() {
  const std::vector<CollectedEvent> events = CollectEvents();
  ChromeTraceWriter writer;
  // One thread_name metadata record per track, emitted before any of its events.
  std::vector<int> named;
  for (const CollectedEvent& e : events) {
    if (std::find(named.begin(), named.end(), e.track_id) == named.end()) {
      writer.AddThreadName(e.track_id, e.track);
      named.push_back(e.track_id);
    }
  }
  for (const CollectedEvent& e : events) {
    switch (e.phase) {
      case EventPhase::kSpan:
        writer.AddComplete(e.track_id, e.name, e.start_ns, e.dur_ns, e.stage, e.minibatch);
        break;
      case EventPhase::kInstant:
        writer.AddInstant(e.track_id, e.name, e.start_ns, e.stage, e.minibatch);
        break;
      case EventPhase::kFlowStart:
        writer.AddFlow(e.track_id, e.name, e.start_ns, 's', e.flow_id, e.stage, e.minibatch);
        break;
      case EventPhase::kFlowStep:
        writer.AddFlow(e.track_id, e.name, e.start_ns, 't', e.flow_id, e.stage, e.minibatch);
        break;
      case EventPhase::kFlowEnd:
        writer.AddFlow(e.track_id, e.name, e.start_ns, 'f', e.flow_id, e.stage, e.minibatch);
        break;
    }
  }
  return writer.ToJson();
}

bool WriteTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PD_LOG(WARNING) << "cannot open trace file " << path;
    return false;
  }
  const std::string json = TraceToChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) {
    PD_LOG(WARNING) << "short write to trace file " << path;
    return false;
  }
  const int64_t dropped = DroppedEvents();
  if (dropped > 0) {
    PD_LOG(WARNING) << "trace ring overflow: " << dropped << " oldest events were dropped";
  }
  PD_LOG(INFO) << "wrote trace to " << path;
  return true;
}

}  // namespace obs
}  // namespace pipedream
