#include "src/obs/bubble.h"

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace pipedream {
namespace obs {

const char* StallCauseName(StallCause cause) {
  switch (cause) {
    case StallCause::kStarvedUpstream:
      return "starved_upstream";
    case StallCause::kBackpressuredDownstream:
      return "backpressured_downstream";
    case StallCause::kWeightSync:
      return "weight_sync";
    case StallCause::kRecovery:
      return "recovery";
  }
  return "unknown";
}

const char* StallCauseSpanName(StallCause cause) {
  switch (cause) {
    case StallCause::kStarvedUpstream:
      return "stall/starved_upstream";
    case StallCause::kBackpressuredDownstream:
      return "stall/backpressured_downstream";
    case StallCause::kWeightSync:
      return "stall/weight_sync";
    case StallCause::kRecovery:
      return "stall/recovery";
  }
  return "stall";
}

BubbleAccountant::BubbleAccountant(int num_stages) : stages_(num_stages) {
  PD_CHECK(num_stages > 0);
  for (int s = 0; s < num_stages; ++s) {
    StageCell& cell = stages_[static_cast<size_t>(s)];
    for (int c = 0; c < kNumStallCauses; ++c) {
      const char* cause = StallCauseName(static_cast<StallCause>(c));
      cell.total_ns[static_cast<size_t>(c)] =
          GetCounter(StrFormat("runtime/stage%d/bubble/%s_ns", s, cause));
      auto value = std::make_shared<double>(0.0);
      cell.fraction[static_cast<size_t>(c)] = value;
      MetricsRegistry::Get().SetCallback(
          StrFormat("runtime/stage%d/bubble_frac/%s", s, cause),
          [value] { return *value; });
    }
  }
}

void BubbleAccountant::Add(int stage, StallCause cause, int64_t ns) {
  if (stage < 0 || stage >= num_stages() || ns <= 0) {
    return;
  }
  StageCell& cell = stages_[static_cast<size_t>(stage)];
  const size_t c = static_cast<size_t>(cause);
  cell.window_ns[c].fetch_add(ns, std::memory_order_relaxed);
  cell.total_ns[c]->Add(ns);
}

void BubbleAccountant::AddAll(StallCause cause, int64_t ns) {
  for (int s = 0; s < num_stages(); ++s) {
    Add(s, cause, ns);
  }
}

void BubbleAccountant::FinishWindow(int stage, double window_seconds) {
  if (stage < 0 || stage >= num_stages()) {
    return;
  }
  StageCell& cell = stages_[static_cast<size_t>(stage)];
  for (int c = 0; c < kNumStallCauses; ++c) {
    const int64_t ns = cell.window_ns[static_cast<size_t>(c)].exchange(
        0, std::memory_order_relaxed);
    *cell.fraction[static_cast<size_t>(c)] =
        window_seconds > 0 ? static_cast<double>(ns) * 1e-9 / window_seconds : 0.0;
  }
}

int64_t BubbleAccountant::WindowNs(int stage, StallCause cause) const {
  if (stage < 0 || stage >= num_stages()) {
    return 0;
  }
  return stages_[static_cast<size_t>(stage)]
      .window_ns[static_cast<size_t>(cause)]
      .load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace pipedream
