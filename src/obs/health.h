// Live pipeline-health endpoint: poll a running pipeline instead of waiting for exit.
//
// A HealthServer listens on an AF_UNIX stream socket and answers minimal HTTP/1.0 GETs —
// enough for `curl --unix-socket`, a Prometheus node-exporter sidecar, or a watchdog
// script, without an HTTP library:
//
//   GET /metrics              Prometheus text exposition (MetricsRegistry::ToPrometheus)
//   GET /metrics?format=json  the JSON snapshot instead
//   GET /healthz              JSON per-stage liveness from the heartbeat-watchdog gauges
//                             (runtime/stage<N>/alive, runtime/stage<N>/beat_age_ms);
//                             HTTP 200 when every stage is alive, 503 otherwise
//   GET /trace?last=N         Chrome trace JSON of the newest N recorded events (default
//                             256) — a live window into the swimlanes, flow events included
//
// The wire protocol deliberately deviates from the PDM1 framing the stage transport uses:
// health consumers are *external* (curl, Prometheus), and speaking plain HTTP over the
// Unix socket means zero custom client code. The listener machinery (socket lifecycle,
// poll-driven loop, stop discipline) mirrors SocketTransport's receiver threads.
//
// Arming: PIPEDREAM_HEALTH_SOCK=/path/to.sock starts a process-wide server (the runtime
// calls StartHealthServerFromEnv() from its constructors; stale socket files are
// unlinked). Tests construct HealthServer directly.
#ifndef SRC_OBS_HEALTH_H_
#define SRC_OBS_HEALTH_H_

#include <atomic>
#include <string>
#include <thread>

#include "src/common/status.h"

namespace pipedream {
namespace obs {

class HealthServer {
 public:
  // `socket_path` is bound at Start(); an existing file at the path is replaced.
  explicit HealthServer(std::string socket_path);
  ~HealthServer();

  HealthServer(const HealthServer&) = delete;
  HealthServer& operator=(const HealthServer&) = delete;

  Status Start();
  void Stop();  // idempotent; joins the accept loop and unlinks the socket file

  const std::string& path() const { return path_; }
  int64_t requests_served() const { return requests_.load(std::memory_order_relaxed); }

  // Request handling, exposed for tests: maps an HTTP request target ("/metrics",
  // "/trace?last=8", ...) to (status code, content type, body).
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };
  static Response Handle(const std::string& target);

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> requests_{0};
  std::thread acceptor_;
  bool started_ = false;
};

// Starts the process-wide server on PIPEDREAM_HEALTH_SOCK if the variable is set and no
// server is running yet. Idempotent and thread-safe; called from the runtime's entry
// points so any traced binary exposes the endpoint. Returns the server (nullptr when the
// variable is unset or the bind failed).
HealthServer* StartHealthServerFromEnv();

}  // namespace obs
}  // namespace pipedream

#endif  // SRC_OBS_HEALTH_H_
