#include "src/simexec/pipeline_sim.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/common/logging.h"
#include "src/planner/memory_model.h"
#include "src/planner/partitioner.h"
#include "src/schedule/interleaved.h"
#include "src/schedule/policy.h"
#include "src/sim/engine.h"

namespace pipedream {
namespace {

// Simulator for one run; holds all mutable state so SimulatePipeline stays re-entrant.
class PipelineSimulation {
 public:
  PipelineSimulation(const ModelProfile& profile, const PipelinePlan& plan,
                     const HardwareTopology& topology, const SimOptions& options)
      : profile_(profile), plan_(plan), topology_(topology), options_(options) {
    plan.Validate(profile.num_layers());
    if (!options.worker_speeds.empty()) {
      PD_CHECK_GE(static_cast<int>(options.worker_speeds.size()), topology.num_workers())
          << "worker_speeds must cover every topology worker";
      for (double s : options.worker_speeds) {
        PD_CHECK_GT(s, 0.0) << "worker speeds must be positive";
      }
    }
    if (options.fault.replan || options.fault.join_enabled) {
      PD_CHECK(options.schedule == ScheduleKind::kOneFOneB)
          << "elastic re-planning requires a 1F1B schedule";
    }
    if (Interleaved()) {
      PD_CHECK(plan.IsStraight()) << "interleaved simulation requires an unreplicated plan";
      PD_CHECK_GE(options.interleave_chunks, 1);
      PD_CHECK(plan.num_stages() % options.interleave_chunks == 0)
          << "interleaving needs num_stages divisible by interleave_chunks";
      PD_CHECK(!options.fault.enabled) << "fault injection is not modelled for interleaved";
      PD_CHECK_EQ(options.pipeline_depth_override, 0)
          << "pipeline_depth_override does not apply to the static interleaved schedule";
    }
    if (options.fault.join_enabled) {
      PD_CHECK(options.fault.join_worker >= 0 &&
               options.fault.join_worker < topology.num_workers())
          << "join_worker must be a topology worker id";
    }
    for (const StageAssignment& stage : plan_.stages()) {
      live_workers_.insert(stage.workers.begin(), stage.workers.end());
    }
    worker_busy_seconds_.assign(static_cast<size_t>(topology.num_workers()), 0.0);
    stage_peak_stash_merged_.assign(static_cast<size_t>(plan.num_stages()), 0);
    BuildStages();
  }

  SimResult Run();

 private:
  struct Replica {
    int stage = 0;
    int replica = 0;
    int worker = 0;
    bool failed = false;  // victim of an injected fault; dispatches nothing until restart
    std::set<int64_t> ready_forward;   // arrived activations (non-input stages)
    std::set<int64_t> ready_backward;  // arrived gradients (or local loss at the last stage)
    std::unique_ptr<SchedulingPolicy> policy;
    bool busy = false;
    int64_t next_admission = 0;  // input stage: next minibatch id in this replica's share
    int in_flight = 0;           // input stage: admitted but not yet backward-complete
    int admission_cap = 1;
    int stash = 0;
    int peak_stash = 0;
    double fwd_seconds = 0.0;  // stage compute scaled by this worker's 1/speed
    double bwd_seconds = 0.0;
    SimTime busy_time;
    int64_t fwd_started = 0;
    int64_t fwd_quota = 0;  // total forwards this replica will ever run
    int64_t bwd_done = 0;
    ResourceTimeline egress;  // NIC send port, serializes outgoing transfers
  };

  struct StageInfo {
    double fwd_seconds = 0.0;
    double bwd_seconds = 0.0;
    int64_t weight_bytes = 0;
    int64_t activation_bytes = 0;       // full stash per in-flight minibatch
    int64_t boundary_out_bytes = 0;     // activation shipped to the next stage
    double sync_seconds = 0.0;          // ring all_reduce wall time per sync round
    int bwd_in_round = 0;               // progress toward the next weight-sync collective
    int64_t rounds_started = 0;         // collectives launched
    int64_t rounds_synced = 0;          // collectives finished
    ResourceTimeline sync_timeline;
  };

  void BuildStages();
  void TryDispatchInterleaved(int physical_worker);
  double SpeedOf(int worker) const {
    if (options_.worker_speeds.empty()) {
      return 1.0;
    }
    PD_CHECK(worker >= 0 && worker < static_cast<int>(options_.worker_speeds.size()));
    return options_.worker_speeds[static_cast<size_t>(worker)];
  }
  // Heterogeneous partition over the current live worker set (the sim-side mirror of
  // ElasticTrainer::PlanOverLive); partitioner ids are remapped back to topology ids.
  PipelinePlan ReplanOverLive() const;
  void JoinRestart();
  Replica* ReplicaFor(int stage, int64_t minibatch);
  void TryDispatch(Replica* r);
  void OnComplete(Replica* r, WorkType type, int64_t minibatch);
  void SendBoundary(Replica* from, int dest_stage, int64_t minibatch, WorkType type);
  void MaybeFlushGPipe();
  void FireFault(Replica* victim);
  void Restart();
  bool IsGPipeLike() const { return IsFlushFamily(options_.schedule); }
  bool Interleaved() const { return options_.schedule == ScheduleKind::kInterleaved; }
  int InterleavedWorkers() const { return plan_.num_stages() / options_.interleave_chunks; }
  int RoundSize() const {
    return options_.schedule == ScheduleKind::kModelParallel ? 1 : options_.gpipe_microbatches;
  }
  // Resolved weight mode for a stage: global override wins, otherwise the plan's per-stage
  // assignment; flush-family schedules drain between rounds so versioning never applies.
  WeightMode StageMode(int s) const {
    if (IsGPipeLike()) {
      return WeightMode::kNaive;
    }
    return options_.weight_mode ? *options_.weight_mode : plan_.stage(s).weight_mode;
  }
  // Resolved activation recomputation for a stage: global override wins, otherwise the
  // plan's per-stage flag; the legacy gpipe_discard_activations switch also counts.
  bool StageRecompute(int s) const {
    if (IsGPipeLike() && options_.gpipe_discard_activations) {
      return true;
    }
    return options_.recompute.value_or(plan_.stage(s).recompute);
  }
  // Backwards per replica between weight-sync collectives (gradient accumulation).
  int64_t SyncRoundPerReplica() const {
    return std::max(1, options_.accumulation_steps);
  }

  const ModelProfile& profile_;
  PipelinePlan plan_;  // by value: a degraded restart rebuilds it without the dead replica
  const HardwareTopology& topology_;
  SimOptions options_;

  SimEngine engine_;
  std::vector<StageInfo> stages_;
  std::vector<std::vector<std::unique_ptr<Replica>>> replicas_;  // [stage][replica]
  std::vector<Replica*> all_replicas_;

  double comm_bytes_ = 0.0;
  int64_t completed_minibatches_ = 0;
  std::vector<SimTime> completion_times_;
  int64_t round_bwd_done_ = 0;  // flush family: backwards finished in the current round
  int64_t current_round_ = 0;
  ExecutionTrace trace_;

  // --- interleaved execution: each physical worker runs its statically generated op list
  // strictly in order; the cursor advances only when an op completes, and the per-worker
  // busy flag serializes its chunks on the shared device.
  std::vector<std::vector<ChunkOp>> interleaved_ops_;   // [physical worker]
  std::vector<size_t> interleaved_cursor_;
  std::vector<bool> interleaved_worker_busy_;

  // --- failure state. A restart rebuilds stages_/replicas_ from scratch; events scheduled
  // by the previous incarnation are cancelled by the incarnation counter (they check it
  // before touching any state, so dangling Replica pointers are never dereferenced).
  uint64_t incarnation_ = 0;
  int64_t first_minibatch_ = 0;  // this incarnation admits [first_minibatch_, num_minibatches)
  std::set<int> live_workers_;   // topology ids currently in the plan
  int replans_ = 0;
  double replan_latency_seconds_ = 0.0;
  bool join_fired_ = false;
  bool fault_fired_ = false;
  SimTime fault_time_;
  SimTime recovery_time_;
  int64_t completed_at_failure_ = 0;
  int64_t restart_from_ = 0;
  std::vector<double> worker_busy_seconds_;  // merged from pre-failure incarnations
  std::vector<int> stage_peak_stash_merged_;
};

void PipelineSimulation::BuildStages() {
  const int num_stages = plan_.num_stages();
  if (IsGPipeLike()) {
    PD_CHECK(plan_.IsStraight() || num_stages == 1)
        << "GPipe/model-parallel simulation requires an unreplicated pipeline";
  }
  stages_.resize(static_cast<size_t>(num_stages));
  replicas_.resize(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    const StageAssignment& assignment = plan_.stage(s);
    StageInfo& info = stages_[static_cast<size_t>(s)];
    for (int l = assignment.begin_layer; l < assignment.end_layer; ++l) {
      info.fwd_seconds += profile_.layers[static_cast<size_t>(l)].fwd_seconds;
      info.bwd_seconds += profile_.layers[static_cast<size_t>(l)].bwd_seconds;
    }
    if (options_.recompute.value_or(assignment.recompute)) {
      // Activation recomputation: the backward first re-runs the stage's forward from the
      // stashed boundary input.
      info.bwd_seconds += info.fwd_seconds;
    } else if (IsGPipeLike() && options_.gpipe_recompute_overhead > 0.0) {
      info.bwd_seconds += options_.gpipe_recompute_overhead * info.fwd_seconds;
    }
    info.weight_bytes = profile_.ParamBytes(assignment.begin_layer, assignment.end_layer);
    info.activation_bytes =
        profile_.ActivationBytes(assignment.begin_layer, assignment.end_layer);
    info.boundary_out_bytes =
        s + 1 < num_stages ? profile_.BoundaryActivationBytes(assignment.end_layer - 1) : 0;
    if (assignment.replicas > 1) {
      int worst_level = 1;
      for (size_t a = 0; a < assignment.workers.size(); ++a) {
        for (size_t b = a + 1; b < assignment.workers.size(); ++b) {
          worst_level = std::max(worst_level, topology_.SharedLevel(assignment.workers[a],
                                                                    assignment.workers[b]));
        }
      }
      const TopologyLevel& level = topology_.level(worst_level);
      // All_reduce wall time for one sync round (aggregating the m replicas' gradients):
      // ring over per-participant links, or serialized traffic on a shared bus.
      const double divisor =
          level.shared_bus ? 1.0 : static_cast<double>(assignment.replicas);
      info.sync_seconds = 2.0 * static_cast<double>(assignment.replicas - 1) *
                          static_cast<double>(info.weight_bytes) /
                          (divisor * level.effective_collective_bandwidth());
    }

    for (int r = 0; r < assignment.replicas; ++r) {
      auto replica = std::make_unique<Replica>();
      replica->stage = s;
      replica->replica = r;
      replica->worker = Interleaved()
                            ? plan_.stage(s % InterleavedWorkers()).workers[0]
                            : assignment.workers[static_cast<size_t>(r)];
      replica->fwd_seconds = info.fwd_seconds / SpeedOf(replica->worker);
      replica->bwd_seconds = info.bwd_seconds / SpeedOf(replica->worker);
      // This replica's round-robin share of [first_minibatch_, num_minibatches). The range
      // start is not necessarily a multiple of the replica count after a mid-run restart, so
      // align on the residue class.
      const int64_t first =
          first_minibatch_ +
          ((r - first_minibatch_) % assignment.replicas + assignment.replicas) %
              assignment.replicas;
      replica->next_admission = first;
      for (int64_t b = first; b < options_.num_minibatches; b += assignment.replicas) {
        ++replica->fwd_quota;
      }
      if (IsGPipeLike()) {
        if (options_.schedule == ScheduleKind::kPipeDreamFlush) {
          replica->policy =
              std::make_unique<PipeDreamFlushPolicy>(StartupDepth(plan_, s), RoundSize());
        } else {
          replica->policy = std::make_unique<GPipePolicy>(RoundSize());
        }
        replica->admission_cap = RoundSize();
      } else {
        int depth = StartupDepth(plan_, s);
        if (options_.pipeline_depth_override > 0) {
          depth = std::max(1, std::min(depth, options_.pipeline_depth_override - s));
        }
        replica->policy = std::make_unique<OneFOneBPolicy>(depth);
        replica->admission_cap = depth;
      }
      all_replicas_.push_back(replica.get());
      replicas_[static_cast<size_t>(s)].push_back(std::move(replica));
    }
  }
  if (Interleaved()) {
    interleaved_ops_ = BuildInterleavedSchedule(num_stages, options_.interleave_chunks,
                                                options_.num_minibatches);
    interleaved_cursor_.assign(interleaved_ops_.size(), 0);
    interleaved_worker_busy_.assign(interleaved_ops_.size(), false);
  }
}

PipelineSimulation::Replica* PipelineSimulation::ReplicaFor(int stage, int64_t minibatch) {
  const int r = RoundRobinReplica(minibatch, plan_.stage(stage).replicas);
  return replicas_[static_cast<size_t>(stage)][static_cast<size_t>(r)].get();
}

void PipelineSimulation::TryDispatch(Replica* r) {
  if (Interleaved()) {
    // The op order is static; the only question is whether the physical worker hosting
    // this chunk can run its next listed op yet.
    TryDispatchInterleaved(r->stage % InterleavedWorkers());
    return;
  }
  if (r->busy || r->failed) {
    return;
  }
  // Input-stage forward availability = admission control; other stages consume arrivals.
  int ready_fwd;
  if (r->stage == 0) {
    const bool have_data = r->next_admission < options_.num_minibatches;
    bool admit = have_data;
    if (IsGPipeLike()) {
      // Only admit microbatches of the current flush round.
      admit = have_data && r->next_admission / RoundSize() <= current_round_;
    } else {
      admit = have_data && r->in_flight < r->admission_cap;
    }
    ready_fwd = admit ? 1 : 0;
  } else {
    ready_fwd = static_cast<int>(r->ready_forward.size());
  }
  int ready_bwd = static_cast<int>(r->ready_backward.size());
  // BSP gating for replicated stages: at most one weight-sync collective may be outstanding,
  // so a replica cannot run the backward of round k until round k-2's gradients finished
  // synchronizing. This is what throttles sync-bound stages (including vanilla DP, the
  // single-replicated-stage special case) to the all_reduce rate.
  const StageInfo& stage_info = stages_[static_cast<size_t>(r->stage)];
  if (ready_bwd > 0 && plan_.stage(r->stage).replicas > 1 &&
      r->bwd_done > (stage_info.rounds_synced + 1) * SyncRoundPerReplica()) {
    ready_bwd = 0;
  }
  const bool exhausted = r->stage == 0 ? r->next_admission >= options_.num_minibatches
                                       : r->fwd_started == r->fwd_quota;

  const std::optional<WorkType> action = r->policy->Decide(ready_fwd, ready_bwd, exhausted);
  if (!action.has_value()) {
    return;
  }

  int64_t minibatch;
  double duration;
  if (*action == WorkType::kForward) {
    if (r->stage == 0) {
      minibatch = r->next_admission;
      r->next_admission += plan_.stage(0).replicas;
      ++r->in_flight;
    } else {
      minibatch = *r->ready_forward.begin();
      r->ready_forward.erase(r->ready_forward.begin());
    }
    ++r->stash;
    ++r->fwd_started;
    r->peak_stash = std::max(r->peak_stash, r->stash);
    duration = r->fwd_seconds;
  } else {
    minibatch = *r->ready_backward.begin();
    r->ready_backward.erase(r->ready_backward.begin());
    duration = r->bwd_seconds;
  }

  // Injected device failure: the victim dies on the threshold of this work item. Its state
  // is left as-is (the restart discards the whole incarnation anyway); the rest of the
  // pipeline keeps running until it starves, which is exactly the throughput dip.
  if (options_.fault.enabled && !fault_fired_ && r->stage == options_.fault.stage &&
      r->replica == options_.fault.replica && minibatch >= options_.fault.at_minibatch) {
    FireFault(r);
    return;
  }

  r->busy = true;
  r->policy->OnStarted(*action);
  const SimTime start = engine_.now();
  const SimTime dur = SimTime::FromSeconds(duration);
  if (options_.record_trace) {
    trace_.Add({r->worker, r->stage, *action, minibatch, start, start + dur});
  }
  r->busy_time += dur;
  engine_.ScheduleAfter(dur, [this, r, type = *action, minibatch, inc = incarnation_] {
    if (inc != incarnation_) {
      return;  // event from a pre-restart incarnation; r may dangle — do not touch it
    }
    OnComplete(r, type, minibatch);
  });
}

void PipelineSimulation::TryDispatchInterleaved(int physical_worker) {
  const size_t w = static_cast<size_t>(physical_worker);
  if (interleaved_worker_busy_[w] || interleaved_cursor_[w] >= interleaved_ops_[w].size()) {
    return;
  }
  const ChunkOp op = interleaved_ops_[w][interleaved_cursor_[w]];
  Replica* r = replicas_[static_cast<size_t>(op.stage)][0].get();
  int64_t minibatch;
  double duration;
  if (op.type == WorkType::kForward) {
    if (r->stage == 0) {
      // Admission control is baked into the generated list (the generator ran the NOAM
      // gate); in_flight is kept for accounting only.
      PD_CHECK_LT(r->next_admission, options_.num_minibatches);
      minibatch = r->next_admission;
      ++r->next_admission;
      ++r->in_flight;
    } else {
      if (r->ready_forward.empty()) {
        return;  // the listed op's input has not arrived yet
      }
      minibatch = *r->ready_forward.begin();
      r->ready_forward.erase(r->ready_forward.begin());
    }
    ++r->stash;
    ++r->fwd_started;
    r->peak_stash = std::max(r->peak_stash, r->stash);
    duration = r->fwd_seconds;
  } else {
    if (r->ready_backward.empty()) {
      return;
    }
    minibatch = *r->ready_backward.begin();
    r->ready_backward.erase(r->ready_backward.begin());
    duration = r->bwd_seconds;
  }
  ++interleaved_cursor_[w];
  interleaved_worker_busy_[w] = true;
  r->busy = true;
  const SimTime start = engine_.now();
  const SimTime dur = SimTime::FromSeconds(duration);
  if (options_.record_trace) {
    trace_.Add({r->worker, r->stage, op.type, minibatch, start, start + dur});
  }
  r->busy_time += dur;
  engine_.ScheduleAfter(dur, [this, r, w, type = op.type, minibatch] {
    interleaved_worker_busy_[w] = false;
    OnComplete(r, type, minibatch);
  });
}

void PipelineSimulation::SendBoundary(Replica* from, int dest_stage, int64_t minibatch,
                                      WorkType type) {
  Replica* dest = ReplicaFor(dest_stage, minibatch);
  const int64_t bytes = type == WorkType::kForward
                            ? stages_[static_cast<size_t>(from->stage)].boundary_out_bytes
                            : stages_[static_cast<size_t>(dest_stage)].boundary_out_bytes;
  SimTime arrival = engine_.now();
  if (bytes > 0 && from->worker != dest->worker) {
    // The transport cost model (SimOptions) composes with the topology: the message-framing
    // overhead adds to the physical link latency, and the framed-stream bandwidth cap
    // tightens (never loosens) the link rate.
    double bw = topology_.EffectiveP2pBandwidthBetween(from->worker, dest->worker);
    if (options_.transport_bandwidth_bytes_per_s > 0.0) {
      bw = std::min(bw, options_.transport_bandwidth_bytes_per_s);
    }
    const double lat = topology_.LatencyBetween(from->worker, dest->worker) +
                       options_.transport_latency_s;
    const SimTime duration = SimTime::FromSeconds(static_cast<double>(bytes) / bw);
    const SimTime depart = from->egress.Acquire(engine_.now(), duration);
    arrival = depart + duration + SimTime::FromSeconds(lat);
    comm_bytes_ += static_cast<double>(bytes);
  }
  engine_.ScheduleAt(arrival, [this, dest, minibatch, type, inc = incarnation_] {
    if (inc != incarnation_) {
      return;
    }
    if (type == WorkType::kForward) {
      dest->ready_forward.insert(minibatch);
    } else {
      dest->ready_backward.insert(minibatch);
    }
    TryDispatch(dest);
  });
}

void PipelineSimulation::MaybeFlushGPipe() {
  const int64_t round_start = current_round_ * RoundSize();
  const int64_t round_size =
      std::min<int64_t>(RoundSize(), options_.num_minibatches - round_start);
  if (round_bwd_done_ < round_size * plan_.num_stages()) {
    return;
  }
  // Pipeline flush: every stage applies its aggregated weight update, then the next round's
  // microbatches may enter. Update time is negligible relative to compute and is charged 0.
  round_bwd_done_ = 0;
  ++current_round_;
  for (Replica* r : all_replicas_) {
    static_cast<RoundPolicy*>(r->policy.get())->OnFlushComplete();
  }
  for (Replica* r : all_replicas_) {
    TryDispatch(r);
  }
}

void PipelineSimulation::FireFault(Replica* victim) {
  fault_fired_ = true;
  victim->failed = true;
  fault_time_ = engine_.now();
  // Detection (heartbeat timeout) plus checkpoint reload / respawn; the pipeline resumes
  // only after both. A re-planning restart additionally pays the partitioner + migration
  // latency. Surviving stages keep draining whatever work they already hold.
  double stall = options_.fault.detection_seconds + options_.fault.restart_seconds;
  if (options_.fault.replan) {
    stall += options_.fault.replan_seconds;
  }
  const SimTime resume = fault_time_ + SimTime::FromSeconds(stall);
  engine_.ScheduleAt(resume, [this] { Restart(); });
}

void PipelineSimulation::Restart() {
  completed_at_failure_ = completed_minibatches_;
  // Durable progress: roll back to the newest checkpoint boundary (and, under GPipe, to a
  // whole flush round so the round accounting re-aligns).
  const int64_t granularity = std::max<int64_t>(1, options_.fault.checkpoint_every);
  restart_from_ = completed_at_failure_ / granularity * granularity;
  if (IsGPipeLike()) {
    restart_from_ = restart_from_ / RoundSize() * RoundSize();
  }
  recovery_time_ = engine_.now();

  // Merge the dying incarnation's per-worker accounting before discarding it.
  if (stage_peak_stash_merged_.size() < stages_.size()) {
    stage_peak_stash_merged_.resize(stages_.size(), 0);
  }
  for (Replica* r : all_replicas_) {
    worker_busy_seconds_[static_cast<size_t>(r->worker)] += r->busy_time.ToSeconds();
    stage_peak_stash_merged_[static_cast<size_t>(r->stage)] = std::max(
        stage_peak_stash_merged_[static_cast<size_t>(r->stage)], r->peak_stash);
  }

  if (options_.fault.replan) {
    // Elastic restart: the victim leaves the cluster for good and the partitioner re-plans
    // over the survivors' speeds — layer ranges move, so the new plan may have a different
    // stage count entirely. State migrates through the checkpoint (layer-range restore).
    const StageAssignment& victim_stage = plan_.stage(options_.fault.stage);
    PD_CHECK(options_.fault.replica >= 0 &&
             options_.fault.replica < static_cast<int>(victim_stage.workers.size()));
    live_workers_.erase(victim_stage.workers[static_cast<size_t>(options_.fault.replica)]);
    PD_CHECK(!live_workers_.empty()) << "every worker is dead";
    plan_ = ReplanOverLive();
    ++replans_;
    replan_latency_seconds_ += options_.fault.replan_seconds;
  } else if (options_.fault.degraded) {
    // Eject the dead replica: the stage keeps running on the survivors with the round-robin
    // minibatch assignment rebalanced over the smaller rotation.
    std::vector<StageAssignment> stages = plan_.stages();
    StageAssignment& victim_stage = stages[static_cast<size_t>(options_.fault.stage)];
    PD_CHECK_GT(victim_stage.replicas, 1)
        << "cannot eject the only replica of stage " << options_.fault.stage;
    victim_stage.workers.erase(victim_stage.workers.begin() + options_.fault.replica);
    --victim_stage.replicas;
    plan_ = PipelinePlan(std::move(stages));
  }

  // New incarnation: every event the old one scheduled is now inert.
  ++incarnation_;
  stages_.clear();
  replicas_.clear();
  all_replicas_.clear();
  first_minibatch_ = restart_from_;
  completed_minibatches_ = restart_from_;
  round_bwd_done_ = 0;
  current_round_ = IsGPipeLike() ? restart_from_ / RoundSize() : 0;
  BuildStages();
  for (Replica* r : all_replicas_) {
    TryDispatch(r);
  }
}

PipelinePlan PipelineSimulation::ReplanOverLive() const {
  std::vector<WorkerSpec> specs;
  const std::vector<int> ids(live_workers_.begin(), live_workers_.end());
  for (int w : ids) {
    WorkerSpec spec;
    spec.speed = SpeedOf(w);
    specs.push_back(spec);
  }
  // Flat-interconnect approximation for the partitioner's communication model: the p2p rate
  // between the first live pair (uniform topologies, the common sim configuration).
  double bandwidth = 1e9;
  if (ids.size() >= 2) {
    bandwidth = topology_.EffectiveP2pBandwidthBetween(ids[0], ids[1]);
  }
  const PartitionResult repartition = PartitionHeterogeneous(profile_, specs, bandwidth);
  std::vector<StageAssignment> stages = repartition.plan.stages();
  for (StageAssignment& stage : stages) {
    for (int& id : stage.workers) {
      id = ids[static_cast<size_t>(id)];
    }
    std::sort(stage.workers.begin(), stage.workers.end());
  }
  PipelinePlan plan{std::move(stages)};
  plan.Validate(profile_.num_layers());
  return plan;
}

void PipelineSimulation::JoinRestart() {
  // Quiesce-and-migrate at a checkpoint boundary: completed work survives (the boundary
  // writes a fresh plan-tagged checkpoint), only in-flight minibatches re-execute.
  if (stage_peak_stash_merged_.size() < stages_.size()) {
    stage_peak_stash_merged_.resize(stages_.size(), 0);
  }
  for (Replica* r : all_replicas_) {
    worker_busy_seconds_[static_cast<size_t>(r->worker)] += r->busy_time.ToSeconds();
    stage_peak_stash_merged_[static_cast<size_t>(r->stage)] = std::max(
        stage_peak_stash_merged_[static_cast<size_t>(r->stage)], r->peak_stash);
  }
  live_workers_.insert(options_.fault.join_worker);
  plan_ = ReplanOverLive();
  ++replans_;
  replan_latency_seconds_ += options_.fault.replan_seconds;
  ++incarnation_;
  stages_.clear();
  replicas_.clear();
  all_replicas_.clear();
  first_minibatch_ = completed_minibatches_;
  round_bwd_done_ = 0;
  current_round_ = 0;
  BuildStages();
  for (Replica* r : all_replicas_) {
    TryDispatch(r);
  }
}

void PipelineSimulation::OnComplete(Replica* r, WorkType type, int64_t minibatch) {
  r->busy = false;
  StageInfo& stage = stages_[static_cast<size_t>(r->stage)];
  const int num_stages = plan_.num_stages();

  if (type == WorkType::kForward) {
    if (r->stage + 1 < num_stages) {
      SendBoundary(r, r->stage + 1, minibatch, WorkType::kForward);
    } else {
      // Output stage: the loss gradient is local; the backward is immediately ready.
      r->ready_backward.insert(minibatch);
    }
  } else {
    --r->stash;
    ++r->bwd_done;
    if (r->stage > 0) {
      SendBoundary(r, r->stage - 1, minibatch, WorkType::kBackward);
    } else {
      --r->in_flight;
      ++completed_minibatches_;
      completion_times_.push_back(engine_.now());
      // Elastic join: once enough minibatches completed, the new worker is admitted after
      // one replan_seconds window (the partitioner runs while the old plan keeps working;
      // whatever is in flight when the switch lands re-executes under the new plan).
      if (options_.fault.join_enabled && !join_fired_ &&
          completed_minibatches_ >= options_.fault.join_at_minibatch) {
        join_fired_ = true;
        engine_.ScheduleAfter(SimTime::FromSeconds(options_.fault.replan_seconds),
                              [this, inc = incarnation_] {
                                if (inc == incarnation_) {
                                  JoinRestart();
                                }
                              });
      }
    }
    // Replicated-stage weight synchronization: one collective per round of `replicas`
    // backwards, overlapped with compute (wait-free), serialized on the stage's collective
    // engine.
    const int replicas = plan_.stage(r->stage).replicas;
    if (replicas > 1) {
      // One collective per accumulation round: `replicas * accumulation_steps` backwards
      // contribute to each synchronized update.
      if (++stage.bwd_in_round == replicas * SyncRoundPerReplica()) {
        stage.bwd_in_round = 0;
        ++stage.rounds_started;
        const SimTime start = stage.sync_timeline.Acquire(
            engine_.now(), SimTime::FromSeconds(stage.sync_seconds));
        comm_bytes_ += 2.0 * static_cast<double>(replicas - 1) *
                       static_cast<double>(stage.weight_bytes);
        StageInfo* stage_ptr = &stage;
        const int stage_index = r->stage;
        engine_.ScheduleAt(start + SimTime::FromSeconds(stage.sync_seconds),
                           [this, stage_ptr, stage_index, inc = incarnation_] {
                             if (inc != incarnation_) {
                               return;
                             }
                             ++stage_ptr->rounds_synced;
                             for (auto& replica : replicas_[static_cast<size_t>(stage_index)]) {
                               TryDispatch(replica.get());
                             }
                           });
      }
    }
    if (IsGPipeLike()) {
      ++round_bwd_done_;
      MaybeFlushGPipe();
    }
  }
  TryDispatch(r);
}

SimResult PipelineSimulation::Run() {
  for (Replica* r : all_replicas_) {
    TryDispatch(r);
  }
  engine_.Run();
  PD_CHECK_EQ(completed_minibatches_, options_.num_minibatches)
      << "simulation deadlocked: " << completed_minibatches_ << " of "
      << options_.num_minibatches << " minibatches completed";

  SimResult result;
  // Account trailing weight-sync collectives into the makespan.
  SimTime end = engine_.now();
  for (StageInfo& s : stages_) {
    end = std::max(end, s.sync_timeline.next_free());
  }
  result.total_seconds = end.ToSeconds();

  // Steady-state throughput over the back half of the run (skips pipeline fill).
  const size_t n = completion_times_.size();
  if (n >= 4) {
    const size_t half = n / 2;
    const double window =
        (completion_times_[n - 1] - completion_times_[half - 1]).ToSeconds();
    if (window > 0.0) {
      result.throughput_samples_per_sec = static_cast<double>(n - half) *
                                          static_cast<double>(profile_.minibatch_size) /
                                          window;
    }
  }
  if (result.throughput_samples_per_sec == 0.0 && result.total_seconds > 0.0) {
    result.throughput_samples_per_sec =
        static_cast<double>(options_.num_minibatches) *
        static_cast<double>(profile_.minibatch_size) / result.total_seconds;
  }
  result.comm_bytes_total = comm_bytes_;

  const int max_worker = topology_.num_workers();
  result.worker_utilization.assign(static_cast<size_t>(max_worker), 0.0);
  result.worker_peak_memory.assign(static_cast<size_t>(max_worker), 0);
  result.stage_peak_stash.assign(static_cast<size_t>(plan_.num_stages()), 0);
  if (result.total_seconds > 0.0) {
    // Busy time accumulated by pre-restart incarnations (a degraded run's dead worker only
    // appears here).
    for (size_t w = 0; w < worker_busy_seconds_.size(); ++w) {
      result.worker_utilization[w] = worker_busy_seconds_[w] / result.total_seconds;
    }
  }
  for (size_t s = 0;
       s < std::min(stage_peak_stash_merged_.size(), result.stage_peak_stash.size()); ++s) {
    result.stage_peak_stash[s] = stage_peak_stash_merged_[s];
  }
  for (Replica* r : all_replicas_) {
    if (result.total_seconds > 0.0) {
      result.worker_utilization[static_cast<size_t>(r->worker)] +=
          r->busy_time.ToSeconds() / result.total_seconds;
    }
    const StageInfo& stage = stages_[static_cast<size_t>(r->stage)];
    // Peak memory via the shared model (src/planner/memory_model.h), fed the *measured*
    // stash depth: naive keeps current weights + gradient, stashing adds (depth - 1) full
    // versions, 2BW a single shadow buffer; a recomputing stage stashes only boundary
    // inputs and materializes one full activation set during the recomputed backward.
    const int64_t boundary_in =
        r->stage > 0
            ? profile_.BoundaryActivationBytes(plan_.stage(r->stage).begin_layer - 1)
            : 0;
    const int64_t memory = StagePeakMemoryBytes(
        stage.weight_bytes, stage.activation_bytes, boundary_in, StageMode(r->stage),
        StageRecompute(r->stage), std::max(1, r->peak_stash));
    // += rather than =: an interleaved physical worker hosts several chunk-stages and pays
    // for all of them (plans without chunking assign each worker exactly once).
    result.worker_peak_memory[static_cast<size_t>(r->worker)] += memory;
    result.stage_peak_stash[static_cast<size_t>(r->stage)] =
        std::max(result.stage_peak_stash[static_cast<size_t>(r->stage)], r->peak_stash);
  }
  if (fault_fired_) {
    result.fault_seconds = fault_time_.ToSeconds();
    result.recovery_seconds = recovery_time_.ToSeconds();
    result.reexecuted_minibatches = completed_at_failure_ - restart_from_;
    // Steady-state throughput after the pipeline resumed (for degraded runs, the survivors'
    // sustained rate).
    int64_t after = 0;
    for (const SimTime& t : completion_times_) {
      if (t > recovery_time_) {
        ++after;
      }
    }
    const double window = (engine_.now() - recovery_time_).ToSeconds();
    if (after > 0 && window > 0.0) {
      result.post_recovery_throughput_samples_per_sec =
          static_cast<double>(after) * static_cast<double>(profile_.minibatch_size) / window;
    }
  }
  result.replans = replans_;
  result.replan_latency_seconds = replan_latency_seconds_;
  result.final_plan = plan_;
  result.trace = std::move(trace_);
  return result;
}

}  // namespace

SimResult SimulatePipeline(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology, const SimOptions& options) {
  PipelineSimulation sim(profile, plan, topology, options);
  return sim.Run();
}

DataParallelResult SimulateDataParallelBsp(const ModelProfile& profile,
                                           const HardwareTopology& topology, int workers) {
  PD_CHECK_GE(workers, 1);
  PD_CHECK_LE(workers, topology.num_workers());
  DataParallelResult result;
  const int n = profile.num_layers();
  double compute = 0.0;
  for (const LayerProfile& l : profile.layers) {
    compute += l.total_seconds();
  }
  result.compute_seconds = compute;
  if (workers == 1) {
    result.iteration_seconds = compute;
    result.throughput_samples_per_sec =
        static_cast<double>(profile.minibatch_size) / compute;
    return result;
  }

  // Per-layer all_reduce cost over the hierarchy, NCCL-style: a reduce phase inside each
  // level (engaging n_k components) per level, each at that level's effective collective
  // bandwidth. Wait-free backprop: layer l's gradient chunk becomes ready when its backward
  // finishes; chunks serialize on the NIC. Forward runs first, then backwards from the last
  // layer down.
  auto allreduce_seconds = [&](int64_t bytes) {
    double total = 0.0;
    for (int k = 1; k <= topology.num_levels(); ++k) {
      const int below = topology.WorkersPerComponent(k - 1);
      const int engaged = std::min(topology.level(k).fanout, (workers + below - 1) / below);
      if (engaged <= 1) {
        continue;
      }
      const double divisor =
          topology.level(k).shared_bus ? 1.0 : static_cast<double>(engaged);
      total += 2.0 * static_cast<double>(engaged - 1) / divisor * static_cast<double>(bytes) /
               topology.level(k).effective_collective_bandwidth();
    }
    return total;
  };
  double fwd_total = 0.0;
  for (const LayerProfile& l : profile.layers) {
    fwd_total += l.fwd_seconds;
  }
  double t = fwd_total;
  double comm_free = 0.0;
  double total_weight_bytes = 0.0;
  for (int l = n - 1; l >= 0; --l) {
    const LayerProfile& layer = profile.layers[static_cast<size_t>(l)];
    t += layer.bwd_seconds;  // backward of layer l completes at time t
    if (layer.param_bytes == 0) {
      continue;
    }
    total_weight_bytes += static_cast<double>(layer.param_bytes);
    const double chunk = allreduce_seconds(layer.param_bytes);
    const double start = std::max(t, comm_free);
    comm_free = start + chunk;
  }
  const double iteration = std::max(compute, comm_free);
  result.iteration_seconds = iteration;
  result.stall_seconds = iteration - compute;
  result.comm_overhead_fraction = iteration > 0.0 ? result.stall_seconds / iteration : 0.0;
  result.throughput_samples_per_sec = static_cast<double>(workers) *
                                      static_cast<double>(profile.minibatch_size) / iteration;
  result.comm_bytes_per_sample =
      2.0 * static_cast<double>(workers - 1) * total_weight_bytes /
      (static_cast<double>(workers) * static_cast<double>(profile.minibatch_size));
  return result;
}

}  // namespace pipedream
