// Event-driven cluster simulator for pipeline-parallel training.
//
// Executes a (profile, plan, topology) triple under a scheduling policy — 1F1B / 1F1B-RR,
// GPipe with m microbatches per flush, or non-pipelined model parallelism — in deterministic
// virtual time, modelling per-worker compute serialization, per-worker NIC egress
// serialization for activations/gradients, and per-stage weight-synchronization collectives
// for replicated stages. This is the measurement substrate standing in for the paper's GPU
// clusters: it reports the throughput, utilization, memory, and communication quantities the
// evaluation section's tables and figures are built from.
#ifndef SRC_SIMEXEC_PIPELINE_SIM_H_
#define SRC_SIMEXEC_PIPELINE_SIM_H_

#include <optional>
#include <vector>

#include "src/common/schedule.h"
#include "src/common/weight_mode.h"
#include "src/planner/plan.h"
#include "src/profile/layer_profile.h"
#include "src/schedule/trace.h"
#include "src/sim/topology.h"

namespace pipedream {

// ScheduleKind — the zoo of docs/SCHEDULES.md — lives in src/common/schedule.h; this header
// re-exports it for its historical users (the sim was its first home).

// One injected device failure (mirrors the runtime's FaultPlan at simulation fidelity).
// The victim worker dies when it is about to process `at_minibatch`; `detection_seconds`
// later the failure is classified, a restart costing `restart_seconds` reloads the newest
// checkpoint (minibatch progress rounded down to `checkpoint_every`), and every minibatch
// past that boundary re-executes. With `degraded` set the victim is instead ejected from its
// replicated stage and the survivors carry the rebalanced round-robin load.
// For replicated / GPipe pipelines choose `checkpoint_every` as a multiple of the stage
// replica counts (and the GPipe round size) so the rollback point is round-aligned.
//
// Elastic events (mirroring ElasticTrainer): with `replan` set, the restart does not respawn
// or eject in place — it re-runs the heterogeneous partitioner over the SURVIVING workers
// (speeds from SimOptions::worker_speeds) and resumes under the new plan, charging
// `replan_seconds` of partitioner + migration latency on top of detection + restart. A join
// event (`join_enabled`) fires once `join_at_minibatch` minibatches have completed: the
// pipeline quiesces, `join_worker` is admitted to the live set, and the partitioner re-plans
// over the enlarged cluster — no completed work is rolled back (the quiesce point writes a
// fresh checkpoint), only in-flight minibatches re-execute. Both require a non-GPipe
// schedule.
struct SimFault {
  bool enabled = false;
  int stage = 0;
  int replica = 0;
  int64_t at_minibatch = 0;
  double detection_seconds = 0.5;
  double restart_seconds = 2.0;
  int64_t checkpoint_every = 100;
  bool degraded = false;
  // --- elastic re-planning
  bool replan = false;           // re-partition over survivors instead of respawn/eject
  double replan_seconds = 0.5;   // partitioner + state-migration latency per re-plan
  bool join_enabled = false;     // admit a new worker mid-run
  int64_t join_at_minibatch = 0;
  int join_worker = 0;           // topology worker id joining (not in the initial plan)
};

struct SimOptions {
  ScheduleKind schedule = ScheduleKind::kOneFOneB;
  int64_t num_minibatches = 200;
  int gpipe_microbatches = 4;        // round size per flush (kGPipe / kPipeDreamFlush)
  int pipeline_depth_override = 0;   // 1F1B in-flight depth; 0 = the plan's startup depths
  // Virtual chunk-stages per physical worker for kInterleaved: the (straight) plan's
  // num_stages must be divisible by this, stage s runs on physical worker s mod
  // (num_stages / interleave_chunks), and each worker executes its chunks' ops in the
  // statically generated order of BuildInterleavedSchedule. 1 elsewhere.
  int interleave_chunks = 1;
  // Per-stage activation recomputation, mirroring the runtime: unset = the plan's per-stage
  // StageAssignment::recompute flags; set = a global override. A recomputing stage stashes
  // only its inbound boundary activation per in-flight minibatch (the memory model drops
  // the act * in_flight term) and re-runs its forward before each backward (backward time
  // grows by one forward).
  std::optional<bool> recompute;
  // Weight-update discipline, mirroring the runtime: unset = the plan's per-stage modes;
  // set = a global override. Affects the memory model (kStashing scales with the stash
  // depth, kDoubleBuffered is a constant 3x weights) — GPipe-family schedules are priced as
  // kNaive regardless.
  std::optional<WeightMode> weight_mode;
  // Gradient accumulation boundary (§3.3 aggregation / the 2BW minibatch): replicated
  // stages launch one weight-sync collective per `replicas * accumulation_steps` backwards
  // instead of per `replicas`.
  int accumulation_steps = 1;
  double gpipe_recompute_overhead = 0.0;  // extra backward time as a fraction of forward
                                          // (activation recomputation, Chen et al.)
  bool gpipe_discard_activations = false;  // stash only boundary activations (with recompute)
  bool record_trace = false;
  int trace_worker_limit = 16;
  SimFault fault;                    // optional device-failure event
  // Transport cost model, matching the runtime's pluggable transport layer: a per-message
  // software overhead (serialize + frame + syscall) added to every inter-worker boundary
  // transfer, and an optional bandwidth cap below the topology's link rate (a framed byte
  // stream rarely reaches line rate). Zero means "free"/"uncapped" — the in-proc transport.
  // bench_serving fits these from BENCH_serve.json so the simulator can price a socket
  // deployment without running one.
  double transport_latency_s = 0.0;
  double transport_bandwidth_bytes_per_s = 0.0;
  // Per-worker relative speed factors indexed by topology worker id (1.0 = the profile's
  // reference device; 0.5 = half speed, so compute takes 2x). Empty = uniform. Replica
  // compute time scales by 1/speed; re-plans feed these to PartitionHeterogeneous.
  std::vector<double> worker_speeds;
};

struct SimResult {
  double total_seconds = 0.0;                 // makespan of the whole run
  double throughput_samples_per_sec = 0.0;    // steady-state, measured over the back half
  double comm_bytes_total = 0.0;              // activations + gradients + weight sync
  std::vector<double> worker_utilization;     // busy fraction per worker
  std::vector<int64_t> worker_peak_memory;    // bytes, per worker
  std::vector<int> stage_peak_stash;          // max in-flight minibatches per stage
  ExecutionTrace trace;                       // populated when record_trace is set
  // --- failure accounting (only meaningful when options.fault fired)
  double fault_seconds = -1.0;                // virtual time the device died
  double recovery_seconds = -1.0;             // virtual time the pipeline resumed
  int64_t reexecuted_minibatches = 0;         // completed work rolled back by the restart
  double post_recovery_throughput_samples_per_sec = 0.0;  // steady state after recovery
  // --- elastic accounting (only meaningful when fault.replan / fault.join_enabled fired)
  int replans = 0;                            // partitioner re-runs (death + join events)
  double replan_latency_seconds = 0.0;        // total replan_seconds charged
  PipelinePlan final_plan;                    // the plan the run finished under
};

SimResult SimulatePipeline(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology, const SimOptions& options = {});

// Data-parallel BSP with wait-free backpropagation: per-layer gradient all_reduce chunks are
// enqueued as each layer's backward completes and overlap with the remaining backward
// compute; the next iteration's forward waits for both. Returns per-iteration stall
// accounting — the generator for Figure 1.
struct DataParallelResult {
  double iteration_seconds = 0.0;       // steady-state wall time per iteration
  double compute_seconds = 0.0;         // single-worker fwd+bwd time
  double stall_seconds = 0.0;           // communication not hidden by compute
  double comm_overhead_fraction = 0.0;  // stall / iteration (the Figure 1 metric)
  double throughput_samples_per_sec = 0.0;  // workers * minibatch / iteration
  double comm_bytes_per_sample = 0.0;
};

DataParallelResult SimulateDataParallelBsp(const ModelProfile& profile,
                                           const HardwareTopology& topology, int workers);

}  // namespace pipedream

#endif  // SRC_SIMEXEC_PIPELINE_SIM_H_
