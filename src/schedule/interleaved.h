// Static schedule generation for interleaved virtual stages (ScheduleKind::kInterleaved).
//
// An interleaved plan is a straight pipeline of S = k * W chunk-stages where physical
// worker w hosts the k non-contiguous chunks {w, W + w, 2W + w, ...} (stage s lives on
// worker s mod W). Interleaving shrinks the early-worker activation bill: each chunk is
// ~1/k of the worker's layers and the chunk stash depths S - s average out across the
// worker's chunks, so worker 0's stash falls from ~act to ~act * (k + 1) / (2k).
//
// Because one worker owns several stages, the per-stage policy objects alone cannot drive
// execution — two chunks may both be actionable and the tie-break decides the timeline. We
// therefore *generate* the schedule up front: a unit-time list scheduler runs the per-chunk
// 1F1B policies against simulated readiness, serializes each worker's chunks (deepest chunk
// first, which drains the pipe and provably never wedges), and records per-worker op lists.
// The runtime and simulator then execute the lists *strictly in order*, which makes
// interleaved execution deadlock-free by construction (the generated order is a valid
// execution) and bitwise-deterministic regardless of thread timing. With k = 1 the
// generated per-stage order is exactly plain 1F1B's, which the equivalence tests pin down.
#ifndef SRC_SCHEDULE_INTERLEAVED_H_
#define SRC_SCHEDULE_INTERLEAVED_H_

#include <cstdint>
#include <vector>

#include "src/schedule/work.h"

namespace pipedream {

// One slot of a physical worker's schedule. The minibatch id is implicit: a straight
// pipeline consumes each stage's forwards and backwards strictly in minibatch order, so
// the executor's per-stage next_forward/next_backward counters supply it.
struct ChunkOp {
  int stage = 0;
  WorkType type = WorkType::kForward;
};

// Physical worker hosting chunk-stage `stage` when `num_workers` workers interleave.
inline int InterleavedWorkerOfStage(int stage, int num_workers) {
  return stage % num_workers;
}

// Builds the per-worker op lists for `num_minibatches` through a straight pipeline of
// `num_stages` chunk-stages interleaved over num_stages / chunks physical workers.
// Requires chunks >= 1 and num_stages % chunks == 0. Result[w] is worker w's complete
// schedule; every stage performs exactly num_minibatches forwards and backwards.
std::vector<std::vector<ChunkOp>> BuildInterleavedSchedule(int num_stages, int chunks,
                                                           int64_t num_minibatches);

}  // namespace pipedream

#endif  // SRC_SCHEDULE_INTERLEAVED_H_
