// Work-item vocabulary shared by the scheduler policies, the event-driven simulator, and the
// threaded runtime.
#ifndef SRC_SCHEDULE_WORK_H_
#define SRC_SCHEDULE_WORK_H_

#include <cstdint>

namespace pipedream {

enum class WorkType {
  kForward,
  kBackward,
};

inline const char* WorkTypeName(WorkType type) {
  return type == WorkType::kForward ? "forward" : "backward";
}

// Deterministic round-robin routing (§3.2, 1F1B-RR): minibatch `minibatch` is handled by
// replica `minibatch % replicas` of a stage, for both its forward and backward pass.
inline int RoundRobinReplica(int64_t minibatch, int replicas) {
  return static_cast<int>(minibatch % replicas);
}

}  // namespace pipedream

#endif  // SRC_SCHEDULE_WORK_H_
