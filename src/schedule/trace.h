// Execution traces: the recorded op timeline of a simulated or real pipeline run.
//
// Both the discrete-event simulator and the threaded runtime emit these. The validator
// enforces every safety property of §3.2 — data dependencies, 1F1B-RR forward/backward
// replica affinity (required for weight stashing), and worker exclusivity — and the ASCII
// renderer regenerates the paper's timeline figures (Figures 2, 3, 4, 8).
#ifndef SRC_SCHEDULE_TRACE_H_
#define SRC_SCHEDULE_TRACE_H_

#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/planner/plan.h"
#include "src/schedule/work.h"

namespace pipedream {

struct TraceEvent {
  int worker = 0;
  int stage = 0;
  WorkType type = WorkType::kForward;
  int64_t minibatch = 0;
  SimTime start;
  SimTime end;
};

class ExecutionTrace {
 public:
  void Add(TraceEvent event) { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  SimTime end_time() const;

  // Checks (a) ops on one worker never overlap, (b) forward of minibatch b at stage s starts
  // after its forward at stage s-1 ends, (c) backward at stage s starts after the backward at
  // stage s+1 (or, for the last stage, after its own forward), (d) forward and backward of a
  // minibatch run on the same worker of a stage, and (e) round-robin input routing.
  Status Validate(const PipelinePlan& plan) const;

  // Busy fraction of a worker between the first and last event in the trace.
  double WorkerUtilization(int worker) const;

  // Renders one row per worker; each column is a `slot`-wide time bucket. Forward passes show
  // the minibatch id, backward passes the id with a trailing '*', idle time a dot.
  std::string RenderAscii(SimTime slot, int num_workers, int max_columns = 64) const;

  // Chrome trace_event JSON of this (virtual-time) trace, one track per worker. The schema —
  // span names "fwd"/"bwd", {stage, minibatch} args — is identical to the runtime's
  // wall-clock traces (src/obs/trace.h), so sim and real runs of one schedule overlay
  // directly in Perfetto. WriteChromeJson returns false (and logs) on I/O failure.
  std::string ToChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace pipedream

#endif  // SRC_SCHEDULE_TRACE_H_
