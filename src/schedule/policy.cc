#include "src/schedule/policy.h"

#include <algorithm>

#include "src/common/check.h"

namespace pipedream {

int StartupDepth(const PipelinePlan& plan, int stage) {
  PD_CHECK(stage >= 0 && stage < plan.num_stages());
  int downstream_workers = 0;
  for (int s = stage; s < plan.num_stages(); ++s) {
    downstream_workers += plan.stage(s).replicas;
  }
  const int replicas = plan.stage(stage).replicas;
  return (downstream_workers + replicas - 1) / replicas;  // ceil
}

OneFOneBPolicy::OneFOneBPolicy(int startup_depth) : startup_remaining_(startup_depth) {
  PD_CHECK_GE(startup_depth, 1);
}

std::optional<WorkType> OneFOneBPolicy::Decide(int ready_forward, int ready_backward,
                                               bool forwards_exhausted) {
  if (startup_remaining_ > 0) {
    // Startup phase: fill the pipeline to this stage's depth with forwards. Backwards are
    // taken only once the forward stream has ended (runs shorter than the pipeline depth).
    if (ready_forward > 0) {
      return WorkType::kForward;
    }
    if (forwards_exhausted && ready_backward > 0) {
      return WorkType::kBackward;
    }
    return std::nullopt;
  }
  // Steady state: strict alternation. Waiting for the due direction (rather than running
  // whatever is ready) makes every worker's op sequence a deterministic function of the
  // schedule; the only exception is the drain at the end of the forward stream.
  if (preference_ == WorkType::kBackward || forwards_exhausted) {
    return ready_backward > 0 ? std::optional<WorkType>(WorkType::kBackward) : std::nullopt;
  }
  return ready_forward > 0 ? std::optional<WorkType>(WorkType::kForward) : std::nullopt;
}

void OneFOneBPolicy::OnStarted(WorkType type) {
  if (startup_remaining_ > 0) {
    if (type == WorkType::kForward) {
      --startup_remaining_;
      if (startup_remaining_ == 0) {
        preference_ = WorkType::kBackward;  // first steady-state op is a backward
      }
    }
    return;
  }
  if (type == preference_) {
    preference_ =
        preference_ == WorkType::kForward ? WorkType::kBackward : WorkType::kForward;
  }
}

GPipePolicy::GPipePolicy(int microbatches) : microbatches_(microbatches) {
  PD_CHECK_GE(microbatches, 1);
}

std::optional<WorkType> GPipePolicy::Decide(int ready_forward, int ready_backward,
                                            bool forwards_exhausted) {
  if (waiting_for_flush_) {
    return std::nullopt;
  }
  if (forwards_started_ < microbatches_ && ready_forward > 0) {
    return WorkType::kForward;
  }
  if (backwards_started_ < microbatches_ && ready_backward > 0) {
    return WorkType::kBackward;
  }
  return std::nullopt;
}

void GPipePolicy::OnStarted(WorkType type) {
  if (type == WorkType::kForward) {
    PD_CHECK_LT(forwards_started_, microbatches_);
    ++forwards_started_;
  } else {
    PD_CHECK_LT(backwards_started_, microbatches_);
    ++backwards_started_;
    if (backwards_started_ == microbatches_) {
      waiting_for_flush_ = true;  // all microbatches done; stall for the pipeline flush
    }
  }
}

void GPipePolicy::OnFlushComplete() {
  PD_CHECK(waiting_for_flush_) << "flush completed while the stage was still working";
  forwards_started_ = 0;
  backwards_started_ = 0;
  waiting_for_flush_ = false;
}

PipeDreamFlushPolicy::PipeDreamFlushPolicy(int startup_depth, int microbatches)
    : startup_depth_(startup_depth), microbatches_(microbatches) {
  PD_CHECK_GE(startup_depth, 1);
  PD_CHECK_GE(microbatches, 1);
}

std::optional<WorkType> PipeDreamFlushPolicy::Decide(int ready_forward, int ready_backward,
                                                     bool forwards_exhausted) {
  if (waiting_for_flush_) {
    return std::nullopt;
  }
  const int warm = std::min(startup_depth_, microbatches_);
  if (backwards_started_ == 0 && forwards_started_ < warm) {
    // Warm-up: fill the pipeline to this stage's depth (capped by the round size).
    if (ready_forward > 0) {
      return WorkType::kForward;
    }
    if (forwards_exhausted && ready_backward > 0) {
      return WorkType::kBackward;  // run shorter than the pipeline depth — drain early
    }
    return std::nullopt;
  }
  // Steady state: strict 1F1B alternation, switching to pure drain once all m forwards of
  // the round have started. Waiting for the due direction (not just "anything ready")
  // keeps every worker's op sequence a deterministic function of the schedule.
  if (preference_ == WorkType::kBackward || forwards_started_ >= microbatches_ ||
      forwards_exhausted) {
    return ready_backward > 0 ? std::optional<WorkType>(WorkType::kBackward) : std::nullopt;
  }
  return ready_forward > 0 ? std::optional<WorkType>(WorkType::kForward) : std::nullopt;
}

void PipeDreamFlushPolicy::OnStarted(WorkType type) {
  if (type == WorkType::kForward) {
    PD_CHECK_LT(forwards_started_, microbatches_);
    ++forwards_started_;
    if (forwards_started_ >= std::min(startup_depth_, microbatches_)) {
      preference_ = WorkType::kBackward;  // warm-up over (or steady F done): backward next
    }
  } else {
    PD_CHECK_LT(backwards_started_, microbatches_);
    ++backwards_started_;
    preference_ = WorkType::kForward;
    if (backwards_started_ == microbatches_) {
      waiting_for_flush_ = true;  // round complete; stall for the pipeline drain + update
    }
  }
}

void PipeDreamFlushPolicy::OnFlushComplete() {
  forwards_started_ = 0;
  backwards_started_ = 0;
  preference_ = WorkType::kForward;
  waiting_for_flush_ = false;
}

}  // namespace pipedream
