// Work-scheduling policies (paper §3.2).
//
// A policy instance is owned by one stage replica and decides, whenever its worker is free,
// whether to run a forward pass, a backward pass, or wait. The same objects drive both the
// discrete-event simulator and the threaded training runtime, so the scheduling behaviour
// being measured and the behaviour being trained with are one implementation.
#ifndef SRC_SCHEDULE_POLICY_H_
#define SRC_SCHEDULE_POLICY_H_

#include <memory>
#include <optional>

#include "src/planner/plan.h"
#include "src/schedule/work.h"

namespace pipedream {

// Startup pipeline depth for a stage: how many forward passes a replica performs before its
// first backward, ceil(workers at or downstream of the stage / this stage's replicas).
// For a straight pipeline this is (num_stages - stage); the input stage's depth equals NOAM.
int StartupDepth(const PipelinePlan& plan, int stage);

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  // Decides the next action given how many minibatches are ready in each direction.
  // `forwards_exhausted` signals that no further forward work will ever arrive (end of the
  // run), letting strict policies drain. Returning nullopt means "wait" even if some work is
  // ready (strict alternation).
  virtual std::optional<WorkType> Decide(int ready_forward, int ready_backward,
                                         bool forwards_exhausted) = 0;

  // Informs the policy that an op of the given type was started.
  virtual void OnStarted(WorkType type) = 0;
};

// One-forward-one-backward (1F1B): `startup_depth` forwards first, then strict alternation
// starting with a backward pass. Strictness makes the op sequence of every worker a pure
// function of the schedule (the "static schedule" of §3.2) — backward passes are applied at
// regular intervals and the activation stash is bounded by the startup depth.
class OneFOneBPolicy : public SchedulingPolicy {
 public:
  explicit OneFOneBPolicy(int startup_depth);

  std::optional<WorkType> Decide(int ready_forward, int ready_backward,
                                 bool forwards_exhausted) override;
  void OnStarted(WorkType type) override;

 private:
  int startup_remaining_;
  WorkType preference_ = WorkType::kForward;
};

// Policies that work in rounds of m microbatches separated by pipeline drains: after the
// round's last backward the stage stalls until the flush barrier releases the next round
// (owner signals it via OnFlushComplete). Covers GPipe, model parallelism, and
// PipeDream-Flush — the IsFlushFamily(ScheduleKind) schedules.
class RoundPolicy : public SchedulingPolicy {
 public:
  // Called when all stages finished the round and weights were updated.
  virtual void OnFlushComplete() = 0;

  virtual bool waiting_for_flush() const = 0;
};

// GPipe-style scheduling (§2.2, Figure 3): run `microbatches` forwards, then the matching
// backwards, then stall until the flush barrier releases the next round.
class GPipePolicy : public RoundPolicy {
 public:
  explicit GPipePolicy(int microbatches);

  std::optional<WorkType> Decide(int ready_forward, int ready_backward,
                                 bool forwards_exhausted) override;
  void OnStarted(WorkType type) override;
  void OnFlushComplete() override;

  bool waiting_for_flush() const override { return waiting_for_flush_; }

 private:
  int microbatches_;
  int forwards_started_ = 0;
  int backwards_started_ = 0;
  bool waiting_for_flush_ = false;
};

// PipeDream-Flush (the schedule of the 2BW follow-up paper, arXiv 2006.09503): 1F1B
// ordering *within* a round of `microbatches` minibatches, then a pipeline drain and one
// aggregated weight update. Warm-up runs min(startup_depth, microbatches) forwards, steady
// state alternates 1F1B, and once all m forwards of the round have started the stage drains
// backwards until the flush. Compared to GPipe's all-forwards-then-all-backwards order the
// bubble is identical, but at most min(startup_depth, microbatches) activation stashes are
// ever live instead of m — the schedule's whole point. Weight semantics match GPipe's: no
// update commits inside a round, so kNaive weights are exact and the per-round gradient sum
// is bitwise-identical to GPipe's over the same minibatches.
class PipeDreamFlushPolicy : public RoundPolicy {
 public:
  PipeDreamFlushPolicy(int startup_depth, int microbatches);

  std::optional<WorkType> Decide(int ready_forward, int ready_backward,
                                 bool forwards_exhausted) override;
  void OnStarted(WorkType type) override;

  // Tolerant of mid-round flushes (a short final round when the run length is not a
  // multiple of the round size): counters reset whether or not the stage was stalled.
  void OnFlushComplete() override;

  bool waiting_for_flush() const override { return waiting_for_flush_; }

 private:
  int startup_depth_;
  int microbatches_;
  int forwards_started_ = 0;
  int backwards_started_ = 0;
  WorkType preference_ = WorkType::kForward;
  bool waiting_for_flush_ = false;
};

// Non-pipelined model parallelism (§2.1, Figure 2): one minibatch in the system at a time —
// equivalent to GPipe with a single microbatch per flush.
class ModelParallelPolicy : public GPipePolicy {
 public:
  ModelParallelPolicy() : GPipePolicy(1) {}
};

}  // namespace pipedream

#endif  // SRC_SCHEDULE_POLICY_H_
