#include "src/schedule/interleaved.h"

#include <memory>

#include "src/common/check.h"
#include "src/schedule/policy.h"

namespace pipedream {

namespace {

struct Delivery {
  int stage;
  WorkType type;
};

}  // namespace

std::vector<std::vector<ChunkOp>> BuildInterleavedSchedule(int num_stages, int chunks,
                                                           int64_t num_minibatches) {
  PD_CHECK_GE(chunks, 1);
  PD_CHECK_GE(num_stages, 1);
  PD_CHECK(num_stages % chunks == 0)
      << "interleaving needs num_stages (" << num_stages << ") divisible by chunks ("
      << chunks << ")";
  PD_CHECK_GE(num_minibatches, 0);
  const int num_workers = num_stages / chunks;

  // Per-chunk 1F1B state, exactly mirroring the threaded runtime's: the straight-pipeline
  // startup depth S - s, strict alternation, and NOAM admission control at stage 0.
  std::vector<std::unique_ptr<OneFOneBPolicy>> policies;
  policies.reserve(num_stages);
  for (int s = 0; s < num_stages; ++s) {
    policies.push_back(std::make_unique<OneFOneBPolicy>(num_stages - s));
  }
  std::vector<int> ready_fwd(num_stages, 0);
  std::vector<int> ready_bwd(num_stages, 0);
  std::vector<int64_t> fwd_started(num_stages, 0);
  std::vector<int64_t> bwd_started(num_stages, 0);
  int64_t admitted = 0;
  int in_flight = 0;
  const int admission_cap = num_stages;  // NOAM of a straight S-stage pipeline

  std::vector<std::vector<ChunkOp>> ops(num_workers);
  std::vector<Delivery> pending;  // outputs of ops started this tick, visible next tick

  auto all_done = [&] {
    for (int s = 0; s < num_stages; ++s) {
      if (bwd_started[s] < num_minibatches) return false;
    }
    return true;
  };

  while (!all_done()) {
    // Deliver last tick's outputs before scanning: an op's result becomes consumable one
    // unit-time step after it started.
    const bool delivered = !pending.empty();
    for (const Delivery& d : pending) {
      if (d.type == WorkType::kForward) {
        if (d.stage + 1 < num_stages) {
          ++ready_fwd[d.stage + 1];
        } else {
          ++ready_bwd[d.stage];  // output stage computes the loss and turns around locally
        }
      } else {
        if (d.stage > 0) {
          ++ready_bwd[d.stage - 1];
        } else {
          --in_flight;  // minibatch fully retired; stage 0 may admit another
        }
      }
    }
    pending.clear();

    bool started = false;
    for (int w = 0; w < num_workers; ++w) {
      // Deepest chunk first: the chunk closest to the output reaches its backward phase
      // soonest, so giving it priority keeps the pipe draining and avoids starving the
      // stages everyone downstream depends on.
      for (int c = chunks - 1; c >= 0; --c) {
        const int s = c * num_workers + w;
        const bool is_input = s == 0;
        const int available_fwd =
            is_input ? ((admitted < num_minibatches && in_flight < admission_cap) ? 1 : 0)
                     : ready_fwd[s];
        const bool exhausted =
            is_input ? admitted >= num_minibatches : fwd_started[s] >= num_minibatches;
        const std::optional<WorkType> op =
            policies[s]->Decide(available_fwd, ready_bwd[s], exhausted);
        if (!op.has_value()) {
          continue;
        }
        if (*op == WorkType::kForward) {
          if (is_input) {
            ++admitted;
            ++in_flight;
          } else {
            --ready_fwd[s];
          }
          ++fwd_started[s];
        } else {
          --ready_bwd[s];
          ++bwd_started[s];
        }
        policies[s]->OnStarted(*op);
        ops[w].push_back(ChunkOp{s, *op});
        pending.push_back(Delivery{s, *op});
        started = true;
        break;  // the worker is busy for the rest of this tick
      }
    }
    PD_CHECK(started || delivered)
        << "interleaved schedule generation wedged at admitted=" << admitted
        << " in_flight=" << in_flight << " — no worker can act and nothing is in flight";
  }
  return ops;
}

}  // namespace pipedream
