#include "src/schedule/trace.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/strings.h"
#include "src/obs/trace.h"

namespace pipedream {

SimTime ExecutionTrace::end_time() const {
  SimTime latest;
  for (const TraceEvent& e : events_) {
    latest = std::max(latest, e.end);
  }
  return latest;
}

Status ExecutionTrace::Validate(const PipelinePlan& plan) const {
  const int num_stages = plan.num_stages();

  // Index events by (stage, minibatch, type) and by worker.
  std::map<std::tuple<int, int64_t, int>, const TraceEvent*> by_op;
  std::map<int, std::vector<const TraceEvent*>> by_worker;
  for (const TraceEvent& e : events_) {
    const auto key = std::make_tuple(e.stage, e.minibatch, static_cast<int>(e.type));
    if (!by_op.emplace(key, &e).second) {
      return Status::Internal(StrFormat("duplicate %s of minibatch %lld at stage %d",
                                        WorkTypeName(e.type),
                                        static_cast<long long>(e.minibatch), e.stage));
    }
    by_worker[e.worker].push_back(&e);
    if (e.end < e.start) {
      return Status::Internal("event ends before it starts");
    }
  }

  // (a) worker exclusivity.
  for (auto& [worker, ops] : by_worker) {
    std::sort(ops.begin(), ops.end(),
              [](const TraceEvent* a, const TraceEvent* b) { return a->start < b->start; });
    for (size_t i = 1; i < ops.size(); ++i) {
      if (ops[i]->start < ops[i - 1]->end) {
        return Status::Internal(StrFormat("worker %d runs two ops concurrently", worker));
      }
    }
  }

  auto find = [&](int stage, int64_t minibatch, WorkType type) -> const TraceEvent* {
    const auto it = by_op.find(std::make_tuple(stage, minibatch, static_cast<int>(type)));
    return it == by_op.end() ? nullptr : it->second;
  };

  for (const TraceEvent& e : events_) {
    // (e) round-robin routing and worker-set membership.
    const StageAssignment& stage = plan.stage(e.stage);
    const int expected_replica = RoundRobinReplica(e.minibatch, stage.replicas);
    const int expected_worker = stage.workers[static_cast<size_t>(expected_replica)];
    if (e.worker != expected_worker) {
      return Status::Internal(StrFormat(
          "minibatch %lld at stage %d ran on worker %d; round-robin expects worker %d",
          static_cast<long long>(e.minibatch), e.stage, e.worker, expected_worker));
    }

    if (e.type == WorkType::kForward) {
      // (b) forward dependency on the previous stage.
      if (e.stage > 0) {
        const TraceEvent* upstream = find(e.stage - 1, e.minibatch, WorkType::kForward);
        if (upstream == nullptr) {
          return Status::Internal(StrFormat("forward %lld at stage %d has no upstream forward",
                                            static_cast<long long>(e.minibatch), e.stage));
        }
        if (e.start < upstream->end) {
          return Status::Internal(
              StrFormat("forward %lld at stage %d starts before stage %d finished",
                        static_cast<long long>(e.minibatch), e.stage, e.stage - 1));
        }
      }
    } else {
      // (c) backward dependency on the next stage (or own forward at the output stage).
      const TraceEvent* dependency =
          e.stage == num_stages - 1 ? find(e.stage, e.minibatch, WorkType::kForward)
                                    : find(e.stage + 1, e.minibatch, WorkType::kBackward);
      if (dependency == nullptr) {
        return Status::Internal(StrFormat("backward %lld at stage %d has no producer",
                                          static_cast<long long>(e.minibatch), e.stage));
      }
      if (e.start < dependency->end) {
        return Status::Internal(StrFormat("backward %lld at stage %d starts too early",
                                          static_cast<long long>(e.minibatch), e.stage));
      }
      // (d) forward/backward affinity — same worker must run both (weight stashing).
      const TraceEvent* own_forward = find(e.stage, e.minibatch, WorkType::kForward);
      if (own_forward == nullptr) {
        return Status::Internal(StrFormat("backward %lld at stage %d without a forward",
                                          static_cast<long long>(e.minibatch), e.stage));
      }
      if (own_forward->worker != e.worker) {
        return Status::Internal(
            StrFormat("minibatch %lld at stage %d: forward on worker %d, backward on %d",
                      static_cast<long long>(e.minibatch), e.stage, own_forward->worker,
                      e.worker));
      }
    }
  }
  return Status::Ok();
}

double ExecutionTrace::WorkerUtilization(int worker) const {
  SimTime busy;
  SimTime first = SimTime::Max();
  SimTime last;
  bool any = false;
  for (const TraceEvent& e : events_) {
    if (e.worker != worker) {
      continue;
    }
    any = true;
    busy += e.end - e.start;
    first = std::min(first, e.start);
    last = std::max(last, e.end);
  }
  if (!any || last <= first) {
    return 0.0;
  }
  return busy.ToSeconds() / (last - first).ToSeconds();
}

namespace {

obs::ChromeTraceWriter BuildChromeWriter(const std::vector<TraceEvent>& events) {
  obs::ChromeTraceWriter writer;
  std::set<int> workers;
  for (const TraceEvent& e : events) {
    workers.insert(e.worker);
  }
  for (int w : workers) {
    writer.AddThreadName(w, StrFormat("worker %d", w));
  }
  for (const TraceEvent& e : events) {
    writer.AddComplete(e.worker, e.type == WorkType::kForward ? "fwd" : "bwd",
                       e.start.nanos(), (e.end - e.start).nanos(), e.stage, e.minibatch);
  }
  // Flow parity with the runtime: the same "mb" chain per minibatch that real stage
  // workers emit, so a simulated trace and a measured one render identically in Perfetto.
  // Hops are ordered by start time; each flow point sits at its event's midpoint so it
  // falls inside the slice it binds to (bp:"e").
  std::map<int64_t, std::vector<const TraceEvent*>> by_minibatch;
  for (const TraceEvent& e : events) {
    by_minibatch[e.minibatch].push_back(&e);
  }
  for (auto& [minibatch, hops] : by_minibatch) {
    if (hops.size() < 2) {
      continue;  // a single-event chain has no hop to draw
    }
    std::sort(hops.begin(), hops.end(),
              [](const TraceEvent* a, const TraceEvent* b) { return a->start < b->start; });
    for (size_t i = 0; i < hops.size(); ++i) {
      const TraceEvent& e = *hops[i];
      const int64_t mid_ns = e.start.nanos() + (e.end - e.start).nanos() / 2;
      const char phase = i == 0 ? 's' : (i + 1 == hops.size() ? 'f' : 't');
      writer.AddFlow(e.worker, "mb", mid_ns, phase, minibatch, e.stage, minibatch);
    }
  }
  return writer;
}

}  // namespace

std::string ExecutionTrace::ToChromeJson() const {
  return BuildChromeWriter(events_).ToJson();
}

bool ExecutionTrace::WriteChromeJson(const std::string& path) const {
  return BuildChromeWriter(events_).WriteTo(path);
}

std::string ExecutionTrace::RenderAscii(SimTime slot, int num_workers, int max_columns) const {
  PD_CHECK_GT(slot.nanos(), 0);
  const int64_t columns =
      std::min<int64_t>(max_columns, (end_time().nanos() + slot.nanos() - 1) / slot.nanos());
  // cells[worker][column] -> token
  std::vector<std::vector<std::string>> cells(
      static_cast<size_t>(num_workers),
      std::vector<std::string>(static_cast<size_t>(columns), " . "));
  for (const TraceEvent& e : events_) {
    if (e.worker >= num_workers) {
      continue;
    }
    const int64_t c0 = e.start.nanos() / slot.nanos();
    // A slot belongs to an op if the op covers the slot's midpoint.
    const int64_t c1 = std::min<int64_t>(columns, (e.end.nanos() + slot.nanos() - 1) / slot.nanos());
    for (int64_t c = c0; c < c1 && c < columns; ++c) {
      cells[static_cast<size_t>(e.worker)][static_cast<size_t>(c)] =
          StrFormat("%2lld%s", static_cast<long long>(e.minibatch % 100),
                    e.type == WorkType::kForward ? " " : "*");
    }
  }
  std::string out;
  for (int w = 0; w < num_workers; ++w) {
    out += StrFormat("worker %2d |", w);
    for (int64_t c = 0; c < columns; ++c) {
      out += cells[static_cast<size_t>(w)][static_cast<size_t>(c)];
      out += '|';
    }
    out += '\n';
  }
  out += "(numbers are minibatch ids; '*' marks backward passes; '.' is idle)\n";
  return out;
}

}  // namespace pipedream
