#include "src/optim/lars.h"

#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/tensor/ops.h"

namespace pipedream {

void Lars::Step(const std::vector<Parameter*>& params) {
  if (velocity_.size() != params.size()) {
    PD_CHECK(velocity_.empty()) << "parameter list changed between Step calls";
    velocity_.reserve(params.size());
    for (Parameter* p : params) {
      velocity_.emplace_back(p->value.shape());
    }
  }
  const float mu = static_cast<float>(momentum_);
  const float wd = static_cast<float>(weight_decay_);

  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    PD_CHECK(p->grad.SameShape(p->value)) << p->name << ": grad/value shape mismatch";
    const double w_norm = Norm(p->value);
    const double g_norm = Norm(p->grad);
    // Local learning rate: trust * ||w|| / (||g|| + wd ||w||); falls back to the global rate
    // when either norm is degenerate (fresh zero-initialized biases).
    double local_lr = learning_rate_;
    if (w_norm > 0.0 && g_norm > 0.0) {
      local_lr = learning_rate_ * trust_coefficient_ * w_norm /
                 (g_norm + weight_decay_ * w_norm);
    }
    const float lr = static_cast<float>(local_lr);
    float* value = p->value.data();
    const float* grad = std::as_const(p->grad).data();  // const read: must not detach the COW-shared grad
    float* vel = velocity_[i].data();
    const int64_t n = p->value.numel();
    for (int64_t j = 0; j < n; ++j) {
      vel[j] = mu * vel[j] + lr * (grad[j] + wd * value[j]);
      value[j] -= vel[j];
    }
  }
}

}  // namespace pipedream
