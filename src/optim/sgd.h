// Stochastic gradient descent with optional momentum and decoupled weight decay.
#ifndef SRC_OPTIM_SGD_H_
#define SRC_OPTIM_SGD_H_

#include "src/optim/optimizer.h"
#include "src/tensor/tensor.h"

namespace pipedream {

class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0, double weight_decay = 0.0)
      : Optimizer(learning_rate), momentum_(momentum), weight_decay_(weight_decay) {}

  void Step(const std::vector<Parameter*>& params) override;
  std::unique_ptr<Optimizer> CloneFresh() const override {
    return std::make_unique<Sgd>(learning_rate_, momentum_, weight_decay_);
  }

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

}  // namespace pipedream

#endif  // SRC_OPTIM_SGD_H_
