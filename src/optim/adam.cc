#include "src/optim/adam.h"

#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace pipedream {

void Adam::Step(const std::vector<Parameter*>& params) {
  if (m_.size() != params.size()) {
    PD_CHECK(m_.empty()) << "parameter list changed between Step calls";
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (Parameter* p : params) {
      m_.emplace_back(p->value.shape());
      v_.emplace_back(p->value.shape());
    }
  }
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const float lr = static_cast<float>(learning_rate_ * std::sqrt(bias2) / bias1);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(epsilon_);

  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    PD_CHECK(p->grad.SameShape(p->value)) << p->name << ": grad/value shape mismatch";
    float* value = p->value.data();
    const float* grad = std::as_const(p->grad).data();  // const read: must not detach the COW-shared grad
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p->value.numel();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * grad[j];
      v[j] = b2 * v[j] + (1.0f - b2) * grad[j] * grad[j];
      value[j] -= lr * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
}

}  // namespace pipedream
