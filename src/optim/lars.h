// Layer-wise Adaptive Rate Scaling (You et al., 2017). Each parameter tensor's update is
// scaled by trust * ||w|| / (||g|| + wd * ||w||), enabling large-minibatch training — used by
// the Figure 13 reproduction comparing large-minibatch DP against PipeDream.
#ifndef SRC_OPTIM_LARS_H_
#define SRC_OPTIM_LARS_H_

#include "src/optim/optimizer.h"
#include "src/tensor/tensor.h"

namespace pipedream {

class Lars : public Optimizer {
 public:
  explicit Lars(double learning_rate, double momentum = 0.9, double weight_decay = 1e-4,
                double trust_coefficient = 0.001)
      : Optimizer(learning_rate),
        momentum_(momentum),
        weight_decay_(weight_decay),
        trust_coefficient_(trust_coefficient) {}

  void Step(const std::vector<Parameter*>& params) override;
  std::unique_ptr<Optimizer> CloneFresh() const override {
    return std::make_unique<Lars>(learning_rate_, momentum_, weight_decay_,
                                  trust_coefficient_);
  }

 private:
  double momentum_;
  double weight_decay_;
  double trust_coefficient_;
  std::vector<Tensor> velocity_;
};

}  // namespace pipedream

#endif  // SRC_OPTIM_LARS_H_
