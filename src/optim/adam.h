// Adam (Kingma & Ba, 2014) with bias correction, as used by the paper for GNMT training.
#ifndef SRC_OPTIM_ADAM_H_
#define SRC_OPTIM_ADAM_H_

#include "src/optim/optimizer.h"
#include "src/tensor/tensor.h"

namespace pipedream {

class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8)
      : Optimizer(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

  void Step(const std::vector<Parameter*>& params) override;
  std::unique_ptr<Optimizer> CloneFresh() const override {
    return std::make_unique<Adam>(learning_rate_, beta1_, beta2_, epsilon_);
  }

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace pipedream

#endif  // SRC_OPTIM_ADAM_H_
