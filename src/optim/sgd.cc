#include "src/optim/sgd.h"

#include <utility>

#include "src/common/check.h"

namespace pipedream {

void Sgd::Step(const std::vector<Parameter*>& params) {
  if (momentum_ != 0.0 && velocity_.size() != params.size()) {
    PD_CHECK(velocity_.empty()) << "parameter list changed between Step calls";
    velocity_.reserve(params.size());
    for (Parameter* p : params) {
      velocity_.emplace_back(p->value.shape());
    }
  }
  const float lr = static_cast<float>(learning_rate_);
  const float mu = static_cast<float>(momentum_);
  const float wd = static_cast<float>(weight_decay_);
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    PD_CHECK(p->grad.SameShape(p->value)) << p->name << ": grad/value shape mismatch";
    float* value = p->value.data();
    const float* grad = std::as_const(p->grad).data();  // const read: must not detach the COW-shared grad
    const int64_t n = p->value.numel();
    if (momentum_ == 0.0) {
      for (int64_t j = 0; j < n; ++j) {
        value[j] -= lr * (grad[j] + wd * value[j]);
      }
    } else {
      float* vel = velocity_[i].data();
      for (int64_t j = 0; j < n; ++j) {
        vel[j] = mu * vel[j] + grad[j] + wd * value[j];
        value[j] -= lr * vel[j];
      }
    }
  }
}

}  // namespace pipedream
