// Learning-rate schedules: constant, step decay, and linear warmup (the paper uses warmup
// for large global batch sizes, after Goyal et al.).
#ifndef SRC_OPTIM_LR_SCHEDULE_H_
#define SRC_OPTIM_LR_SCHEDULE_H_

#include <cstdint>
#include <memory>

namespace pipedream {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Learning rate to use for the given 0-based step (one step == one weight update).
  virtual double LearningRate(int64_t step) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double LearningRate(int64_t step) const override { return lr_; }

 private:
  double lr_;
};

// lr = base * decay^(step / interval).
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(double base, double decay, int64_t interval)
      : base_(base), decay_(decay), interval_(interval) {}
  double LearningRate(int64_t step) const override;

 private:
  double base_;
  double decay_;
  int64_t interval_;
};

// Linear ramp from base/divisor to base over `warmup_steps`, then an inner schedule.
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(double base, int64_t warmup_steps, std::unique_ptr<LrSchedule> after,
           double divisor = 10.0)
      : base_(base), warmup_steps_(warmup_steps), after_(std::move(after)), divisor_(divisor) {}
  double LearningRate(int64_t step) const override;

 private:
  double base_;
  int64_t warmup_steps_;
  std::unique_ptr<LrSchedule> after_;
  double divisor_;
};

}  // namespace pipedream

#endif  // SRC_OPTIM_LR_SCHEDULE_H_
