#include "src/optim/lr_schedule.h"

#include <cmath>

namespace pipedream {

double StepDecayLr::LearningRate(int64_t step) const {
  const int64_t k = interval_ > 0 ? step / interval_ : 0;
  return base_ * std::pow(decay_, static_cast<double>(k));
}

double WarmupLr::LearningRate(int64_t step) const {
  if (step < warmup_steps_ && warmup_steps_ > 0) {
    const double start = base_ / divisor_;
    const double frac = static_cast<double>(step) / static_cast<double>(warmup_steps_);
    return start + (base_ - start) * frac;
  }
  return after_ != nullptr ? after_->LearningRate(step - warmup_steps_) : base_;
}

}  // namespace pipedream
