// Optimizer interface. State (momentum buffers, Adam moments) is keyed positionally by the
// order parameters are passed to Step(), which must be stable across calls — Sequential
// returns parameters in a fixed layer order, so this holds by construction.
#ifndef SRC_OPTIM_OPTIMIZER_H_
#define SRC_OPTIM_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "src/graph/layer.h"

namespace pipedream {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using each parameter's accumulated .grad. Does not zero gradients;
  // the caller controls gradient lifetime (needed for gradient aggregation across replicas).
  virtual void Step(const std::vector<Parameter*>& params) = 0;

  // Fresh copy with the same hyperparameters and *empty* state (each stage replica owns its
  // own optimizer state).
  virtual std::unique_ptr<Optimizer> CloneFresh() const = 0;

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 protected:
  explicit Optimizer(double learning_rate) : learning_rate_(learning_rate) {}

  double learning_rate_;
};

}  // namespace pipedream

#endif  // SRC_OPTIM_OPTIMIZER_H_
