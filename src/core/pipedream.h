// PipeDream's end-to-end workflow (paper Figure 6): profile -> optimizer -> runtime.
//
// This facade ties the pieces together:
//   AutoPlan          — run the partitioning optimizer over a profile + topology and return
//                       the chosen plan with its analytic performance prediction.
//   TrainToAccuracy   — drive a PipelineTrainer epoch-by-epoch until a target validation
//                       accuracy is reached (the paper's time-to-accuracy methodology).
//   DescribePlan      — human-readable summary of a plan ("15-1", per-stage layers/workers).
#ifndef SRC_CORE_PIPEDREAM_H_
#define SRC_CORE_PIPEDREAM_H_

#include <string>
#include <vector>

#include "src/planner/partitioner.h"
#include "src/planner/predictor.h"
#include "src/runtime/pipeline_trainer.h"

namespace pipedream {

struct AutoPlanResult {
  PartitionResult partition;
  PlanPrediction prediction;
};

// Partitions `profile` over `topology` (flat or hierarchical as appropriate) and predicts
// the resulting pipeline's performance.
AutoPlanResult AutoPlan(const ModelProfile& profile, const HardwareTopology& topology,
                        const PartitionerOptions& options = {});

struct TtaOptions {
  double target_accuracy = 0.9;   // fraction correct on the eval set
  int max_epochs = 50;
  int64_t eval_batch = 64;
};

struct TtaResult {
  bool reached = false;
  int epochs = 0;                      // epochs consumed (== curve size)
  std::vector<double> accuracy_curve;  // accuracy after each epoch
  std::vector<double> loss_curve;      // mean training loss per epoch
};

// Trains until eval accuracy >= target (checked after each epoch) or max_epochs.
TtaResult TrainToAccuracy(PipelineTrainer* trainer, const Dataset& eval,
                          const TtaOptions& options);

// One line per stage: layer range, replica count, worker ids.
std::string DescribePlan(const PipelinePlan& plan, const ModelProfile& profile);

}  // namespace pipedream

#endif  // SRC_CORE_PIPEDREAM_H_
