#include "src/core/pipedream.h"

#include "src/common/strings.h"

namespace pipedream {

AutoPlanResult AutoPlan(const ModelProfile& profile, const HardwareTopology& topology,
                        const PartitionerOptions& options) {
  AutoPlanResult result;
  result.partition = Partition(profile, topology, options);
  result.prediction = PredictPlan(profile, result.partition.plan, topology);
  return result;
}

TtaResult TrainToAccuracy(PipelineTrainer* trainer, const Dataset& eval,
                          const TtaOptions& options) {
  TtaResult result;
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    const EpochStats stats = trainer->TrainEpoch();
    const double accuracy = trainer->EvaluateAccuracy(eval, options.eval_batch);
    result.loss_curve.push_back(stats.mean_loss);
    result.accuracy_curve.push_back(accuracy);
    ++result.epochs;
    if (accuracy >= options.target_accuracy) {
      result.reached = true;
      break;
    }
  }
  return result;
}

std::string DescribePlan(const PipelinePlan& plan, const ModelProfile& profile) {
  std::string out =
      StrFormat("config %s (%d stages, %d workers)\n",
                plan.ConfigString(profile.num_layers()).c_str(), plan.num_stages(),
                plan.total_workers());
  for (int s = 0; s < plan.num_stages(); ++s) {
    const StageAssignment& stage = plan.stage(s);
    std::string workers;
    for (size_t i = 0; i < stage.workers.size(); ++i) {
      if (i > 0) {
        workers += ",";
      }
      workers += StrFormat("%d", stage.workers[i]);
    }
    out += StrFormat(
        "  stage %d: layers [%s .. %s] x%d replicas on workers {%s}, %.1f MB weights\n", s,
        profile.layers[static_cast<size_t>(stage.begin_layer)].name.c_str(),
        profile.layers[static_cast<size_t>(stage.end_layer - 1)].name.c_str(), stage.replicas,
        workers.c_str(),
        static_cast<double>(profile.ParamBytes(stage.begin_layer, stage.end_layer)) / 1e6);
  }
  return out;
}

}  // namespace pipedream
