#include "src/tensor/pool.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace pipedream {
namespace {

// Size classes double from kMinClassElems; requests above the largest class bypass the pool
// (they are rare — full-dataset tensors — and would pin too much memory if parked).
constexpr int64_t kMinClassElems = 64;
constexpr int kNumClasses = 22;  // largest class: 64 << 21 = 128Mi floats (512 MiB)
constexpr int kThreadCacheSlots = 8;

int32_t ClassFor(int64_t numel) {
  int64_t cap = kMinClassElems;
  for (int32_t c = 0; c < kNumClasses; ++c) {
    if (numel <= cap) {
      return c;
    }
    cap <<= 1;
  }
  return BufferPool::kBypassClass;
}

int64_t ClassCapacity(int32_t size_class) { return kMinClassElems << size_class; }

std::atomic<int> g_zero_copy_override{-1};  // -1 = follow the environment

bool ZeroCopyFromEnv() {
  static const bool value = [] {
    const char* env = std::getenv("PIPEDREAM_NO_POOL");
    return env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0;
  }();
  return value;
}

struct Counters {
  std::atomic<int64_t> allocations{0};
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> misses{0};
  std::atomic<int64_t> bypass{0};
  std::atomic<int64_t> releases{0};
  std::atomic<int64_t> bytes_in_flight{0};
  std::atomic<int64_t> peak_bytes_in_flight{0};
  std::atomic<int64_t> bytes_parked{0};
};

PoolBlock* FreshBlock(int64_t capacity, int32_t size_class) {
  void* mem = std::calloc(1, sizeof(PoolBlock) + static_cast<size_t>(capacity) * sizeof(float));
  PD_CHECK(mem != nullptr) << "tensor pool: out of memory allocating " << capacity << " floats";
  PoolBlock* block = new (mem) PoolBlock;
  block->capacity = capacity;
  block->size_class = size_class;
  return block;
}

void DestroyBlock(PoolBlock* block) {
  block->~PoolBlock();
  std::free(block);
}

}  // namespace

struct BufferPool::Impl {
  Counters counters;
  std::mutex mutex[kNumClasses];
  std::vector<PoolBlock*> free_lists[kNumClasses];

  // Small lock-free front cache, one per thread. The destructor runs at thread exit and
  // hands survivors to the global lists (the pool itself is leaked, so it is always alive).
  struct ThreadCache {
    Impl* impl = nullptr;
    PoolBlock* slots[kNumClasses][kThreadCacheSlots] = {};
    int counts[kNumClasses] = {};

    ~ThreadCache() { Flush(); }

    void Flush() {
      if (impl == nullptr) {
        return;
      }
      for (int c = 0; c < kNumClasses; ++c) {
        if (counts[c] == 0) {
          continue;
        }
        std::lock_guard<std::mutex> lock(impl->mutex[c]);
        for (int i = 0; i < counts[c]; ++i) {
          impl->free_lists[c].push_back(slots[c][i]);
        }
        counts[c] = 0;
      }
    }
  };

  static ThreadCache& Cache(Impl* impl) {
    thread_local ThreadCache cache;
    cache.impl = impl;
    return cache;
  }

  void NoteInFlight(int64_t bytes) {
    const int64_t now =
        counters.bytes_in_flight.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = counters.peak_bytes_in_flight.load(std::memory_order_relaxed);
    while (now > peak && !counters.peak_bytes_in_flight.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
};

BufferPool::Impl* BufferPool::impl() {
  static Impl* instance = new Impl;  // leaked deliberately; see class comment
  return instance;
}

BufferPool* BufferPool::Get() {
  static BufferPool* instance = new BufferPool;
  instance->impl();  // force Impl construction before any thread cache exists
  // Surface the pool's own counters in the metrics registry as dump-time callbacks (reading
  // the live atomics costs nothing until someone asks for a dump).
  static const bool metrics_registered = [] {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Get();
    metrics.SetCallback("pool/hits", [] {
      return static_cast<double>(BufferPool::Get()->Snapshot().hits);
    });
    metrics.SetCallback("pool/misses", [] {
      return static_cast<double>(BufferPool::Get()->Snapshot().misses);
    });
    metrics.SetCallback("pool/bypass", [] {
      return static_cast<double>(BufferPool::Get()->Snapshot().bypass);
    });
    metrics.SetCallback("pool/bytes_in_flight", [] {
      return static_cast<double>(BufferPool::Get()->Snapshot().bytes_in_flight);
    });
    metrics.SetCallback("pool/peak_bytes_in_flight", [] {
      return static_cast<double>(BufferPool::Get()->Snapshot().peak_bytes_in_flight);
    });
    metrics.SetCallback("pool/bytes_parked", [] {
      return static_cast<double>(BufferPool::Get()->Snapshot().bytes_parked);
    });
    return true;
  }();
  (void)metrics_registered;
  return instance;
}

bool BufferPool::ZeroCopyEnabled() {
  const int override_value = g_zero_copy_override.load(std::memory_order_relaxed);
  if (override_value >= 0) {
    return override_value != 0;
  }
  return ZeroCopyFromEnv();
}

void BufferPool::SetZeroCopyEnabledForTesting(int enabled) {
  g_zero_copy_override.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                             std::memory_order_relaxed);
}

PoolBlock* BufferPool::Allocate(int64_t numel, bool* zeroed) {
  PD_CHECK_GT(numel, 0);
  Impl* p = impl();
  p->counters.allocations.fetch_add(1, std::memory_order_relaxed);
  const int32_t cls = ZeroCopyEnabled() ? ClassFor(numel) : kBypassClass;
  if (cls != kBypassClass) {
    const int64_t bytes = ClassCapacity(cls) * static_cast<int64_t>(sizeof(float));
    PoolBlock* block = nullptr;
    Impl::ThreadCache& cache = Impl::Cache(p);
    if (cache.counts[cls] > 0) {
      block = cache.slots[cls][--cache.counts[cls]];
    } else {
      std::lock_guard<std::mutex> lock(p->mutex[cls]);
      if (!p->free_lists[cls].empty()) {
        block = p->free_lists[cls].back();
        p->free_lists[cls].pop_back();
      }
    }
    if (block != nullptr) {
      PD_DCHECK(block->refs.load(std::memory_order_relaxed) == 0);
      block->refs.store(1, std::memory_order_relaxed);
      p->counters.hits.fetch_add(1, std::memory_order_relaxed);
      p->counters.bytes_parked.fetch_sub(bytes, std::memory_order_relaxed);
      p->NoteInFlight(bytes);
      *zeroed = false;  // recycled payloads are dirty
      return block;
    }
    p->counters.misses.fetch_add(1, std::memory_order_relaxed);
    p->NoteInFlight(bytes);
    *zeroed = true;
    return FreshBlock(ClassCapacity(cls), cls);
  }
  p->counters.bypass.fetch_add(1, std::memory_order_relaxed);
  p->NoteInFlight(numel * static_cast<int64_t>(sizeof(float)));
  *zeroed = true;
  return FreshBlock(numel, kBypassClass);
}

void BufferPool::Release(PoolBlock* block) {
  Impl* p = impl();
  p->counters.releases.fetch_add(1, std::memory_order_relaxed);
  const int64_t bytes = block->capacity * static_cast<int64_t>(sizeof(float));
  p->counters.bytes_in_flight.fetch_sub(bytes, std::memory_order_relaxed);
  const int32_t cls = block->size_class;
  if (cls == kBypassClass) {
    DestroyBlock(block);
    return;
  }
  p->counters.bytes_parked.fetch_add(bytes, std::memory_order_relaxed);
  Impl::ThreadCache& cache = Impl::Cache(p);
  if (cache.counts[cls] < kThreadCacheSlots) {
    cache.slots[cls][cache.counts[cls]++] = block;
    return;
  }
  std::lock_guard<std::mutex> lock(p->mutex[cls]);
  p->free_lists[cls].push_back(block);
}

PoolStats BufferPool::Snapshot() const {
  Impl* p = const_cast<BufferPool*>(this)->impl();
  PoolStats s;
  s.allocations = p->counters.allocations.load(std::memory_order_relaxed);
  s.hits = p->counters.hits.load(std::memory_order_relaxed);
  s.misses = p->counters.misses.load(std::memory_order_relaxed);
  s.bypass = p->counters.bypass.load(std::memory_order_relaxed);
  s.releases = p->counters.releases.load(std::memory_order_relaxed);
  s.bytes_in_flight = p->counters.bytes_in_flight.load(std::memory_order_relaxed);
  s.peak_bytes_in_flight = p->counters.peak_bytes_in_flight.load(std::memory_order_relaxed);
  s.bytes_parked = p->counters.bytes_parked.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  Impl* p = impl();
  p->counters.allocations.store(0, std::memory_order_relaxed);
  p->counters.hits.store(0, std::memory_order_relaxed);
  p->counters.misses.store(0, std::memory_order_relaxed);
  p->counters.bypass.store(0, std::memory_order_relaxed);
  p->counters.releases.store(0, std::memory_order_relaxed);
  p->counters.peak_bytes_in_flight.store(
      p->counters.bytes_in_flight.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

void BufferPool::TrimFreeLists() {
  Impl* p = impl();
  for (int c = 0; c < kNumClasses; ++c) {
    std::vector<PoolBlock*> taken;
    {
      std::lock_guard<std::mutex> lock(p->mutex[c]);
      taken.swap(p->free_lists[c]);
    }
    for (PoolBlock* block : taken) {
      p->counters.bytes_parked.fetch_sub(block->capacity * static_cast<int64_t>(sizeof(float)),
                                         std::memory_order_relaxed);
      DestroyBlock(block);
    }
  }
}

void BufferPool::FlushThreadCache() { Impl::Cache(impl()).Flush(); }

void PoolUnrefSlow(PoolBlock* block) { BufferPool::Get()->Release(block); }

PoolScratch::PoolScratch(int64_t numel, bool zero) {
  bool zeroed = false;
  block_ = BufferPool::Get()->Allocate(numel, &zeroed);
  if (zero && !zeroed) {
    std::memset(block_->data(), 0, static_cast<size_t>(numel) * sizeof(float));
  }
}

}  // namespace pipedream
