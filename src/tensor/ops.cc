#include "src/tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/tensor/pool.h"
#include "src/tensor/ref_ops.h"

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#endif

namespace pipedream {
namespace {

// ---------------------------------------------------------------------------------------
// Kernel dispatch. Three variants share the ops API: the naive reference oracle
// (ref_ops.cc), the cache-blocked compiler-vectorized kernel, and the explicit-SIMD
// register-tiled kernel. PIPEDREAM_NAIVE_KERNELS=1 (or the test hook) forces the oracle;
// PIPEDREAM_KERNEL_VARIANT picks among all three; the default is the best variant the
// build supports.
// ---------------------------------------------------------------------------------------

std::atomic<int> g_naive_override{-1};    // -1 = follow the environment
std::atomic<int> g_variant_override{-1};  // -1 = follow the environment, else KernelVariant

bool NaiveKernelsFromEnv() {
  static const bool value = [] {
    const char* env = std::getenv("PIPEDREAM_NAIVE_KERNELS");
    return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  }();
  return value;
}

KernelVariant DefaultKernelVariant() {
#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
  return KernelVariant::kSimd;
#else
  // The simd variant's scalar fallback stays available for testing, but the blocked
  // kernel's compiler-vectorized tile is the better default without a vector ISA.
  return KernelVariant::kBlocked;
#endif
}

KernelVariant KernelVariantFromEnv() {
  static const KernelVariant value = [] {
    const char* env = std::getenv("PIPEDREAM_KERNEL_VARIANT");
    if (env == nullptr || env[0] == '\0') {
      return DefaultKernelVariant();
    }
    if (std::strcmp(env, "naive") == 0) return KernelVariant::kNaive;
    if (std::strcmp(env, "blocked") == 0) return KernelVariant::kBlocked;
    if (std::strcmp(env, "simd") == 0) return KernelVariant::kSimd;
    PD_CHECK(false) << "PIPEDREAM_KERNEL_VARIANT must be naive, blocked, or simd; got '"
                    << env << "'";
    return DefaultKernelVariant();
  }();
  return value;
}

// ---------------------------------------------------------------------------------------
// Packed GEMM.
//
// Goto-style three-level blocking: B panels of KC x NC are packed into NR-wide column
// strips, A blocks of MC x KC into MR-tall row strips, and a register-tiled MR x NR
// microkernel accumulates over the packed K block. Packing normalizes both transpose
// flags, so one microkernel serves all four operand layouts. Work is parallelized over
// the MC row blocks of C: every block owns a disjoint row slice of the output and the K
// loop stays sequential, so results are bitwise independent of the thread count.
//
// Two kernels drive the shared macro loop: the blocked kernel (6x16 tile, GCC/Clang
// vector extensions) and the simd kernel (explicit intrinsics sized to the widest ISA
// the build targets, with a direct-to-C epilogue for full interior tiles).
// ---------------------------------------------------------------------------------------

constexpr int64_t kMr = 6;    // blocked microkernel rows (register tiling)
constexpr int64_t kNr = 16;   // blocked microkernel columns (two 8-float vectors)
constexpr int64_t kMc = 96;   // rows of C per packed A block (multiple of kMr)
constexpr int64_t kKc = 256;  // K extent of packed blocks
constexpr int64_t kNc = 512;  // columns of C per packed B panel (multiple of kNr)

// Problems below this FLOP count skip packing entirely; the naive loops win there.
constexpr int64_t kTinyGemmElems = 32 * 32 * 32;

inline float OpAt(const float* p, int64_t ld, bool transpose, int64_t r, int64_t c) {
  return transpose ? p[c * ld + r] : p[r * ld + c];
}

// Packs rows [i0, i0+m_blk) x cols [k0, k0+kc) of op(A) into MR-tall strips:
// buf[strip][kk][r], zero-padded to a whole strip.
template <int64_t MR>
void PackA(const float* a, int64_t lda, bool ta, int64_t i0, int64_t m_blk, int64_t k0,
           int64_t kc, float* buf) {
  const int64_t strips = (m_blk + MR - 1) / MR;
  for (int64_t s = 0; s < strips; ++s) {
    const int64_t rows = std::min(MR, m_blk - s * MR);
    float* dst = buf + s * kc * MR;
    if (ta && rows == MR) {
      // Fast path: a full strip of op(A)'s k-major data is MR contiguous floats per k.
      const float* src = a + k0 * lda + i0 + s * MR;
      for (int64_t kk = 0; kk < kc; ++kk) {
        std::memcpy(dst + kk * MR, src + kk * lda, MR * sizeof(float));
      }
      continue;
    }
    for (int64_t kk = 0; kk < kc; ++kk) {
      for (int64_t r = 0; r < rows; ++r) {
        dst[kk * MR + r] = OpAt(a, lda, ta, i0 + s * MR + r, k0 + kk);
      }
      for (int64_t r = rows; r < MR; ++r) {
        dst[kk * MR + r] = 0.0f;
      }
    }
  }
}

// Packs rows [k0, k0+kc) x cols [j0, j0+n_blk) of op(B) into NR-wide strips:
// buf[strip][kk][j], zero-padded to a whole strip.
template <int64_t NR>
void PackB(const float* b, int64_t ldb, bool tb, int64_t k0, int64_t kc, int64_t j0,
           int64_t n_blk, float* buf) {
  const int64_t strips = (n_blk + NR - 1) / NR;
  for (int64_t s = 0; s < strips; ++s) {
    const int64_t cols = std::min(NR, n_blk - s * NR);
    float* dst = buf + s * kc * NR;
    if (!tb && cols == NR) {
      // Fast path: op(B) rows are contiguous NR-float runs.
      const float* src = b + k0 * ldb + j0 + s * NR;
      for (int64_t kk = 0; kk < kc; ++kk) {
        std::memcpy(dst + kk * NR, src + kk * ldb, NR * sizeof(float));
      }
      continue;
    }
    for (int64_t kk = 0; kk < kc; ++kk) {
      for (int64_t j = 0; j < cols; ++j) {
        dst[kk * NR + j] = OpAt(b, ldb, tb, k0 + kk, j0 + s * NR + j);
      }
      for (int64_t j = cols; j < NR; ++j) {
        dst[kk * NR + j] = 0.0f;
      }
    }
  }
}

// acc[MR][NR] = sum_k apanel[k][MR] (x) bpanel[k][NR].
//
// The accumulator tile lives in named vector variables — 12 8-float vectors for the
// 6x16 tile — because an indexed local array reliably ends up in memory instead of
// registers, which costs ~10x. GCC/Clang vector extensions compile to broadcast-FMA
// sequences on any SIMD ISA (and to scalar code elsewhere).
#if defined(__GNUC__) || defined(__clang__)

typedef float Vec8 __attribute__((vector_size(32)));

inline Vec8 LoadU(const float* p) {
  Vec8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU(float* p, Vec8 v) { __builtin_memcpy(p, &v, sizeof(v)); }

inline Vec8 Splat(float x) { return Vec8{x, x, x, x, x, x, x, x}; }

inline void MicroKernel(int64_t kc, const float* __restrict__ apanel,
                        const float* __restrict__ bpanel, float* __restrict__ acc) {
  Vec8 c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
  for (int64_t kk = 0; kk < kc; ++kk) {
    const Vec8 b0 = LoadU(bpanel + kk * kNr);
    const Vec8 b1 = LoadU(bpanel + kk * kNr + 8);
    const float* a = apanel + kk * kMr;
    Vec8 av;
    av = Splat(a[0]); c00 += av * b0; c01 += av * b1;
    av = Splat(a[1]); c10 += av * b0; c11 += av * b1;
    av = Splat(a[2]); c20 += av * b0; c21 += av * b1;
    av = Splat(a[3]); c30 += av * b0; c31 += av * b1;
    av = Splat(a[4]); c40 += av * b0; c41 += av * b1;
    av = Splat(a[5]); c50 += av * b0; c51 += av * b1;
  }
  StoreU(acc + 0 * kNr, c00); StoreU(acc + 0 * kNr + 8, c01);
  StoreU(acc + 1 * kNr, c10); StoreU(acc + 1 * kNr + 8, c11);
  StoreU(acc + 2 * kNr, c20); StoreU(acc + 2 * kNr + 8, c21);
  StoreU(acc + 3 * kNr, c30); StoreU(acc + 3 * kNr + 8, c31);
  StoreU(acc + 4 * kNr, c40); StoreU(acc + 4 * kNr + 8, c41);
  StoreU(acc + 5 * kNr, c50); StoreU(acc + 5 * kNr + 8, c51);
}

#else  // portable fallback

inline void MicroKernel(int64_t kc, const float* __restrict__ apanel,
                        const float* __restrict__ bpanel, float* __restrict__ acc) {
  for (int64_t r = 0; r < kMr * kNr; ++r) {
    acc[r] = 0.0f;
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* a = apanel + kk * kMr;
    const float* b = bpanel + kk * kNr;
    for (int64_t r = 0; r < kMr; ++r) {
      const float av = a[r];
      float* c = acc + r * kNr;
      for (int64_t j = 0; j < kNr; ++j) {
        c[j] += av * b[j];
      }
    }
  }
}

#endif

// ---------------------------------------------------------------------------------------
// Explicit-SIMD micro-kernels. Tile sizes follow the register file of the widest ISA the
// build targets; the scalar fallback keeps the same interface so the macro loop and the
// dispatch table never change shape. Each ISA provides two entry points:
//   Edge:   acc[MR][NR] = A-strip @ B-strip over kc (acc is fully written), used for
//           partial tiles whose writeback must be clipped to rows x cols.
//   Direct: C[MR][NR] += alpha * A-strip @ B-strip at row stride ldc, used for full
//           interior tiles — skips the acc spill and the scalar writeback loop.
// ---------------------------------------------------------------------------------------

#if defined(__AVX512F__)

constexpr int64_t kSimdMr = 14;   // 28 zmm accumulators + 2 B vectors + 1 broadcast = 31
constexpr int64_t kSimdNr = 32;   // two 16-float zmm vectors
constexpr int64_t kSimdMc = 140;  // multiple of kSimdMr
constexpr int64_t kSimdKc = 256;
constexpr int64_t kSimdNc = 512;  // multiple of kSimdNr
constexpr char kSimdIsaName[] = "avx512";

// The accumulator tile is an indexed array, unlike the blocked kernel's named vectors:
// with constant trip counts GCC/Clang fully unroll these loops and promote all 28
// accumulators to zmm registers (verified against the named-variable form).
inline void SimdAccumulate(int64_t kc, const float* __restrict__ apanel,
                           const float* __restrict__ bpanel, __m512 c[kSimdMr][2]) {
  for (int64_t r = 0; r < kSimdMr; ++r) {
    c[r][0] = _mm512_setzero_ps();
    c[r][1] = _mm512_setzero_ps();
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m512 b0 = _mm512_loadu_ps(bpanel + kk * kSimdNr);
    const __m512 b1 = _mm512_loadu_ps(bpanel + kk * kSimdNr + 16);
    const float* a = apanel + kk * kSimdMr;
    for (int64_t r = 0; r < kSimdMr; ++r) {
      const __m512 av = _mm512_set1_ps(a[r]);
      c[r][0] = _mm512_fmadd_ps(av, b0, c[r][0]);
      c[r][1] = _mm512_fmadd_ps(av, b1, c[r][1]);
    }
  }
}

void SimdMicroKernel(int64_t kc, const float* __restrict__ apanel,
                     const float* __restrict__ bpanel, float* __restrict__ acc) {
  __m512 c[kSimdMr][2];
  SimdAccumulate(kc, apanel, bpanel, c);
  for (int64_t r = 0; r < kSimdMr; ++r) {
    _mm512_storeu_ps(acc + r * kSimdNr, c[r][0]);
    _mm512_storeu_ps(acc + r * kSimdNr + 16, c[r][1]);
  }
}

void SimdMicroKernelDirect(int64_t kc, const float* __restrict__ apanel,
                           const float* __restrict__ bpanel, float alpha,
                           float* __restrict__ cblk, int64_t ldc) {
  __m512 c[kSimdMr][2];
  SimdAccumulate(kc, apanel, bpanel, c);
  const __m512 va = _mm512_set1_ps(alpha);
  for (int64_t r = 0; r < kSimdMr; ++r) {
    float* p = cblk + r * ldc;
    _mm512_storeu_ps(p, _mm512_fmadd_ps(va, c[r][0], _mm512_loadu_ps(p)));
    _mm512_storeu_ps(p + 16, _mm512_fmadd_ps(va, c[r][1], _mm512_loadu_ps(p + 16)));
  }
}

#elif defined(__AVX2__) && defined(__FMA__)

constexpr int64_t kSimdMr = 6;   // 12 ymm accumulators + 2 B vectors + 1 broadcast = 15
constexpr int64_t kSimdNr = 16;  // two 8-float ymm vectors
constexpr int64_t kSimdMc = 96;
constexpr int64_t kSimdKc = 256;
constexpr int64_t kSimdNc = 512;
constexpr char kSimdIsaName[] = "avx2";

inline void SimdAccumulate(int64_t kc, const float* __restrict__ apanel,
                           const float* __restrict__ bpanel, __m256 c[kSimdMr][2]) {
  for (int64_t r = 0; r < kSimdMr; ++r) {
    c[r][0] = _mm256_setzero_ps();
    c[r][1] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bpanel + kk * kSimdNr);
    const __m256 b1 = _mm256_loadu_ps(bpanel + kk * kSimdNr + 8);
    const float* a = apanel + kk * kSimdMr;
    for (int64_t r = 0; r < kSimdMr; ++r) {
      const __m256 av = _mm256_broadcast_ss(a + r);
      c[r][0] = _mm256_fmadd_ps(av, b0, c[r][0]);
      c[r][1] = _mm256_fmadd_ps(av, b1, c[r][1]);
    }
  }
}

void SimdMicroKernel(int64_t kc, const float* __restrict__ apanel,
                     const float* __restrict__ bpanel, float* __restrict__ acc) {
  __m256 c[kSimdMr][2];
  SimdAccumulate(kc, apanel, bpanel, c);
  for (int64_t r = 0; r < kSimdMr; ++r) {
    _mm256_storeu_ps(acc + r * kSimdNr, c[r][0]);
    _mm256_storeu_ps(acc + r * kSimdNr + 8, c[r][1]);
  }
}

void SimdMicroKernelDirect(int64_t kc, const float* __restrict__ apanel,
                           const float* __restrict__ bpanel, float alpha,
                           float* __restrict__ cblk, int64_t ldc) {
  __m256 c[kSimdMr][2];
  SimdAccumulate(kc, apanel, bpanel, c);
  const __m256 va = _mm256_set1_ps(alpha);
  for (int64_t r = 0; r < kSimdMr; ++r) {
    float* p = cblk + r * ldc;
    _mm256_storeu_ps(p, _mm256_fmadd_ps(va, c[r][0], _mm256_loadu_ps(p)));
    _mm256_storeu_ps(p + 8, _mm256_fmadd_ps(va, c[r][1], _mm256_loadu_ps(p + 8)));
  }
}

#else  // restrict-qualified scalar fallback (no vector ISA targeted)

constexpr int64_t kSimdMr = 6;
constexpr int64_t kSimdNr = 16;
constexpr int64_t kSimdMc = 96;
constexpr int64_t kSimdKc = 256;
constexpr int64_t kSimdNc = 512;
constexpr char kSimdIsaName[] = "scalar";

void SimdMicroKernel(int64_t kc, const float* __restrict__ apanel,
                     const float* __restrict__ bpanel, float* __restrict__ acc) {
  for (int64_t r = 0; r < kSimdMr * kSimdNr; ++r) {
    acc[r] = 0.0f;
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* __restrict__ a = apanel + kk * kSimdMr;
    const float* __restrict__ b = bpanel + kk * kSimdNr;
    for (int64_t r = 0; r < kSimdMr; ++r) {
      const float av = a[r];
      float* __restrict__ c = acc + r * kSimdNr;
      for (int64_t j = 0; j < kSimdNr; ++j) {
        c[j] += av * b[j];
      }
    }
  }
}

void SimdMicroKernelDirect(int64_t kc, const float* __restrict__ apanel,
                           const float* __restrict__ bpanel, float alpha,
                           float* __restrict__ cblk, int64_t ldc) {
  float acc[kSimdMr * kSimdNr];
  SimdMicroKernel(kc, apanel, bpanel, acc);
  for (int64_t r = 0; r < kSimdMr; ++r) {
    float* __restrict__ p = cblk + r * ldc;
    for (int64_t j = 0; j < kSimdNr; ++j) {
      p[j] += alpha * acc[r * kSimdNr + j];
    }
  }
}

#endif

// ---------------------------------------------------------------------------------------
// Macro loop, generic over the kernel descriptor.
// ---------------------------------------------------------------------------------------

// Largest tile any kernel uses; bounds the stack accumulator in the macro loop.
constexpr int64_t kMaxMr = 16;
constexpr int64_t kMaxNr = 64;
static_assert(kMr <= kMaxMr && kNr <= kMaxNr, "blocked tile exceeds acc buffer");
static_assert(kSimdMr <= kMaxMr && kSimdNr <= kMaxNr, "simd tile exceeds acc buffer");
static_assert(kMc % kMr == 0 && kNc % kNr == 0, "blocked blocking must tile evenly");
static_assert(kSimdMc % kSimdMr == 0 && kSimdNc % kSimdNr == 0,
              "simd blocking must tile evenly");

// A register-tile kernel plus the blocking geometry its macro loop runs under. `direct`
// may be null (partial tiles and kernels without a fused epilogue go through `edge` and
// a clipped scalar writeback).
struct GemmKernel {
  int64_t mr, nr, mc, kc, nc;
  void (*edge)(int64_t kc, const float* apanel, const float* bpanel, float* acc);
  void (*direct)(int64_t kc, const float* apanel, const float* bpanel, float alpha,
                 float* cblk, int64_t ldc);
  void (*pack_a)(const float* a, int64_t lda, bool ta, int64_t i0, int64_t m_blk,
                 int64_t k0, int64_t kc, float* buf);
  void (*pack_b)(const float* b, int64_t ldb, bool tb, int64_t k0, int64_t kc, int64_t j0,
                 int64_t n_blk, float* buf);
};

constexpr GemmKernel kBlockedKernel = {
    kMr, kNr, kMc, kKc, kNc, &MicroKernel, nullptr, &PackA<kMr>, &PackB<kNr>};

constexpr GemmKernel kSimdKernel = {
    kSimdMr,          kSimdNr,                kSimdMc,         kSimdKc,        kSimdNc,
    &SimdMicroKernel, &SimdMicroKernelDirect, &PackA<kSimdMr>, &PackB<kSimdNr>};

// C[m, n] (leading dimension ldc) += alpha * op(A) @ op(B). C must already hold its beta
// contribution. Deterministic for fixed shapes regardless of threading.
void PackedGemmCore(const GemmKernel& kern, const float* a, int64_t lda, bool ta,
                    const float* b, int64_t ldb, bool tb, int64_t m, int64_t n, int64_t k,
                    float alpha, float* c, int64_t ldc) {
  // Packing panels are pooled scratch: every minibatch re-runs the same GEMM shapes, so
  // these recycle instead of hitting the heap. PackA/PackB fully overwrite the regions
  // the microkernel reads, so the buffers stay uninitialized.
  PoolScratch bpack(kern.kc * kern.nc);
  const int64_t m_blocks = (m + kern.mc - 1) / kern.mc;
  for (int64_t jc = 0; jc < n; jc += kern.nc) {
    const int64_t n_blk = std::min(kern.nc, n - jc);
    const int64_t n_strips = (n_blk + kern.nr - 1) / kern.nr;
    for (int64_t pc = 0; pc < k; pc += kern.kc) {
      const int64_t kc = std::min(kern.kc, k - pc);
      kern.pack_b(b, ldb, tb, pc, kc, jc, n_blk, bpack.data());
      ParallelFor(0, m_blocks, 1, [&](int64_t /*chunk*/, int64_t blk_lo, int64_t blk_hi) {
        PoolScratch apack(kern.mc * kern.kc);
        for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
          const int64_t i0 = blk * kern.mc;
          const int64_t m_blk = std::min(kern.mc, m - i0);
          kern.pack_a(a, lda, ta, i0, m_blk, pc, kc, apack.data());
          const int64_t m_strips = (m_blk + kern.mr - 1) / kern.mr;
          for (int64_t js = 0; js < n_strips; ++js) {
            const int64_t cols = std::min(kern.nr, n_blk - js * kern.nr);
            const float* bp = bpack.data() + js * kc * kern.nr;
            for (int64_t is = 0; is < m_strips; ++is) {
              const int64_t rows = std::min(kern.mr, m_blk - is * kern.mr);
              const float* ap = apack.data() + is * kc * kern.mr;
              float* cblk = c + (i0 + is * kern.mr) * ldc + jc + js * kern.nr;
              if (kern.direct != nullptr && rows == kern.mr && cols == kern.nr) {
                kern.direct(kc, ap, bp, alpha, cblk, ldc);
                continue;
              }
              alignas(64) float acc[kMaxMr * kMaxNr];  // fully written by the edge kernel
              kern.edge(kc, ap, bp, acc);
              for (int64_t r = 0; r < rows; ++r) {
                for (int64_t j = 0; j < cols; ++j) {
                  cblk[r * ldc + j] += alpha * acc[r * kern.nr + j];
                }
              }
            }
          }
        }
      });
    }
  }
}

const GemmKernel& ActiveGemmKernel() {
  return ActiveKernelVariant() == KernelVariant::kSimd ? kSimdKernel : kBlockedKernel;
}

// Variant-dispatched entry point used by Gemm and the im2col conv lowerings.
void GemmCore(const float* a, int64_t lda, bool ta, const float* b, int64_t ldb, bool tb,
              int64_t m, int64_t n, int64_t k, float alpha, float* c, int64_t ldc) {
  PackedGemmCore(ActiveGemmKernel(), a, lda, ta, b, ldb, tb, m, n, k, alpha, c, ldc);
}

// Extracts the logical (rows, cols) of a possibly transposed rank-2 operand.
void LogicalDims(const Tensor& t, bool transpose, int64_t* rows, int64_t* cols) {
  PD_CHECK_EQ(t.rank(), 2u);
  if (transpose) {
    *rows = t.dim(1);
    *cols = t.dim(0);
  } else {
    *rows = t.dim(0);
    *cols = t.dim(1);
  }
}

// Grain sizes for parallel elementwise / reduction loops. Chunk boundaries are a pure
// function of the element count, never of the thread budget (determinism).
constexpr int64_t kElementwiseGrain = 1 << 15;
constexpr int64_t kReduceGrain = 1 << 15;

}  // namespace

KernelVariant ActiveKernelVariant() {
  const int naive = g_naive_override.load(std::memory_order_relaxed);
  if (naive > 0) {
    return KernelVariant::kNaive;
  }
  const int pinned = g_variant_override.load(std::memory_order_relaxed);
  if (pinned >= 0) {
    return static_cast<KernelVariant>(pinned);
  }
  if (naive < 0 && NaiveKernelsFromEnv()) {
    return KernelVariant::kNaive;
  }
  const KernelVariant from_env = KernelVariantFromEnv();
  if (naive == 0 && from_env == KernelVariant::kNaive) {
    // SetNaiveKernelsForTesting(false) must defeat a naive environment either way.
    return DefaultKernelVariant();
  }
  return from_env;
}

bool UseNaiveKernels() { return ActiveKernelVariant() == KernelVariant::kNaive; }

void SetNaiveKernelsForTesting(bool naive) {
  g_naive_override.store(naive ? 1 : 0, std::memory_order_relaxed);
}

void SetKernelVariantForTesting(KernelVariant v) {
  g_variant_override.store(static_cast<int>(v), std::memory_order_relaxed);
}

void ClearKernelVariantForTesting() {
  g_variant_override.store(-1, std::memory_order_relaxed);
}

const char* KernelVariantName(KernelVariant v) {
  switch (v) {
    case KernelVariant::kNaive:
      return "naive";
    case KernelVariant::kBlocked:
      return "blocked";
    case KernelVariant::kSimd:
      return "simd";
  }
  return "unknown";
}

const char* SimdKernelIsa() { return kSimdIsaName; }

double MicroKernelPeakGflops(KernelVariant v, double min_seconds) {
  PD_CHECK(v == KernelVariant::kBlocked || v == KernelVariant::kSimd)
      << "no micro-kernel for variant " << KernelVariantName(v);
  const GemmKernel& kern = v == KernelVariant::kSimd ? kSimdKernel : kBlockedKernel;
  const int64_t kc = kern.kc;
  // One A-strip + one B-strip at full KC fit in L1 alongside the accumulator tile, so
  // this measures pure register-tile throughput — the roofline over any full GEMM.
  std::vector<float> apanel(static_cast<size_t>(kern.mr * kc), 1.0f);
  std::vector<float> bpanel(static_cast<size_t>(kern.nr * kc), 0.5f);
  alignas(64) float acc[kMaxMr * kMaxNr];
  const double flops_per_call = 2.0 * static_cast<double>(kern.mr * kern.nr * kc);
  // ~2ms batches; best batch wins so scheduler preemption lowers no estimate.
  const int64_t reps = std::max<int64_t>(1, static_cast<int64_t>(4.0e8 / flops_per_call));
  double best = 0.0;
  float sink = 0.0f;
  for (double elapsed = 0.0; elapsed < min_seconds;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < reps; ++i) {
      kern.edge(kc, apanel.data(), bpanel.data(), acc);
      sink += acc[0];
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    elapsed += dt;
    if (dt > 0.0) {
      best = std::max(best, flops_per_call * static_cast<double>(reps) / dt / 1e9);
    }
  }
  // The compiler cannot prove this false, which keeps the timing loop live.
  if (sink == 0.12345f) {
    return 0.0;
  }
  return best;
}

void Gemm(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b, float alpha,
          float beta, Tensor* out) {
  int64_t m = 0;
  int64_t k = 0;
  int64_t k2 = 0;
  int64_t n = 0;
  LogicalDims(a, transpose_a, &m, &k);
  LogicalDims(b, transpose_b, &k2, &n);
  PD_CHECK_EQ(k, k2) << "GEMM inner dimensions disagree: " << a.ShapeString() << " x "
                     << b.ShapeString();
  if (UseNaiveKernels() || m * n * k <= kTinyGemmElems) {
    ref::Gemm(a, transpose_a, b, transpose_b, alpha, beta, out);
    return;
  }
  if (beta == 0.0f) {
    if (out->rank() != 2 || out->dim(0) != m || out->dim(1) != n) {
      *out = Tensor({m, n});
    } else {
      out->SetZero();
    }
  } else {
    PD_CHECK(out->rank() == 2 && out->dim(0) == m && out->dim(1) == n)
        << "GEMM accumulate into mismatched output " << out->ShapeString();
    if (beta != 1.0f) {
      Scale(out, beta);
    }
  }
  GemmCore(a.data(), a.dim(1), transpose_a, b.data(), b.dim(1), transpose_b, m, n, k,
           alpha, out->data(), n);
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  Gemm(a, false, b, false, 1.0f, 0.0f, out);
}

// ---------------------------------------------------------------------------------------
// Convolution: im2col lowering onto the blocked GEMM.
// ---------------------------------------------------------------------------------------

void ConvGeometry::Check(const Tensor& input, const Tensor& weight, const Tensor& bias) const {
  PD_CHECK_EQ(input.rank(), 4u);
  PD_CHECK_EQ(input.dim(0), batch);
  PD_CHECK_EQ(input.dim(1), in_channels);
  PD_CHECK_EQ(input.dim(2), in_h);
  PD_CHECK_EQ(input.dim(3), in_w);
  PD_CHECK_EQ(weight.rank(), 4u);
  PD_CHECK_EQ(weight.dim(0), out_channels);
  PD_CHECK_EQ(weight.dim(1), in_channels);
  PD_CHECK_EQ(weight.dim(2), kernel);
  PD_CHECK_EQ(weight.dim(3), kernel);
  PD_CHECK_EQ(bias.numel(), out_channels);
  PD_CHECK_GT(stride, 0);
  PD_CHECK_GE(padding, 0);
  PD_CHECK_GT(out_h(), 0);
  PD_CHECK_GT(out_w(), 0);
}

namespace {

// Unfolds one sample's [IC, H, W] slab into a [IC*K*K, OH*OW] patch matrix (zero padding
// included); row (ic*K + kh)*K + kw holds input[ic, oh*s - p + kh, ow*s - p + kw].
void Im2Col(const float* in, const ConvGeometry& g, float* col) {
  const int64_t out_h = g.out_h();
  const int64_t out_w = g.out_w();
  const int64_t spatial = out_h * out_w;
  for (int64_t ic = 0; ic < g.in_channels; ++ic) {
    const float* plane = in + ic * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw) {
        float* row = col + ((ic * g.kernel + kh) * g.kernel + kw) * spatial;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * g.stride - g.padding + kh;
          float* dst = row + oh * out_w;
          if (ih < 0 || ih >= g.in_h) {
            std::fill(dst, dst + out_w, 0.0f);
            continue;
          }
          const float* src = plane + ih * g.in_w;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * g.stride - g.padding + kw;
            dst[ow] = (iw < 0 || iw >= g.in_w) ? 0.0f : src[iw];
          }
        }
      }
    }
  }
}

// Scatter-adds a [IC*K*K, OH*OW] patch-gradient matrix back into a [IC, H, W] slab
// (transpose of Im2Col).
void Col2Im(const float* col, const ConvGeometry& g, float* in_grad) {
  const int64_t out_h = g.out_h();
  const int64_t out_w = g.out_w();
  const int64_t spatial = out_h * out_w;
  for (int64_t ic = 0; ic < g.in_channels; ++ic) {
    float* plane = in_grad + ic * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel; ++kh) {
      for (int64_t kw = 0; kw < g.kernel; ++kw) {
        const float* row = col + ((ic * g.kernel + kh) * g.kernel + kw) * spatial;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * g.stride - g.padding + kh;
          if (ih < 0 || ih >= g.in_h) {
            continue;
          }
          float* dst = plane + ih * g.in_w;
          const float* src = row + oh * out_w;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * g.stride - g.padding + kw;
            if (iw >= 0 && iw < g.in_w) {
              dst[iw] += src[ow];
            }
          }
        }
      }
    }
  }
}

}  // namespace

void Conv2dForward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                   const ConvGeometry& g, Tensor* out) {
  g.Check(input, weight, bias);
  if (UseNaiveKernels()) {
    ref::Conv2dForward(input, weight, bias, g, out);
    return;
  }
  const int64_t out_h = g.out_h();
  const int64_t out_w = g.out_w();
  const int64_t spatial = out_h * out_w;
  const int64_t patch = g.in_channels * g.kernel * g.kernel;
  if (out->rank() != 4 || out->dim(0) != g.batch || out->dim(1) != g.out_channels ||
      out->dim(2) != out_h || out->dim(3) != out_w) {
    // Every element is written below (bias fill + GEMM accumulate), so skip the zero fill.
    *out = Tensor::Uninitialized({g.batch, g.out_channels, out_h, out_w});
  }
  // Samples write disjoint output slabs and only read the shared weights, so the batch
  // loop parallelizes deterministically; each chunk owns a private im2col buffer.
  ParallelFor(0, g.batch, 1, [&](int64_t /*chunk*/, int64_t lo, int64_t hi) {
    PoolScratch col(patch * spatial);  // fully written by Im2Col
    for (int64_t n = lo; n < hi; ++n) {
      Im2Col(input.data() + n * g.in_channels * g.in_h * g.in_w, g, col.data());
      float* cslab = out->data() + n * g.out_channels * spatial;
      for (int64_t oc = 0; oc < g.out_channels; ++oc) {
        std::fill(cslab + oc * spatial, cslab + (oc + 1) * spatial, bias[oc]);
      }
      // out[n] += W[OC, patch] @ col[patch, spatial]; the weight tensor's [OC, IC, K, K]
      // storage is already the row-major [OC, patch] matrix.
      GemmCore(weight.data(), patch, false, col.data(), spatial, false, g.out_channels,
               spatial, patch, 1.0f, cslab, spatial);
    }
  });
}

void Conv2dBackward(const Tensor& input, const Tensor& weight, const Tensor& grad_output,
                    const ConvGeometry& g, Tensor* grad_weight, Tensor* grad_bias,
                    Tensor* grad_input) {
  g.Check(input, weight, *grad_bias);
  PD_CHECK(grad_weight->SameShape(weight));
  if (UseNaiveKernels()) {
    ref::Conv2dBackward(input, weight, grad_output, g, grad_weight, grad_bias, grad_input);
    return;
  }
  const int64_t out_h = g.out_h();
  const int64_t out_w = g.out_w();
  const int64_t spatial = out_h * out_w;
  const int64_t patch = g.in_channels * g.kernel * g.kernel;
  PD_CHECK_EQ(grad_output.rank(), 4u);
  PD_CHECK_EQ(grad_output.dim(0), g.batch);
  PD_CHECK_EQ(grad_output.dim(1), g.out_channels);
  PD_CHECK_EQ(grad_output.dim(2), out_h);
  PD_CHECK_EQ(grad_output.dim(3), out_w);
  if (!grad_input->SameShape(input)) {
    *grad_input = Tensor(input.shape());
  } else {
    grad_input->SetZero();
  }
  // Weight/bias gradients accumulate across samples in batch order (deterministic, and
  // the order the naive reference uses), so this loop stays sequential; the GEMMs inside
  // parallelize over the pool.
  PoolScratch col(patch * spatial);   // fully written by Im2Col
  PoolScratch dcol(patch * spatial);  // zeroed per sample below
  for (int64_t n = 0; n < g.batch; ++n) {
    const float* gslab = grad_output.data() + n * g.out_channels * spatial;
    for (int64_t oc = 0; oc < g.out_channels; ++oc) {
      const float* grow = gslab + oc * spatial;
      float acc = 0.0f;
      for (int64_t i = 0; i < spatial; ++i) {
        acc += grow[i];
      }
      (*grad_bias)[oc] += acc;
    }
    Im2Col(input.data() + n * g.in_channels * g.in_h * g.in_w, g, col.data());
    // dW[OC, patch] += g[OC, spatial] @ col[patch, spatial]^T.
    GemmCore(gslab, spatial, false, col.data(), spatial, true, g.out_channels, patch,
             spatial, 1.0f, grad_weight->data(), patch);
    // dcol[patch, spatial] = W[OC, patch]^T @ g[OC, spatial], scattered back via col2im.
    std::fill(dcol.data(), dcol.data() + patch * spatial, 0.0f);
    GemmCore(weight.data(), patch, true, gslab, spatial, false, patch, spatial,
             g.out_channels, 1.0f, dcol.data(), spatial);
    Col2Im(dcol.data(), g, grad_input->data() + n * g.in_channels * g.in_h * g.in_w);
  }
}

// ---------------------------------------------------------------------------------------
// Elementwise ops: disjoint fixed-boundary chunks over the shared pool.
// ---------------------------------------------------------------------------------------

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  PD_CHECK(a.SameShape(b));
  *out = a;
  AddInPlace(out, b);
}

void AddInPlace(Tensor* a, const Tensor& b) {
  PD_CHECK(a->SameShape(b));
  float* pa = a->data();
  const float* pb = b.data();
  ParallelFor(0, a->numel(), kElementwiseGrain,
              [&](int64_t /*chunk*/, int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  pa[i] += pb[i];
                }
              });
}

void Axpy(float alpha, const Tensor& b, Tensor* a) {
  PD_CHECK(a->SameShape(b));
  float* pa = a->data();
  const float* pb = b.data();
  ParallelFor(0, a->numel(), kElementwiseGrain,
              [&](int64_t /*chunk*/, int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  pa[i] += alpha * pb[i];
                }
              });
}

void Sub(const Tensor& a, const Tensor& b, Tensor* out) {
  PD_CHECK(a.SameShape(b));
  *out = a;
  float* po = out->data();
  const float* pb = b.data();
  ParallelFor(0, a.numel(), kElementwiseGrain,
              [&](int64_t /*chunk*/, int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  po[i] -= pb[i];
                }
              });
}

void Mul(const Tensor& a, const Tensor& b, Tensor* out) {
  PD_CHECK(a.SameShape(b));
  *out = a;
  float* po = out->data();
  const float* pb = b.data();
  ParallelFor(0, a.numel(), kElementwiseGrain,
              [&](int64_t /*chunk*/, int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  po[i] *= pb[i];
                }
              });
}

void Scale(Tensor* a, float scalar) {
  float* pa = a->data();
  ParallelFor(0, a->numel(), kElementwiseGrain,
              [&](int64_t /*chunk*/, int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  pa[i] *= scalar;
                }
              });
}

void AddBiasRows(Tensor* matrix, const Tensor& bias) {
  PD_CHECK_EQ(matrix->rank(), 2u);
  PD_CHECK_EQ(bias.numel(), matrix->dim(1));
  const int64_t n = matrix->dim(1);
  float* pm = matrix->data();
  const float* pb = bias.data();
  ParallelFor(0, matrix->dim(0), std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(n, 1)),
              [&](int64_t /*chunk*/, int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  float* row = pm + i * n;
                  for (int64_t j = 0; j < n; ++j) {
                    row[j] += pb[j];
                  }
                }
              });
}

// ---------------------------------------------------------------------------------------
// Reductions: fixed-size chunks produce indexed partials combined in chunk order, so the
// result is a pure function of the input (never of the thread count).
// ---------------------------------------------------------------------------------------

void AccumulateColumnSums(const Tensor& matrix, Tensor* bias_grad) {
  PD_CHECK_EQ(matrix.rank(), 2u);
  PD_CHECK_EQ(bias_grad->numel(), matrix.dim(1));
  const int64_t m = matrix.dim(0);
  const int64_t n = matrix.dim(1);
  const float* pm = matrix.data();
  float* pg = bias_grad->data();
  const int64_t row_grain = std::max<int64_t>(1, kReduceGrain / std::max<int64_t>(n, 1));
  const int64_t chunks = ParallelChunkCount(0, m, row_grain);
  if (chunks <= 1) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        pg[j] += pm[i * n + j];
      }
    }
    return;
  }
  PoolScratch partials(chunks * n, /*zero=*/true);
  ParallelFor(0, m, row_grain, [&](int64_t chunk, int64_t lo, int64_t hi) {
    float* part = partials.data() + chunk * n;
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        part[j] += pm[i * n + j];
      }
    }
  });
  for (int64_t c = 0; c < chunks; ++c) {
    const float* part = partials.data() + c * n;
    for (int64_t j = 0; j < n; ++j) {
      pg[j] += part[j];
    }
  }
}

double Sum(const Tensor& a) {
  if (UseNaiveKernels()) {
    return ref::Sum(a);
  }
  const float* pa = a.data();
  const int64_t n = a.numel();
  const int64_t chunks = ParallelChunkCount(0, n, kReduceGrain);
  if (chunks <= 1) {
    return ref::Sum(a);
  }
  std::vector<double> partials(static_cast<size_t>(chunks), 0.0);
  ParallelFor(0, n, kReduceGrain, [&](int64_t chunk, int64_t lo, int64_t hi) {
    double total = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      total += pa[i];
    }
    partials[static_cast<size_t>(chunk)] = total;
  });
  double total = 0.0;
  for (double p : partials) {
    total += p;
  }
  return total;
}

double Norm(const Tensor& a) {
  if (UseNaiveKernels()) {
    return ref::Norm(a);
  }
  const float* pa = a.data();
  const int64_t n = a.numel();
  const int64_t chunks = ParallelChunkCount(0, n, kReduceGrain);
  if (chunks <= 1) {
    return ref::Norm(a);
  }
  std::vector<double> partials(static_cast<size_t>(chunks), 0.0);
  ParallelFor(0, n, kReduceGrain, [&](int64_t chunk, int64_t lo, int64_t hi) {
    double total = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      total += static_cast<double>(pa[i]) * pa[i];
    }
    partials[static_cast<size_t>(chunk)] = total;
  });
  double total = 0.0;
  for (double p : partials) {
    total += p;
  }
  return std::sqrt(total);
}

int64_t ArgMaxRow(const Tensor& a, int64_t r) {
  PD_CHECK_EQ(a.rank(), 2u);
  PD_CHECK(r >= 0 && r < a.dim(0));
  const int64_t n = a.dim(1);
  const float* row = a.data() + r * n;
  int64_t best = 0;
  for (int64_t j = 1; j < n; ++j) {
    if (row[j] > row[best]) {
      best = j;
    }
  }
  return best;
}

void SoftmaxRows(const Tensor& logits, Tensor* probs) {
  PD_CHECK_EQ(logits.rank(), 2u);
  if (!probs->SameShape(logits)) {
    *probs = Tensor::Uninitialized(logits.shape());  // every row is fully written below
  }
  const int64_t m = logits.dim(0);
  const int64_t n = logits.dim(1);
  const float* pl = logits.data();
  float* pp = probs->data();
  // Rows are independent; per-row math matches the reference bit-for-bit.
  const int64_t row_grain = std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(n, 1));
  ParallelFor(0, m, row_grain, [&](int64_t /*chunk*/, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* row = pl + i * n;
      float* out = pp + i * n;
      float max_val = row[0];
      for (int64_t j = 1; j < n; ++j) {
        max_val = std::max(max_val, row[j]);
      }
      double denom = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        const float e = std::exp(row[j] - max_val);
        out[j] = e;
        denom += e;
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t j = 0; j < n; ++j) {
        out[j] *= inv;
      }
    }
  });
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  PD_CHECK(a.SameShape(b));
  double max_diff = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::abs(static_cast<double>(pa[i]) - pb[i]));
  }
  return max_diff;
}

}  // namespace pipedream
