#include "src/tensor/ops.h"

#include <cmath>

namespace pipedream {
namespace {

// Extracts the logical (rows, cols) of a possibly transposed rank-2 operand.
void LogicalDims(const Tensor& t, bool transpose, int64_t* rows, int64_t* cols) {
  PD_CHECK_EQ(t.rank(), 2u);
  if (transpose) {
    *rows = t.dim(1);
    *cols = t.dim(0);
  } else {
    *rows = t.dim(0);
    *cols = t.dim(1);
  }
}

}  // namespace

void Gemm(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b, float alpha,
          float beta, Tensor* out) {
  int64_t m = 0;
  int64_t k = 0;
  int64_t k2 = 0;
  int64_t n = 0;
  LogicalDims(a, transpose_a, &m, &k);
  LogicalDims(b, transpose_b, &k2, &n);
  PD_CHECK_EQ(k, k2) << "GEMM inner dimensions disagree: " << a.ShapeString() << " x "
                     << b.ShapeString();
  if (beta == 0.0f) {
    if (out->rank() != 2 || out->dim(0) != m || out->dim(1) != n) {
      *out = Tensor({m, n});
    } else {
      out->SetZero();
    }
  } else {
    PD_CHECK(out->rank() == 2 && out->dim(0) == m && out->dim(1) == n)
        << "GEMM accumulate into mismatched output " << out->ShapeString();
    if (beta != 1.0f) {
      Scale(out, beta);
    }
  }

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  const int64_t lda = a.dim(1);
  const int64_t ldb = b.dim(1);

  // i-k-j loop order keeps the innermost loop streaming over contiguous memory for the
  // common (no-transpose) case; the transposed cases index through strides.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a_ik = transpose_a ? pa[kk * lda + i] : pa[i * lda + kk];
      if (a_ik == 0.0f) {
        continue;
      }
      const float scaled = alpha * a_ik;
      float* c_row = pc + i * n;
      if (!transpose_b) {
        const float* b_row = pb + kk * ldb;
        for (int64_t j = 0; j < n; ++j) {
          c_row[j] += scaled * b_row[j];
        }
      } else {
        for (int64_t j = 0; j < n; ++j) {
          c_row[j] += scaled * pb[j * ldb + kk];
        }
      }
    }
  }
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  Gemm(a, false, b, false, 1.0f, 0.0f, out);
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  PD_CHECK(a.SameShape(b));
  *out = a;
  AddInPlace(out, b);
}

void AddInPlace(Tensor* a, const Tensor& b) {
  PD_CHECK(a->SameShape(b));
  float* pa = a->data();
  const float* pb = b.data();
  const int64_t n = a->numel();
  for (int64_t i = 0; i < n; ++i) {
    pa[i] += pb[i];
  }
}

void Axpy(float alpha, const Tensor& b, Tensor* a) {
  PD_CHECK(a->SameShape(b));
  float* pa = a->data();
  const float* pb = b.data();
  const int64_t n = a->numel();
  for (int64_t i = 0; i < n; ++i) {
    pa[i] += alpha * pb[i];
  }
}

void Sub(const Tensor& a, const Tensor& b, Tensor* out) {
  PD_CHECK(a.SameShape(b));
  *out = a;
  float* po = out->data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    po[i] -= pb[i];
  }
}

void Mul(const Tensor& a, const Tensor& b, Tensor* out) {
  PD_CHECK(a.SameShape(b));
  *out = a;
  float* po = out->data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    po[i] *= pb[i];
  }
}

void Scale(Tensor* a, float scalar) {
  float* pa = a->data();
  const int64_t n = a->numel();
  for (int64_t i = 0; i < n; ++i) {
    pa[i] *= scalar;
  }
}

void AddBiasRows(Tensor* matrix, const Tensor& bias) {
  PD_CHECK_EQ(matrix->rank(), 2u);
  PD_CHECK_EQ(bias.numel(), matrix->dim(1));
  const int64_t m = matrix->dim(0);
  const int64_t n = matrix->dim(1);
  float* pm = matrix->data();
  const float* pb = bias.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      pm[i * n + j] += pb[j];
    }
  }
}

void AccumulateColumnSums(const Tensor& matrix, Tensor* bias_grad) {
  PD_CHECK_EQ(matrix.rank(), 2u);
  PD_CHECK_EQ(bias_grad->numel(), matrix.dim(1));
  const int64_t m = matrix.dim(0);
  const int64_t n = matrix.dim(1);
  const float* pm = matrix.data();
  float* pg = bias_grad->data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      pg[j] += pm[i * n + j];
    }
  }
}

double Sum(const Tensor& a) {
  double total = 0.0;
  const float* pa = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    total += pa[i];
  }
  return total;
}

double Norm(const Tensor& a) {
  double total = 0.0;
  const float* pa = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    total += static_cast<double>(pa[i]) * pa[i];
  }
  return std::sqrt(total);
}

int64_t ArgMaxRow(const Tensor& a, int64_t r) {
  PD_CHECK_EQ(a.rank(), 2u);
  PD_CHECK(r >= 0 && r < a.dim(0));
  const int64_t n = a.dim(1);
  const float* row = a.data() + r * n;
  int64_t best = 0;
  for (int64_t j = 1; j < n; ++j) {
    if (row[j] > row[best]) {
      best = j;
    }
  }
  return best;
}

void SoftmaxRows(const Tensor& logits, Tensor* probs) {
  PD_CHECK_EQ(logits.rank(), 2u);
  if (!probs->SameShape(logits)) {
    *probs = Tensor(logits.shape());
  }
  const int64_t m = logits.dim(0);
  const int64_t n = logits.dim(1);
  const float* pl = logits.data();
  float* pp = probs->data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pl + i * n;
    float* out = pp + i * n;
    float max_val = row[0];
    for (int64_t j = 1; j < n; ++j) {
      max_val = std::max(max_val, row[j]);
    }
    double denom = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const float e = std::exp(row[j] - max_val);
      out[j] = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < n; ++j) {
      out[j] *= inv;
    }
  }
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  PD_CHECK(a.SameShape(b));
  double max_diff = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::abs(static_cast<double>(pa[i]) - pb[i]));
  }
  return max_diff;
}

}  // namespace pipedream
