// A minimal dense float tensor with value semantics over pooled, copy-on-write storage.
//
// This is the numerical substrate for the real (non-simulated) training runtime. It is
// deliberately simple: row-major contiguous float32 storage, explicit shapes, no views, no
// broadcasting beyond what the op library implements. The goal is numerically transparent
// gradient computation (so weight-stashing semantics can be verified exactly), not peak
// FLOPs.
//
// Storage is a refcounted block from the tensor pool (src/tensor/pool.h). Copying a Tensor
// shares the block; the first *mutating* access (non-const data()/operator[]/At/Fill/...)
// detaches into a private copy. Observable behaviour is identical to deep-copy value
// semantics — a copy never sees a later mutation of the original — but the steady-state
// cost of `Tensor a = b` drops to a refcount bump, which is what makes weight stashing,
// activation stashing, and mailbox hops near-free (see DESIGN.md §5c).
//
// Invariants the copy-on-write scheme relies on:
//   * Shared payloads are immutable: every write path funnels through Detach().
//   * A raw pointer from data() is invalidated by copying the tensor; obtain pointers
//     AFTER all copies/shares of the tensor have been made (the codebase's existing
//     "copy first, then grab pointers" style already guarantees this).
//   * const accessors never detach (At(...) const reads the shared payload directly).
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/tensor/pool.h"

namespace pipedream {

class Tensor {
 public:
  Tensor() = default;

  // Constructs a zero-filled tensor of the given shape. All dimensions must be positive.
  // When the pool hands back a freshly calloc'd block the redundant fill is skipped.
  explicit Tensor(std::vector<int64_t> shape) { AllocateStorage(std::move(shape), true); }

  Tensor(std::initializer_list<int64_t> shape) : Tensor(std::vector<int64_t>(shape)) {}

  // Constructs from explicit contents; data.size() must match the shape's element count.
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  // A tensor whose payload is NOT zeroed — for buffers the caller overwrites completely
  // before any read (kernel outputs, gather targets). Reading before writing is UB.
  static Tensor Uninitialized(std::vector<int64_t> shape) {
    Tensor t;
    t.AllocateStorage(std::move(shape), false);
    return t;
  }

  static Tensor Scalar(float value) { return Tensor({1}, {value}); }

  // Copies share storage (refcount bump) while zero-copy is enabled; with
  // PIPEDREAM_NO_POOL=1 they deep-copy, restoring plain value semantics exactly.
  Tensor(const Tensor& other) : shape_(other.shape_), numel_(other.numel_) {
    if (other.block_ == nullptr) {
      return;
    }
    if (BufferPool::ZeroCopyEnabled()) {
      block_ = other.block_;
      PoolRef(block_);
    } else {
      CloneBlockFrom(other);
    }
  }

  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      PoolBlock* old = block_;
      block_ = nullptr;
      shape_ = other.shape_;
      numel_ = other.numel_;
      if (other.block_ != nullptr) {
        if (BufferPool::ZeroCopyEnabled()) {
          block_ = other.block_;
          PoolRef(block_);
        } else {
          CloneBlockFrom(other);
        }
      }
      PoolUnref(old);
    }
    return *this;
  }

  Tensor(Tensor&& other) noexcept
      : shape_(std::move(other.shape_)), block_(other.block_), numel_(other.numel_) {
    other.block_ = nullptr;
    other.numel_ = 0;
    other.shape_.clear();
  }

  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      PoolUnref(block_);
      shape_ = std::move(other.shape_);
      block_ = other.block_;
      numel_ = other.numel_;
      other.block_ = nullptr;
      other.numel_ = 0;
      other.shape_.clear();
    }
    return *this;
  }

  ~Tensor() { PoolUnref(block_); }

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(size_t i) const {
    PD_CHECK_LT(i, shape_.size());
    return shape_[i];
  }
  size_t rank() const { return shape_.size(); }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  // Mutable payload access: detaches from shared storage first (copy-on-write).
  float* data() {
    Detach();
    return block_ != nullptr ? block_->data() : nullptr;
  }
  const float* data() const { return block_ != nullptr ? block_->data() : nullptr; }

  float& operator[](int64_t i) {
    PD_DCHECK(i >= 0 && i < numel());
    Detach();
    return block_->data()[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    PD_DCHECK(i >= 0 && i < numel());
    return block_->data()[static_cast<size_t>(i)];
  }

  // 2-D indexed access (row-major). The tensor must be rank 2.
  float& At(int64_t r, int64_t c) {
    PD_DCHECK(rank() == 2);
    PD_DCHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    Detach();
    return block_->data()[static_cast<size_t>(r * shape_[1] + c)];
  }
  float At(int64_t r, int64_t c) const {
    PD_DCHECK(rank() == 2);
    PD_DCHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return block_->data()[static_cast<size_t>(r * shape_[1] + c)];
  }

  // 4-D indexed access (NCHW). The tensor must be rank 4.
  float& At4(int64_t n, int64_t c, int64_t h, int64_t w) {
    PD_DCHECK(rank() == 4);
    const int64_t idx = ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
    PD_DCHECK(idx >= 0 && idx < numel());
    Detach();
    return block_->data()[static_cast<size_t>(idx)];
  }
  float At4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    PD_DCHECK(rank() == 4);
    const int64_t idx = ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
    PD_DCHECK(idx >= 0 && idx < numel());
    return block_->data()[static_cast<size_t>(idx)];
  }

  // Fill overwrites everything, so a shared block is replaced without copying it first.
  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // Returns a tensor with a new shape covering the same elements. Shares storage (a
  // reshape never mutates the payload); mutation through either tensor detaches as usual.
  Tensor Reshaped(std::vector<int64_t> new_shape) const {
    Tensor out = *this;
    out.Reshape(std::move(new_shape));
    return out;
  }

  // In-place reshape (same element count).
  void Reshape(std::vector<int64_t> new_shape) {
    PD_CHECK_EQ(ComputeNumel(new_shape), numel());
    shape_ = std::move(new_shape);
  }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  // Approximate number of bytes held (payload only, ignoring size-class rounding).
  int64_t SizeBytes() const { return numel() * static_cast<int64_t>(sizeof(float)); }

  std::string ShapeString() const;

  // --- storage introspection (COW-aware accounting and tests) ---

  // True when both tensors alias the same storage block (a mutation of one would trigger
  // a detach). Distinct empty tensors never share.
  bool SharesStorageWith(const Tensor& other) const {
    return block_ != nullptr && block_ == other.block_;
  }
  // Identity of the underlying block; tensors with equal keys share one materialized
  // payload. nullptr for empty tensors.
  const void* StorageKey() const { return block_; }
  // True when this tensor is the storage's only owner (mutation would not copy).
  bool UniquelyOwned() const {
    return block_ != nullptr && block_->refs.load(std::memory_order_acquire) == 1;
  }

 private:
  static int64_t ComputeNumel(const std::vector<int64_t>& shape) {
    int64_t n = 1;
    for (int64_t d : shape) {
      PD_CHECK_GT(d, 0);
      n *= d;
    }
    return n;
  }

  void AllocateStorage(std::vector<int64_t> shape, bool zero);
  // Deep-copies other's payload into a fresh block (shape_/numel_ already set).
  void CloneBlockFrom(const Tensor& other);

  // Copy-on-write gate: after this call the block is uniquely owned. The acquire load
  // pairs with the release decrement of other owners, so observing refs == 1 means every
  // other owner's accesses happened-before ours.
  void Detach() {
    if (block_ != nullptr && block_->refs.load(std::memory_order_acquire) != 1) {
      DetachSlow();
    }
  }
  void DetachSlow();

  std::vector<int64_t> shape_;
  PoolBlock* block_ = nullptr;
  int64_t numel_ = 0;
};

}  // namespace pipedream

#endif  // SRC_TENSOR_TENSOR_H_
