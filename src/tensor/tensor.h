// A minimal dense float tensor with value semantics.
//
// This is the numerical substrate for the real (non-simulated) training runtime. It is
// deliberately simple: row-major contiguous float32 storage, explicit shapes, no views, no
// broadcasting beyond what the op library implements. The goal is numerically transparent
// gradient computation (so weight-stashing semantics can be verified exactly), not peak
// FLOPs.
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace pipedream {

class Tensor {
 public:
  Tensor() = default;

  // Constructs a zero-filled tensor of the given shape. All dimensions must be positive.
  explicit Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
    data_.assign(static_cast<size_t>(ComputeNumel(shape_)), 0.0f);
  }

  Tensor(std::initializer_list<int64_t> shape) : Tensor(std::vector<int64_t>(shape)) {}

  // Constructs from explicit contents; data.size() must match the shape's element count.
  Tensor(std::vector<int64_t> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    PD_CHECK_EQ(static_cast<int64_t>(data_.size()), ComputeNumel(shape_));
  }

  static Tensor Scalar(float value) { return Tensor({1}, {value}); }

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(size_t i) const {
    PD_CHECK_LT(i, shape_.size());
    return shape_[i];
  }
  size_t rank() const { return shape_.size(); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    PD_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    PD_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  // 2-D indexed access (row-major). The tensor must be rank 2.
  float& At(int64_t r, int64_t c) {
    PD_DCHECK(rank() == 2);
    PD_DCHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float At(int64_t r, int64_t c) const { return const_cast<Tensor*>(this)->At(r, c); }

  // 4-D indexed access (NCHW). The tensor must be rank 4.
  float& At4(int64_t n, int64_t c, int64_t h, int64_t w) {
    PD_DCHECK(rank() == 4);
    const int64_t idx = ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
    PD_DCHECK(idx >= 0 && idx < numel());
    return data_[static_cast<size_t>(idx)];
  }
  float At4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return const_cast<Tensor*>(this)->At4(n, c, h, w);
  }

  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }
  void SetZero() { Fill(0.0f); }

  // Returns a copy with a new shape covering the same number of elements.
  Tensor Reshaped(std::vector<int64_t> new_shape) const {
    Tensor out = *this;
    PD_CHECK_EQ(ComputeNumel(new_shape), numel());
    out.shape_ = std::move(new_shape);
    return out;
  }

  // In-place reshape (same element count).
  void Reshape(std::vector<int64_t> new_shape) {
    PD_CHECK_EQ(ComputeNumel(new_shape), numel());
    shape_ = std::move(new_shape);
  }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  // Approximate number of bytes held (payload only).
  int64_t SizeBytes() const { return numel() * static_cast<int64_t>(sizeof(float)); }

  std::string ShapeString() const;

 private:
  static int64_t ComputeNumel(const std::vector<int64_t>& shape) {
    int64_t n = 1;
    for (int64_t d : shape) {
      PD_CHECK_GT(d, 0);
      n *= d;
    }
    return n;
  }

  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace pipedream

#endif  // SRC_TENSOR_TENSOR_H_
