// Naive single-threaded reference kernels.
//
// These are the seed repository's original triple-loop implementations, kept verbatim as
// (a) the oracle the differential kernel tests compare the blocked/parallel kernels in
// ops.cc against, and (b) a runtime escape hatch: setting PIPEDREAM_NAIVE_KERNELS=1 (or
// calling SetNaiveKernelsForTesting) routes every dispatching op in ops.h through this
// namespace. They favour obviousness over speed — the summation order of each loop nest is
// the plain textbook order, which is what makes them a trustworthy oracle.
#ifndef SRC_TENSOR_REF_OPS_H_
#define SRC_TENSOR_REF_OPS_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace pipedream {

struct ConvGeometry;  // defined in ops.h

namespace ref {

// out = alpha * op(a) @ op(b) + beta * out; identical contract to pipedream::Gemm.
void Gemm(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b, float alpha,
          float beta, Tensor* out);

void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

// Direct-loop NCHW convolution (the original Conv2D layer loops).
void Conv2dForward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                   const ConvGeometry& g, Tensor* out);
void Conv2dBackward(const Tensor& input, const Tensor& weight, const Tensor& grad_output,
                    const ConvGeometry& g, Tensor* grad_weight, Tensor* grad_bias,
                    Tensor* grad_input);

double Sum(const Tensor& a);
double Norm(const Tensor& a);
void AccumulateColumnSums(const Tensor& matrix, Tensor* bias_grad);
void SoftmaxRows(const Tensor& logits, Tensor* probs);

}  // namespace ref
}  // namespace pipedream

#endif  // SRC_TENSOR_REF_OPS_H_
