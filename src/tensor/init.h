// Parameter initialization schemes.
#ifndef SRC_TENSOR_INIT_H_
#define SRC_TENSOR_INIT_H_

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace pipedream {

// Uniform in [-limit, limit].
void InitUniform(Tensor* t, float limit, Rng* rng);

// Gaussian with the given standard deviation.
void InitGaussian(Tensor* t, float stddev, Rng* rng);

// Glorot/Xavier uniform: limit = sqrt(6 / (fan_in + fan_out)).
void InitXavier(Tensor* t, int64_t fan_in, int64_t fan_out, Rng* rng);

// He/Kaiming normal: stddev = sqrt(2 / fan_in). Preferred before ReLU.
void InitHe(Tensor* t, int64_t fan_in, Rng* rng);

}  // namespace pipedream

#endif  // SRC_TENSOR_INIT_H_
