// Tensor operations: GEMM, elementwise arithmetic, reductions, softmax.
//
// All ops take explicit output tensors (resized as needed) so callers control allocation
// and the training runtime can reuse buffers across minibatches.
#ifndef SRC_TENSOR_OPS_H_
#define SRC_TENSOR_OPS_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace pipedream {

// out = alpha * op(a) @ op(b) + beta * out, where op transposes when the flag is set.
// Shapes: op(a) is [m, k], op(b) is [k, n], out is [m, n]. When beta == 0 the previous
// contents of out are ignored (out is resized to [m, n]).
void Gemm(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b, float alpha,
          float beta, Tensor* out);

// out = a @ b, convenience wrapper over Gemm with alpha=1, beta=0.
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

// Elementwise out = a + b (shapes must match).
void Add(const Tensor& a, const Tensor& b, Tensor* out);
// Elementwise a += b.
void AddInPlace(Tensor* a, const Tensor& b);
// a += alpha * b (axpy).
void Axpy(float alpha, const Tensor& b, Tensor* a);
// Elementwise out = a - b.
void Sub(const Tensor& a, const Tensor& b, Tensor* out);
// Elementwise out = a * b (Hadamard).
void Mul(const Tensor& a, const Tensor& b, Tensor* out);
// Elementwise a *= scalar.
void Scale(Tensor* a, float scalar);

// Adds a length-n bias row to every row of a [m, n] matrix.
void AddBiasRows(Tensor* matrix, const Tensor& bias);
// Accumulates column sums of a [m, n] matrix into a length-n vector: bias_grad += colsum.
void AccumulateColumnSums(const Tensor& matrix, Tensor* bias_grad);

// Sum of all elements.
double Sum(const Tensor& a);
// L2 norm of all elements.
double Norm(const Tensor& a);
// Index of the maximum element in row r of a rank-2 tensor.
int64_t ArgMaxRow(const Tensor& a, int64_t r);

// Row-wise softmax of a [m, n] matrix.
void SoftmaxRows(const Tensor& logits, Tensor* probs);

// Maximum absolute elementwise difference between two same-shaped tensors.
double MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace pipedream

#endif  // SRC_TENSOR_OPS_H_
