// Tensor operations: GEMM, convolution, elementwise arithmetic, reductions, softmax.
//
// All ops take explicit output tensors (resized as needed) so callers control allocation
// and the training runtime can reuse buffers across minibatches.
//
// Two kernel layers share this API. The default implementations (ops.cc) are cache-blocked,
// register-tiled, and parallelized over the shared thread pool (src/common/thread_pool.h);
// the naive seed implementations survive in ref_ops.h as the differential-test oracle and
// as a runtime escape hatch (PIPEDREAM_NAIVE_KERNELS=1). Both layers are deterministic:
// results never depend on thread count or scheduling, only on shapes and inputs, so the
// pipeline-vs-oracle equivalence tests can keep demanding bitwise-equal weights.
#ifndef SRC_TENSOR_OPS_H_
#define SRC_TENSOR_OPS_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace pipedream {

// True when ops dispatch to the naive reference kernels: PIPEDREAM_NAIVE_KERNELS=1 in the
// environment (read once) or an explicit SetNaiveKernelsForTesting(true).
bool UseNaiveKernels();
// Test hook overriding the environment switch for the current process.
void SetNaiveKernelsForTesting(bool naive);

// Which GEMM/conv kernel implementation ops dispatch to. kNaive is the ref:: oracle,
// kBlocked the cache-blocked compiler-vectorized kernel, kSimd the explicit-SIMD
// register-tiled micro-kernel (AVX-512 or AVX2/FMA intrinsics when the build targets
// them, a restrict-qualified scalar micro-kernel otherwise).
enum class KernelVariant : int { kNaive = 0, kBlocked = 1, kSimd = 2 };

// Resolves the variant for the current process, in precedence order:
// SetNaiveKernelsForTesting(true), SetKernelVariantForTesting, PIPEDREAM_NAIVE_KERNELS=1,
// PIPEDREAM_KERNEL_VARIANT=naive|blocked|simd (read once), then the best variant this
// build supports (simd when compiled for a vector ISA, blocked otherwise).
KernelVariant ActiveKernelVariant();
// Test hook pinning the variant for the current process (overrides the environment).
void SetKernelVariantForTesting(KernelVariant v);
// Reverts SetKernelVariantForTesting back to environment-driven dispatch.
void ClearKernelVariantForTesting();
// "naive" | "blocked" | "simd".
const char* KernelVariantName(KernelVariant v);
// Instruction set the simd variant's micro-kernel was compiled for: "avx512", "avx2", or
// "scalar" (the restrict-qualified fallback when the build targets no vector ISA).
const char* SimdKernelIsa();
// Measures the in-cache GFLOP/s of a variant's register-tile micro-kernel (packed panels
// resident in L1, best observed rate over >= min_seconds of sampling). This is the compute
// roofline the GEMM macro loop runs under; bench_micro_kernels reports full-GEMM rates
// against it. The naive variant has no micro-kernel and is not a valid argument.
double MicroKernelPeakGflops(KernelVariant v, double min_seconds = 0.05);

// out = alpha * op(a) @ op(b) + beta * out, where op transposes when the flag is set.
// Shapes: op(a) is [m, k], op(b) is [k, n], out is [m, n]. When beta == 0 the previous
// contents of out are ignored (out is resized to [m, n]).
void Gemm(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b, float alpha,
          float beta, Tensor* out);

// out = a @ b, convenience wrapper over Gemm with alpha=1, beta=0.
void MatMul(const Tensor& a, const Tensor& b, Tensor* out);

// NCHW convolution geometry shared by the forward and backward kernels.
struct ConvGeometry {
  int64_t batch = 0;
  int64_t in_channels = 0;
  int64_t in_h = 0;
  int64_t in_w = 0;
  int64_t out_channels = 0;
  int64_t kernel = 0;
  int64_t stride = 1;
  int64_t padding = 0;

  int64_t out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  int64_t out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }
  // Validates shapes of the operands against this geometry.
  void Check(const Tensor& input, const Tensor& weight, const Tensor& bias) const;
};

// out[n,oc,oh,ow] = bias[oc] + sum_{ic,kh,kw} input[n,ic,...] * weight[oc,ic,kh,kw].
// input is [N, IC, H, W], weight [OC, IC, K, K], bias [OC]. The default implementation
// lowers each sample onto the blocked GEMM via im2col.
void Conv2dForward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                   const ConvGeometry& g, Tensor* out);

// Accumulates grad_weight / grad_bias (+=, caller zeroes between steps, matching Parameter
// semantics) and overwrites grad_input.
void Conv2dBackward(const Tensor& input, const Tensor& weight, const Tensor& grad_output,
                    const ConvGeometry& g, Tensor* grad_weight, Tensor* grad_bias,
                    Tensor* grad_input);

// Elementwise out = a + b (shapes must match).
void Add(const Tensor& a, const Tensor& b, Tensor* out);
// Elementwise a += b.
void AddInPlace(Tensor* a, const Tensor& b);
// a += alpha * b (axpy).
void Axpy(float alpha, const Tensor& b, Tensor* a);
// Elementwise out = a - b.
void Sub(const Tensor& a, const Tensor& b, Tensor* out);
// Elementwise out = a * b (Hadamard).
void Mul(const Tensor& a, const Tensor& b, Tensor* out);
// Elementwise a *= scalar.
void Scale(Tensor* a, float scalar);

// Adds a length-n bias row to every row of a [m, n] matrix.
void AddBiasRows(Tensor* matrix, const Tensor& bias);
// Accumulates column sums of a [m, n] matrix into a length-n vector: bias_grad += colsum.
void AccumulateColumnSums(const Tensor& matrix, Tensor* bias_grad);

// Sum of all elements.
double Sum(const Tensor& a);
// L2 norm of all elements.
double Norm(const Tensor& a);
// Index of the maximum element in row r of a rank-2 tensor.
int64_t ArgMaxRow(const Tensor& a, int64_t r);

// Row-wise softmax of a [m, n] matrix.
void SoftmaxRows(const Tensor& logits, Tensor* probs);

// Maximum absolute elementwise difference between two same-shaped tensors.
double MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace pipedream

#endif  // SRC_TENSOR_OPS_H_
