#include "src/tensor/tensor.h"

#include "src/common/strings.h"

namespace pipedream {

std::string Tensor::ShapeString() const {
  std::string out = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += StrFormat("%lld", static_cast<long long>(shape_[i]));
  }
  out += "]";
  return out;
}

}  // namespace pipedream
