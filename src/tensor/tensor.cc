#include "src/tensor/tensor.h"

#include <algorithm>
#include <cstring>

#include "src/common/strings.h"

namespace pipedream {

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data) {
  const int64_t n = ComputeNumel(shape);
  PD_CHECK_EQ(n, static_cast<int64_t>(data.size())) << "tensor data size does not match shape";
  AllocateStorage(std::move(shape), false);
  std::memcpy(block_->data(), data.data(), static_cast<size_t>(n) * sizeof(float));
}

void Tensor::AllocateStorage(std::vector<int64_t> shape, bool zero) {
  numel_ = ComputeNumel(shape);
  shape_ = std::move(shape);
  bool zeroed = false;
  block_ = BufferPool::Get()->Allocate(numel_, &zeroed);
  if (zero && !zeroed) {
    std::memset(block_->data(), 0, static_cast<size_t>(numel_) * sizeof(float));
  }
}

void Tensor::CloneBlockFrom(const Tensor& other) {
  bool zeroed = false;
  block_ = BufferPool::Get()->Allocate(numel_, &zeroed);
  std::memcpy(block_->data(), other.block_->data(), static_cast<size_t>(numel_) * sizeof(float));
}

void Tensor::DetachSlow() {
  PoolBlock* shared = block_;
  bool zeroed = false;
  block_ = BufferPool::Get()->Allocate(numel_, &zeroed);
  std::memcpy(block_->data(), shared->data(), static_cast<size_t>(numel_) * sizeof(float));
  PoolUnref(shared);
}

void Tensor::Fill(float value) {
  if (block_ == nullptr) {
    return;
  }
  // Uniquely owned: fill in place. Shared: drop the reference and take a fresh block
  // instead of copying payload we are about to overwrite (detach-discard); a calloc-fresh
  // block makes SetZero free.
  if (block_->refs.load(std::memory_order_acquire) != 1) {
    PoolUnref(block_);
    bool zeroed = false;
    block_ = BufferPool::Get()->Allocate(numel_, &zeroed);
    if (value == 0.0f && zeroed) {
      return;
    }
  }
  std::fill_n(block_->data(), static_cast<size_t>(numel_), value);
}

std::string Tensor::ShapeString() const {
  std::string out = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += StrFormat("%lld", static_cast<long long>(shape_[i]));
  }
  out += "]";
  return out;
}

}  // namespace pipedream
