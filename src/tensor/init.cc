#include "src/tensor/init.h"

#include <cmath>

namespace pipedream {

void InitUniform(Tensor* t, float limit, Rng* rng) {
  float* p = t->data();
  const int64_t n = t->numel();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng->Uniform(-limit, limit));
  }
}

void InitGaussian(Tensor* t, float stddev, Rng* rng) {
  float* p = t->data();
  const int64_t n = t->numel();
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
}

void InitXavier(Tensor* t, int64_t fan_in, int64_t fan_out, Rng* rng) {
  PD_CHECK_GT(fan_in + fan_out, 0);
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  InitUniform(t, limit, rng);
}

void InitHe(Tensor* t, int64_t fan_in, Rng* rng) {
  PD_CHECK_GT(fan_in, 0);
  InitGaussian(t, std::sqrt(2.0f / static_cast<float>(fan_in)), rng);
}

}  // namespace pipedream
