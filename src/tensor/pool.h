// Recycling buffer-pool allocator for tensor storage (the zero-copy steady state).
//
// PipeDream's steady state re-runs the same forward/backward shapes every minibatch, so the
// same handful of buffer sizes is allocated and freed over and over. The pool turns that
// churn into pointer swaps: freed blocks park on size-class free lists (a small per-thread
// cache in front of mutex-guarded global lists) and the next allocation of a similar size
// reuses them. Fresh blocks come from calloc, so first-use zero-fill is free (the kernel
// hands back zero pages) and `Tensor`'s zero-filling constructor can skip its memset.
//
// Blocks are refcounted: `Tensor` copies share a block (copy-on-write; see tensor.h) and the
// last owner returns it to the pool. A block records its own size class, so toggling the
// pool off mid-process can never mis-free a pooled block or pool a bypass block.
//
// Escape hatch: PIPEDREAM_NO_POOL=1 disables the whole zero-copy layer — every allocation
// goes straight to the heap and every tensor copy is deep — restoring the pre-pool
// allocation behaviour for A/B measurement (bench/steady_state.cpp) and debugging.
#ifndef SRC_TENSOR_POOL_H_
#define SRC_TENSOR_POOL_H_

#include <atomic>
#include <cstdint>

namespace pipedream {

// Allocator counters. Reads are racy-but-monotonic (relaxed atomics); use Snapshot deltas
// around a measured region, not exact equality across threads mid-flight.
struct PoolStats {
  int64_t allocations = 0;      // Allocate() calls
  int64_t hits = 0;             // served by recycling a parked block
  int64_t misses = 0;           // fresh heap allocation while pooling was on
  int64_t bypass = 0;           // fresh heap allocation (pool disabled or oversize)
  int64_t releases = 0;         // blocks whose last reference was dropped
  int64_t bytes_in_flight = 0;  // payload bytes currently owned by live tensors
  int64_t peak_bytes_in_flight = 0;
  int64_t bytes_parked = 0;     // payload bytes sitting on free lists / thread caches

  // Fresh heap allocations (the number the steady-state guard test bounds).
  int64_t HeapAllocations() const { return misses + bypass; }
};

// Header of one refcounted storage block. The float payload follows the header in the same
// heap allocation; alignas keeps the payload 64-byte aligned for the vector kernels.
struct alignas(64) PoolBlock {
  std::atomic<int64_t> refs{1};
  int64_t capacity = 0;    // payload capacity, in floats
  int32_t size_class = 0;  // kBypassClass when the block is not pool-managed

  float* data() { return reinterpret_cast<float*>(reinterpret_cast<char*>(this) + sizeof(PoolBlock)); }
  const float* data() const {
    return reinterpret_cast<const float*>(reinterpret_cast<const char*>(this) + sizeof(PoolBlock));
  }
};

class BufferPool {
 public:
  static constexpr int32_t kBypassClass = -1;

  // Leaky singleton: outlives every thread-local cache and every static tensor.
  static BufferPool* Get();

  // True when pooled recycling AND copy-on-write sharing are active (the default). Reads
  // PIPEDREAM_NO_POOL once; SetZeroCopyEnabledForTesting overrides it for this process.
  static bool ZeroCopyEnabled();
  // enabled > 0 forces on, == 0 forces off, < 0 follows the environment again.
  static void SetZeroCopyEnabledForTesting(int enabled);

  // Returns a block with refs == 1 and capacity >= numel. `*zeroed` reports whether the
  // payload is known to be all-zero (fresh calloc) so callers can skip redundant fills.
  PoolBlock* Allocate(int64_t numel, bool* zeroed);

  // Takes ownership of a block whose refcount has reached zero: parks pooled blocks on
  // their size-class free list, frees bypass blocks. Called via PoolUnref, not directly.
  void Release(PoolBlock* block);

  PoolStats Snapshot() const;
  // Zeroes the counters (not the free lists); brackets a measured region.
  void ResetStats();
  // Frees every block parked on the global free lists (thread caches drain on thread exit).
  void TrimFreeLists();
  // Returns the calling thread's cached blocks to the global free lists.
  void FlushThreadCache();

 private:
  BufferPool() = default;
  struct Impl;
  Impl* impl();
};

// Refcount manipulation used by Tensor. Relaxed increment is enough (acquiring a reference
// requires already holding one); the release-decrement plus the free-list mutex orders all
// writes to a block before its next reuse.
inline void PoolRef(PoolBlock* block) { block->refs.fetch_add(1, std::memory_order_relaxed); }

void PoolUnrefSlow(PoolBlock* block);

inline void PoolUnref(PoolBlock* block) {
  if (block != nullptr && block->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    PoolUnrefSlow(block);
  }
}

// RAII pooled float scratch for kernel internals (im2col slabs, GEMM packing panels,
// reduction partials). Contents are uninitialized unless `zero` is requested.
class PoolScratch {
 public:
  explicit PoolScratch(int64_t numel, bool zero = false);
  ~PoolScratch() { PoolUnref(block_); }

  PoolScratch(const PoolScratch&) = delete;
  PoolScratch& operator=(const PoolScratch&) = delete;

  float* data() { return block_->data(); }

 private:
  PoolBlock* block_;
};

}  // namespace pipedream

#endif  // SRC_TENSOR_POOL_H_
