#include "src/tensor/ref_ops.h"

#include <cmath>

#include "src/tensor/ops.h"

namespace pipedream {
namespace ref {
namespace {

// Extracts the logical (rows, cols) of a possibly transposed rank-2 operand.
void LogicalDims(const Tensor& t, bool transpose, int64_t* rows, int64_t* cols) {
  PD_CHECK_EQ(t.rank(), 2u);
  if (transpose) {
    *rows = t.dim(1);
    *cols = t.dim(0);
  } else {
    *rows = t.dim(0);
    *cols = t.dim(1);
  }
}

}  // namespace

void Gemm(const Tensor& a, bool transpose_a, const Tensor& b, bool transpose_b, float alpha,
          float beta, Tensor* out) {
  int64_t m = 0;
  int64_t k = 0;
  int64_t k2 = 0;
  int64_t n = 0;
  LogicalDims(a, transpose_a, &m, &k);
  LogicalDims(b, transpose_b, &k2, &n);
  PD_CHECK_EQ(k, k2) << "GEMM inner dimensions disagree: " << a.ShapeString() << " x "
                     << b.ShapeString();
  if (beta == 0.0f) {
    if (out->rank() != 2 || out->dim(0) != m || out->dim(1) != n) {
      *out = Tensor({m, n});
    } else {
      out->SetZero();
    }
  } else {
    PD_CHECK(out->rank() == 2 && out->dim(0) == m && out->dim(1) == n)
        << "GEMM accumulate into mismatched output " << out->ShapeString();
    if (beta != 1.0f) {
      Scale(out, beta);
    }
  }

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data();
  const int64_t lda = a.dim(1);
  const int64_t ldb = b.dim(1);

  // i-k-j loop order keeps the innermost loop streaming over contiguous memory for the
  // common (no-transpose) case; the transposed cases index through strides.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a_ik = transpose_a ? pa[kk * lda + i] : pa[i * lda + kk];
      if (a_ik == 0.0f) {
        continue;
      }
      const float scaled = alpha * a_ik;
      float* c_row = pc + i * n;
      if (!transpose_b) {
        const float* b_row = pb + kk * ldb;
        for (int64_t j = 0; j < n; ++j) {
          c_row[j] += scaled * b_row[j];
        }
      } else {
        for (int64_t j = 0; j < n; ++j) {
          c_row[j] += scaled * pb[j * ldb + kk];
        }
      }
    }
  }
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out) {
  ref::Gemm(a, false, b, false, 1.0f, 0.0f, out);
}

void Conv2dForward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                   const ConvGeometry& g, Tensor* out) {
  const int64_t out_h = g.out_h();
  const int64_t out_w = g.out_w();
  if (out->rank() != 4 || out->dim(0) != g.batch || out->dim(1) != g.out_channels ||
      out->dim(2) != out_h || out->dim(3) != out_w) {
    *out = Tensor({g.batch, g.out_channels, out_h, out_w});
  }
  for (int64_t n = 0; n < g.batch; ++n) {
    for (int64_t oc = 0; oc < g.out_channels; ++oc) {
      const float b = bias[oc];
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          float acc = b;
          const int64_t h0 = oh * g.stride - g.padding;
          const int64_t w0 = ow * g.stride - g.padding;
          for (int64_t ic = 0; ic < g.in_channels; ++ic) {
            for (int64_t kh = 0; kh < g.kernel; ++kh) {
              const int64_t ih = h0 + kh;
              if (ih < 0 || ih >= g.in_h) {
                continue;
              }
              for (int64_t kw = 0; kw < g.kernel; ++kw) {
                const int64_t iw = w0 + kw;
                if (iw < 0 || iw >= g.in_w) {
                  continue;
                }
                acc += input.At4(n, ic, ih, iw) * weight.At4(oc, ic, kh, kw);
              }
            }
          }
          out->At4(n, oc, oh, ow) = acc;
        }
      }
    }
  }
}

void Conv2dBackward(const Tensor& input, const Tensor& weight, const Tensor& grad_output,
                    const ConvGeometry& g, Tensor* grad_weight, Tensor* grad_bias,
                    Tensor* grad_input) {
  const int64_t out_h = g.out_h();
  const int64_t out_w = g.out_w();
  if (!grad_input->SameShape(input)) {
    *grad_input = Tensor(input.shape());
  } else {
    grad_input->SetZero();
  }
  for (int64_t n = 0; n < g.batch; ++n) {
    for (int64_t oc = 0; oc < g.out_channels; ++oc) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const float gr = grad_output.At4(n, oc, oh, ow);
          if (gr == 0.0f) {
            continue;
          }
          (*grad_bias)[oc] += gr;
          const int64_t h0 = oh * g.stride - g.padding;
          const int64_t w0 = ow * g.stride - g.padding;
          for (int64_t ic = 0; ic < g.in_channels; ++ic) {
            for (int64_t kh = 0; kh < g.kernel; ++kh) {
              const int64_t ih = h0 + kh;
              if (ih < 0 || ih >= g.in_h) {
                continue;
              }
              for (int64_t kw = 0; kw < g.kernel; ++kw) {
                const int64_t iw = w0 + kw;
                if (iw < 0 || iw >= g.in_w) {
                  continue;
                }
                grad_weight->At4(oc, ic, kh, kw) += gr * input.At4(n, ic, ih, iw);
                grad_input->At4(n, ic, ih, iw) += gr * weight.At4(oc, ic, kh, kw);
              }
            }
          }
        }
      }
    }
  }
}

double Sum(const Tensor& a) {
  double total = 0.0;
  const float* pa = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    total += pa[i];
  }
  return total;
}

double Norm(const Tensor& a) {
  double total = 0.0;
  const float* pa = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    total += static_cast<double>(pa[i]) * pa[i];
  }
  return std::sqrt(total);
}

void AccumulateColumnSums(const Tensor& matrix, Tensor* bias_grad) {
  PD_CHECK_EQ(matrix.rank(), 2u);
  PD_CHECK_EQ(bias_grad->numel(), matrix.dim(1));
  const int64_t m = matrix.dim(0);
  const int64_t n = matrix.dim(1);
  const float* pm = matrix.data();
  float* pg = bias_grad->data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      pg[j] += pm[i * n + j];
    }
  }
}

void SoftmaxRows(const Tensor& logits, Tensor* probs) {
  PD_CHECK_EQ(logits.rank(), 2u);
  if (!probs->SameShape(logits)) {
    *probs = Tensor(logits.shape());
  }
  const int64_t m = logits.dim(0);
  const int64_t n = logits.dim(1);
  const float* pl = logits.data();
  float* pp = probs->data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = pl + i * n;
    float* out = pp + i * n;
    float max_val = row[0];
    for (int64_t j = 1; j < n; ++j) {
      max_val = std::max(max_val, row[j]);
    }
    double denom = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const float e = std::exp(row[j] - max_val);
      out[j] = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < n; ++j) {
      out[j] *= inv;
    }
  }
}

}  // namespace ref
}  // namespace pipedream
