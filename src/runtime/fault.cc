#include "src/runtime/fault.h"

#include <cstdlib>

#include "src/common/rng.h"
#include "src/common/strings.h"

namespace pipedream {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKillWorker:
      return "kill";
    case FaultKind::kStallWorker:
      return "stall";
    case FaultKind::kDelayMessage:
      return "delay";
    case FaultKind::kDropMessage:
      return "drop";
    case FaultKind::kCorruptMessage:
      return "corrupt";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  std::string s = StrFormat("%s:stage=%d,replica=%d,mb=%lld,dir=%s", FaultKindName(kind),
                            stage, replica, static_cast<long long>(minibatch),
                            work == WorkType::kForward ? "fwd" : "bwd");
  if (duration_ms > 0.0) {
    s += StrFormat(",ms=%g", duration_ms);
  }
  return s;
}

std::string FaultPlan::ToString() const {
  std::string s;
  for (const FaultEvent& e : events) {
    if (!s.empty()) {
      s += ';';
    }
    s += e.ToString();
  }
  return s;
}

FaultPlan FaultPlan::Random(uint64_t seed, const PipelinePlan& plan, int64_t num_minibatches,
                            int num_faults, double max_duration_ms) {
  PD_CHECK_GE(num_minibatches, 1);
  Rng rng(seed);
  FaultPlan out;
  for (int i = 0; i < num_faults; ++i) {
    FaultEvent e;
    e.kind = static_cast<FaultKind>(rng.UniformInt(5));
    e.stage = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(plan.num_stages())));
    e.replica = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(plan.stage(e.stage).replicas)));
    e.minibatch = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_minibatches)));
    e.work = rng.UniformInt(2) == 0 ? WorkType::kForward : WorkType::kBackward;
    if (e.kind == FaultKind::kStallWorker || e.kind == FaultKind::kDelayMessage) {
      e.duration_ms = rng.Uniform(1.0, max_duration_ms);
    }
    out.events.push_back(e);
  }
  return out;
}

namespace {

Status MalformedSpec(const std::string& what) {
  return Status::InvalidArgument("malformed fault spec: " + what);
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan out;
  for (const std::string& item : StrSplit(spec, ';')) {
    if (item.empty()) {
      continue;
    }
    const size_t colon = item.find(':');
    const std::string kind_name = item.substr(0, colon);
    FaultEvent e;
    if (kind_name == "kill") {
      e.kind = FaultKind::kKillWorker;
    } else if (kind_name == "stall") {
      e.kind = FaultKind::kStallWorker;
    } else if (kind_name == "delay") {
      e.kind = FaultKind::kDelayMessage;
    } else if (kind_name == "drop") {
      e.kind = FaultKind::kDropMessage;
    } else if (kind_name == "corrupt") {
      e.kind = FaultKind::kCorruptMessage;
    } else {
      return MalformedSpec("unknown kind '" + kind_name + "'");
    }
    if (colon != std::string::npos) {
      for (const std::string& kv : StrSplit(item.substr(colon + 1), ',')) {
        if (kv.empty()) {
          continue;
        }
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          return MalformedSpec("expected key=value, got '" + kv + "'");
        }
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        char* end = nullptr;
        const double num = std::strtod(value.c_str(), &end);
        const bool numeric = end != value.c_str() && *end == '\0';
        if (key == "stage" && numeric) {
          e.stage = static_cast<int>(num);
        } else if (key == "replica" && numeric) {
          e.replica = static_cast<int>(num);
        } else if (key == "mb" && numeric) {
          e.minibatch = static_cast<int64_t>(num);
        } else if (key == "ms" && numeric) {
          e.duration_ms = num;
        } else if (key == "dir") {
          if (value == "fwd") {
            e.work = WorkType::kForward;
          } else if (value == "bwd") {
            e.work = WorkType::kBackward;
          } else {
            return MalformedSpec("dir must be fwd or bwd, got '" + value + "'");
          }
        } else {
          return MalformedSpec("unknown or non-numeric field '" + kv + "'");
        }
      }
    }
    out.events.push_back(e);
  }
  return out;
}

FaultPlan FaultPlan::FromEnv(const PipelinePlan& plan, int64_t num_minibatches) {
  if (const char* spec = std::getenv("PIPEDREAM_FAULT_PLAN")) {
    Result<FaultPlan> parsed = Parse(spec);
    PD_CHECK(parsed.ok()) << "PIPEDREAM_FAULT_PLAN: " << parsed.status().ToString();
    return *parsed;
  }
  if (const char* seed_str = std::getenv("PIPEDREAM_FAULT_SEED")) {
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(seed_str, &end, 10);
    PD_CHECK(end != seed_str && *end == '\0')
        << "PIPEDREAM_FAULT_SEED must be an integer, got '" << seed_str << "'";
    return Random(seed, plan, num_minibatches);
  }
  return FaultPlan();
}

FaultInjector::WorkerAction FaultInjector::OnWorkStart(int stage, int replica,
                                                       int64_t minibatch, WorkType work) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerAction action;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (fired_[i] ||
        (e.kind != FaultKind::kKillWorker && e.kind != FaultKind::kStallWorker) ||
        e.stage != stage || e.replica != replica || e.minibatch != minibatch ||
        e.work != work) {
      continue;
    }
    fired_[i] = true;
    action.reason = "injected " + e.ToString();
    if (e.kind == FaultKind::kKillWorker) {
      action.kill = true;
    } else {
      action.stall_ms = e.duration_ms;
    }
    return action;  // one event per work item; later duplicates stay armed
  }
  return action;
}

FaultInjector::MessageAction FaultInjector::OnSend(int from_stage, int from_replica,
                                                   int64_t minibatch, WorkType work) {
  std::lock_guard<std::mutex> lock(mutex_);
  MessageAction action;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (fired_[i] ||
        (e.kind != FaultKind::kDelayMessage && e.kind != FaultKind::kDropMessage &&
         e.kind != FaultKind::kCorruptMessage) ||
        e.stage != from_stage || e.replica != from_replica || e.minibatch != minibatch ||
        e.work != work) {
      continue;
    }
    fired_[i] = true;
    action.reason = "injected " + e.ToString();
    if (e.kind == FaultKind::kDropMessage) {
      action.drop = true;
    } else if (e.kind == FaultKind::kCorruptMessage) {
      action.corrupt = true;
    } else {
      action.delay_ms = e.duration_ms;
    }
    return action;
  }
  return action;
}

int64_t FaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t n = 0;
  for (const bool f : fired_) {
    n += f ? 1 : 0;
  }
  return n;
}

void CorruptBytes(void* data, size_t size) {
  if (size == 0) {
    return;
  }
  auto* bytes = static_cast<unsigned char*>(data);
  // Flip a spread of bits so the corruption survives any partial inspection: first byte,
  // middle byte, last byte.
  bytes[0] ^= 0xFFu;
  bytes[size / 2] ^= 0xA5u;
  bytes[size - 1] ^= 0x5Au;
}

}  // namespace pipedream
