#include "src/runtime/weight_store.h"

#include <algorithm>
#include <unordered_set>

namespace pipedream {

WeightStore::WeightStore(std::vector<Parameter*> params, WeightMode mode)
    : params_(std::move(params)), mode_(mode) {
  if (mode_ == WeightMode::kVerticalSync) {
    snapshots_[0] = CopyParams();  // version 0: the initial weights
  }
}

std::vector<Tensor> WeightStore::CopyParams() const {
  std::vector<Tensor> out;
  out.reserve(params_.size());
  for (const Parameter* p : params_) {
    out.push_back(p->value);
  }
  return out;
}

void WeightStore::LoadParams(const std::vector<Tensor>& values) {
  PD_CHECK_EQ(values.size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i]->value = values[i];
  }
}

void WeightStore::BeginForward(int64_t minibatch, int64_t input_version) {
  switch (mode_) {
    case WeightMode::kNaive:
      return;
    case WeightMode::kStashing:
      // Forward uses the latest weights as-is; the stash is taken in EndForward.
      stashes_[minibatch].version = version_;
      return;
    case WeightMode::kDoubleBuffered:
      // Forward always reads the latest buffer; only the version is recorded (the values
      // live in either the live parameters or the shadow buffer at backward time).
      stashes_[minibatch].version = version_;
      return;
    case WeightMode::kVerticalSync: {
      const auto it = snapshots_.find(input_version);
      PD_CHECK(it != snapshots_.end())
          << "vertical sync: version " << input_version << " not retained (have "
          << snapshots_.size() << " snapshots, local version " << version_ << ")";
      PD_CHECK(!swapped_);
      latest_ = CopyParams();
      LoadParams(it->second);
      swapped_ = true;
      Stash& stash = stashes_[minibatch];
      stash.version = input_version;
      ++snapshot_refs_[input_version];
      // Labels are assigned monotonically at the input stage, so no future minibatch can
      // reference a version older than this one.
      last_seen_label_ = std::max(last_seen_label_, input_version);
      return;
    }
  }
}

void WeightStore::EndForward(int64_t minibatch) {
  switch (mode_) {
    case WeightMode::kNaive:
      return;
    case WeightMode::kStashing: {
      Stash& stash = stashes_[minibatch];
      stash.values = CopyParams();
      return;
    }
    case WeightMode::kDoubleBuffered:
      return;
    case WeightMode::kVerticalSync:
      PD_CHECK(swapped_);
      LoadParams(latest_);
      latest_.clear();
      swapped_ = false;
      return;
  }
}

int64_t WeightStore::BeginBackward(int64_t minibatch) {
  switch (mode_) {
    case WeightMode::kNaive:
      pending_backward_version_ = version_;
      return version_;
    case WeightMode::kStashing: {
      const auto it = stashes_.find(minibatch);
      PD_CHECK(it != stashes_.end()) << "backward for unstashed minibatch " << minibatch;
      PD_CHECK(!swapped_);
      if (it->second.version != version_) {
        // Weights advanced since this minibatch's forward: swap the stashed version in.
        latest_ = CopyParams();
        LoadParams(it->second.values);
        swapped_ = true;
      }
      pending_backward_version_ = it->second.version;
      return it->second.version;
    }
    case WeightMode::kDoubleBuffered: {
      const auto it = stashes_.find(minibatch);
      PD_CHECK(it != stashes_.end()) << "backward for unrecorded minibatch " << minibatch;
      const int64_t v = it->second.version;
      PD_CHECK(!swapped_);
      if (v != version_) {
        // The 2BW invariant: with gradient accumulation spanning at least the pipeline's
        // in-flight depth, at most ONE update can commit between a minibatch's forward and
        // its backward — so the shadow buffer always holds the version it needs.
        PD_CHECK_EQ(v, version_ - 1)
            << "2BW staleness invariant violated for minibatch " << minibatch
            << ": forward ran at version " << v << " but the store is at version "
            << version_ << " (accumulation boundary smaller than the in-flight depth?)";
        PD_CHECK_EQ(shadow_version_, v);
        latest_ = CopyParams();
        LoadParams(shadow_);
        swapped_ = true;
      }
      pending_backward_version_ = v;
      return v;
    }
    case WeightMode::kVerticalSync: {
      const auto it = stashes_.find(minibatch);
      PD_CHECK(it != stashes_.end()) << "backward for unstashed minibatch " << minibatch;
      const auto snap = snapshots_.find(it->second.version);
      PD_CHECK(snap != snapshots_.end());
      PD_CHECK(!swapped_);
      latest_ = CopyParams();
      LoadParams(snap->second);
      swapped_ = true;
      pending_backward_version_ = it->second.version;
      return it->second.version;
    }
  }
  return version_;
}

void WeightStore::EndBackward(int64_t minibatch) {
  if (swapped_) {
    LoadParams(latest_);
    latest_.clear();
    swapped_ = false;
  }
  if (mode_ == WeightMode::kVerticalSync) {
    const auto it = stashes_.find(minibatch);
    PD_CHECK(it != stashes_.end());
    const int64_t v = it->second.version;
    if (--snapshot_refs_[v] == 0) {
      snapshot_refs_.erase(v);
      // Retain every version a future minibatch could still name: labels are monotone, so
      // anything older than both the oldest live reference and the newest label seen so far
      // is unreachable.
      const int64_t min_ref =
          snapshot_refs_.empty() ? last_seen_label_ : snapshot_refs_.begin()->first;
      const int64_t min_keep = std::min(min_ref, last_seen_label_);
      for (auto s = snapshots_.begin(); s != snapshots_.end();) {
        if (s->first < min_keep && snapshot_refs_.find(s->first) == snapshot_refs_.end()) {
          s = snapshots_.erase(s);
        } else {
          ++s;
        }
      }
    }
  }
  stashes_.erase(minibatch);
}

void WeightStore::BeginUpdate() {
  if (mode_ != WeightMode::kDoubleBuffered) {
    return;
  }
  PD_CHECK(!swapped_) << "update started while stashed weights are swapped in";
  // Buffer flip: the weights the optimizer is about to overwrite become the shadow version.
  // Copy-on-write makes this a refcount bump; bytes materialize only as the optimizer
  // writes each parameter (MaterializedStashBytes tracks exactly that).
  shadow_ = CopyParams();
  shadow_version_ = version_;
}

void WeightStore::CommitUpdate() {
  PD_CHECK(!swapped_) << "update committed while stashed weights are swapped in";
  PD_CHECK(mode_ != WeightMode::kDoubleBuffered || shadow_version_ == version_)
      << "2BW update committed without a buffer flip (BeginUpdate not called)";
  if (pending_backward_version_ >= 0) {
    staleness_.Add(static_cast<double>(version_ - pending_backward_version_));
    pending_backward_version_ = -1;
  }
  ++version_;
  if (mode_ == WeightMode::kVerticalSync) {
    snapshots_[version_] = CopyParams();
  }
}

int64_t WeightStore::StashBytes() const {
  int64_t total = 0;
  for (const auto& [mb, stash] : stashes_) {
    for (const Tensor& t : stash.values) {
      total += t.SizeBytes();
    }
  }
  for (const auto& [v, values] : snapshots_) {
    for (const Tensor& t : values) {
      total += t.SizeBytes();
    }
  }
  for (const Tensor& t : shadow_) {
    total += t.SizeBytes();
  }
  return total;
}

int64_t WeightStore::MaterializedStashBytes() const {
  std::unordered_set<const void*> live;
  live.reserve(params_.size());
  for (const Parameter* p : params_) {
    live.insert(p->value.StorageKey());
  }
  std::unordered_set<const void*> counted;
  int64_t total = 0;
  const auto count = [&](const std::vector<Tensor>& values) {
    for (const Tensor& t : values) {
      const void* key = t.StorageKey();
      // Blocks still shared with a live parameter are free; blocks shared between several
      // stashes of the same version are counted once.
      if (key == nullptr || live.count(key) != 0 || !counted.insert(key).second) {
        continue;
      }
      total += t.SizeBytes();
    }
  };
  for (const auto& [mb, stash] : stashes_) {
    count(stash.values);
  }
  for (const auto& [v, values] : snapshots_) {
    count(values);
  }
  count(shadow_);
  return total;
}

}  // namespace pipedream
