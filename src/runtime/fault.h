// Seeded, deterministic fault injection for the pipeline training runtime.
//
// A FaultPlan is a replayable script of failures — kill a stage worker when it reaches
// minibatch k, stall it, or delay/drop/corrupt one inter-stage message. A FaultInjector
// executes the plan at runtime: workers consult it immediately before each unit of work and
// on every send, and each event fires exactly once (so a recovered epoch replaying the same
// minibatch does not re-trigger its own failure). Because every decision is keyed on
// (stage, replica, minibatch, direction) rather than wall time, a scenario replayed with the
// same seed is bitwise identical.
//
// Plans come from three places: explicit construction (tests), FaultPlan::Random (fuzzing),
// or the environment — PIPEDREAM_FAULT_SEED=<n> generates a random plan and
// PIPEDREAM_FAULT_PLAN=<spec> parses an explicit one (see Parse for the grammar).
#ifndef SRC_RUNTIME_FAULT_H_
#define SRC_RUNTIME_FAULT_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/planner/plan.h"
#include "src/schedule/work.h"

namespace pipedream {

enum class FaultKind {
  kKillWorker,      // the worker dies at the start of the targeted pass
  kStallWorker,     // the worker freezes for `duration_ms` (no heartbeats) then continues
  kDelayMessage,    // the targeted outgoing message is held for `duration_ms`
  kDropMessage,     // the targeted outgoing message is silently lost
  kCorruptMessage,  // the payload is bit-flipped after checksumming (detectable at receive)
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kKillWorker;
  int stage = 0;
  int replica = 0;
  // Worker faults: the minibatch whose forward/backward triggers the event. Message faults:
  // the minibatch id carried by the targeted outgoing message.
  int64_t minibatch = 0;
  WorkType work = WorkType::kForward;
  double duration_ms = 0.0;  // stall / delay only

  std::string ToString() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::string ToString() const;

  // Generates `num_faults` random events against a plan's stage/replica shape, drawn
  // deterministically from `seed`. Minibatch triggers fall in [0, num_minibatches).
  static FaultPlan Random(uint64_t seed, const PipelinePlan& plan, int64_t num_minibatches,
                          int num_faults = 1, double max_duration_ms = 50.0);

  // Parses a ';'-separated event list. Each event is `kind:key=value,...` with keys
  // stage, replica (default 0), mb, dir (fwd|bwd, default fwd), ms (duration). Kinds:
  // kill, stall, delay, drop, corrupt. Example:
  //   "kill:stage=1,mb=12;stall:stage=0,mb=30,ms=250"
  static Result<FaultPlan> Parse(const std::string& spec);

  // Builds a plan from the environment: PIPEDREAM_FAULT_PLAN takes precedence, else
  // PIPEDREAM_FAULT_SEED feeds Random against `plan`. Empty plan when neither is set.
  static FaultPlan FromEnv(const PipelinePlan& plan, int64_t num_minibatches);
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
    fired_.assign(plan_.events.size(), false);
  }

  // What a worker must do right before running `work` for `minibatch`. At most one of the
  // fields is set; a fired event never fires again.
  struct WorkerAction {
    bool kill = false;
    double stall_ms = 0.0;
    std::string reason;
  };
  WorkerAction OnWorkStart(int stage, int replica, int64_t minibatch, WorkType work);

  // Fate of an outgoing message (consulted by the sender after the checksum is stamped).
  struct MessageAction {
    bool drop = false;
    bool corrupt = false;
    double delay_ms = 0.0;
    std::string reason;
  };
  MessageAction OnSend(int from_stage, int from_replica, int64_t minibatch, WorkType work);

  // Number of events that have fired so far.
  int64_t faults_fired() const;
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::vector<bool> fired_;
};

// Flips bits in `data` (deterministically) so a stamped checksum no longer matches.
void CorruptBytes(void* data, size_t size);

// Thrown control-flow signals inside worker threads. The trainer's thread wrapper catches
// these; they never escape TrainEpoch.
struct WorkerKilledError {
  std::string reason;
};
struct MessageCorruptionError {
  std::string reason;
};
struct EpochAbortedError {};

}  // namespace pipedream

#endif  // SRC_RUNTIME_FAULT_H_
