#include "src/runtime/checkpoint.h"

#include <cstdio>
#include <fstream>

#include "src/common/strings.h"

namespace pipedream {
namespace {

constexpr uint64_t kMagic = 0x50444350'30303031ULL;  // "PDCP0001"

}  // namespace

Status SaveParameters(const std::string& path, const std::vector<Parameter*>& params) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  auto write_u64 = [&](uint64_t v) { file.write(reinterpret_cast<const char*>(&v), 8); };
  write_u64(kMagic);
  write_u64(params.size());
  for (const Parameter* p : params) {
    write_u64(p->name.size());
    file.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u64(p->value.rank());
    for (size_t d = 0; d < p->value.rank(); ++d) {
      write_u64(static_cast<uint64_t>(p->value.dim(d)));
    }
    file.write(reinterpret_cast<const char*>(p->value.data()),
               static_cast<std::streamsize>(p->value.SizeBytes()));
  }
  if (!file) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

Status LoadParameters(const std::string& path, const std::vector<Parameter*>& params) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open " + path);
  }
  auto read_u64 = [&]() {
    uint64_t v = 0;
    file.read(reinterpret_cast<char*>(&v), 8);
    return v;
  };
  if (read_u64() != kMagic) {
    return Status::InvalidArgument(path + " is not a PipeDream checkpoint");
  }
  const uint64_t count = read_u64();
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %llu parameters, model has %zu",
                  static_cast<unsigned long long>(count), params.size()));
  }
  for (Parameter* p : params) {
    const uint64_t name_len = read_u64();
    std::string name(name_len, '\0');
    file.read(name.data(), static_cast<std::streamsize>(name_len));
    if (name != p->name) {
      return Status::InvalidArgument("parameter order mismatch: checkpoint has '" + name +
                                     "', model expects '" + p->name + "'");
    }
    const uint64_t rank = read_u64();
    if (rank != p->value.rank()) {
      return Status::InvalidArgument("rank mismatch for " + name);
    }
    for (size_t d = 0; d < rank; ++d) {
      if (read_u64() != static_cast<uint64_t>(p->value.dim(d))) {
        return Status::InvalidArgument("shape mismatch for " + name);
      }
    }
    file.read(reinterpret_cast<char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.SizeBytes()));
    if (!file) {
      return Status::Internal("truncated checkpoint " + path);
    }
  }
  return Status::Ok();
}

CheckpointManager::CheckpointManager(std::string directory)
    : directory_(std::move(directory)) {}

std::string CheckpointManager::StagePath(int stage, int64_t epoch) const {
  return StrFormat("%s/stage%d.epoch%lld.ckpt", directory_.c_str(), stage,
                   static_cast<long long>(epoch));
}

Status CheckpointManager::SaveStage(int stage, int64_t epoch,
                                    const std::vector<Parameter*>& params) {
  const std::string final_path = StagePath(stage, epoch);
  const std::string tmp_path = final_path + ".tmp";
  const Status status = SaveParameters(tmp_path, params);
  if (!status.ok()) {
    return status;
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Internal("rename failed for " + final_path);
  }
  return Status::Ok();
}

Status CheckpointManager::LoadStage(int stage, int64_t epoch,
                                    const std::vector<Parameter*>& params) const {
  return LoadParameters(StagePath(stage, epoch), params);
}

int64_t CheckpointManager::LatestCompleteEpoch(int num_stages, int64_t max_epoch) const {
  for (int64_t epoch = max_epoch; epoch >= 0; --epoch) {
    bool complete = true;
    for (int s = 0; s < num_stages; ++s) {
      std::ifstream probe(StagePath(s, epoch), std::ios::binary);
      if (!probe) {
        complete = false;
        break;
      }
    }
    if (complete) {
      return epoch;
    }
  }
  return -1;
}

}  // namespace pipedream
