#include "src/runtime/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "src/common/crc32.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pipedream {
namespace {

constexpr uint64_t kMagic = 0x50444350'30303031ULL;          // "PDCP0001"
constexpr uint64_t kFooterMagic = 0x50444346'30303031ULL;    // "PDCF0001"
constexpr uint64_t kManifestMagic = 0x5044504D'30303031ULL;  // "PDPM0001"
// Footer layout (appended after the last parameter payload):
//   [content crc32 (u64)] [content length (u64)] [kFooterMagic (u64)]
constexpr size_t kFooterBytes = 24;
// Sanity caps so a torn header can never drive a multi-gigabyte allocation.
constexpr uint64_t kMaxParams = 1u << 20;
constexpr uint64_t kMaxNameLen = 1u << 12;
constexpr uint64_t kMaxRank = 16;

// Flushes a freshly written file's data to stable storage so the subsequent atomic rename
// publishes a fully durable checkpoint (a crash after rename must never expose a torn file).
Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("cannot reopen " + path + " for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync failed for " + path);
  }
  return Status::Ok();
}

// Bounds-checked cursor over an in-memory checkpoint image. Every read reports truncation
// through ok() instead of walking off the buffer, so corrupt files yield a Status, never UB.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  uint64_t ReadU64() {
    uint64_t v = 0;
    if (!Take(&v, 8)) {
      return 0;
    }
    return v;
  }

  bool ReadBytes(void* out, size_t n) { return Take(out, n); }

  std::string ReadString(size_t n) {
    std::string s(n, '\0');
    if (!Take(s.data(), n)) {
      return std::string();
    }
    return s;
  }

 private:
  bool Take(void* out, size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Reads the whole file and verifies the CRC footer. On success `content` holds the bytes
// preceding the footer (the parsable checkpoint body).
Status ReadVerifiedContent(const std::string& path, std::string* content) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  if (!file.good() && !file.eof()) {
    return Status::Internal("read failed for " + path);
  }
  if (bytes.size() < kFooterBytes + 16) {
    return Status::InvalidArgument(path + " is too short to be a PipeDream checkpoint");
  }
  ByteReader footer(bytes.data() + bytes.size() - kFooterBytes, kFooterBytes);
  const uint64_t stored_crc = footer.ReadU64();
  const uint64_t stored_length = footer.ReadU64();
  const uint64_t footer_magic = footer.ReadU64();
  if (footer_magic != kFooterMagic) {
    return Status::InvalidArgument(path + " has no checkpoint footer (torn or foreign file)");
  }
  const size_t content_size = bytes.size() - kFooterBytes;
  if (stored_length != content_size) {
    return Status::InvalidArgument(
        StrFormat("%s footer declares %llu content bytes but file holds %zu", path.c_str(),
                  static_cast<unsigned long long>(stored_length), content_size));
  }
  const uint32_t crc = Crc32(bytes.data(), content_size);
  if (static_cast<uint64_t>(crc) != stored_crc) {
    return Status::InvalidArgument(path + " failed CRC32 validation (corrupt checkpoint)");
  }
  content->assign(bytes.data(), content_size);
  return Status::Ok();
}

// Serializes a manifest body (magic, generation, layer count, per-stage ranges) with the
// standard CRC footer, so ValidateCheckpointFile and ReadVerifiedContent apply unchanged.
Status SaveManifestFile(const std::string& path, const PlanManifest& manifest) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  uint32_t crc = 0;
  uint64_t written = 0;
  auto write_u64 = [&](uint64_t v) {
    file.write(reinterpret_cast<const char*>(&v), 8);
    crc = Crc32(&v, 8, crc);
    written += 8;
  };
  write_u64(kManifestMagic);
  write_u64(static_cast<uint64_t>(manifest.plan_generation));
  write_u64(static_cast<uint64_t>(manifest.num_layers));
  write_u64(manifest.stage_layers.size());
  for (const auto& [begin, end] : manifest.stage_layers) {
    write_u64(static_cast<uint64_t>(begin));
    write_u64(static_cast<uint64_t>(end));
  }
  uint64_t footer[3] = {static_cast<uint64_t>(crc), written, kFooterMagic};
  file.write(reinterpret_cast<const char*>(footer), sizeof(footer));
  if (!file) {
    return Status::Internal("short write to " + path);
  }
  file.close();
  if (!file) {
    return Status::Internal("close failed for " + path);
  }
  return FsyncPath(path);
}

Status LoadManifestFile(const std::string& path, PlanManifest* manifest) {
  std::string content;
  const Status verified = ReadVerifiedContent(path, &content);
  if (!verified.ok()) {
    return verified;
  }
  ByteReader reader(content.data(), content.size());
  if (reader.ReadU64() != kManifestMagic) {
    return Status::InvalidArgument(path + " is not a plan manifest");
  }
  manifest->plan_generation = static_cast<int64_t>(reader.ReadU64());
  manifest->num_layers = static_cast<int>(reader.ReadU64());
  const uint64_t stages = reader.ReadU64();
  if (!reader.ok() || stages == 0 || stages > kMaxParams) {
    return Status::InvalidArgument(path + " declares an implausible stage count");
  }
  manifest->stage_layers.clear();
  manifest->stage_layers.reserve(stages);
  int expected_begin = 0;
  for (uint64_t s = 0; s < stages; ++s) {
    const int begin = static_cast<int>(reader.ReadU64());
    const int end = static_cast<int>(reader.ReadU64());
    if (!reader.ok() || begin != expected_begin || end <= begin ||
        end > manifest->num_layers) {
      return Status::InvalidArgument(path + " has a non-contiguous stage layer range");
    }
    manifest->stage_layers.emplace_back(begin, end);
    expected_begin = end;
  }
  if (expected_begin != manifest->num_layers || reader.remaining() != 0) {
    return Status::InvalidArgument(path + " does not cover the model's layers");
  }
  return Status::Ok();
}

// Publishes `tmp_path` (already written + fsynced) as `final_path` and fsyncs the directory
// entry so the name survives a machine crash, not just a process crash.
Status PublishAtomically(const std::string& directory, const std::string& tmp_path,
                         const std::string& final_path) {
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Internal("rename failed for " + final_path);
  }
  const int dfd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::Ok();
}

}  // namespace

PlanManifest PlanManifest::FromPlan(const PipelinePlan& plan, int num_layers,
                                    int64_t plan_generation) {
  PlanManifest manifest;
  manifest.plan_generation = plan_generation;
  manifest.num_layers = num_layers;
  manifest.stage_layers.reserve(static_cast<size_t>(plan.num_stages()));
  for (const StageAssignment& stage : plan.stages()) {
    manifest.stage_layers.emplace_back(stage.begin_layer, stage.end_layer);
  }
  return manifest;
}

Status SaveParameters(const std::string& path, const std::vector<Parameter*>& params) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  uint32_t crc = 0;
  uint64_t written = 0;
  auto write_bytes = [&](const void* data, size_t n) {
    file.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    crc = Crc32(data, n, crc);
    written += n;
  };
  auto write_u64 = [&](uint64_t v) { write_bytes(&v, 8); };
  write_u64(kMagic);
  write_u64(params.size());
  for (const Parameter* p : params) {
    write_u64(p->name.size());
    write_bytes(p->name.data(), p->name.size());
    write_u64(p->value.rank());
    for (size_t d = 0; d < p->value.rank(); ++d) {
      write_u64(static_cast<uint64_t>(p->value.dim(d)));
    }
    write_bytes(std::as_const(p->value).data(), static_cast<size_t>(p->value.SizeBytes()));
  }
  // Footer: CRC + length over everything above, so truncation and bit rot are both caught
  // before a single parameter is parsed.
  uint64_t footer[3] = {static_cast<uint64_t>(crc), written, kFooterMagic};
  file.write(reinterpret_cast<const char*>(footer), sizeof(footer));
  if (!file) {
    return Status::Internal("short write to " + path);
  }
  file.close();
  if (!file) {
    return Status::Internal("close failed for " + path);
  }
  return FsyncPath(path);
}

Status ValidateCheckpointFile(const std::string& path) {
  std::string content;
  return ReadVerifiedContent(path, &content);
}

Status LoadParameters(const std::string& path, const std::vector<Parameter*>& params) {
  std::string content;
  const Status verified = ReadVerifiedContent(path, &content);
  if (!verified.ok()) {
    return verified;
  }
  ByteReader reader(content.data(), content.size());
  if (reader.ReadU64() != kMagic) {
    return Status::InvalidArgument(path + " is not a PipeDream checkpoint");
  }
  const uint64_t count = reader.ReadU64();
  if (count > kMaxParams) {
    return Status::InvalidArgument(path + " declares an implausible parameter count");
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %llu parameters, model has %zu",
                  static_cast<unsigned long long>(count), params.size()));
  }
  for (Parameter* p : params) {
    const uint64_t name_len = reader.ReadU64();
    if (!reader.ok() || name_len > kMaxNameLen) {
      return Status::InvalidArgument("truncated or malformed parameter name in " + path);
    }
    const std::string name = reader.ReadString(name_len);
    if (!reader.ok()) {
      return Status::InvalidArgument("truncated checkpoint " + path);
    }
    if (name != p->name) {
      return Status::InvalidArgument("parameter order mismatch: checkpoint has '" + name +
                                     "', model expects '" + p->name + "'");
    }
    const uint64_t rank = reader.ReadU64();
    if (!reader.ok() || rank > kMaxRank) {
      return Status::InvalidArgument("malformed rank for " + name + " in " + path);
    }
    if (rank != p->value.rank()) {
      return Status::InvalidArgument("rank mismatch for " + name);
    }
    for (size_t d = 0; d < rank; ++d) {
      if (reader.ReadU64() != static_cast<uint64_t>(p->value.dim(d))) {
        return Status::InvalidArgument("shape mismatch for " + name);
      }
    }
    if (!reader.ReadBytes(p->value.data(), static_cast<size_t>(p->value.SizeBytes()))) {
      return Status::InvalidArgument("truncated payload for " + name + " in " + path);
    }
  }
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(path + " has trailing bytes after the last parameter");
  }
  return Status::Ok();
}

CheckpointManager::CheckpointManager(std::string directory)
    : directory_(std::move(directory)) {}

std::string CheckpointManager::StagePath(int stage, int64_t epoch) const {
  return StrFormat("%s/stage%d.epoch%lld.ckpt", directory_.c_str(), stage,
                   static_cast<long long>(epoch));
}

Status CheckpointManager::SaveStage(int stage, int64_t epoch,
                                    const std::vector<Parameter*>& params) {
  PD_TRACE_SPAN("checkpoint_save", stage);
  obs::GetCounter("checkpoint/saves")->Increment();
  const std::string final_path = StagePath(stage, epoch);
  const std::string tmp_path = final_path + ".tmp";
  const Status status = SaveParameters(tmp_path, params);
  if (!status.ok()) {
    return status;
  }
  return PublishAtomically(directory_, tmp_path, final_path);
}

std::string CheckpointManager::ManifestPath(int64_t epoch) const {
  return StrFormat("%s/manifest.epoch%lld.ckpt", directory_.c_str(),
                   static_cast<long long>(epoch));
}

Status CheckpointManager::SaveManifest(int64_t epoch, const PlanManifest& manifest) {
  const std::string final_path = ManifestPath(epoch);
  const std::string tmp_path = final_path + ".tmp";
  const Status status = SaveManifestFile(tmp_path, manifest);
  if (!status.ok()) {
    return status;
  }
  return PublishAtomically(directory_, tmp_path, final_path);
}

Status CheckpointManager::LoadManifest(int64_t epoch, PlanManifest* manifest) const {
  return LoadManifestFile(ManifestPath(epoch), manifest);
}

Status CheckpointManager::LoadStage(int stage, int64_t epoch,
                                    const std::vector<Parameter*>& params) const {
  PD_TRACE_SPAN("checkpoint_load", stage);
  obs::GetCounter("checkpoint/loads")->Increment();
  return LoadParameters(StagePath(stage, epoch), params);
}

int64_t CheckpointManager::LatestCompleteEpoch(int num_stages, int64_t max_epoch) const {
  for (int64_t epoch = max_epoch; epoch >= 0; --epoch) {
    // The manifest — when present — is the authority on how many stage files this epoch
    // should have: a checkpoint written under a 3-stage re-plan must not be judged against
    // the caller's 4-stage view (or vice versa). A torn manifest poisons the whole epoch.
    int expected_stages = num_stages;
    PlanManifest manifest;
    const Status mstat = LoadManifestFile(ManifestPath(epoch), &manifest);
    if (mstat.ok()) {
      expected_stages = manifest.num_stages();
    } else if (mstat.code() != StatusCode::kNotFound) {
      continue;
    }
    bool complete = true;
    for (int s = 0; s < expected_stages; ++s) {
      // A stage file only counts if its footer validates: a crash mid-write (or bit rot)
      // must make recovery fall back to the previous epoch, not restore garbage.
      if (!ValidateCheckpointFile(StagePath(s, epoch)).ok()) {
        complete = false;
        break;
      }
    }
    if (complete) {
      return epoch;
    }
  }
  return -1;
}

}  // namespace pipedream
