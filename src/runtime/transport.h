// Pluggable stage-to-stage message transport.
//
// The original PipeDream preprint frames inter-stage communication as an explicit transfer
// layer whose cost the planner must price; this header is that layer's runtime seam. A
// MessageTransport owns one receive endpoint (a Mailbox) per (stage, replica) and routes
// PipeMessages between them. Stage workers are written against the interface only, so the
// same 1F1B scheduling loop runs unchanged whether its neighbours live on sibling threads
// (InProcTransport) or on the far side of a byte stream (SocketTransport). Implementations:
//
//   * InProcTransport — Send() is a direct Mailbox::Deliver into the destination's inbox.
//     The zero-copy move-through path (see mailbox.h): payload storage moves end to end.
//   * SocketTransport — one AF_UNIX stream socketpair per endpoint. Send() serializes the
//     message into a length-prefixed, CRC-framed record (format below and in DESIGN.md §5f)
//     and writes it under a per-endpoint mutex; a per-endpoint receiver thread reassembles
//     frames, rejects torn/corrupt ones by CRC, and delivers intact messages into the
//     endpoint's inbox. This is the single-host stand-in for a real network transport: every
//     failure mode of a byte stream (torn frame, flipped bit, interleaved writers) is
//     exercised for real, and the PR 2 watchdog machinery covers what the CRC drops.
//
// Wire format (all integers little-endian):
//   frame  := magic u32 ('PDM1') | body_len u32 | body | body_crc u32 (CRC32 over body)
//   body   := version u8 | type u8 | minibatch i64 | input_version i64 | trace_id i64
//             | checksum u32 | tensor(payload) | tensor(targets)
//   tensor := rank u32 | dims i64[rank] | data f32[numel]   (rank 0xFFFFFFFF = empty tensor)
//
// Body version history: v1 had no trace_id; v2 (current) inserts the causal trace id after
// input_version so cross-stage flow events line up over the wire. Decoding is strict
// same-version (a mixed-version pipeline is a deployment error, not a protocol state).
//
// The body-level `checksum` is the sender-stamped message checksum from mailbox.h — it
// travels the wire so end-to-end corruption (injected before serialization) is still caught
// by the receiving *stage*, while the frame CRC catches corruption of the byte stream
// itself. A frame whose CRC fails is dropped and counted (transport/frames_rejected); the
// resulting lost message surfaces as a wedged pipeline to the progress watchdog, which
// drives recovery exactly as for an injected drop.
#ifndef SRC_RUNTIME_TRANSPORT_H_
#define SRC_RUNTIME_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/runtime/mailbox.h"

namespace pipedream {

enum class TransportKind {
  kInProc,      // direct mailbox delivery between threads of one process
  kUnixSocket,  // length-prefixed CRC-framed records over AF_UNIX stream sockets
};

const char* TransportKindName(TransportKind kind);

// Parses "inproc" | "socket" (alias "unix"). Unrecognized values are an error.
Result<TransportKind> ParseTransportKind(const std::string& name);

// PIPEDREAM_TRANSPORT environment override; nullopt when unset. Aborts on garbage (a typo
// silently falling back to in-proc would invalidate every socket-transport measurement).
std::optional<TransportKind> TransportKindFromEnv();

// Message transports route PipeMessages between per-(stage, replica) endpoints. Lifecycle:
// AddEndpoint() for every receiver, then Start(), then any number of concurrent Send()s,
// then Shutdown() (idempotent; also run by the destructor). Endpoints cannot be added after
// Start().
class MessageTransport {
 public:
  virtual ~MessageTransport() = default;

  // Registers the receive endpoint for (stage, replica) and returns its inbox. The Mailbox
  // is owned by the transport and stays valid until destruction — receivers keep using
  // WaitUntil/WaitUntilFor/Take on it exactly as before this interface existed.
  virtual Mailbox* AddEndpoint(int stage, int replica) = 0;

  // Looks up a previously added endpoint's inbox (null when absent).
  virtual Mailbox* endpoint(int stage, int replica) const = 0;

  // Spawns whatever machinery delivery needs (receiver threads for sockets). Must be called
  // once, after all AddEndpoint calls and before the first Send.
  virtual Status Start() = 0;

  // Routes one message to the endpoint's inbox. Thread-safe; callers may send to any
  // endpoint from any thread. The message is moved in; delivery may be asynchronous.
  virtual void Send(int stage, int replica, PipeMessage message) = 0;

  // Blocks until every Send accepted before the call is either visible in its destination
  // inbox or rejected by the frame CRC. Brackets epoch attempts: a recovery must not let a
  // late frame from the aborted attempt leak into the replay.
  virtual void Drain() = 0;

  // Stops delivery machinery. In-flight messages already written are still delivered before
  // receiver threads exit (clean shutdown), further Sends are illegal. Idempotent.
  virtual void Shutdown() = 0;

  virtual TransportKind kind() const = 0;
  const char* name() const { return TransportKindName(kind()); }
};

// Factory: `kind` unset resolves to PIPEDREAM_TRANSPORT, defaulting to in-proc.
std::unique_ptr<MessageTransport> MakeTransport(
    std::optional<TransportKind> kind = std::nullopt);

// --- wire helpers (exposed for the framing fuzz battery) ---

// Serializes a message body (no frame header/CRC).
std::vector<uint8_t> SerializeMessage(const PipeMessage& message);

// Parses a body produced by SerializeMessage. Errors (never aborts) on truncated or
// malformed input — a CRC-valid frame can still carry garbage under fuzzing.
Result<PipeMessage> DeserializeMessage(const uint8_t* data, size_t size);

// Wraps a body in the frame header/trailer and appends it to `out`.
void AppendFrame(const std::vector<uint8_t>& body, std::vector<uint8_t>* out);

// Incremental frame reassembler: feed arbitrary byte-stream fragments, get back the bodies
// of every complete, CRC-valid frame. Torn or corrupt frames are dropped and counted; the
// decoder resynchronizes by scanning for the next frame magic, so one flipped bit never
// poisons the rest of the stream.
class FrameDecoder {
 public:
  // Appends `size` bytes and extracts complete valid frame bodies into `frames`.
  void Append(const uint8_t* data, size_t size, std::vector<std::vector<uint8_t>>* frames);

  // Frames rejected so far (bad magic, implausible length, or CRC mismatch).
  int64_t corrupt_frames() const { return corrupt_frames_; }
  // Bytes buffered awaiting a complete frame (a truncated tail parks here harmlessly).
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  // Scans `buffer_` from `from` for the next magic; discards everything before it.
  void Resync(size_t from);

  std::vector<uint8_t> buffer_;
  int64_t corrupt_frames_ = 0;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_TRANSPORT_H_
