#include "src/runtime/serving.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pipedream {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// PIPEDREAM_SERVE_QUEUE_DEPTH override for the admission window. Aborts on garbage (a typo
// silently keeping the default would invalidate a backpressure measurement).
int AdmissionWindowFromEnvOr(int fallback) {
  const char* raw = std::getenv("PIPEDREAM_SERVE_QUEUE_DEPTH");
  if (raw == nullptr || raw[0] == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  PD_CHECK(end != raw && *end == '\0' && value >= 1)
      << "PIPEDREAM_SERVE_QUEUE_DEPTH must be a positive integer, got '" << raw << "'";
  return static_cast<int>(value);
}

}  // namespace

PipelineServer::PipelineServer(const Sequential& model, const PipelinePlan& plan,
                               ServingOptions options)
    : plan_(plan), options_(options) {
  plan_.Validate(static_cast<int>(model.size()));
  PD_CHECK(plan_.IsStraight())
      << "PipelineServer serves straight plans only (one replica per stage)";
  max_inflight_ = AdmissionWindowFromEnvOr(options_.max_inflight);
  PD_CHECK_GE(max_inflight_, 1);

  std::optional<TransportKind> kind = TransportKindFromEnv();
  if (!kind.has_value()) {
    kind = options_.transport;
  }
  transport_ = MakeTransport(kind);

  const int stages = plan_.num_stages();
  stage_models_.reserve(static_cast<size_t>(stages));
  stage_inboxes_.reserve(static_cast<size_t>(stages) + 1);
  for (int s = 0; s < stages; ++s) {
    const StageAssignment& assignment = plan_.stage(s);
    stage_models_.push_back(model.CloneSlice(static_cast<size_t>(assignment.begin_layer),
                                             static_cast<size_t>(assignment.end_layer)));
    stage_inboxes_.push_back(transport_->AddEndpoint(s, 0));
  }
  // The egress collector is one endpoint past the last stage: the final stage "sends
  // downstream" exactly as it would in training, and the collector is just another server.
  egress_ = transport_->AddEndpoint(stages, 0);
  stage_inboxes_.push_back(egress_);

  latency_ = obs::GetHistogram(std::string("serve/") + transport_->name() +
                               "/request_seconds");
  const std::string prefix = std::string("serve/") + transport_->name();
  transport_hist_.reserve(static_cast<size_t>(stages));
  queue_hist_.reserve(static_cast<size_t>(stages));
  compute_hist_.reserve(static_cast<size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    transport_hist_.push_back(
        obs::GetHistogram(StrFormat("%s/stage%d/transport_seconds", prefix.c_str(), s)));
    queue_hist_.push_back(
        obs::GetHistogram(StrFormat("%s/stage%d/queue_seconds", prefix.c_str(), s)));
    compute_hist_.push_back(
        obs::GetHistogram(StrFormat("%s/stage%d/compute_seconds", prefix.c_str(), s)));
  }
  egress_transport_hist_ =
      obs::GetHistogram(StrFormat("%s/egress/transport_seconds", prefix.c_str()));
  // Serving processes expose the same live health endpoint as training ones.
  obs::StartHealthServerFromEnv();
}

PipelineServer::~PipelineServer() { Stop(); }

Status PipelineServer::Start() {
  PD_CHECK(!started_) << "PipelineServer::Start called twice";
  started_ = true;
  const Status status = transport_->Start();
  if (!status.ok()) {
    return status;
  }
  const int stages = plan_.num_stages();
  const int kernel_budget = KernelBudgetForWorkers(stages);
  stage_threads_.reserve(static_cast<size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    stage_threads_.emplace_back([this, s, kernel_budget] {
      ScopedKernelBudget budget(kernel_budget);
      StageLoop(s);
    });
  }
  collector_ = std::thread([this] { CollectLoop(); });
  return Status::Ok();
}

int64_t PipelineServer::Submit(Tensor input) {
  int64_t id;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    PD_CHECK(started_ && !stopped_) << "Submit outside the Start/Stop window";
    window_cv_.wait(lock, [this] { return inflight_ < max_inflight_; });
    id = next_id_++;
    ++inflight_;
    start_ns_[id] = NowNs();
  }
  PipeMessage message;
  message.minibatch = id;
  message.type = WorkType::kForward;
  message.payload = std::move(input);
  message.trace_id = id;  // the request id is the causal-chain key over the wire
  StampChecksum(&message);
  NoteSent(0, id);
  transport_->Send(0, 0, std::move(message));
  return id;
}

void PipelineServer::NoteSent(int dest_stage, int64_t id) {
  std::lock_guard<std::mutex> lock(sent_mutex_);
  sent_ns_[{dest_stage, id}] = obs::TraceClockNs();
}

std::optional<int64_t> PipelineServer::TakeSentNs(int dest_stage, int64_t id) {
  std::lock_guard<std::mutex> lock(sent_mutex_);
  const auto it = sent_ns_.find({dest_stage, id});
  if (it == sent_ns_.end()) {
    return std::nullopt;
  }
  const int64_t ns = it->second;
  sent_ns_.erase(it);
  return ns;
}

Tensor PipelineServer::Wait(int64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  result_cv_.wait(lock, [this, id] { return results_.count(id) != 0; });
  auto it = results_.find(id);
  Tensor out = std::move(it->second);
  results_.erase(it);
  return out;
}

Tensor PipelineServer::Infer(const Tensor& input) { return Wait(Submit(input)); }

void PipelineServer::StageLoop(int stage) {
  Mailbox* inbox = stage_inboxes_[static_cast<size_t>(stage)];
  const Sequential& model = *stage_models_[static_cast<size_t>(stage)];
  const auto tick = std::chrono::milliseconds(options_.worker_tick_ms);
  for (;;) {
    // Drain everything queued before honouring stop: Stop() only flips the flag once the
    // window is empty, but the message for an admitted request may still be in flight.
    std::optional<PipeMessage> message = inbox->Take(WorkType::kForward);
    if (!message.has_value()) {
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      inbox->WaitUntilFor([](int64_t min_fwd, int64_t) { return min_fwd >= 0; }, tick);
      continue;
    }
    const int64_t take_ns = obs::TraceClockNs();
    PD_CHECK(VerifyChecksum(*message))
        << "serving request " << message->minibatch << " corrupted before stage " << stage;
    const int64_t id = message->minibatch;
    const int64_t flow = message->trace_id >= 0 ? message->trace_id : id;
    // Decompose the hop into this stage: transport (send to mailbox delivery) and queue
    // (delivery to dequeue). Compute is timed around Forward below.
    if (message->delivered_ns > 0) {
      queue_hist_[static_cast<size_t>(stage)]->Observe(
          static_cast<double>(take_ns - message->delivered_ns) * 1e-9);
      if (const std::optional<int64_t> sent = TakeSentNs(stage, id)) {
        transport_hist_[static_cast<size_t>(stage)]->Observe(
            static_cast<double>(message->delivered_ns - *sent) * 1e-9);
      }
    }
    Tensor out;
    {
      PD_TRACE_SPAN("serve", stage, id);
      if (stage == 0) {
        obs::RecordFlowStart("req", flow, stage, id);
      } else {
        obs::RecordFlowStep("req", flow, stage, id);
      }
      const int64_t compute_begin_ns = obs::TraceClockNs();
      ModelContext ctx;  // per-request, discarded: inference stashes nothing
      out = model.Forward(message->payload, &ctx, /*training=*/false);
      compute_hist_[static_cast<size_t>(stage)]->Observe(
          static_cast<double>(obs::TraceClockNs() - compute_begin_ns) * 1e-9);
    }
    PipeMessage next;
    next.minibatch = id;
    next.type = WorkType::kForward;
    next.payload = std::move(out);
    next.trace_id = flow;
    StampChecksum(&next);
    NoteSent(stage + 1, id);
    transport_->Send(stage + 1, 0, std::move(next));
  }
}

void PipelineServer::CollectLoop() {
  const auto tick = std::chrono::milliseconds(options_.worker_tick_ms);
  for (;;) {
    std::optional<PipeMessage> message = egress_->Take(WorkType::kForward);
    if (!message.has_value()) {
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      egress_->WaitUntilFor([](int64_t min_fwd, int64_t) { return min_fwd >= 0; }, tick);
      continue;
    }
    PD_CHECK(VerifyChecksum(*message))
        << "serving result " << message->minibatch << " corrupted after the last stage";
    const int64_t id = message->minibatch;
    const int64_t end_ns = NowNs();
    if (message->delivered_ns > 0) {
      if (const std::optional<int64_t> sent = TakeSentNs(plan_.num_stages(), id)) {
        egress_transport_hist_->Observe(
            static_cast<double>(message->delivered_ns - *sent) * 1e-9);
      }
    }
    {
      // The chain ends where the result is handed back; a tiny span gives the flow arrow
      // a slice to bind to.
      PD_TRACE_SPAN("collect", plan_.num_stages(), id);
      obs::RecordFlowEnd("req", message->trace_id >= 0 ? message->trace_id : id,
                         plan_.num_stages(), id);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = start_ns_.find(id);
      PD_CHECK(it != start_ns_.end()) << "result for unknown request " << id;
      latency_->Observe(static_cast<double>(end_ns - it->second) * 1e-9);
      start_ns_.erase(it);
      results_.emplace(id, std::move(message->payload));
      ++completed_;
      --inflight_;
    }
    window_cv_.notify_all();
    result_cv_.notify_all();
  }
}

void PipelineServer::Stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!started_ || stopped_) {
      return;
    }
    stopped_ = true;
    // Quiesce: every admitted request must reach the collector before the loops stop.
    window_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  stop_.store(true, std::memory_order_release);
  for (Mailbox* inbox : stage_inboxes_) {
    inbox->Poke();
  }
  for (std::thread& t : stage_threads_) {
    t.join();
  }
  collector_.join();
  transport_->Drain();
  transport_->Shutdown();
  obs::GetGauge("serve/ingress_depth_hwm")->SetMax(IngressDepthHighWater());
}

ServingStats PipelineServer::Stats() const {
  ServingStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.completed = completed_;
  }
  stats.p50_seconds = latency_->Quantile(0.50);
  stats.p99_seconds = latency_->Quantile(0.99);
  stats.p999_seconds = latency_->Quantile(0.999);
  const RunningStat snapshot = latency_->snapshot();
  stats.mean_seconds = snapshot.count() > 0 ? snapshot.mean() : 0.0;
  return stats;
}

int64_t PipelineServer::IngressDepthHighWater() const {
  return stage_inboxes_.front()->DepthHighWater();
}

}  // namespace pipedream
