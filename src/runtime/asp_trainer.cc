#include "src/runtime/asp_trainer.h"

#include <cstring>
#include <thread>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace pipedream {
namespace {

// Packs every parameter's gradient into one flat tensor (the ASP wire payload). Gradients
// are copied, not shared: the worker reuses its local grad buffers immediately.
Tensor FlattenGrads(const std::vector<Parameter*>& params) {
  int64_t total = 0;
  for (const Parameter* p : params) {
    total += p->grad.numel();
  }
  Tensor flat = Tensor::Uninitialized({total});
  float* out = flat.data();
  int64_t at = 0;
  for (const Parameter* p : params) {
    const int64_t n = p->grad.numel();
    std::memcpy(out + at, p->grad.data(), static_cast<size_t>(n) * sizeof(float));
    at += n;
  }
  return flat;
}

}  // namespace

AspTrainer::AspTrainer(const Sequential& model, int workers, const Loss* loss,
                       const Optimizer& optimizer_prototype, const Dataset* dataset,
                       int64_t batch_size, uint64_t seed, int staleness_depth)
    : workers_(workers),
      loss_(loss),
      dataset_(dataset),
      batch_size_(batch_size),
      seed_(seed),
      shared_model_(model.Clone()),
      staleness_depth_(staleness_depth) {
  PD_CHECK_GE(workers, 1);
  PD_CHECK_GE(staleness_depth, 0);
  shared_params_ = shared_model_->Params();
  optimizer_ = optimizer_prototype.CloneFresh();
  acked_.assign(static_cast<size_t>(workers_), 0);
  // The parameter server is endpoint (0, 0) of the shared transport abstraction — the same
  // seam the pipeline runtime sends activations through (PIPEDREAM_TRANSPORT applies here
  // too, so the ASP baseline can run its gradient traffic over a real byte stream).
  transport_ = MakeTransport();
  server_inbox_ = transport_->AddEndpoint(0, 0);
  const Status started = transport_->Start();
  PD_CHECK(started.ok()) << "transport start failed: " << started.ToString();
}

void AspTrainer::ApplyGradient(PipeMessage message) {
  PD_CHECK(VerifyChecksum(message)) << "ASP gradient message failed its checksum";
  const int worker = static_cast<int>(message.input_version);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const float* flat = message.payload.data();
    int64_t at = 0;
    for (Parameter* p : shared_params_) {
      const int64_t n = p->grad.numel();
      PD_CHECK_LE(at + n, message.payload.numel());
      std::memcpy(p->grad.data(), flat + at, static_cast<size_t>(n) * sizeof(float));
      at += n;
    }
    PD_CHECK_EQ(at, message.payload.numel());
    optimizer_->Step(shared_params_);
    if (staleness_depth_ > 0) {
      std::vector<Tensor> snapshot;
      snapshot.reserve(shared_params_.size());
      for (const Parameter* param : shared_params_) {
        snapshot.push_back(param->value);
      }
      history_.push_back(std::move(snapshot));
      while (history_.size() > static_cast<size_t>(staleness_depth_)) {
        history_.pop_front();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(ack_mutex_);
    ++acked_[static_cast<size_t>(worker)];
  }
  ack_cv_.notify_all();
}

AspEpochStats AspTrainer::TrainEpoch() {
  MinibatchLoader probe(dataset_, batch_size_, seed_);
  const int64_t bpe = probe.batches_per_epoch();
  const int64_t begin = next_global_batch_;
  const int64_t end = begin + bpe;

  std::vector<double> loss_sums(static_cast<size_t>(workers_), 0.0);
  std::vector<int64_t> loss_counts(static_cast<size_t>(workers_), 0);

  auto worker_fn = [&](int worker) {
    MinibatchLoader loader(dataset_, batch_size_, seed_);
    auto local = shared_model_->Clone();
    const std::vector<Parameter*> local_params = local->Params();
    Tensor x;
    Tensor y;
    Tensor grad;
    int64_t sent = 0;
    for (int64_t b = begin + worker; b < end; b += workers_) {
      loader.BatchAt(b, &x, &y);
      // Snapshot shared weights — deliberately `staleness_depth_` updates old (see the
      // constructor comment). No barrier: this is the staleness ASP trades accuracy for.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::vector<Tensor>* source = nullptr;
        if (staleness_depth_ > 0 && !history_.empty()) {
          const size_t back = std::min(history_.size() - 1,
                                       static_cast<size_t>(staleness_depth_ - 1));
          source = &history_[history_.size() - 1 - back];
        }
        for (size_t i = 0; i < local_params.size(); ++i) {
          local_params[i]->value =
              source != nullptr ? (*source)[i] : shared_params_[i]->value;
        }
      }
      local->ZeroGrads();
      ModelContext ctx;
      const Tensor out = local->Forward(x, &ctx, /*training=*/true);
      Tensor targets = y.rank() > 1 ? y.Reshaped({y.numel()}) : y;
      loss_sums[static_cast<size_t>(worker)] += loss_->Compute(out, targets, &grad);
      ++loss_counts[static_cast<size_t>(worker)];
      local->Backward(grad, &ctx);
      // Ship the gradient to the parameter server; apply-to-whatever-is-current happens
      // there, in arrival order.
      PipeMessage message;
      message.minibatch = b;
      message.type = WorkType::kBackward;
      message.payload = FlattenGrads(local_params);
      message.input_version = worker;  // reply-routing key for the ack
      StampChecksum(&message);
      transport_->Send(0, 0, std::move(message));
      ++sent;
      // Wait for our own update to land before the next snapshot: a worker's own gradient
      // is never stale to itself (identical sequencing to the in-place formulation).
      std::unique_lock<std::mutex> lock(ack_mutex_);
      ack_cv_.wait(lock, [&] { return acked_[static_cast<size_t>(worker)] >= sent; });
    }
  };

  // The parameter-server loop: applies exactly one update per minibatch in the epoch, in
  // message-arrival order, then exits.
  std::thread server([this, bpe] {
    int64_t applied = 0;
    while (applied < bpe) {
      server_inbox_->WaitUntil(
          [](int64_t min_fwd, int64_t min_bwd) { return min_bwd >= 0; });
      std::optional<PipeMessage> message = server_inbox_->Take(WorkType::kBackward);
      PD_CHECK(message.has_value());
      ApplyGradient(std::move(*message));
      ++applied;
    }
  });

  // Concurrent ASP workers share the kernel pool like pipeline stages do.
  const int kernel_budget = KernelBudgetForWorkers(workers_);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    threads.emplace_back([&worker_fn, kernel_budget](int worker) {
      ScopedKernelBudget budget(kernel_budget);
      worker_fn(worker);
    }, w);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  server.join();
  for (int64_t& count : acked_) {
    count = 0;  // reset the ack ledger so epochs are self-contained
  }

  AspEpochStats stats;
  for (int w = 0; w < workers_; ++w) {
    stats.mean_loss += loss_sums[static_cast<size_t>(w)];
    stats.minibatches += loss_counts[static_cast<size_t>(w)];
  }
  if (stats.minibatches > 0) {
    stats.mean_loss /= static_cast<double>(stats.minibatches);
  }
  next_global_batch_ = end;
  ++epochs_completed_;
  return stats;
}

double AspTrainer::EvaluateAccuracy(const Dataset& eval, int64_t eval_batch) const {
  MinibatchLoader loader(&eval, eval_batch, /*seed=*/1);
  Tensor x;
  Tensor y;
  double total = 0.0;
  const int64_t batches = loader.batches_per_epoch();
  for (int64_t b = 0; b < batches; ++b) {
    loader.BatchAt(b, &x, &y);
    ModelContext ctx;
    const Tensor out = shared_model_->Forward(x, &ctx, /*training=*/false);
    Tensor targets = y.rank() > 1 ? y.Reshaped({y.numel()}) : y;
    total += Accuracy(out, targets);
  }
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

}  // namespace pipedream
