#include "src/runtime/asp_trainer.h"

#include <thread>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace pipedream {

AspTrainer::AspTrainer(const Sequential& model, int workers, const Loss* loss,
                       const Optimizer& optimizer_prototype, const Dataset* dataset,
                       int64_t batch_size, uint64_t seed, int staleness_depth)
    : workers_(workers),
      loss_(loss),
      dataset_(dataset),
      batch_size_(batch_size),
      seed_(seed),
      shared_model_(model.Clone()),
      staleness_depth_(staleness_depth) {
  PD_CHECK_GE(workers, 1);
  PD_CHECK_GE(staleness_depth, 0);
  shared_params_ = shared_model_->Params();
  optimizer_ = optimizer_prototype.CloneFresh();
}

AspEpochStats AspTrainer::TrainEpoch() {
  MinibatchLoader probe(dataset_, batch_size_, seed_);
  const int64_t bpe = probe.batches_per_epoch();
  const int64_t begin = next_global_batch_;
  const int64_t end = begin + bpe;

  std::vector<double> loss_sums(static_cast<size_t>(workers_), 0.0);
  std::vector<int64_t> loss_counts(static_cast<size_t>(workers_), 0);

  auto worker_fn = [&](int worker) {
    MinibatchLoader loader(dataset_, batch_size_, seed_);
    auto local = shared_model_->Clone();
    const std::vector<Parameter*> local_params = local->Params();
    Tensor x;
    Tensor y;
    Tensor grad;
    for (int64_t b = begin + worker; b < end; b += workers_) {
      loader.BatchAt(b, &x, &y);
      // Snapshot shared weights — deliberately `staleness_depth_` updates old (see the
      // constructor comment). No barrier: this is the staleness ASP trades accuracy for.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::vector<Tensor>* source = nullptr;
        if (staleness_depth_ > 0 && !history_.empty()) {
          const size_t back = std::min(history_.size() - 1,
                                       static_cast<size_t>(staleness_depth_ - 1));
          source = &history_[history_.size() - 1 - back];
        }
        for (size_t i = 0; i < local_params.size(); ++i) {
          local_params[i]->value =
              source != nullptr ? (*source)[i] : shared_params_[i]->value;
        }
      }
      local->ZeroGrads();
      ModelContext ctx;
      const Tensor out = local->Forward(x, &ctx, /*training=*/true);
      Tensor targets = y.rank() > 1 ? y.Reshaped({y.numel()}) : y;
      loss_sums[static_cast<size_t>(worker)] += loss_->Compute(out, targets, &grad);
      ++loss_counts[static_cast<size_t>(worker)];
      local->Backward(grad, &ctx);
      // Apply to whatever the shared weights are now.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = 0; i < local_params.size(); ++i) {
          shared_params_[i]->grad = local_params[i]->grad;
        }
        optimizer_->Step(shared_params_);
        if (staleness_depth_ > 0) {
          std::vector<Tensor> snapshot;
          snapshot.reserve(shared_params_.size());
          for (const Parameter* param : shared_params_) {
            snapshot.push_back(param->value);
          }
          history_.push_back(std::move(snapshot));
          while (history_.size() > static_cast<size_t>(staleness_depth_)) {
            history_.pop_front();
          }
        }
      }
    }
  };

  // Concurrent ASP workers share the kernel pool like pipeline stages do.
  const int kernel_budget = KernelBudgetForWorkers(workers_);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    threads.emplace_back([&worker_fn, kernel_budget](int worker) {
      ScopedKernelBudget budget(kernel_budget);
      worker_fn(worker);
    }, w);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  AspEpochStats stats;
  for (int w = 0; w < workers_; ++w) {
    stats.mean_loss += loss_sums[static_cast<size_t>(w)];
    stats.minibatches += loss_counts[static_cast<size_t>(w)];
  }
  if (stats.minibatches > 0) {
    stats.mean_loss /= static_cast<double>(stats.minibatches);
  }
  next_global_batch_ = end;
  ++epochs_completed_;
  return stats;
}

double AspTrainer::EvaluateAccuracy(const Dataset& eval, int64_t eval_batch) const {
  MinibatchLoader loader(&eval, eval_batch, /*seed=*/1);
  Tensor x;
  Tensor y;
  double total = 0.0;
  const int64_t batches = loader.batches_per_epoch();
  for (int64_t b = 0; b < batches; ++b) {
    loader.BatchAt(b, &x, &y);
    ModelContext ctx;
    const Tensor out = shared_model_->Forward(x, &ctx, /*training=*/false);
    Tensor targets = y.rank() > 1 ? y.Reshaped({y.numel()}) : y;
    total += Accuracy(out, targets);
  }
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

}  // namespace pipedream
