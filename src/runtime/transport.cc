#include "src/runtime/transport.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace pipedream {
namespace {

constexpr uint32_t kFrameMagic = 0x314D4450;  // "PDM1" little-endian
constexpr uint8_t kBodyVersion = 2;  // v2 added trace_id after input_version
constexpr size_t kFrameHeaderBytes = 8;   // magic + body_len
constexpr size_t kFrameTrailerBytes = 4;  // body CRC
// Implausible-length guard: a corrupted length field must not make the decoder buffer
// gigabytes while "waiting" for a frame that will never complete.
constexpr uint32_t kMaxBodyBytes = 1u << 30;
constexpr uint32_t kEmptyTensorRank = 0xFFFFFFFFu;
constexpr uint32_t kMaxTensorRank = 8;

template <typename T>
void AppendPod(std::vector<uint8_t>* out, T value) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

void AppendTensor(std::vector<uint8_t>* out, const Tensor& t) {
  if (t.numel() == 0) {
    AppendPod<uint32_t>(out, kEmptyTensorRank);
    return;
  }
  AppendPod<uint32_t>(out, static_cast<uint32_t>(t.rank()));
  for (int64_t d : t.shape()) {
    AppendPod<int64_t>(out, d);
  }
  const size_t at = out->size();
  const size_t bytes = static_cast<size_t>(t.SizeBytes());
  out->resize(at + bytes);
  std::memcpy(out->data() + at, t.data(), bytes);
}

// Bounds-checked sequential reader over a serialized body.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t at = 0;

  template <typename T>
  bool Read(T* value) {
    if (size - at < sizeof(T)) {
      return false;
    }
    std::memcpy(value, data + at, sizeof(T));
    at += sizeof(T);
    return true;
  }
};

bool ReadTensor(Reader* r, Tensor* out) {
  uint32_t rank = 0;
  if (!r->Read(&rank)) {
    return false;
  }
  if (rank == kEmptyTensorRank) {
    *out = Tensor();
    return true;
  }
  if (rank == 0 || rank > kMaxTensorRank) {
    return false;
  }
  std::vector<int64_t> shape(rank);
  int64_t numel = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    if (!r->Read(&shape[i])) {
      return false;
    }
    if (shape[i] <= 0 || numel > static_cast<int64_t>(kMaxBodyBytes) / shape[i]) {
      return false;
    }
    numel *= shape[i];
  }
  const size_t bytes = static_cast<size_t>(numel) * sizeof(float);
  if (r->size - r->at < bytes) {
    return false;
  }
  Tensor t = Tensor::Uninitialized(std::move(shape));
  std::memcpy(t.data(), r->data + r->at, bytes);
  r->at += bytes;
  *out = std::move(t);
  return true;
}

}  // namespace

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc:
      return "inproc";
    case TransportKind::kUnixSocket:
      return "socket";
  }
  return "unknown";
}

Result<TransportKind> ParseTransportKind(const std::string& name) {
  if (name == "inproc" || name == "mailbox") {
    return TransportKind::kInProc;
  }
  if (name == "socket" || name == "unix") {
    return TransportKind::kUnixSocket;
  }
  return Status::InvalidArgument(
      StrFormat("unknown transport '%s' (expected inproc|socket)", name.c_str()));
}

std::optional<TransportKind> TransportKindFromEnv() {
  const char* value = std::getenv("PIPEDREAM_TRANSPORT");
  if (value == nullptr || value[0] == '\0') {
    return std::nullopt;
  }
  Result<TransportKind> parsed = ParseTransportKind(value);
  PD_CHECK(parsed.ok()) << "PIPEDREAM_TRANSPORT: " << parsed.status().ToString();
  return *parsed;
}

std::vector<uint8_t> SerializeMessage(const PipeMessage& message) {
  std::vector<uint8_t> body;
  body.reserve(32 + static_cast<size_t>(message.payload.SizeBytes()) +
               static_cast<size_t>(message.targets.SizeBytes()));
  AppendPod<uint8_t>(&body, kBodyVersion);
  AppendPod<uint8_t>(&body, message.type == WorkType::kForward ? 0 : 1);
  AppendPod<int64_t>(&body, message.minibatch);
  AppendPod<int64_t>(&body, message.input_version);
  AppendPod<int64_t>(&body, message.trace_id);
  AppendPod<uint32_t>(&body, message.checksum);
  AppendTensor(&body, message.payload);
  AppendTensor(&body, message.targets);
  return body;
}

Result<PipeMessage> DeserializeMessage(const uint8_t* data, size_t size) {
  Reader r{data, size};
  uint8_t version = 0;
  uint8_t type = 0;
  PipeMessage message;
  if (!r.Read(&version) || version != kBodyVersion) {
    return Status::InvalidArgument("bad message body version");
  }
  if (!r.Read(&type) || type > 1) {
    return Status::InvalidArgument("bad message work type");
  }
  message.type = type == 0 ? WorkType::kForward : WorkType::kBackward;
  if (!r.Read(&message.minibatch) || !r.Read(&message.input_version) ||
      !r.Read(&message.trace_id) || !r.Read(&message.checksum)) {
    return Status::InvalidArgument("truncated message header");
  }
  if (!ReadTensor(&r, &message.payload) || !ReadTensor(&r, &message.targets)) {
    return Status::InvalidArgument("malformed tensor encoding");
  }
  if (r.at != size) {
    return Status::InvalidArgument("trailing bytes after message body");
  }
  return message;
}

void AppendFrame(const std::vector<uint8_t>& body, std::vector<uint8_t>* out) {
  PD_CHECK_LE(body.size(), static_cast<size_t>(kMaxBodyBytes));
  AppendPod<uint32_t>(out, kFrameMagic);
  AppendPod<uint32_t>(out, static_cast<uint32_t>(body.size()));
  out->insert(out->end(), body.begin(), body.end());
  AppendPod<uint32_t>(out, Crc32(body.data(), body.size()));
}

void FrameDecoder::Resync(size_t from) {
  // Look for the next plausible frame start strictly after the rejected position; count one
  // rejection per resync, not per scanned byte.
  ++corrupt_frames_;
  const uint8_t magic0 = static_cast<uint8_t>(kFrameMagic & 0xFF);
  size_t next = from + 1;
  while (next + 4 <= buffer_.size()) {
    if (buffer_[next] == magic0) {
      uint32_t candidate = 0;
      std::memcpy(&candidate, buffer_.data() + next, 4);
      if (candidate == kFrameMagic) {
        break;
      }
    }
    ++next;
  }
  if (next + 4 > buffer_.size()) {
    // No full magic in what remains: keep at most 3 tail bytes (a magic split across
    // Append calls) and drop the rest.
    next = buffer_.size() > 3 ? buffer_.size() - 3 : buffer_.size();
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<int64_t>(next));
}

void FrameDecoder::Append(const uint8_t* data, size_t size,
                          std::vector<std::vector<uint8_t>>* frames) {
  buffer_.insert(buffer_.end(), data, data + size);
  for (;;) {
    if (buffer_.size() < kFrameHeaderBytes) {
      return;
    }
    uint32_t magic = 0;
    uint32_t body_len = 0;
    std::memcpy(&magic, buffer_.data(), 4);
    std::memcpy(&body_len, buffer_.data() + 4, 4);
    if (magic != kFrameMagic || body_len > kMaxBodyBytes) {
      Resync(0);
      continue;
    }
    const size_t total = kFrameHeaderBytes + body_len + kFrameTrailerBytes;
    if (buffer_.size() < total) {
      return;  // torn frame: wait for more bytes (or EOF, which abandons it)
    }
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, buffer_.data() + kFrameHeaderBytes + body_len, 4);
    const uint8_t* body = buffer_.data() + kFrameHeaderBytes;
    if (Crc32(body, body_len) != stored_crc) {
      Resync(0);
      continue;
    }
    frames->emplace_back(body, body + body_len);
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<int64_t>(total));
  }
}

namespace {

// Endpoint key: stages and replicas are small non-negative ints.
uint64_t EndpointKey(int stage, int replica) {
  PD_CHECK_GE(stage, 0);
  PD_CHECK_GE(replica, 0);
  return (static_cast<uint64_t>(static_cast<uint32_t>(stage)) << 32) |
         static_cast<uint32_t>(replica);
}

class InProcTransport : public MessageTransport {
 public:
  ~InProcTransport() override = default;

  Mailbox* AddEndpoint(int stage, int replica) override {
    PD_CHECK(!started_) << "endpoints must be added before Start()";
    auto& slot = endpoints_[EndpointKey(stage, replica)];
    PD_CHECK(slot == nullptr) << "duplicate endpoint (" << stage << ", " << replica << ")";
    slot = std::make_unique<Mailbox>();
    return slot.get();
  }

  Mailbox* endpoint(int stage, int replica) const override {
    const auto it = endpoints_.find(EndpointKey(stage, replica));
    return it == endpoints_.end() ? nullptr : it->second.get();
  }

  Status Start() override {
    started_ = true;
    return Status::Ok();
  }

  void Send(int stage, int replica, PipeMessage message) override {
    Mailbox* inbox = endpoint(stage, replica);
    PD_CHECK(inbox != nullptr) << "send to unregistered endpoint (" << stage << ", "
                               << replica << ")";
    obs::GetCounter("transport/messages_sent")->Increment();
    inbox->Deliver(std::move(message));
  }

  void Drain() override {}     // delivery is synchronous
  void Shutdown() override {}  // nothing to stop

  TransportKind kind() const override { return TransportKind::kInProc; }

 private:
  std::map<uint64_t, std::unique_ptr<Mailbox>> endpoints_;
  bool started_ = false;
};

class SocketTransport : public MessageTransport {
 public:
  ~SocketTransport() override { Shutdown(); }

  Mailbox* AddEndpoint(int stage, int replica) override {
    PD_CHECK(!started_) << "endpoints must be added before Start()";
    auto& slot = endpoints_[EndpointKey(stage, replica)];
    PD_CHECK(slot == nullptr) << "duplicate endpoint (" << stage << ", " << replica << ")";
    slot = std::make_unique<Endpoint>();
    return &slot->inbox;
  }

  Mailbox* endpoint(int stage, int replica) const override {
    const auto it = endpoints_.find(EndpointKey(stage, replica));
    return it == endpoints_.end() ? nullptr : &it->second->inbox;
  }

  Status Start() override {
    PD_CHECK(!started_);
    for (auto& [key, ep] : endpoints_) {
      int fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        return Status::Internal(StrFormat("socketpair: %s", std::strerror(errno)));
      }
      ep->send_fd = fds[0];
      ep->recv_fd = fds[1];
      // Big tensors should block the sender briefly, not fragment into hundreds of
      // syscalls; best-effort (the kernel clamps to its limits).
      const int sndbuf = 1 << 20;
      (void)::setsockopt(ep->send_fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
      ep->receiver = std::thread([this, ep = ep.get()] { ReceiveLoop(ep); });
    }
    started_ = true;
    return Status::Ok();
  }

  void Send(int stage, int replica, PipeMessage message) override {
    const auto it = endpoints_.find(EndpointKey(stage, replica));
    PD_CHECK(it != endpoints_.end() && started_)
        << "send to unregistered endpoint (" << stage << ", " << replica << ")";
    Endpoint* ep = it->second.get();

    std::vector<uint8_t> wire;
    const std::vector<uint8_t> body = SerializeMessage(message);
    wire.reserve(body.size() + kFrameHeaderBytes + kFrameTrailerBytes);
    AppendFrame(body, &wire);

    std::lock_guard<std::mutex> lock(ep->send_mutex);
    if (ep->send_fd < 0) {
      return;  // shutdown raced a late sender; the message is dropped like a dead link's
    }
    size_t written = 0;
    while (written < wire.size()) {
      // MSG_NOSIGNAL: a receiver torn down mid-write must surface as EPIPE, not SIGPIPE.
      const ssize_t n = ::send(ep->send_fd, wire.data() + written, wire.size() - written,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        PD_LOG(WARNING) << "socket transport send failed: " << std::strerror(errno);
        return;
      }
      written += static_cast<size_t>(n);
    }
    ep->frames_sent.fetch_add(1, std::memory_order_release);
    obs::GetCounter("transport/messages_sent")->Increment();
    obs::GetCounter("transport/bytes_sent")->Add(static_cast<int64_t>(wire.size()));
  }

  void Drain() override {
    if (!started_) {
      return;
    }
    for (auto& [key, ep] : endpoints_) {
      int64_t target;
      {
        // The send mutex orders this snapshot after any in-progress write completes.
        std::lock_guard<std::mutex> lock(ep->send_mutex);
        target = ep->frames_sent.load(std::memory_order_acquire);
      }
      std::unique_lock<std::mutex> lock(drain_mutex_);
      drain_cv_.wait(lock, [&] {
        return ep->frames_done.load(std::memory_order_acquire) >= target;
      });
    }
  }

  void Shutdown() override {
    if (!started_ || stopped_) {
      stopped_ = true;
      return;
    }
    stopped_ = true;
    for (auto& [key, ep] : endpoints_) {
      std::lock_guard<std::mutex> lock(ep->send_mutex);
      if (ep->send_fd >= 0) {
        ::close(ep->send_fd);  // EOF: the receiver drains buffered frames, then exits
        ep->send_fd = -1;
      }
    }
    for (auto& [key, ep] : endpoints_) {
      if (ep->receiver.joinable()) {
        ep->receiver.join();
      }
      if (ep->recv_fd >= 0) {
        ::close(ep->recv_fd);
        ep->recv_fd = -1;
      }
    }
  }

  TransportKind kind() const override { return TransportKind::kUnixSocket; }

 private:
  struct Endpoint {
    Mailbox inbox;
    int send_fd = -1;
    int recv_fd = -1;
    std::mutex send_mutex;
    std::thread receiver;
    std::atomic<int64_t> frames_sent{0};
    std::atomic<int64_t> frames_done{0};  // delivered + CRC-rejected
  };

  void ReceiveLoop(Endpoint* ep) {
    FrameDecoder decoder;
    std::vector<uint8_t> chunk(64 * 1024);
    std::vector<std::vector<uint8_t>> bodies;
    int64_t seen_corrupt = 0;
    for (;;) {
      const ssize_t n = ::recv(ep->recv_fd, chunk.data(), chunk.size(), 0);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        PD_LOG(WARNING) << "socket transport recv failed: " << std::strerror(errno);
        break;
      }
      if (n == 0) {
        break;  // sender closed; every buffered frame has been consumed
      }
      bodies.clear();
      decoder.Append(chunk.data(), static_cast<size_t>(n), &bodies);
      int64_t done = 0;
      for (const std::vector<uint8_t>& body : bodies) {
        Result<PipeMessage> message = DeserializeMessage(body.data(), body.size());
        if (message.ok()) {
          ep->inbox.Deliver(std::move(*message));
        } else {
          // CRC-valid but unparseable — count like a corrupt frame so nothing is silent.
          PD_LOG(WARNING) << "rejecting undecodable frame: " << message.status().ToString();
          obs::GetCounter("transport/frames_rejected")->Increment();
        }
        ++done;
      }
      const int64_t corrupt = decoder.corrupt_frames();
      if (corrupt != seen_corrupt) {
        obs::GetCounter("transport/frames_rejected")->Add(corrupt - seen_corrupt);
        done += corrupt - seen_corrupt;
        seen_corrupt = corrupt;
      }
      if (done > 0) {
        ep->frames_done.fetch_add(done, std::memory_order_release);
        std::lock_guard<std::mutex> lock(drain_mutex_);
        drain_cv_.notify_all();
      }
    }
  }

  std::map<uint64_t, std::unique_ptr<Endpoint>> endpoints_;
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace

std::unique_ptr<MessageTransport> MakeTransport(std::optional<TransportKind> kind) {
  TransportKind resolved = TransportKind::kInProc;
  if (kind.has_value()) {
    resolved = *kind;
  } else if (const std::optional<TransportKind> env = TransportKindFromEnv()) {
    resolved = *env;
  }
  switch (resolved) {
    case TransportKind::kInProc:
      return std::make_unique<InProcTransport>();
    case TransportKind::kUnixSocket:
      return std::make_unique<SocketTransport>();
  }
  PD_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace pipedream
