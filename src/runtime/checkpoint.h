// Per-stage checkpointing (paper §4): each stage dumps its own parameters locally at epoch
// boundaries, with no global coordination; restart resumes from the newest epoch for which
// *every* stage has a checkpoint.
#ifndef SRC_RUNTIME_CHECKPOINT_H_
#define SRC_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/layer.h"

namespace pipedream {

// Serializes parameters (names, shapes, fp32 payloads) to a single binary file, appends a
// CRC32 + length footer, and fsyncs before returning — the file on disk is either complete
// and self-validating or detectably torn.
Status SaveParameters(const std::string& path, const std::vector<Parameter*>& params);

// Restores parameters saved by SaveParameters. Names and shapes must match exactly. Returns
// a descriptive Status (never crashes) on missing footers, CRC mismatches, truncation,
// shape/rank mismatches, and unknown parameter names.
Status LoadParameters(const std::string& path, const std::vector<Parameter*>& params);

// Verifies the footer (magic, declared length, CRC32 over the content) without parsing
// parameters. Cheap enough to gate recovery decisions on.
Status ValidateCheckpointFile(const std::string& path);

class CheckpointManager {
 public:
  explicit CheckpointManager(std::string directory);

  // Writes stage `stage`'s parameters for `epoch`. Atomic and durable per stage
  // (write + fsync + rename + directory fsync).
  Status SaveStage(int stage, int64_t epoch, const std::vector<Parameter*>& params);

  Status LoadStage(int stage, int64_t epoch, const std::vector<Parameter*>& params) const;

  // Newest epoch for which all `num_stages` stage files exist *and* pass footer validation;
  // -1 if none. Epochs with torn or corrupt files are skipped, not trusted.
  int64_t LatestCompleteEpoch(int num_stages, int64_t max_epoch) const;

  std::string StagePath(int stage, int64_t epoch) const;

 private:
  std::string directory_;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_CHECKPOINT_H_
