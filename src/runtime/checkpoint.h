// Per-stage checkpointing (paper §4): each stage dumps its own parameters locally at epoch
// boundaries, with no global coordination; restart resumes from the newest epoch for which
// *every* stage has a checkpoint.
#ifndef SRC_RUNTIME_CHECKPOINT_H_
#define SRC_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/layer.h"

namespace pipedream {

// Serializes parameters (names, shapes, fp32 payloads) to a single binary file.
Status SaveParameters(const std::string& path, const std::vector<Parameter*>& params);

// Restores parameters saved by SaveParameters. Names and shapes must match exactly.
Status LoadParameters(const std::string& path, const std::vector<Parameter*>& params);

class CheckpointManager {
 public:
  explicit CheckpointManager(std::string directory);

  // Writes stage `stage`'s parameters for `epoch`. Atomic per stage (write + rename).
  Status SaveStage(int stage, int64_t epoch, const std::vector<Parameter*>& params);

  Status LoadStage(int stage, int64_t epoch, const std::vector<Parameter*>& params) const;

  // Newest epoch for which all `num_stages` stage files exist; -1 if none.
  int64_t LatestCompleteEpoch(int num_stages, int64_t max_epoch) const;

  std::string StagePath(int stage, int64_t epoch) const;

 private:
  std::string directory_;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_CHECKPOINT_H_
