// Per-stage checkpointing (paper §4): each stage dumps its own parameters locally at epoch
// boundaries, with no global coordination; restart resumes from the newest epoch for which
// *every* stage has a checkpoint.
#ifndef SRC_RUNTIME_CHECKPOINT_H_
#define SRC_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/layer.h"
#include "src/planner/plan.h"

namespace pipedream {

// The plan a checkpoint epoch was written under, stamped alongside the stage files. Elastic
// re-planning changes the stage count and layer boundaries between save and restore, so a
// loader must not trust its *own* plan's stage indices: the manifest records how many stage
// files epoch E has and which layer range each covers, letting restore remap layers->stages.
// Serialized with the same CRC32+length footer as stage files (torn manifests are detected,
// never trusted).
struct PlanManifest {
  int64_t plan_generation = 0;               // monotonically bumped on every re-plan
  int num_layers = 0;                        // full model layer count (remap sanity check)
  std::vector<std::pair<int, int>> stage_layers;  // per stage: [begin_layer, end_layer)

  int num_stages() const { return static_cast<int>(stage_layers.size()); }

  static PlanManifest FromPlan(const PipelinePlan& plan, int num_layers,
                               int64_t plan_generation);
};

// Serializes parameters (names, shapes, fp32 payloads) to a single binary file, appends a
// CRC32 + length footer, and fsyncs before returning — the file on disk is either complete
// and self-validating or detectably torn.
Status SaveParameters(const std::string& path, const std::vector<Parameter*>& params);

// Restores parameters saved by SaveParameters. Names and shapes must match exactly. Returns
// a descriptive Status (never crashes) on missing footers, CRC mismatches, truncation,
// shape/rank mismatches, and unknown parameter names.
Status LoadParameters(const std::string& path, const std::vector<Parameter*>& params);

// Verifies the footer (magic, declared length, CRC32 over the content) without parsing
// parameters. Cheap enough to gate recovery decisions on.
Status ValidateCheckpointFile(const std::string& path);

class CheckpointManager {
 public:
  explicit CheckpointManager(std::string directory);

  // Writes stage `stage`'s parameters for `epoch`. Atomic and durable per stage
  // (write + fsync + rename + directory fsync).
  Status SaveStage(int stage, int64_t epoch, const std::vector<Parameter*>& params);

  Status LoadStage(int stage, int64_t epoch, const std::vector<Parameter*>& params) const;

  // Writes the plan manifest for `epoch` (atomic + durable, like SaveStage). Call after the
  // stage files so a validating manifest implies a restorable epoch.
  Status SaveManifest(int64_t epoch, const PlanManifest& manifest);

  // Loads and validates epoch `epoch`'s manifest. NotFound for pre-manifest (legacy)
  // epochs; InvalidArgument for torn or corrupt manifests.
  Status LoadManifest(int64_t epoch, PlanManifest* manifest) const;

  // Newest epoch whose stage files all exist *and* pass footer validation; -1 if none.
  // Epochs with torn or corrupt files are skipped, not trusted. When epoch E carries a
  // manifest, the stage count is taken from it — NOT from `num_stages` — so an epoch written
  // under a different plan (elastic re-plan shrinking 4 stages to 3) is still found instead
  // of being silently mismatched against the caller's current stage count. `num_stages` is
  // only the fallback for legacy manifest-less epochs.
  int64_t LatestCompleteEpoch(int num_stages, int64_t max_epoch) const;

  std::string StagePath(int stage, int64_t epoch) const;
  std::string ManifestPath(int64_t epoch) const;

 private:
  std::string directory_;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_CHECKPOINT_H_
