#include "src/runtime/pipeline_trainer.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <thread>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/checkpoint.h"
#include "src/tensor/ops.h"

namespace pipedream {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Flattens [B, T] sequence targets to the [B*T] layout per-token losses expect.
Tensor FlattenTargets(const Tensor& targets) {
  if (targets.rank() <= 1) {
    return targets;
  }
  return targets.Reshaped({targets.numel()});
}

int64_t Lcm(int64_t a, int64_t b) { return a / std::gcd(a, b) * b; }

// Times a scope into a registry histogram (seconds). Unlike ScopedSpan this is always on —
// the metrics registry is the runtime's permanent record, not an opt-in trace. When a
// straggler detector is attached the same duration also feeds its per-stage baseline.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(obs::Histogram* hist, obs::StragglerDetector* straggler = nullptr,
                           int stage = -1)
      : hist_(hist), straggler_(straggler), stage_(stage), t0_(obs::TraceClockNs()) {}
  ~ScopedHistTimer() {
    const double seconds = static_cast<double>(obs::TraceClockNs() - t0_) * 1e-9;
    hist_->Observe(seconds);
    if (straggler_ != nullptr) {
      straggler_->Observe(stage_, seconds);
    }
  }

  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  obs::Histogram* hist_;
  obs::StragglerDetector* straggler_;
  int stage_;
  int64_t t0_;
};

}  // namespace

// One stage replica: the runtime equivalent of a GPU worker.
struct PipelineTrainer::StageRuntime {
  // --- static configuration
  PipelineTrainer* trainer = nullptr;
  int stage = 0;
  int replica = 0;
  int stage_replicas = 1;  // the plan's replica count (fixed)
  bool is_input = false;
  bool is_output = false;
  std::unique_ptr<Sequential> model;
  std::vector<Parameter*> params;
  std::unique_ptr<Optimizer> optimizer;
  WeightMode weight_mode = WeightMode::kStashing;  // resolved per stage at construction
  bool recompute = false;  // activation recomputation, resolved per stage at construction
  std::unique_ptr<WeightStore> weights;
  std::unique_ptr<MinibatchLoader> loader;  // input stages only
  GradientAllReducer* reducer = nullptr;    // replicated stages only
  Mailbox* mailbox = nullptr;  // this worker's transport endpoint (owned by the transport)

  // --- round-robin rotation (rebalanced when a dead replica is ejected)
  int rr_rank = 0;  // position in the stage's active rotation
  int rr_size = 1;  // size of the stage's active rotation

  // --- liveness (worker thread writes, watchdog reads)
  std::atomic<int64_t> last_beat_ms{0};
  std::atomic<uint64_t> work_items{0};  // forwards+backwards completed this attempt
  std::atomic<bool> done{false};
  std::atomic<bool> dead{false};

  // --- per-epoch state (owned by the worker thread during an epoch)
  std::unique_ptr<SchedulingPolicy> policy;
  int64_t epoch_begin = 0;
  int64_t epoch_end = 0;
  int64_t next_admission = 0;
  int64_t next_forward = 0;   // next minibatch to consume from the forward queue
  int64_t next_backward = 0;  // next minibatch to consume from the backward queue
  int in_flight = 0;
  int admission_cap = 1;
  int64_t bwd_quota = 0;
  int64_t bwd_done = 0;
  int64_t fwd_started = 0;
  int gpipe_round_bwd = 0;
  std::map<int64_t, ModelContext> contexts;
  std::map<int64_t, Tensor> recompute_inputs;  // stage inputs kept for recomputation
  int accumulated = 0;  // backwards since the last optimizer step (gradient accumulation)

  // --- metrics
  double loss_sum = 0.0;
  int64_t loss_count = 0;
  int64_t peak_stash_bytes = 0;               // logical (full-clone-equivalent) stash bytes
  int64_t peak_materialized_stash_bytes = 0;  // COW-aware: bytes stashes actually own
  int64_t peak_activation_bytes = 0;

  // Registry metrics, resolved once per replica (name lookup off the hot path). Shared by
  // all replicas of a stage — every underlying cell is thread-safe.
  obs::Histogram* fwd_hist = nullptr;    // runtime/stage<N>/fwd_seconds
  obs::Histogram* bwd_hist = nullptr;    // runtime/stage<N>/bwd_seconds
  obs::Histogram* step_hist = nullptr;   // runtime/stage<N>/step_seconds
  obs::Gauge* depth_gauge = nullptr;     // runtime/stage<N>/mailbox_depth_hwm
  obs::Histogram* stall_frac = nullptr;  // runtime/stage<N>/stall_fraction (per epoch)
  obs::Gauge* alive_gauge = nullptr;     // runtime/stage<N>/alive (watchdog-maintained)
  obs::Gauge* beat_age_gauge = nullptr;  // runtime/stage<N>/beat_age_ms (worst replica)
  int64_t epoch_stall_ns = 0;            // time spent waiting for work this epoch attempt

  int64_t ActivationStashBytes() const {
    int64_t total = 0;
    for (const auto& [mb, ctx] : contexts) {
      total += ctx.SizeBytes();
    }
    for (const auto& [mb, input] : recompute_inputs) {
      total += input.SizeBytes();
    }
    return total;
  }

  void Beat() { last_beat_ms.store(NowMillis(), std::memory_order_release); }

  void ThrowIfEpochAborted() const {
    if (trainer->epoch_abort_.load(std::memory_order_acquire)) {
      throw EpochAbortedError{};
    }
  }

  void PrepareEpoch(int64_t begin, int64_t end, const PipelineTrainerOptions& options,
                    const PipelinePlan& plan);
  void RunEpoch();
  void DoForward(int64_t minibatch, PipeMessage message);
  void DoBackward(PipeMessage message);
  bool GPipeMode() const {
    // Round-gated admission, per-round gradient aggregation, and the flush barrier are
    // shared by the whole flush family; kInterleaved is per-chunk 1F1B and stays out.
    return IsFlushFamily(trainer->options_.schedule);
  }
  int GPipeRoundSize() const {
    return trainer->options_.schedule == ScheduleKind::kModelParallel
               ? 1
               : trainer->options_.gpipe_microbatches;
  }
};

PipelineTrainer::PipelineTrainer(const Sequential& model, const PipelinePlan& plan,
                                 const Loss* loss, const Optimizer& optimizer_prototype,
                                 const Dataset* dataset, int64_t batch_size, uint64_t seed,
                                 PipelineTrainerOptions options)
    : plan_(plan),
      loss_(loss),
      dataset_(dataset),
      batch_size_(batch_size),
      seed_(seed),
      options_(options),
      num_model_layers_(static_cast<int>(model.size())),
      optimizer_prototype_(optimizer_prototype.CloneFresh()) {
  plan_.Validate(num_model_layers_);
  PD_CHECK(loss != nullptr);
  PD_CHECK(dataset != nullptr);
  // Schedule-zoo env overrides first: the weight-mode retrofit below and every validation
  // check must see the schedule that will actually run.
  if (const std::optional<ScheduleKind> env_schedule = ScheduleKindFromEnv()) {
    options_.schedule = *env_schedule;
  }
  if (const std::optional<int> env_chunks = InterleaveChunksFromEnv()) {
    options_.interleave_chunks = *env_chunks;
  }
  recompute_override_ = RecomputeFromEnv();
  if (const std::optional<WeightMode> env_mode = WeightModeFromEnv()) {
    options_.weight_mode = env_mode;
    if (*env_mode == WeightMode::kDoubleBuffered &&
        (options_.schedule == ScheduleKind::kOneFOneB ||
         options_.schedule == ScheduleKind::kInterleaved)) {
      // The env override retrofits 2BW onto programs that never chose an accumulation
      // boundary; raise it to the deepest stage's admission depth (the 2BW m >= d
      // requirement) rather than aborting in the validation below. Programmatic callers
      // still get the strict check.
      for (int s = 0; s < plan_.num_stages(); ++s) {
        options_.accumulation_steps =
            std::max(options_.accumulation_steps, StartupDepth(plan_, s));
      }
    }
  }
  if (IsFlushFamily(options_.schedule)) {
    PD_CHECK(plan_.IsStraight() || plan_.num_stages() == 1)
        << "flush-family runtime requires an unreplicated pipeline";
    // Weights do not change between a round's forward and backward passes, so versioning is
    // unnecessary (this is exactly GPipe's correctness argument).
    options_.weight_mode = WeightMode::kNaive;
  } else if (options_.schedule == ScheduleKind::kInterleaved) {
    PD_CHECK_GE(options_.interleave_chunks, 1);
    PD_CHECK(plan_.IsStraight())
        << "interleaved virtual stages require an unreplicated straight pipeline";
    PD_CHECK_EQ(plan_.num_stages() % options_.interleave_chunks, 0)
        << "interleaved plan has " << plan_.num_stages() << " chunk-stages, not a multiple "
        << "of " << options_.interleave_chunks << " chunks per worker";
  }
  PD_CHECK_GE(options_.accumulation_steps, 1);
  for (int s = 0; s < plan_.num_stages(); ++s) {
    switch (StageWeightMode(s)) {
      case WeightMode::kVerticalSync:
        PD_CHECK(plan_.IsStraight() || plan_.num_stages() == 1)
            << "vertical sync is implemented for straight pipelines";
        break;
      case WeightMode::kDoubleBuffered:
        // Two buffers cover the in-flight minibatches only when at most one update commits
        // between any minibatch's forward and backward — i.e. the accumulation boundary is
        // at least this stage's 1F1B admission depth (the 2BW paper's m >= d requirement).
        PD_CHECK_GE(options_.accumulation_steps, StartupDepth(plan_, s))
            << "2BW at stage " << s << " needs accumulation_steps >= its in-flight depth "
            << StartupDepth(plan_, s);
        break;
      case WeightMode::kNaive:
      case WeightMode::kStashing:
        break;
    }
    if (StageRecompute(s) && !IsFlushFamily(options_.schedule)) {
      // Recomputation re-runs the forward under the stashed weights, which requires a
      // weight version that is pinned per minibatch. (Flush-family rounds never commit an
      // update between a minibatch's forward and backward, so kNaive is already safe.)
      PD_CHECK(StageWeightMode(s) != WeightMode::kNaive)
          << "activation recomputation under 1F1B-family schedules requires a versioned "
          << "weight mode at stage " << s;
    }
  }

  // Keep a pristine full copy for AssembleModel's structure and for recovery when no
  // checkpoint exists yet.
  template_model_ = model.Clone();

  // Resolve the stage-to-stage transport: env override, then the programmatic choice, then
  // in-proc mailboxes. Every worker inbox is an endpoint of this one transport, so no
  // runtime component ever routes around it.
  std::optional<TransportKind> transport_kind = TransportKindFromEnv();
  if (!transport_kind.has_value()) {
    transport_kind = options_.transport;
  }
  transport_ = MakeTransport(transport_kind.value_or(TransportKind::kInProc));

  const int num_stages = plan_.num_stages();
  stage_reducers_.resize(static_cast<size_t>(num_stages));
  by_stage_.resize(static_cast<size_t>(num_stages));
  if (IsFlushFamily(options_.schedule)) {
    flush_barrier_ = std::make_unique<FlushBarrier>(num_stages);
  }
  for (int s = 0; s < num_stages; ++s) {
    const StageAssignment& assignment = plan_.stage(s);
    if (assignment.replicas > 1) {
      stage_reducers_[static_cast<size_t>(s)] =
          std::make_unique<GradientAllReducer>(assignment.replicas);
    }
    for (int r = 0; r < assignment.replicas; ++r) {
      auto rt = std::make_unique<StageRuntime>();
      rt->trainer = this;
      rt->stage = s;
      rt->replica = r;
      rt->stage_replicas = assignment.replicas;
      rt->rr_rank = r;
      rt->rr_size = assignment.replicas;
      rt->is_input = s == 0;
      rt->is_output = s == num_stages - 1;
      rt->model = model.CloneSlice(static_cast<size_t>(assignment.begin_layer),
                                   static_cast<size_t>(assignment.end_layer));
      rt->params = rt->model->Params();
      rt->optimizer = optimizer_prototype.CloneFresh();
      rt->weight_mode = StageWeightMode(s);
      rt->recompute = StageRecompute(s);
      rt->weights = std::make_unique<WeightStore>(rt->params, rt->weight_mode);
      rt->reducer = stage_reducers_[static_cast<size_t>(s)].get();
      rt->mailbox = transport_->AddEndpoint(s, r);
      if (rt->is_input) {
        rt->loader = std::make_unique<MinibatchLoader>(dataset_, batch_size_, seed_);
      }
      rt->fwd_hist = obs::GetHistogram(StrFormat("runtime/stage%d/fwd_seconds", s));
      rt->bwd_hist = obs::GetHistogram(StrFormat("runtime/stage%d/bwd_seconds", s));
      rt->step_hist = obs::GetHistogram(StrFormat("runtime/stage%d/step_seconds", s));
      rt->depth_gauge = obs::GetGauge(StrFormat("runtime/stage%d/mailbox_depth_hwm", s));
      rt->stall_frac = obs::GetHistogram(StrFormat("runtime/stage%d/stall_fraction", s));
      rt->alive_gauge = obs::GetGauge(StrFormat("runtime/stage%d/alive", s));
      rt->beat_age_gauge = obs::GetGauge(StrFormat("runtime/stage%d/beat_age_ms", s));
      rt->alive_gauge->Set(1);  // every stage starts healthy; the watchdog takes over
      by_stage_[static_cast<size_t>(s)].push_back(rt.get());
      runtimes_.push_back(std::move(rt));
    }
  }
  active_by_stage_ = by_stage_;
  bubbles_ = std::make_unique<obs::BubbleAccountant>(num_stages);
  straggler_ = std::make_unique<obs::StragglerDetector>(num_stages);
  // Arm the live pipeline-health endpoint if PIPEDREAM_HEALTH_SOCK names a socket path.
  // Idempotent and process-wide: a re-planned trainer reuses the running server.
  health_ = obs::StartHealthServerFromEnv();
  const Status started = transport_->Start();
  PD_CHECK(started.ok()) << "transport start failed: " << started.ToString();

  // Position the trainer on the global epoch grid. A re-planned trainer picks up exactly
  // where its predecessor stopped: same minibatch stream, new plan. EpochLength() also
  // validates any epoch_length override against this plan's synchronization round.
  PD_CHECK_GE(options_.start_epoch, 0);
  const int64_t bpe = EpochLength();
  epochs_completed_ = options_.start_epoch;
  next_global_minibatch_ = options_.start_epoch * bpe;
}

PipelineTrainer::~PipelineTrainer() = default;

WeightMode PipelineTrainer::StageWeightMode(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  // The global override (set explicitly, by PIPEDREAM_WEIGHT_MODE, or by a flush-family
  // schedule forcing kNaive) wins; otherwise each stage runs the mode the planner assigned.
  return options_.weight_mode ? *options_.weight_mode : plan_.stage(stage).weight_mode;
}

bool PipelineTrainer::StageRecompute(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  if (recompute_override_.has_value()) {
    return *recompute_override_;  // PIPEDREAM_RECOMPUTE: a global on/off, plan flags and all
  }
  return options_.recompute_activations || plan_.stage(stage).recompute;
}

void PipelineTrainer::EnableRecovery(CheckpointManager* manager, RecoveryOptions options) {
  PD_CHECK_GE(options.heartbeat_timeout_ms, 1);
  PD_CHECK_GE(options.progress_timeout_ms, 1);
  PD_CHECK_GE(options.worker_tick_ms, 1);
  PD_CHECK_GE(options.watchdog_poll_ms, 1);
  PD_CHECK_GE(options.max_recoveries, 1);
  if (const char* env = std::getenv("PIPEDREAM_REJOIN_PROBATION")) {
    options.rejoin_probation_epochs = std::atoi(env);
  }
  PD_CHECK_GE(options.rejoin_probation_epochs, 0);
  manager_ = manager;
  recovery_ = options;
  recovery_enabled_ = true;
}

int64_t PipelineTrainer::batches_per_epoch() const {
  return ActiveRuntime(0)->loader->batches_per_epoch();
}

int PipelineTrainer::ActiveReplicas(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  return static_cast<int>(active_by_stage_[static_cast<size_t>(stage)].size());
}

PipelineTrainer::StageRuntime* PipelineTrainer::RuntimeFor(int stage,
                                                           int64_t minibatch) const {
  const auto& active = active_by_stage_[static_cast<size_t>(stage)];
  const int r = RoundRobinReplica(minibatch, static_cast<int>(active.size()));
  return active[static_cast<size_t>(r)];
}

PipelineTrainer::StageRuntime* PipelineTrainer::ActiveRuntime(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  const auto& active = active_by_stage_[static_cast<size_t>(stage)];
  PD_CHECK(!active.empty());
  return active[0];
}

void PipelineTrainer::StageRuntime::PrepareEpoch(int64_t begin, int64_t end,
                                                 const PipelineTrainerOptions& options,
                                                 const PipelinePlan& plan) {
  epoch_begin = begin;
  epoch_end = end;
  if (options.schedule == ScheduleKind::kOneFOneB) {
    admission_cap = StartupDepth(plan, stage);
    policy = std::make_unique<OneFOneBPolicy>(admission_cap);
  } else if (options.schedule == ScheduleKind::kInterleaved) {
    // The statically generated op list (RunWorkerInterleaved) is the schedule; the policy
    // object is never consulted. The list scheduler caps stage-0 admissions at num_stages.
    admission_cap = plan.num_stages();
    policy = std::make_unique<OneFOneBPolicy>(admission_cap);
  } else if (options.schedule == ScheduleKind::kPipeDreamFlush) {
    // 1F1B order within each round of m, then the same drain + aggregated update as GPipe.
    admission_cap = GPipeRoundSize();
    policy =
        std::make_unique<PipeDreamFlushPolicy>(StartupDepth(plan, stage), GPipeRoundSize());
  } else {
    admission_cap = GPipeRoundSize();
    policy = std::make_unique<GPipePolicy>(GPipeRoundSize());
  }
  // First minibatch in [begin, end) owned by this replica's rotation slot. `begin` is not
  // necessarily a multiple of rr_size (a degraded rotation is smaller than the plan's), so
  // align on the residue rather than assuming begin + rr_rank.
  const int64_t offset = ((rr_rank - begin) % rr_size + rr_size) % rr_size;
  const int64_t first = begin + offset;
  next_admission = first;
  next_forward = first;
  next_backward = first;
  in_flight = 0;
  gpipe_round_bwd = 0;
  bwd_done = 0;
  fwd_started = 0;
  bwd_quota = first < end ? (end - first + rr_size - 1) / rr_size : 0;
  contexts.clear();
  recompute_inputs.clear();
  accumulated = 0;
}

void PipelineTrainer::StageRuntime::RunEpoch() {
  const auto tick = std::chrono::milliseconds(trainer->recovery_.worker_tick_ms);
  Beat();
  while (bwd_done < bwd_quota) {
    ThrowIfEpochAborted();
    std::optional<WorkType> action;
    const auto ready = [&](int64_t min_fwd, int64_t min_bwd) {
      // A minibatch is ready only when it is the NEXT one in this replica's round-robin
      // share. Out-of-order arrivals (possible whenever a neighbouring stage is replicated)
      // are held back, so every replica consumes work in a schedule-determined order and the
      // training trajectory is independent of thread timing.
      int ready_fwd = min_fwd == next_forward ? 1 : 0;
      if (is_input) {
        bool admit = next_admission < epoch_end && in_flight < admission_cap;
        if (GPipeMode()) {
          // Admit only the current flush round's microbatches.
          const int64_t round = (next_admission - epoch_begin) / GPipeRoundSize();
          const int64_t done_rounds = bwd_done / GPipeRoundSize();
          admit = next_admission < epoch_end && round <= done_rounds;
        }
        ready_fwd = admit ? 1 : 0;
      }
      const int ready_bwd = min_bwd == next_backward ? 1 : 0;
      const bool exhausted = is_input ? next_admission >= epoch_end : fwd_started == bwd_quota;
      action = policy->Decide(ready_fwd, ready_bwd, exhausted);
      return action.has_value();
    };
    // Deadline-bounded wait: regain control every tick to heartbeat and observe aborts, so
    // a dead upstream can never wedge this worker forever.
    const int64_t wait_begin_ns = obs::TraceClockNs();
    while (!mailbox->WaitUntilFor(ready, tick)) {
      Beat();
      ThrowIfEpochAborted();
    }
    Beat();
    const int64_t waited_ns = obs::TraceClockNs() - wait_begin_ns;
    PD_CHECK(action.has_value());
    if (waited_ns > 10'000) {  // ignore sub-10µs predicate churn; count real starvation
      epoch_stall_ns += waited_ns;
      // Attribute the bubble by what finally unblocked us: waiting on a forward from a
      // neighbour means the *upstream* was late (starvation); waiting to be allowed to
      // admit, or for a gradient to come back, means the *downstream* side of the loop is
      // the bottleneck (backpressure). Weight-sync and recovery bubbles are attributed at
      // their own sites, not here.
      const obs::StallCause cause = (*action == WorkType::kForward && !is_input)
                                        ? obs::StallCause::kStarvedUpstream
                                        : obs::StallCause::kBackpressuredDownstream;
      obs::RecordSpan(obs::StallCauseSpanName(cause), wait_begin_ns, waited_ns, stage);
      trainer->bubbles_->Add(stage, cause, waited_ns);
    }

    // Consult the fault plan with the minibatch this action is about to process.
    if (FaultInjector* injector = trainer->injector_) {
      const int64_t pending = *action == WorkType::kForward
                                  ? (is_input ? next_admission : next_forward)
                                  : next_backward;
      const FaultInjector::WorkerAction fate =
          injector->OnWorkStart(stage, replica, pending, *action);
      if (fate.kill) {
        throw WorkerKilledError{fate.reason};
      }
      if (fate.stall_ms > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(fate.stall_ms));
        Beat();
      }
    }

    if (*action == WorkType::kForward) {
      PipeMessage message;
      int64_t minibatch;
      if (is_input) {
        minibatch = next_admission;
        next_admission += rr_size;
        ++in_flight;
        loader->BatchAt(minibatch, &message.payload, &message.targets);
        message.input_version = weights->version();
      } else {
        std::optional<PipeMessage> taken = mailbox->Take(WorkType::kForward);
        PD_CHECK(taken.has_value());
        PD_CHECK_EQ(taken->minibatch, next_forward);
        if (!VerifyChecksum(*taken)) {
          throw MessageCorruptionError{
              StrFormat("forward payload for minibatch %lld failed its checksum at stage %d",
                        static_cast<long long>(taken->minibatch), stage)};
        }
        minibatch = taken->minibatch;
        message = std::move(*taken);
        next_forward += rr_size;
      }
      policy->OnStarted(WorkType::kForward);
      ++fwd_started;
      DoForward(minibatch, std::move(message));
    } else {
      std::optional<PipeMessage> taken = mailbox->Take(WorkType::kBackward);
      PD_CHECK(taken.has_value());
      PD_CHECK_EQ(taken->minibatch, next_backward);
      if (!VerifyChecksum(*taken)) {
        throw MessageCorruptionError{
            StrFormat("backward payload for minibatch %lld failed its checksum at stage %d",
                      static_cast<long long>(taken->minibatch), stage)};
      }
      next_backward += rr_size;
      policy->OnStarted(WorkType::kBackward);
      DoBackward(std::move(*taken));
    }
    work_items.fetch_add(1, std::memory_order_release);
    Beat();
  }
  Beat();
}

void PipelineTrainer::StageRuntime::DoForward(int64_t minibatch, PipeMessage message) {
  ScopedHistTimer fwd_timer(fwd_hist, trainer->straggler_.get(), stage);
  PD_TRACE_SPAN("fwd", stage, minibatch);
  // Causal flow: one "mb" chain per minibatch, started at the input stage's forward and
  // threaded through every later hop. Recorded inside the fwd span so Perfetto binds the
  // arrow to the enclosing slice.
  const int64_t flow = message.trace_id >= 0 ? message.trace_id : minibatch;
  if (is_input) {
    obs::RecordFlowStart("mb", flow, stage, minibatch);
  } else {
    obs::RecordFlowStep("mb", flow, stage, minibatch);
  }
  weights->BeginForward(minibatch, message.input_version);
  Tensor out;
  if (recompute) {
    // Keep only the stage input; the full context is rebuilt at backward time under the
    // same (stashed) weights.
    ModelContext scratch;
    out = model->Forward(message.payload, &scratch, /*training=*/true);
    recompute_inputs[minibatch] = message.payload;
  } else {
    ModelContext& ctx = contexts[minibatch];
    out = model->Forward(message.payload, &ctx, /*training=*/true);
  }
  weights->EndForward(minibatch);
  peak_stash_bytes = std::max(peak_stash_bytes, weights->StashBytes());
  peak_materialized_stash_bytes =
      std::max(peak_materialized_stash_bytes, weights->MaterializedStashBytes());
  peak_activation_bytes = std::max(peak_activation_bytes, ActivationStashBytes());

  if (is_output) {
    // Compute the loss locally; the backward pass becomes ready immediately.
    Tensor grad;
    const double loss_value =
        trainer->loss_->Compute(out, FlattenTargets(message.targets), &grad);
    loss_sum += loss_value;
    ++loss_count;
    PipeMessage backward;
    backward.minibatch = minibatch;
    backward.type = WorkType::kBackward;
    backward.payload = std::move(grad);
    backward.trace_id = flow;
    trainer->Send(this, stage, std::move(backward));
  } else {
    PipeMessage forward;
    forward.minibatch = minibatch;
    forward.type = WorkType::kForward;
    forward.payload = std::move(out);
    forward.targets = std::move(message.targets);
    forward.input_version = message.input_version;
    forward.trace_id = flow;
    trainer->Send(this, stage + 1, std::move(forward));
  }
}

void PipelineTrainer::StageRuntime::DoBackward(PipeMessage message) {
  const int64_t minibatch = message.minibatch;
  ScopedHistTimer bwd_timer(bwd_hist, trainer->straggler_.get(), stage);
  PD_TRACE_SPAN("bwd", stage, minibatch);
  // The causal chain ends where the gradient comes home: stage 0's backward.
  const int64_t flow = message.trace_id >= 0 ? message.trace_id : minibatch;
  if (stage == 0) {
    obs::RecordFlowEnd("mb", flow, stage, minibatch);
  } else {
    obs::RecordFlowStep("mb", flow, stage, minibatch);
  }

  weights->BeginBackward(minibatch);
  ModelContext recomputed;
  ModelContext* ctx;
  if (recompute) {
    const auto input_it = recompute_inputs.find(minibatch);
    PD_CHECK(input_it != recompute_inputs.end())
        << "backward for minibatch " << minibatch << " without a stashed input";
    // Rebuild the activation stash with the stashed weights already swapped in — the
    // recomputed forward is bit-identical to the original for deterministic layers.
    model->Forward(input_it->second, &recomputed, /*training=*/true);
    peak_activation_bytes =
        std::max(peak_activation_bytes, ActivationStashBytes() + recomputed.SizeBytes());
    recompute_inputs.erase(input_it);
    ctx = &recomputed;
  } else {
    const auto ctx_it = contexts.find(minibatch);
    PD_CHECK(ctx_it != contexts.end())
        << "backward for minibatch " << minibatch << " without a stashed forward context";
    ctx = &ctx_it->second;
  }
  const bool gpipe = GPipeMode();
  const int accumulation = trainer->options_.accumulation_steps;
  if (!gpipe) {
    if (accumulated == 0) {
      model->ZeroGrads();
    }
  } else if (gpipe_round_bwd == 0) {
    model->ZeroGrads();  // gradients aggregate across the round's microbatches
  }
  Tensor grad_in = model->Backward(message.payload, ctx);
  contexts.erase(minibatch);
  weights->EndBackward(minibatch);

  if (!gpipe) {
    if (++accumulated >= accumulation) {
      if (accumulation > 1) {
        const float inv = 1.0f / static_cast<float>(accumulation);
        for (Parameter* p : params) {
          Scale(&p->grad, inv);
        }
      }
      if (reducer != nullptr) {
        int slot;
        int participants;
        if (accumulation > 1) {
          // Update rounds are aligned across replicas (one step per `accumulation` of each
          // replica's own minibatches), so every active replica participates.
          slot = rr_rank;
          participants = rr_size;
        } else {
          // Per-minibatch rounds cover rr_size consecutive minibatches. A degraded rotation
          // may leave a short tail round whose membership is smaller; derive both the round
          // size and this replica's slot from the minibatch id so all participants agree.
          const int64_t group_begin = minibatch - (minibatch - epoch_begin) % rr_size;
          participants =
              static_cast<int>(std::min<int64_t>(rr_size, epoch_end - group_begin));
          slot = static_cast<int>(minibatch - group_begin);
        }
        // A long wait inside the collective is a bubble like any other, but with a
        // distinct cause: replicas pacing each other for weight synchronization.
        const int64_t sync_begin_ns = obs::TraceClockNs();
        if (!reducer->AllReduce(slot, params, participants)) {
          throw EpochAbortedError{};
        }
        const int64_t sync_ns = obs::TraceClockNs() - sync_begin_ns;
        if (sync_ns > 10'000) {
          obs::RecordSpan(obs::StallCauseSpanName(obs::StallCause::kWeightSync),
                          sync_begin_ns, sync_ns, stage);
          trainer->bubbles_->Add(stage, obs::StallCause::kWeightSync, sync_ns);
        }
      }
      {
        ScopedHistTimer step_timer(step_hist);
        PD_TRACE_SPAN("step", stage, minibatch);
        weights->BeginUpdate();  // 2BW: park the pre-update weights in the shadow buffer
        optimizer->Step(params);
        weights->CommitUpdate();
      }
      peak_stash_bytes = std::max(peak_stash_bytes, weights->StashBytes());
      peak_materialized_stash_bytes =
          std::max(peak_materialized_stash_bytes, weights->MaterializedStashBytes());
      accumulated = 0;
    }
  } else {
    ++gpipe_round_bwd;
    const int64_t remaining = epoch_end - (minibatch - minibatch % GPipeRoundSize());
    const int round_size = static_cast<int>(std::min<int64_t>(GPipeRoundSize(), remaining));
    if (gpipe_round_bwd == round_size) {
      // End of round: apply the aggregated update, then wait at the pipeline flush.
      const float inv = 1.0f / static_cast<float>(round_size);
      for (Parameter* p : params) {
        Scale(&p->grad, inv);
      }
      {
        ScopedHistTimer step_timer(step_hist);
        PD_TRACE_SPAN("step", stage, minibatch);
        weights->BeginUpdate();  // no-op: GPipe-family schedules force kNaive
        optimizer->Step(params);
        weights->CommitUpdate();
      }
      peak_materialized_stash_bytes =
          std::max(peak_materialized_stash_bytes, weights->MaterializedStashBytes());
      gpipe_round_bwd = 0;
      ++bwd_done;  // count before blocking so quotas stay consistent
      if (stage > 0) {
        PipeMessage backward;
        backward.minibatch = minibatch;
        backward.type = WorkType::kBackward;
        backward.payload = std::move(grad_in);
        backward.trace_id = flow;
        trainer->Send(this, stage - 1, std::move(backward));
      } else {
        --in_flight;
      }
      if (!trainer->flush_barrier_->Arrive()) {
        throw EpochAbortedError{};
      }
      static_cast<RoundPolicy*>(policy.get())->OnFlushComplete();
      mailbox->Poke();
      return;
    }
  }

  ++bwd_done;
  if (stage > 0) {
    PipeMessage backward;
    backward.minibatch = minibatch;
    backward.type = WorkType::kBackward;
    backward.payload = std::move(grad_in);
    backward.trace_id = flow;
    trainer->Send(this, stage - 1, std::move(backward));
  } else {
    --in_flight;
  }
}

void PipelineTrainer::RunWorkerInterleaved(const std::vector<StageRuntime*>& owned,
                                           const std::vector<ChunkOp>& ops,
                                           StageRuntime** current) {
  const int physical_workers = plan_.num_stages() / options_.interleave_chunks;
  const auto tick = std::chrono::milliseconds(recovery_.worker_tick_ms);
  // The watchdog tracks heartbeats per chunk runtime; a worker waiting on one chunk must
  // not let its other chunks look dead.
  const auto beat_all = [&owned] {
    for (StageRuntime* rt : owned) {
      rt->Beat();
    }
  };
  beat_all();
  for (const ChunkOp& op : ops) {
    // Executing the generated list strictly in order is what makes interleaving both
    // deadlock-free (the list is a feasible execution) and bitwise-deterministic (each op
    // consumes exactly one schedule-determined message, regardless of thread timing).
    StageRuntime* rt = owned[static_cast<size_t>(op.stage / physical_workers)];
    *current = rt;
    rt->ThrowIfEpochAborted();
    const bool is_fwd = op.type == WorkType::kForward;
    const int64_t wait_begin_ns = obs::TraceClockNs();
    if (!(is_fwd && rt->is_input)) {
      const auto ready = [&](int64_t min_fwd, int64_t min_bwd) {
        return is_fwd ? min_fwd == rt->next_forward : min_bwd == rt->next_backward;
      };
      while (!rt->mailbox->WaitUntilFor(ready, tick)) {
        beat_all();
        rt->ThrowIfEpochAborted();
      }
    }
    beat_all();
    const int64_t waited_ns = obs::TraceClockNs() - wait_begin_ns;
    if (waited_ns > 10'000) {
      rt->epoch_stall_ns += waited_ns;
      const obs::StallCause cause = (is_fwd && !rt->is_input)
                                        ? obs::StallCause::kStarvedUpstream
                                        : obs::StallCause::kBackpressuredDownstream;
      obs::RecordSpan(obs::StallCauseSpanName(cause), wait_begin_ns, waited_ns, rt->stage);
      bubbles_->Add(rt->stage, cause, waited_ns);
    }
    if (injector_ != nullptr) {
      const int64_t pending = is_fwd ? (rt->is_input ? rt->next_admission : rt->next_forward)
                                     : rt->next_backward;
      const FaultInjector::WorkerAction fate =
          injector_->OnWorkStart(rt->stage, rt->replica, pending, op.type);
      if (fate.kill) {
        throw WorkerKilledError{fate.reason};
      }
      if (fate.stall_ms > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(fate.stall_ms));
        beat_all();
      }
    }
    if (is_fwd) {
      PipeMessage message;
      int64_t minibatch;
      if (rt->is_input) {
        minibatch = rt->next_admission;
        rt->next_admission += 1;  // interleaved plans are unreplicated: rr_size == 1
        ++rt->in_flight;
        rt->loader->BatchAt(minibatch, &message.payload, &message.targets);
        message.input_version = rt->weights->version();
      } else {
        std::optional<PipeMessage> taken = rt->mailbox->Take(WorkType::kForward);
        PD_CHECK(taken.has_value());
        PD_CHECK_EQ(taken->minibatch, rt->next_forward);
        if (!VerifyChecksum(*taken)) {
          throw MessageCorruptionError{StrFormat(
              "forward payload for minibatch %lld failed its checksum at stage %d",
              static_cast<long long>(taken->minibatch), rt->stage)};
        }
        minibatch = taken->minibatch;
        message = std::move(*taken);
        rt->next_forward += 1;
      }
      ++rt->fwd_started;
      rt->DoForward(minibatch, std::move(message));
    } else {
      std::optional<PipeMessage> taken = rt->mailbox->Take(WorkType::kBackward);
      PD_CHECK(taken.has_value());
      PD_CHECK_EQ(taken->minibatch, rt->next_backward);
      if (!VerifyChecksum(*taken)) {
        throw MessageCorruptionError{StrFormat(
            "backward payload for minibatch %lld failed its checksum at stage %d",
            static_cast<long long>(taken->minibatch), rt->stage)};
      }
      rt->next_backward += 1;
      rt->DoBackward(std::move(*taken));
    }
    rt->work_items.fetch_add(1, std::memory_order_release);
    beat_all();
  }
  for (StageRuntime* rt : owned) {
    PD_CHECK_EQ(rt->bwd_done, rt->bwd_quota)
        << "interleaved worker finished its op list with stage " << rt->stage << " short";
  }
}

void PipelineTrainer::Send(StageRuntime* from, int dest_stage, PipeMessage message) {
  if (message.trace_id < 0) {
    // Training messages are keyed by minibatch; any hop that forgot to thread the id
    // through still joins the right causal chain.
    message.trace_id = message.minibatch;
  }
  StampChecksum(&message);
  if (injector_ != nullptr) {
    const FaultInjector::MessageAction fate =
        injector_->OnSend(from->stage, from->replica, message.minibatch, message.type);
    if (fate.drop) {
      PD_LOG(WARNING) << fate.reason;
      return;
    }
    if (fate.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(fate.delay_ms));
      from->Beat();
    }
    if (fate.corrupt) {
      // After StampChecksum, so the receiver's verification catches it.
      CorruptBytes(message.payload.data(),
                   static_cast<size_t>(message.payload.SizeBytes()));
    }
  }
  // Route by the active rotation (a degraded stage re-maps minibatches to survivors), but
  // address the transport endpoint by the destination's fixed plan coordinates.
  StageRuntime* dest = RuntimeFor(dest_stage, message.minibatch);
  transport_->Send(dest->stage, dest->replica, std::move(message));
}

void PipelineTrainer::NoteFailure(StageRuntime* rt, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(failure_mutex_);
    FailureRecord record;
    record.epoch = epochs_completed_;
    if (rt != nullptr) {
      record.stage = rt->stage;
      record.replica = rt->replica;
    }
    record.reason = reason;
    record.worker_dead = rt != nullptr && rt->dead.load(std::memory_order_acquire);
    last_failure_epoch_ = epochs_completed_;  // any failure restarts rejoin probation
    failures_.push_back(std::move(record));
  }
  PD_LOG(WARNING) << "failure detected: " << reason;
  obs::GetCounter("runtime/failures")->Increment();
  PD_TRACE_INSTANT("failure");
  // Start the recovery-latency clock at the FIRST failure of a burst (coincident failures
  // are resolved by one recovery pass, whose latency is what the operator feels).
  int64_t expected = 0;
  failure_noted_ns_.compare_exchange_strong(expected, obs::TraceClockNs());
  epoch_abort_.store(true, std::memory_order_release);
  // Wake every blocked worker: mailbox waiters re-check the abort flag, collective waiters
  // observe the abort and unwind.
  for (auto& runtime : runtimes_) {
    runtime->mailbox->Poke();
  }
  for (auto& reducer : stage_reducers_) {
    if (reducer != nullptr) {
      reducer->Abort();
    }
  }
  if (flush_barrier_ != nullptr) {
    flush_barrier_->Abort();
  }
}

int64_t PipelineTrainer::EpochLength() const {
  // Replicated stages synchronize gradients in rounds of `replicas` minibatches, and GPipe
  // flushes in rounds of `microbatches`; an epoch must be a whole number of every such round
  // or the last collective would wait forever. Truncate to the least common multiple (the
  // dropped tail batches are few and deterministic). Always computed from the PLAN's replica
  // counts — not the possibly-degraded active rotation — so epoch boundaries stay aligned
  // across recoveries.
  int64_t round = 1;
  for (const StageAssignment& stage : plan_.stages()) {
    round = Lcm(round, stage.replicas);
  }
  if (options_.schedule == ScheduleKind::kGPipe ||
      options_.schedule == ScheduleKind::kPipeDreamFlush) {
    round = Lcm(round, options_.gpipe_microbatches);
  }
  if ((options_.schedule == ScheduleKind::kOneFOneB ||
       options_.schedule == ScheduleKind::kInterleaved) &&
      options_.accumulation_steps > 1) {
    // Update boundaries must also land on epoch boundaries: a tail shorter than one
    // accumulation round would silently drop its gradients, and 2BW recovery relies on the
    // accumulator being empty (and the shadow buffer dead) at every epoch boundary.
    round = Lcm(round, options_.accumulation_steps);
  }
  if (options_.epoch_length > 0) {
    // The elastic layer pins one epoch length across plan generations so checkpoints from
    // different plans land on the same global minibatch grid. It still has to be a whole
    // number of THIS plan's synchronization rounds.
    PD_CHECK_EQ(options_.epoch_length % round, 0)
        << "epoch_length " << options_.epoch_length
        << " is not a multiple of the plan's synchronization round " << round;
    PD_CHECK_GE(options_.epoch_length, plan_.Noam()) << "epoch shorter than the pipeline depth";
    return options_.epoch_length;
  }
  const int64_t bpe = batches_per_epoch() / round * round;
  PD_CHECK_GT(bpe, 0) << "dataset too small for one synchronization round per epoch";
  PD_CHECK_GE(bpe, plan_.Noam()) << "epoch shorter than the pipeline depth";
  return bpe;
}

bool PipelineTrainer::RunRange(int64_t begin, int64_t end, EpochStats* stats) {
  epoch_abort_.store(false, std::memory_order_release);
  std::vector<StageRuntime*> active;
  for (const auto& stage_active : active_by_stage_) {
    active.insert(active.end(), stage_active.begin(), stage_active.end());
  }
  const int64_t now_ms = NowMillis();
  // Settle the transport before clearing inboxes: a frame still crossing a socket when the
  // previous attempt aborted must land (and be discarded) now, not mid-replay.
  transport_->Drain();
  for (StageRuntime* rt : active) {
    // Messages in flight when a previous attempt aborted must not leak into this one.
    rt->mailbox->Clear();
    rt->PrepareEpoch(begin, end, options_, plan_);
    rt->loss_sum = 0.0;
    rt->loss_count = 0;
    rt->epoch_stall_ns = 0;
    rt->done.store(false, std::memory_order_relaxed);
    rt->dead.store(false, std::memory_order_relaxed);
    rt->work_items.store(0, std::memory_order_relaxed);
    rt->last_beat_ms.store(now_ms, std::memory_order_relaxed);
  }
  for (auto& reducer : stage_reducers_) {
    if (reducer != nullptr) {
      reducer->Reset();
    }
  }
  if (flush_barrier_ != nullptr) {
    flush_barrier_->Reset();
  }

  const double start = NowSeconds();
  const bool interleaved = options_.schedule == ScheduleKind::kInterleaved;
  const int physical_workers =
      interleaved ? plan_.num_stages() / options_.interleave_chunks : 0;
  // Every stage replica runs kernels concurrently (one thread per PHYSICAL worker under
  // kInterleaved, which serializes its chunks); split the shared pool's parallelism between
  // them so intra-op threading never oversubscribes the machine.
  const int kernel_budget = KernelBudgetForWorkers(
      interleaved ? physical_workers : static_cast<int>(active.size()));
  std::vector<std::thread> threads;
  if (interleaved) {
    const std::vector<std::vector<ChunkOp>> ops = BuildInterleavedSchedule(
        plan_.num_stages(), options_.interleave_chunks, end - begin);
    threads.reserve(static_cast<size_t>(physical_workers));
    for (int w = 0; w < physical_workers; ++w) {
      std::vector<StageRuntime*> owned;
      for (int s = w; s < plan_.num_stages(); s += physical_workers) {
        owned.push_back(ActiveRuntime(s));
      }
      std::vector<ChunkOp> worker_ops = ops[static_cast<size_t>(w)];
      threads.emplace_back([this, w, owned = std::move(owned),
                            worker_ops = std::move(worker_ops), kernel_budget] {
        ScopedKernelBudget budget(kernel_budget);
        obs::SetThreadLabel(StrFormat("w%d", w));
        StageRuntime* current = owned.front();
        const auto finish_all = [&owned] {
          for (StageRuntime* rt : owned) {
            rt->done.store(true, std::memory_order_release);
          }
        };
        try {
          RunWorkerInterleaved(owned, worker_ops, &current);
          finish_all();
        } catch (const WorkerKilledError& killed) {
          current->dead.store(true, std::memory_order_release);
          NoteFailure(current, killed.reason);
        } catch (const MessageCorruptionError& corrupt) {
          finish_all();
          NoteFailure(current, corrupt.reason);
        } catch (const EpochAbortedError&) {
          finish_all();
        }
      });
    }
  } else {
    threads.reserve(active.size());
    for (StageRuntime* rt : active) {
      threads.emplace_back([this, rt, kernel_budget] {
        ScopedKernelBudget budget(kernel_budget);
        obs::SetThreadLabel(StrFormat("s%d/r%d", rt->stage, rt->replica));
        try {
          rt->RunEpoch();
          rt->done.store(true, std::memory_order_release);
        } catch (const WorkerKilledError& killed) {
          rt->dead.store(true, std::memory_order_release);
          NoteFailure(rt, killed.reason);
        } catch (const MessageCorruptionError& corrupt) {
          // The receiver of a corrupt payload is healthy; the minibatch it rejected is what
          // needs replaying.
          rt->done.store(true, std::memory_order_release);
          NoteFailure(rt, corrupt.reason);
        } catch (const EpochAbortedError&) {
          rt->done.store(true, std::memory_order_release);
        }
      });
    }
  }

  // The watchdog classifies two failure shapes the workers cannot self-report: a worker
  // gone silent (crashed/stalled — per-worker heartbeat staleness) and a wedged pipeline
  // (a lost message starves everyone while every worker still heartbeats — global progress
  // staleness). It also maintains the per-stage alive/beat_age_ms gauges that /healthz
  // reads, so it runs (in observe-only mode) whenever the health endpoint is armed even if
  // recovery is not.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  const bool enforce = recovery_enabled_ || injector_ != nullptr;
  if (enforce || health_ != nullptr) {
    watchdog = std::thread([this, &active, &watchdog_stop, enforce] {
      obs::SetThreadLabel("watchdog");
      int64_t last_progress = -1;
      int64_t last_progress_ms = NowMillis();
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(recovery_.watchdog_poll_ms));
        if (watchdog_stop.load(std::memory_order_acquire) ||
            epoch_abort_.load(std::memory_order_acquire)) {
          return;
        }
        bool all_done = true;
        int64_t progress = 0;
        const int64_t now = NowMillis();
        // Worst replica per stage: a stage is alive only if every active replica is, and
        // its published beat age is the stalest replica's.
        std::vector<int64_t> stage_beat_age(active_by_stage_.size(), 0);
        std::vector<bool> stage_alive(active_by_stage_.size(), true);
        for (StageRuntime* rt : active) {
          const size_t s = static_cast<size_t>(rt->stage);
          const bool rt_done = rt->done.load(std::memory_order_acquire);
          const int64_t age =
              rt_done ? 0 : now - rt->last_beat_ms.load(std::memory_order_acquire);
          stage_beat_age[s] = std::max(stage_beat_age[s], age);
          if (rt->dead.load(std::memory_order_acquire)) {
            stage_alive[s] = false;
          }
          progress += static_cast<int64_t>(rt->work_items.load(std::memory_order_acquire));
          if (rt_done) {
            continue;
          }
          all_done = false;
          if (enforce && age > recovery_.heartbeat_timeout_ms) {
            rt->dead.store(true, std::memory_order_release);
            rt->alive_gauge->Set(0);
            rt->beat_age_gauge->Set(age);
            NoteFailure(rt, StrFormat("heartbeat timeout: stage %d replica %d silent for "
                                      "over %d ms",
                                      rt->stage, rt->replica, recovery_.heartbeat_timeout_ms));
            return;
          }
        }
        for (size_t s = 0; s < active_by_stage_.size(); ++s) {
          StageRuntime* any = active_by_stage_[s].empty() ? nullptr : active_by_stage_[s][0];
          if (any != nullptr) {
            any->alive_gauge->Set(stage_alive[s] ? 1 : 0);
            any->beat_age_gauge->Set(stage_beat_age[s]);
          }
        }
        if (all_done) {
          return;
        }
        if (!enforce) {
          continue;  // observe-only: gauges refreshed, no failure classification
        }
        if (progress != last_progress) {
          last_progress = progress;
          last_progress_ms = now;
        } else if (now - last_progress_ms > recovery_.progress_timeout_ms) {
          NoteFailure(nullptr, StrFormat("pipeline wedged: no minibatch completed anywhere "
                                         "for over %d ms (lost message or deadlock)",
                                         recovery_.progress_timeout_ms));
          return;
        }
      }
    });
  }

  for (std::thread& t : threads) {
    t.join();
  }
  watchdog_stop.store(true, std::memory_order_release);
  if (watchdog.joinable()) {
    watchdog.join();
  }
  // Failed attempts still count toward the epoch's wall time (recovery is not free).
  const double attempt_seconds = NowSeconds() - start;
  stats->wall_seconds += attempt_seconds;
  for (StageRuntime* rt : active) {
    rt->depth_gauge->SetMax(rt->mailbox->DepthHighWater());
    if (attempt_seconds > 0) {
      rt->stall_frac->Observe(static_cast<double>(rt->epoch_stall_ns) * 1e-9 /
                              attempt_seconds);
    }
  }
  // Close the attempt's bubble-attribution window: per-stage per-cause fractions become
  // visible to /metrics as runtime/stage<N>/bubble_frac/<cause>.
  for (int s = 0; s < plan_.num_stages(); ++s) {
    bubbles_->FinishWindow(s, attempt_seconds);
  }
  if (epoch_abort_.load(std::memory_order_acquire)) {
    return false;
  }

  stats->mean_loss = 0.0;
  stats->minibatches = 0;
  for (StageRuntime* rt : active_by_stage_.back()) {
    stats->mean_loss += rt->loss_sum;
    stats->minibatches += rt->loss_count;
  }
  if (stats->minibatches > 0) {
    stats->mean_loss /= static_cast<double>(stats->minibatches);
  }
  return true;
}

void PipelineTrainer::RestoreInitialWeights() {
  const std::vector<Parameter*> full = template_model_->Params();
  size_t cursor = 0;
  for (const auto& stage_rts : by_stage_) {
    const size_t stage_params = stage_rts[0]->params.size();
    for (StageRuntime* rt : stage_rts) {
      PD_CHECK_EQ(rt->params.size(), stage_params);
      for (size_t i = 0; i < stage_params; ++i) {
        PD_CHECK_LT(cursor + i, full.size());
        rt->params[i]->value = full[cursor + i]->value;
      }
    }
    cursor += stage_params;
  }
  PD_CHECK_EQ(cursor, full.size());
}

int64_t PipelineTrainer::HandleFailureAndRestore() {
  PD_TRACE_SPAN("recover");
  obs::GetCounter("runtime/recoveries")->Increment();
  // Decide each dead replica's fate: eject it from a replicated stage (degraded mode) when
  // allowed, otherwise revive it for a respawn on the next attempt.
  std::vector<StageRuntime*> dead;
  for (const auto& stage_active : active_by_stage_) {
    for (StageRuntime* rt : stage_active) {
      if (rt->dead.load(std::memory_order_acquire)) {
        dead.push_back(rt);
      }
    }
  }
  std::vector<std::pair<int, int>> ejected;
  for (StageRuntime* rt : dead) {
    auto& stage_active = active_by_stage_[static_cast<size_t>(rt->stage)];
    const bool can_eject = recovery_.allow_degraded && stage_active.size() > 1 &&
                           options_.schedule == ScheduleKind::kOneFOneB &&
                           options_.accumulation_steps == 1;
    if (can_eject) {
      stage_active.erase(std::find(stage_active.begin(), stage_active.end(), rt));
      ejected.emplace_back(rt->stage, rt->replica);
      ejected_replicas_.push_back({rt, epochs_completed_});
      PD_LOG(WARNING) << "ejecting stage " << rt->stage << " replica " << rt->replica
                      << " (degraded mode: " << stage_active.size() << " survivors)";
    } else {
      rt->dead.store(false, std::memory_order_release);
      PD_LOG(WARNING) << "respawning stage " << rt->stage << " replica " << rt->replica;
    }
  }

  // Re-balance every stage's round-robin rotation and rebuild its all-reduce ring over the
  // survivors.
  for (size_t s = 0; s < active_by_stage_.size(); ++s) {
    auto& stage_active = active_by_stage_[s];
    PD_CHECK(!stage_active.empty());
    stage_reducers_[s] =
        stage_active.size() > 1
            ? std::make_unique<GradientAllReducer>(static_cast<int>(stage_active.size()))
            : nullptr;
    for (size_t r = 0; r < stage_active.size(); ++r) {
      stage_active[r]->rr_rank = static_cast<int>(r);
      stage_active[r]->rr_size = static_cast<int>(stage_active.size());
      stage_active[r]->reducer = stage_reducers_[s].get();
    }
  }

  // Restore parameters everywhere from the newest complete checkpoint epoch (or the initial
  // weights when none survives validation).
  int64_t resume = -1;
  if (manager_ != nullptr) {
    resume = manager_->LatestCompleteEpoch(plan_.num_stages(), epochs_completed_);
  }
  if (resume >= 0) {
    const Status restored = LoadCheckpoint(*manager_, resume);
    PD_CHECK(restored.ok()) << "recovery failed to load checkpoint epoch " << resume << ": "
                            << restored.ToString();
  } else {
    RestoreInitialWeights();
  }
  // Checkpoints hold parameters only: weight-version stashes and optimizer state restart
  // fresh (bitwise replay therefore needs a stateless optimizer; see DESIGN.md).
  for (auto& rt : runtimes_) {
    rt->weights = std::make_unique<WeightStore>(rt->params, rt->weight_mode);
    rt->optimizer = optimizer_prototype_->CloneFresh();
  }

  {
    std::lock_guard<std::mutex> lock(failure_mutex_);
    for (size_t i = resolved_failures_; i < failures_.size(); ++i) {
      failures_[i].resumed_epoch = resume;
      for (const auto& [stage, replica] : ejected) {
        if (failures_[i].stage == stage && failures_[i].replica == replica) {
          failures_[i].degraded = true;
        }
      }
    }
    resolved_failures_ = failures_.size();
  }
  const int64_t noted_ns = failure_noted_ns_.exchange(0);
  if (noted_ns != 0) {
    const int64_t recovery_ns = obs::TraceClockNs() - noted_ns;
    obs::GetHistogram("runtime/recovery_seconds")
        ->Observe(static_cast<double>(recovery_ns) * 1e-9);
    // Recovery idles the whole pipeline at once, so every stage eats the bubble.
    bubbles_->AddAll(obs::StallCause::kRecovery, recovery_ns);
  }
  return resume;
}

void PipelineTrainer::MaybeRejoinEjected() {
  if (recovery_.rejoin_probation_epochs <= 0 || ejected_replicas_.empty()) {
    return;
  }
  std::vector<size_t> rejoined_stages;
  for (auto it = ejected_replicas_.begin(); it != ejected_replicas_.end();) {
    StageRuntime* rt = it->rt;
    // Probation: the replica sits out until `rejoin_probation_epochs` consecutive epochs
    // completed cleanly since both its ejection and the cluster's last failure of any kind.
    const int64_t clean_since = std::max(it->ejected_epoch, last_failure_epoch_);
    if (epochs_completed_ - clean_since < recovery_.rejoin_probation_epochs) {
      ++it;
      continue;
    }
    // Re-admit at an update boundary: surviving replicas hold bitwise-identical weights
    // here, so the rejoiner copies replica state from any survivor. Stashes and optimizer
    // state restart fresh, exactly as they do for a respawned worker.
    auto& stage_active = active_by_stage_[static_cast<size_t>(rt->stage)];
    StageRuntime* survivor = stage_active[0];
    PD_CHECK_EQ(survivor->params.size(), rt->params.size());
    for (size_t i = 0; i < rt->params.size(); ++i) {
      rt->params[i]->value = survivor->params[i]->value;
    }
    rt->weights = std::make_unique<WeightStore>(rt->params, rt->weight_mode);
    rt->optimizer = optimizer_prototype_->CloneFresh();
    rt->dead.store(false, std::memory_order_release);
    stage_active.push_back(rt);
    // Restore the plan's original rotation order so a fully healed stage is
    // indistinguishable from one that never degraded.
    std::sort(stage_active.begin(), stage_active.end(),
              [](const StageRuntime* a, const StageRuntime* b) { return a->replica < b->replica; });
    rejoined_stages.push_back(static_cast<size_t>(rt->stage));
    PD_LOG(WARNING) << "re-admitting stage " << rt->stage << " replica " << rt->replica
                    << " after " << recovery_.rejoin_probation_epochs
                    << " clean probation epochs (" << stage_active.size() << " replicas)";
    obs::GetCounter("runtime/rejoins")->Increment();
    it = ejected_replicas_.erase(it);
  }
  // Rebuild each healed stage's rotation and all-reduce ring over the restored membership.
  for (size_t s : rejoined_stages) {
    auto& stage_active = active_by_stage_[s];
    stage_reducers_[s] =
        stage_active.size() > 1
            ? std::make_unique<GradientAllReducer>(static_cast<int>(stage_active.size()))
            : nullptr;
    for (size_t r = 0; r < stage_active.size(); ++r) {
      stage_active[r]->rr_rank = static_cast<int>(r);
      stage_active[r]->rr_size = static_cast<int>(stage_active.size());
      stage_active[r]->reducer = stage_reducers_[s].get();
    }
  }
}

EpochStats PipelineTrainer::TrainEpoch() {
  MaybeRejoinEjected();
  const int64_t bpe = EpochLength();
  const int64_t current_epoch = epochs_completed_;
  PD_CHECK_EQ(next_global_minibatch_, current_epoch * bpe)
      << "epoch grid misaligned (EpochLength must stay constant)";

  EpochStats stats;
  const size_t failures_before = failures_.size();
  int recoveries = 0;
  int64_t epoch_cursor = current_epoch;
  for (;;) {
    const int64_t begin = epoch_cursor * bpe;
    if (RunRange(begin, begin + bpe, &stats)) {
      if (recovery_enabled_ && manager_ != nullptr && recovery_.auto_checkpoint) {
        const Status saved = SaveCheckpoint(manager_, epoch_cursor);
        if (!saved.ok()) {
          PD_LOG(WARNING) << "checkpoint for epoch " << epoch_cursor
                          << " failed: " << saved.ToString();
        }
      }
      if (epoch_cursor == current_epoch) {
        break;
      }
      ++epoch_cursor;  // replaying history after a restore; continue toward the failed epoch
      continue;
    }
    PD_CHECK(recovery_enabled_)
        << "stage failure detected and recovery is not enabled: " << failures_.back().reason;
    ++recoveries;
    PD_CHECK_LE(recoveries, recovery_.max_recoveries)
        << "giving up after " << recoveries << " recoveries within one epoch; last failure: "
        << failures_.back().reason;
    const int64_t resumed = HandleFailureAndRestore();
    epoch_cursor = resumed + 1;
    PD_LOG(WARNING) << "restored from "
                    << (resumed >= 0 ? StrFormat("checkpoint epoch %lld",
                                                 static_cast<long long>(resumed))
                                     : std::string("initial weights"))
                    << "; replaying from epoch " << epoch_cursor;
  }
  next_global_minibatch_ = (current_epoch + 1) * bpe;
  ++epochs_completed_;
  stats.recoveries = recoveries;
  stats.failures_detected = static_cast<int>(failures_.size() - failures_before);
  if (stats.wall_seconds > 0 && stats.minibatches > 0) {
    obs::GetHistogram("runtime/epoch_minibatches_per_sec")
        ->Observe(static_cast<double>(stats.minibatches) / stats.wall_seconds);
  }
  return stats;
}

std::unique_ptr<Sequential> PipelineTrainer::AssembleModel() const {
  auto full = template_model_->Clone();
  std::vector<Parameter*> full_params = full->Params();
  size_t cursor = 0;
  for (int s = 0; s < plan_.num_stages(); ++s) {
    const StageRuntime* rt = ActiveRuntime(s);
    for (Parameter* p : rt->params) {
      PD_CHECK_LT(cursor, full_params.size());
      PD_CHECK(full_params[cursor]->value.SameShape(p->value))
          << "stage slice misaligned at parameter " << p->name;
      full_params[cursor]->value = p->value;
      ++cursor;
    }
  }
  PD_CHECK_EQ(cursor, full_params.size());
  return full;
}

double PipelineTrainer::EvaluateAccuracy(const Dataset& eval, int64_t eval_batch) const {
  auto model = AssembleModel();
  MinibatchLoader loader(&eval, eval_batch, /*seed=*/1);
  Tensor x;
  Tensor y;
  double correct_weighted = 0.0;
  const int64_t batches = loader.batches_per_epoch();
  for (int64_t b = 0; b < batches; ++b) {
    loader.BatchAt(b, &x, &y);
    ModelContext ctx;
    const Tensor out = model->Forward(x, &ctx, /*training=*/false);
    correct_weighted += Accuracy(out, FlattenTargets(y));
  }
  return batches > 0 ? correct_weighted / static_cast<double>(batches) : 0.0;
}

double PipelineTrainer::EvaluateLoss(const Dataset& eval, int64_t eval_batch) const {
  auto model = AssembleModel();
  MinibatchLoader loader(&eval, eval_batch, /*seed=*/1);
  Tensor x;
  Tensor y;
  Tensor grad;
  double total = 0.0;
  const int64_t batches = loader.batches_per_epoch();
  for (int64_t b = 0; b < batches; ++b) {
    loader.BatchAt(b, &x, &y);
    ModelContext ctx;
    const Tensor out = model->Forward(x, &ctx, /*training=*/false);
    total += loss_->Compute(out, FlattenTargets(y), &grad);
  }
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

Status PipelineTrainer::SaveCheckpoint(CheckpointManager* manager, int64_t epoch) const {
  for (int s = 0; s < plan_.num_stages(); ++s) {
    const Status status = manager->SaveStage(s, epoch, ActiveRuntime(s)->params);
    if (!status.ok()) {
      return status;
    }
  }
  // Stamp the plan manifest last: a validating manifest therefore implies every stage file
  // it names landed, which is what makes the epoch restorable under a *different* plan.
  return manager->SaveManifest(
      epoch, PlanManifest::FromPlan(plan_, num_model_layers_, options_.plan_generation));
}

Status PipelineTrainer::LoadCheckpoint(const CheckpointManager& manager, int64_t epoch) {
  // The manifest tells us which plan wrote this epoch. Same layer layout (or a legacy
  // manifest-less checkpoint): restore stage->stage as before. Different layout (the epoch
  // predates a re-plan): remap by LAYER RANGE — load the checkpoint's stages into a full
  // model, then slice it along OUR stage boundaries.
  PlanManifest manifest;
  const Status mstat = manager.LoadManifest(epoch, &manifest);
  bool same_layout = true;
  if (mstat.ok()) {
    if (manifest.num_layers != num_model_layers_) {
      return Status::InvalidArgument(
          StrFormat("checkpoint epoch %lld was written for a %d-layer model, not %d layers",
                    static_cast<long long>(epoch), manifest.num_layers, num_model_layers_));
    }
    same_layout = manifest.num_stages() == plan_.num_stages();
    for (int s = 0; same_layout && s < plan_.num_stages(); ++s) {
      same_layout = manifest.stage_layers[static_cast<size_t>(s)] ==
                    std::make_pair(plan_.stage(s).begin_layer, plan_.stage(s).end_layer);
    }
  } else if (mstat.code() != StatusCode::kNotFound) {
    return mstat;  // a torn manifest must not be silently treated as legacy
  }

  if (same_layout) {
    for (int s = 0; s < plan_.num_stages(); ++s) {
      for (StageRuntime* rt : by_stage_[static_cast<size_t>(s)]) {
        const Status status = manager.LoadStage(s, epoch, rt->params);
        if (!status.ok()) {
          return status;
        }
      }
    }
    return Status::Ok();
  }

  // Per-layer parameter spans of the full model (parameter names live on layers, so the
  // checkpoint's sliced-model names match the full model's for the same layer range).
  auto full = template_model_->Clone();
  const std::vector<Parameter*> full_params = full->Params();
  std::vector<size_t> layer_offset(static_cast<size_t>(num_model_layers_) + 1, 0);
  for (int l = 0; l < num_model_layers_; ++l) {
    layer_offset[static_cast<size_t>(l + 1)] =
        layer_offset[static_cast<size_t>(l)] + full->layer(static_cast<size_t>(l))->Params().size();
  }
  PD_CHECK_EQ(layer_offset.back(), full_params.size());
  for (int ms = 0; ms < manifest.num_stages(); ++ms) {
    const auto [begin_layer, end_layer] = manifest.stage_layers[static_cast<size_t>(ms)];
    const std::vector<Parameter*> span(
        full_params.begin() + static_cast<long>(layer_offset[static_cast<size_t>(begin_layer)]),
        full_params.begin() + static_cast<long>(layer_offset[static_cast<size_t>(end_layer)]));
    const Status status = manager.LoadStage(ms, epoch, span);
    if (!status.ok()) {
      return status;
    }
  }
  for (int s = 0; s < plan_.num_stages(); ++s) {
    const StageAssignment& stage = plan_.stage(s);
    const size_t begin = layer_offset[static_cast<size_t>(stage.begin_layer)];
    for (StageRuntime* rt : by_stage_[static_cast<size_t>(s)]) {
      PD_CHECK_EQ(rt->params.size(),
                  layer_offset[static_cast<size_t>(stage.end_layer)] - begin);
      for (size_t i = 0; i < rt->params.size(); ++i) {
        rt->params[i]->value = full_params[begin + i]->value;
      }
    }
  }
  return Status::Ok();
}

const RunningStat& PipelineTrainer::StageStaleness(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  return ActiveRuntime(stage)->weights->staleness();
}

int64_t PipelineTrainer::StagePeakStashBytes(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  return ActiveRuntime(stage)->peak_stash_bytes;
}

int64_t PipelineTrainer::StagePeakMaterializedStashBytes(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  return ActiveRuntime(stage)->peak_materialized_stash_bytes;
}

int64_t PipelineTrainer::StagePeakActivationBytes(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  return ActiveRuntime(stage)->peak_activation_bytes;
}

}  // namespace pipedream
