#include "src/runtime/pipeline_trainer.h"

#include <chrono>
#include <numeric>
#include <thread>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/runtime/checkpoint.h"
#include "src/tensor/ops.h"

namespace pipedream {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Flattens [B, T] sequence targets to the [B*T] layout per-token losses expect.
Tensor FlattenTargets(const Tensor& targets) {
  if (targets.rank() <= 1) {
    return targets;
  }
  return targets.Reshaped({targets.numel()});
}

}  // namespace

// One stage replica: the runtime equivalent of a GPU worker.
struct PipelineTrainer::StageRuntime {
  // --- static configuration
  PipelineTrainer* trainer = nullptr;
  int stage = 0;
  int replica = 0;
  int stage_replicas = 1;
  bool is_input = false;
  bool is_output = false;
  std::unique_ptr<Sequential> model;
  std::vector<Parameter*> params;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<WeightStore> weights;
  std::unique_ptr<MinibatchLoader> loader;  // input stages only
  GradientAllReducer* reducer = nullptr;    // replicated stages only
  Mailbox mailbox;

  // --- per-epoch state (owned by the worker thread during an epoch)
  std::unique_ptr<SchedulingPolicy> policy;
  int64_t epoch_begin = 0;
  int64_t epoch_end = 0;
  int64_t next_admission = 0;
  int64_t next_forward = 0;   // next minibatch to consume from the forward queue
  int64_t next_backward = 0;  // next minibatch to consume from the backward queue
  int in_flight = 0;
  int admission_cap = 1;
  int64_t bwd_quota = 0;
  int64_t bwd_done = 0;
  int64_t fwd_started = 0;
  int gpipe_round_bwd = 0;
  std::map<int64_t, ModelContext> contexts;
  std::map<int64_t, Tensor> recompute_inputs;  // stage inputs kept for recomputation
  int accumulated = 0;  // backwards since the last optimizer step (gradient accumulation)

  // --- metrics
  double loss_sum = 0.0;
  int64_t loss_count = 0;
  int64_t peak_stash_bytes = 0;
  int64_t peak_activation_bytes = 0;

  int64_t ActivationStashBytes() const {
    int64_t total = 0;
    for (const auto& [mb, ctx] : contexts) {
      total += ctx.SizeBytes();
    }
    for (const auto& [mb, input] : recompute_inputs) {
      total += input.SizeBytes();
    }
    return total;
  }

  void PrepareEpoch(int64_t begin, int64_t end, const PipelineTrainerOptions& options,
                    const PipelinePlan& plan);
  void RunEpoch();
  void DoForward(int64_t minibatch, PipeMessage message);
  void DoBackward(PipeMessage message);
  bool GPipeMode() const {
    return trainer->options_.schedule != ScheduleKind::kOneFOneB;
  }
  int GPipeRoundSize() const {
    return trainer->options_.schedule == ScheduleKind::kModelParallel
               ? 1
               : trainer->options_.gpipe_microbatches;
  }
};

PipelineTrainer::PipelineTrainer(const Sequential& model, const PipelinePlan& plan,
                                 const Loss* loss, const Optimizer& optimizer_prototype,
                                 const Dataset* dataset, int64_t batch_size, uint64_t seed,
                                 PipelineTrainerOptions options)
    : plan_(plan),
      loss_(loss),
      dataset_(dataset),
      batch_size_(batch_size),
      seed_(seed),
      options_(options),
      num_model_layers_(static_cast<int>(model.size())) {
  plan_.Validate(num_model_layers_);
  PD_CHECK(loss != nullptr);
  PD_CHECK(dataset != nullptr);
  if (options_.schedule != ScheduleKind::kOneFOneB) {
    PD_CHECK(plan_.IsStraight() || plan_.num_stages() == 1)
        << "GPipe/model-parallel runtime requires an unreplicated pipeline";
    // Weights do not change between a round's forward and backward passes, so versioning is
    // unnecessary (this is exactly GPipe's correctness argument).
    options_.weight_mode = WeightMode::kNaive;
  }
  if (options_.weight_mode == WeightMode::kVerticalSync) {
    PD_CHECK(plan_.IsStraight() || plan_.num_stages() == 1)
        << "vertical sync is implemented for straight pipelines";
  }
  PD_CHECK_GE(options_.accumulation_steps, 1);
  if (options_.recompute_activations) {
    // Recomputation re-runs the forward under the stashed weights, which requires a weight
    // version that is pinned per minibatch.
    PD_CHECK(options_.weight_mode != WeightMode::kNaive || options_.schedule != ScheduleKind::kOneFOneB)
        << "recompute_activations under 1F1B requires weight stashing or vertical sync";
  }

  // Keep a pristine full copy for AssembleModel's structure.
  template_model_ = model.Clone();

  const int num_stages = plan_.num_stages();
  stage_reducers_.resize(static_cast<size_t>(num_stages));
  by_stage_.resize(static_cast<size_t>(num_stages));
  if (options_.schedule != ScheduleKind::kOneFOneB) {
    flush_barrier_ = std::make_unique<FlushBarrier>(num_stages);
  }
  for (int s = 0; s < num_stages; ++s) {
    const StageAssignment& assignment = plan_.stage(s);
    if (assignment.replicas > 1) {
      stage_reducers_[static_cast<size_t>(s)] =
          std::make_unique<GradientAllReducer>(assignment.replicas);
    }
    for (int r = 0; r < assignment.replicas; ++r) {
      auto rt = std::make_unique<StageRuntime>();
      rt->trainer = this;
      rt->stage = s;
      rt->replica = r;
      rt->stage_replicas = assignment.replicas;
      rt->is_input = s == 0;
      rt->is_output = s == num_stages - 1;
      rt->model = model.CloneSlice(static_cast<size_t>(assignment.begin_layer),
                                   static_cast<size_t>(assignment.end_layer));
      rt->params = rt->model->Params();
      rt->optimizer = optimizer_prototype.CloneFresh();
      rt->weights = std::make_unique<WeightStore>(rt->params, options_.weight_mode);
      rt->reducer = stage_reducers_[static_cast<size_t>(s)].get();
      if (rt->is_input) {
        rt->loader = std::make_unique<MinibatchLoader>(dataset_, batch_size_, seed_);
      }
      by_stage_[static_cast<size_t>(s)].push_back(rt.get());
      runtimes_.push_back(std::move(rt));
    }
  }
}

PipelineTrainer::~PipelineTrainer() = default;

int64_t PipelineTrainer::batches_per_epoch() const {
  return by_stage_[0][0]->loader->batches_per_epoch();
}

PipelineTrainer::StageRuntime* PipelineTrainer::RuntimeFor(int stage,
                                                           int64_t minibatch) const {
  const int r = RoundRobinReplica(minibatch, plan_.stage(stage).replicas);
  return by_stage_[static_cast<size_t>(stage)][static_cast<size_t>(r)];
}

void PipelineTrainer::StageRuntime::PrepareEpoch(int64_t begin, int64_t end,
                                                 const PipelineTrainerOptions& options,
                                                 const PipelinePlan& plan) {
  epoch_begin = begin;
  epoch_end = end;
  if (options.schedule == ScheduleKind::kOneFOneB) {
    admission_cap = StartupDepth(plan, stage);
    policy = std::make_unique<OneFOneBPolicy>(admission_cap);
  } else {
    admission_cap = GPipeRoundSize();
    policy = std::make_unique<GPipePolicy>(GPipeRoundSize());
  }
  next_admission = begin + replica;  // this replica's round-robin share
  next_forward = begin + replica;
  next_backward = begin + replica;
  in_flight = 0;
  gpipe_round_bwd = 0;
  bwd_done = 0;
  fwd_started = 0;
  bwd_quota = 0;
  for (int64_t b = begin; b < end; ++b) {
    if (RoundRobinReplica(b, stage_replicas) == replica) {
      ++bwd_quota;
    }
  }
  contexts.clear();
  recompute_inputs.clear();
  accumulated = 0;
}

void PipelineTrainer::StageRuntime::RunEpoch() {
  while (bwd_done < bwd_quota) {
    std::optional<WorkType> action;
    mailbox.WaitUntil([&](int64_t min_fwd, int64_t min_bwd) {
      // A minibatch is ready only when it is the NEXT one in this replica's round-robin
      // share. Out-of-order arrivals (possible whenever a neighbouring stage is replicated)
      // are held back, so every replica consumes work in a schedule-determined order and the
      // training trajectory is independent of thread timing.
      int ready_fwd = min_fwd == next_forward ? 1 : 0;
      if (is_input) {
        bool admit = next_admission < epoch_end && in_flight < admission_cap;
        if (GPipeMode()) {
          // Admit only the current flush round's microbatches.
          const int64_t round = (next_admission - epoch_begin) / GPipeRoundSize();
          const int64_t done_rounds = bwd_done / GPipeRoundSize();
          admit = next_admission < epoch_end && round <= done_rounds;
        }
        ready_fwd = admit ? 1 : 0;
      }
      const int ready_bwd = min_bwd == next_backward ? 1 : 0;
      const bool exhausted = is_input ? next_admission >= epoch_end : fwd_started == bwd_quota;
      action = policy->Decide(ready_fwd, ready_bwd, exhausted);
      return action.has_value();
    });
    PD_CHECK(action.has_value());

    if (*action == WorkType::kForward) {
      PipeMessage message;
      int64_t minibatch;
      if (is_input) {
        minibatch = next_admission;
        next_admission += stage_replicas;
        ++in_flight;
        loader->BatchAt(minibatch, &message.payload, &message.targets);
        message.input_version = weights->version();
      } else {
        std::optional<PipeMessage> taken = mailbox.Take(WorkType::kForward);
        PD_CHECK(taken.has_value());
        PD_CHECK_EQ(taken->minibatch, next_forward);
        minibatch = taken->minibatch;
        message = std::move(*taken);
        next_forward += stage_replicas;
      }
      policy->OnStarted(WorkType::kForward);
      ++fwd_started;
      DoForward(minibatch, std::move(message));
    } else {
      std::optional<PipeMessage> taken = mailbox.Take(WorkType::kBackward);
      PD_CHECK(taken.has_value());
      PD_CHECK_EQ(taken->minibatch, next_backward);
      next_backward += stage_replicas;
      policy->OnStarted(WorkType::kBackward);
      DoBackward(std::move(*taken));
    }
  }
}

void PipelineTrainer::StageRuntime::DoForward(int64_t minibatch, PipeMessage message) {
  weights->BeginForward(minibatch, message.input_version);
  Tensor out;
  if (trainer->options_.recompute_activations) {
    // Keep only the stage input; the full context is rebuilt at backward time under the
    // same (stashed) weights.
    ModelContext scratch;
    out = model->Forward(message.payload, &scratch, /*training=*/true);
    recompute_inputs[minibatch] = message.payload;
  } else {
    ModelContext& ctx = contexts[minibatch];
    out = model->Forward(message.payload, &ctx, /*training=*/true);
  }
  weights->EndForward(minibatch);
  peak_stash_bytes = std::max(peak_stash_bytes, weights->StashBytes());
  peak_activation_bytes = std::max(peak_activation_bytes, ActivationStashBytes());

  if (is_output) {
    // Compute the loss locally; the backward pass becomes ready immediately.
    Tensor grad;
    const double loss_value =
        trainer->loss_->Compute(out, FlattenTargets(message.targets), &grad);
    loss_sum += loss_value;
    ++loss_count;
    PipeMessage backward;
    backward.minibatch = minibatch;
    backward.type = WorkType::kBackward;
    backward.payload = std::move(grad);
    mailbox.Deliver(std::move(backward));
  } else {
    PipeMessage forward;
    forward.minibatch = minibatch;
    forward.type = WorkType::kForward;
    forward.payload = std::move(out);
    forward.targets = std::move(message.targets);
    forward.input_version = message.input_version;
    trainer->RuntimeFor(stage + 1, minibatch)->mailbox.Deliver(std::move(forward));
  }
}

void PipelineTrainer::StageRuntime::DoBackward(PipeMessage message) {
  const int64_t minibatch = message.minibatch;

  weights->BeginBackward(minibatch);
  ModelContext recomputed;
  ModelContext* ctx;
  if (trainer->options_.recompute_activations) {
    const auto input_it = recompute_inputs.find(minibatch);
    PD_CHECK(input_it != recompute_inputs.end())
        << "backward for minibatch " << minibatch << " without a stashed input";
    // Rebuild the activation stash with the stashed weights already swapped in — the
    // recomputed forward is bit-identical to the original for deterministic layers.
    model->Forward(input_it->second, &recomputed, /*training=*/true);
    peak_activation_bytes =
        std::max(peak_activation_bytes, ActivationStashBytes() + recomputed.SizeBytes());
    recompute_inputs.erase(input_it);
    ctx = &recomputed;
  } else {
    const auto ctx_it = contexts.find(minibatch);
    PD_CHECK(ctx_it != contexts.end())
        << "backward for minibatch " << minibatch << " without a stashed forward context";
    ctx = &ctx_it->second;
  }
  const bool gpipe = GPipeMode();
  const int accumulation = trainer->options_.accumulation_steps;
  if (!gpipe) {
    if (accumulated == 0) {
      model->ZeroGrads();
    }
  } else if (gpipe_round_bwd == 0) {
    model->ZeroGrads();  // gradients aggregate across the round's microbatches
  }
  Tensor grad_in = model->Backward(message.payload, ctx);
  contexts.erase(minibatch);
  weights->EndBackward(minibatch);

  if (!gpipe) {
    if (++accumulated >= accumulation) {
      if (accumulation > 1) {
        const float inv = 1.0f / static_cast<float>(accumulation);
        for (Parameter* p : params) {
          Scale(&p->grad, inv);
        }
      }
      if (reducer != nullptr) {
        reducer->AllReduce(replica, params);
      }
      optimizer->Step(params);
      weights->CommitUpdate();
      accumulated = 0;
    }
  } else {
    ++gpipe_round_bwd;
    const int64_t remaining = epoch_end - (minibatch - minibatch % GPipeRoundSize());
    const int round_size = static_cast<int>(std::min<int64_t>(GPipeRoundSize(), remaining));
    if (gpipe_round_bwd == round_size) {
      // End of round: apply the aggregated update, then wait at the pipeline flush.
      const float inv = 1.0f / static_cast<float>(round_size);
      for (Parameter* p : params) {
        Scale(&p->grad, inv);
      }
      optimizer->Step(params);
      weights->CommitUpdate();
      gpipe_round_bwd = 0;
      ++bwd_done;  // count before blocking so quotas stay consistent
      if (stage > 0) {
        trainer->RuntimeFor(stage - 1, minibatch)->mailbox.Deliver(PipeMessage{
            minibatch, WorkType::kBackward, std::move(grad_in), Tensor(), 0});
      } else {
        --in_flight;
      }
      trainer->flush_barrier_->Arrive();
      static_cast<GPipePolicy*>(policy.get())->OnFlushComplete();
      mailbox.Poke();
      return;
    }
  }

  ++bwd_done;
  if (stage > 0) {
    PipeMessage backward;
    backward.minibatch = minibatch;
    backward.type = WorkType::kBackward;
    backward.payload = std::move(grad_in);
    trainer->RuntimeFor(stage - 1, minibatch)->mailbox.Deliver(std::move(backward));
  } else {
    --in_flight;
  }
}

namespace {

int64_t Lcm(int64_t a, int64_t b) { return a / std::gcd(a, b) * b; }

}  // namespace

EpochStats PipelineTrainer::TrainEpoch() {
  // Replicated stages synchronize gradients in rounds of `replicas` minibatches, and GPipe
  // flushes in rounds of `microbatches`; an epoch must be a whole number of every such round
  // or the last collective would wait forever. Truncate to the least common multiple (the
  // dropped tail batches are few and deterministic).
  int64_t round = 1;
  for (const StageAssignment& stage : plan_.stages()) {
    round = Lcm(round, stage.replicas);
  }
  if (options_.schedule == ScheduleKind::kGPipe) {
    round = Lcm(round, options_.gpipe_microbatches);
  }
  const int64_t bpe = batches_per_epoch() / round * round;
  PD_CHECK_GT(bpe, 0) << "dataset too small for one synchronization round per epoch";
  const int64_t begin = next_global_minibatch_;
  const int64_t end = begin + bpe;
  PD_CHECK_GE(bpe, plan_.Noam()) << "epoch shorter than the pipeline depth";

  for (auto& rt : runtimes_) {
    rt->PrepareEpoch(begin, end, options_, plan_);
    rt->loss_sum = 0.0;
    rt->loss_count = 0;
  }

  const double start = NowSeconds();
  // Every stage replica runs kernels concurrently; split the shared pool's parallelism
  // between them so intra-op threading never oversubscribes the machine.
  const int kernel_budget = KernelBudgetForWorkers(static_cast<int>(runtimes_.size()));
  std::vector<std::thread> threads;
  threads.reserve(runtimes_.size());
  for (auto& rt : runtimes_) {
    threads.emplace_back([worker = rt.get(), kernel_budget] {
      ScopedKernelBudget budget(kernel_budget);
      worker->RunEpoch();
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double wall = NowSeconds() - start;

  EpochStats stats;
  stats.wall_seconds = wall;
  for (StageRuntime* rt : by_stage_.back()) {
    stats.mean_loss += rt->loss_sum;
    stats.minibatches += rt->loss_count;
  }
  if (stats.minibatches > 0) {
    stats.mean_loss /= static_cast<double>(stats.minibatches);
  }
  next_global_minibatch_ = end;
  ++epochs_completed_;
  return stats;
}

std::unique_ptr<Sequential> PipelineTrainer::AssembleModel() const {
  auto full = template_model_->Clone();
  std::vector<Parameter*> full_params = full->Params();
  size_t cursor = 0;
  for (int s = 0; s < plan_.num_stages(); ++s) {
    const StageRuntime* rt = by_stage_[static_cast<size_t>(s)][0];
    for (Parameter* p : rt->params) {
      PD_CHECK_LT(cursor, full_params.size());
      PD_CHECK(full_params[cursor]->value.SameShape(p->value))
          << "stage slice misaligned at parameter " << p->name;
      full_params[cursor]->value = p->value;
      ++cursor;
    }
  }
  PD_CHECK_EQ(cursor, full_params.size());
  return full;
}

double PipelineTrainer::EvaluateAccuracy(const Dataset& eval, int64_t eval_batch) const {
  auto model = AssembleModel();
  MinibatchLoader loader(&eval, eval_batch, /*seed=*/1);
  Tensor x;
  Tensor y;
  double correct_weighted = 0.0;
  const int64_t batches = loader.batches_per_epoch();
  for (int64_t b = 0; b < batches; ++b) {
    loader.BatchAt(b, &x, &y);
    ModelContext ctx;
    const Tensor out = model->Forward(x, &ctx, /*training=*/false);
    correct_weighted += Accuracy(out, FlattenTargets(y));
  }
  return batches > 0 ? correct_weighted / static_cast<double>(batches) : 0.0;
}

double PipelineTrainer::EvaluateLoss(const Dataset& eval, int64_t eval_batch) const {
  auto model = AssembleModel();
  MinibatchLoader loader(&eval, eval_batch, /*seed=*/1);
  Tensor x;
  Tensor y;
  Tensor grad;
  double total = 0.0;
  const int64_t batches = loader.batches_per_epoch();
  for (int64_t b = 0; b < batches; ++b) {
    loader.BatchAt(b, &x, &y);
    ModelContext ctx;
    const Tensor out = model->Forward(x, &ctx, /*training=*/false);
    total += loss_->Compute(out, FlattenTargets(y), &grad);
  }
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

Status PipelineTrainer::SaveCheckpoint(CheckpointManager* manager, int64_t epoch) const {
  for (int s = 0; s < plan_.num_stages(); ++s) {
    const Status status =
        manager->SaveStage(s, epoch, by_stage_[static_cast<size_t>(s)][0]->params);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

Status PipelineTrainer::LoadCheckpoint(const CheckpointManager& manager, int64_t epoch) {
  for (int s = 0; s < plan_.num_stages(); ++s) {
    for (StageRuntime* rt : by_stage_[static_cast<size_t>(s)]) {
      const Status status = manager.LoadStage(s, epoch, rt->params);
      if (!status.ok()) {
        return status;
      }
    }
  }
  return Status::Ok();
}

const RunningStat& PipelineTrainer::StageStaleness(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  return by_stage_[static_cast<size_t>(stage)][0]->weights->staleness();
}

int64_t PipelineTrainer::StagePeakStashBytes(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  return by_stage_[static_cast<size_t>(stage)][0]->peak_stash_bytes;
}

int64_t PipelineTrainer::StagePeakActivationBytes(int stage) const {
  PD_CHECK(stage >= 0 && stage < plan_.num_stages());
  return by_stage_[static_cast<size_t>(stage)][0]->peak_activation_bytes;
}

}  // namespace pipedream
