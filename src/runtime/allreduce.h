// Synchronous in-process gradient all_reduce for replicated stages and BSP data parallelism.
//
// Each participant contributes its parameter gradients; all block until every participant of
// the round has arrived; everyone leaves with the element-wise mean. This is the in-process
// stand-in for NCCL/Gloo collectives.
#ifndef SRC_RUNTIME_ALLREDUCE_H_
#define SRC_RUNTIME_ALLREDUCE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/check.h"
#include "src/graph/layer.h"
#include "src/tensor/ops.h"

namespace pipedream {

class GradientAllReducer {
 public:
  explicit GradientAllReducer(int participants) : participants_(participants) {
    PD_CHECK_GE(participants, 1);
  }

  // Averages `params`' gradients with every other participant's. Blocks until the round
  // completes. All participants must pass structurally identical parameter lists. `rank`
  // identifies the caller's slot in [0, participants): contributions are deposited per rank
  // and summed in rank order once everyone has arrived, so the mean is independent of
  // thread arrival order (float addition is not associative).
  void AllReduce(int rank, const std::vector<Parameter*>& params) {
    if (participants_ == 1) {
      return;
    }
    PD_CHECK(rank >= 0 && rank < participants_);
    std::unique_lock<std::mutex> lock(mutex_);
    if (contributions_.empty()) {
      contributions_.resize(static_cast<size_t>(participants_));
    }
    auto& slot = contributions_[static_cast<size_t>(rank)];
    PD_CHECK(slot.empty()) << "rank " << rank << " contributed twice in one round";
    slot.reserve(params.size());
    for (const Parameter* p : params) {
      slot.push_back(p->grad);
    }
    ++arrived_;
    if (arrived_ == participants_) {
      result_ = std::move(contributions_[0]);
      for (size_t r = 1; r < contributions_.size(); ++r) {
        PD_CHECK_EQ(contributions_[r].size(), result_.size());
        for (size_t i = 0; i < result_.size(); ++i) {
          AddInPlace(&result_[i], contributions_[r][i]);
        }
      }
      const float inv = 1.0f / static_cast<float>(participants_);
      for (Tensor& t : result_) {
        Scale(&t, inv);
      }
      contributions_.clear();
      arrived_ = 0;
      remaining_readers_ = participants_;
      ++generation_;
      cv_.notify_all();
    } else {
      const uint64_t my_generation = generation_;
      cv_.wait(lock, [&] { return generation_ != my_generation; });
    }
    // Copy the round's mean into this participant's gradients.
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->grad = result_[i];
    }
    if (--remaining_readers_ == 0) {
      result_.clear();
    }
  }

 private:
  const int participants_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::vector<Tensor>> contributions_;  // one slot per rank
  std::vector<Tensor> result_;
  int arrived_ = 0;
  int remaining_readers_ = 0;
  uint64_t generation_ = 0;
};

// Generation-counting thread barrier (GPipe's pipeline-flush synchronization point).
class FlushBarrier {
 public:
  explicit FlushBarrier(int participants) : participants_(participants) {
    PD_CHECK_GE(participants, 1);
  }

  // Blocks until all participants arrive.
  void Arrive() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    const uint64_t my_generation = generation_;
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }

 private:
  const int participants_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_ALLREDUCE_H_
