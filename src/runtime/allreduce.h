// Synchronous in-process gradient all_reduce for replicated stages and BSP data parallelism.
//
// Each participant contributes its parameter gradients; all block until every participant of
// the round has arrived; everyone leaves with the element-wise mean. This is the in-process
// stand-in for NCCL/Gloo collectives.
//
// Failure handling: a round's membership is dynamic (a degraded pipeline that ejected a dead
// replica runs partial tail rounds), and Abort() wakes every blocked participant so a dead
// replica cannot wedge the collective — survivors observe the abort and unwind instead of
// waiting for a contribution that will never come.
#ifndef SRC_RUNTIME_ALLREDUCE_H_
#define SRC_RUNTIME_ALLREDUCE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/check.h"
#include "src/graph/layer.h"
#include "src/obs/trace.h"
#include "src/tensor/ops.h"

namespace pipedream {

class GradientAllReducer {
 public:
  // `capacity` is the maximum number of participants a round may have.
  explicit GradientAllReducer(int capacity) : capacity_(capacity) {
    PD_CHECK_GE(capacity, 1);
  }

  // Averages `params`' gradients with every other participant of the current round. Blocks
  // until the round completes; returns false if the round was aborted (the caller must
  // unwind — its gradients are unchanged garbage for this round). All participants must pass
  // structurally identical parameter lists and agree on `round_participants` (ordinarily the
  // stage's active replica count; smaller for a partial tail round). `slot` identifies the
  // caller's position in [0, round_participants): contributions are deposited per slot and
  // summed in slot order once everyone has arrived, so the mean is independent of thread
  // arrival order (float addition is not associative).
  bool AllReduce(int slot, const std::vector<Parameter*>& params, int round_participants) {
    PD_CHECK(round_participants >= 1 && round_participants <= capacity_);
    if (round_participants == 1) {
      return true;
    }
    PD_TRACE_SPAN("allreduce");
    PD_CHECK(slot >= 0 && slot < round_participants);
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) {
      return false;
    }
    if (contributions_.empty()) {
      contributions_.resize(static_cast<size_t>(round_participants));
      expected_ = round_participants;
    }
    PD_CHECK_EQ(expected_, round_participants)
        << "participants disagree about the round size";
    auto& slot_grads = contributions_[static_cast<size_t>(slot)];
    PD_CHECK(slot_grads.empty()) << "slot " << slot << " contributed twice in one round";
    slot_grads.reserve(params.size());
    for (const Parameter* p : params) {
      slot_grads.push_back(p->grad);
    }
    ++arrived_;
    if (arrived_ == expected_) {
      result_ = std::move(contributions_[0]);
      for (size_t r = 1; r < contributions_.size(); ++r) {
        PD_CHECK_EQ(contributions_[r].size(), result_.size());
        for (size_t i = 0; i < result_.size(); ++i) {
          AddInPlace(&result_[i], contributions_[r][i]);
        }
      }
      const float inv = 1.0f / static_cast<float>(expected_);
      for (Tensor& t : result_) {
        Scale(&t, inv);
      }
      contributions_.clear();
      remaining_readers_ = arrived_;
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      const uint64_t my_generation = generation_;
      cv_.wait(lock, [&] { return generation_ != my_generation || aborted_; });
      if (aborted_) {
        return false;
      }
    }
    // Copy the round's mean into this participant's gradients.
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->grad = result_[i];
    }
    if (--remaining_readers_ == 0) {
      result_.clear();
    }
    return true;
  }

  // Full-membership round: every one of the reducer's `capacity` participants takes part.
  bool AllReduce(int slot, const std::vector<Parameter*>& params) {
    return AllReduce(slot, params, capacity_);
  }

  // Wakes every blocked participant with failure. Safe to call from any thread (the
  // watchdog, or a dying worker's wrapper).
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

  // Clears all round state for a fresh epoch attempt. Only call when no participant thread
  // is running.
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = false;
    contributions_.clear();
    result_.clear();
    arrived_ = 0;
    expected_ = 0;
    remaining_readers_ = 0;
  }

 private:
  const int capacity_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::vector<Tensor>> contributions_;  // one slot per participant
  std::vector<Tensor> result_;
  int arrived_ = 0;
  int expected_ = 0;  // round size, fixed by the first arrival
  int remaining_readers_ = 0;
  bool aborted_ = false;
  uint64_t generation_ = 0;
};

// Generation-counting thread barrier (GPipe's pipeline-flush synchronization point).
// Abortable for the same reason as the reducer: a dead stage must not wedge the flush.
class FlushBarrier {
 public:
  explicit FlushBarrier(int participants) : participants_(participants) {
    PD_CHECK_GE(participants, 1);
  }

  // Blocks until all participants arrive. Returns false if the barrier was aborted.
  bool Arrive() {
    PD_TRACE_SPAN("flush_wait");
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) {
      return false;
    }
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return true;
    }
    const uint64_t my_generation = generation_;
    cv_.wait(lock, [&] { return generation_ != my_generation || aborted_; });
    return !aborted_;
  }

  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

  // Only call when no participant thread is running.
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = false;
    arrived_ = 0;
  }

 private:
  const int participants_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  bool aborted_ = false;
  uint64_t generation_ = 0;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_ALLREDUCE_H_
