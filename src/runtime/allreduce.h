// Synchronous in-process gradient all_reduce for replicated stages and BSP data parallelism.
//
// Each participant contributes its parameter gradients; all block until every participant of
// the round has arrived; everyone leaves with the element-wise mean. This is the in-process
// stand-in for NCCL/Gloo collectives.
#ifndef SRC_RUNTIME_ALLREDUCE_H_
#define SRC_RUNTIME_ALLREDUCE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/check.h"
#include "src/graph/layer.h"
#include "src/tensor/ops.h"

namespace pipedream {

class GradientAllReducer {
 public:
  explicit GradientAllReducer(int participants) : participants_(participants) {
    PD_CHECK_GE(participants, 1);
  }

  // Averages `params`' gradients with every other participant's. Blocks until the round
  // completes. All participants must pass structurally identical parameter lists.
  void AllReduce(const std::vector<Parameter*>& params) {
    if (participants_ == 1) {
      return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (accumulator_.empty()) {
      accumulator_.reserve(params.size());
      for (const Parameter* p : params) {
        accumulator_.push_back(p->grad);
      }
    } else {
      PD_CHECK_EQ(accumulator_.size(), params.size());
      for (size_t i = 0; i < params.size(); ++i) {
        AddInPlace(&accumulator_[i], params[i]->grad);
      }
    }
    ++arrived_;
    if (arrived_ == participants_) {
      const float inv = 1.0f / static_cast<float>(participants_);
      for (Tensor& t : accumulator_) {
        Scale(&t, inv);
      }
      result_ = std::move(accumulator_);
      accumulator_.clear();
      arrived_ = 0;
      remaining_readers_ = participants_;
      ++generation_;
      cv_.notify_all();
    } else {
      const uint64_t my_generation = generation_;
      cv_.wait(lock, [&] { return generation_ != my_generation; });
    }
    // Copy the round's mean into this participant's gradients.
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->grad = result_[i];
    }
    if (--remaining_readers_ == 0) {
      result_.clear();
    }
  }

 private:
  const int participants_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Tensor> accumulator_;
  std::vector<Tensor> result_;
  int arrived_ = 0;
  int remaining_readers_ = 0;
  uint64_t generation_ = 0;
};

// Generation-counting thread barrier (GPipe's pipeline-flush synchronization point).
class FlushBarrier {
 public:
  explicit FlushBarrier(int participants) : participants_(participants) {
    PD_CHECK_GE(participants, 1);
  }

  // Blocks until all participants arrive.
  void Arrive() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    const uint64_t my_generation = generation_;
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }

 private:
  const int participants_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_ALLREDUCE_H_
