// Asynchronous-parallel (ASP) data-parallel training baseline (§2.1, §5.2).
//
// Workers train concurrently against a shared parameter store with no synchronization
// barrier: each iteration snapshots the current shared weights, computes gradients locally,
// and applies them to whatever the shared weights have become — the classic stale-gradient
// regime whose poor statistical efficiency the paper contrasts with 1F1B + weight stashing.
//
// Structurally the parameter store is a server: workers ship each minibatch's gradient as a
// message over the same MessageTransport the pipeline runtime uses, and a parameter-server
// loop applies arrivals in order. A worker blocks until its own gradient is acknowledged
// before snapshotting again (its own update is never stale to itself, matching the classic
// in-place formulation); staleness still comes from the other workers' interleaving — or,
// single-threaded, from the controlled `staleness_depth` snapshot delay.
#ifndef SRC_RUNTIME_ASP_TRAINER_H_
#define SRC_RUNTIME_ASP_TRAINER_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/data/loader.h"
#include "src/graph/loss.h"
#include "src/graph/sequential.h"
#include "src/optim/optimizer.h"
#include "src/runtime/transport.h"

namespace pipedream {

struct AspEpochStats {
  double mean_loss = 0.0;
  int64_t minibatches = 0;
};

class AspTrainer {
 public:
  // `staleness_depth` injects controlled gradient staleness: each worker computes its
  // gradient against the shared weights as of `staleness_depth` updates ago (0 = always the
  // freshest). Real ASP staleness comes from wall-clock overlap between many workers; on a
  // single CPU core threads serialize and that overlap vanishes, so the depth parameter
  // recreates the regime the paper's ASP baseline actually ran in.
  AspTrainer(const Sequential& model, int workers, const Loss* loss,
             const Optimizer& optimizer_prototype, const Dataset* dataset, int64_t batch_size,
             uint64_t seed, int staleness_depth = 0);

  // One pass over the dataset, split round-robin across the asynchronous workers.
  AspEpochStats TrainEpoch();

  double EvaluateAccuracy(const Dataset& eval, int64_t eval_batch) const;

  int64_t epochs_completed() const { return epochs_completed_; }

 private:
  // Applies one gradient message to the shared parameters (parameter-server loop body).
  void ApplyGradient(PipeMessage message);

  int workers_;
  const Loss* loss_;
  const Dataset* dataset_;
  int64_t batch_size_;
  uint64_t seed_;

  std::unique_ptr<Sequential> shared_model_;   // guarded by mutex_
  std::vector<Parameter*> shared_params_;
  std::unique_ptr<Optimizer> optimizer_;       // guarded by mutex_
  std::mutex mutex_;
  int staleness_depth_;
  // Ring buffer of past parameter versions (guarded by mutex_), newest last.
  std::deque<std::vector<Tensor>> history_;

  // Gradient ingress: workers send to endpoint (0, 0); the epoch's server loop drains it.
  std::unique_ptr<MessageTransport> transport_;
  Mailbox* server_inbox_ = nullptr;
  std::vector<int64_t> acked_;  // per-worker applied-gradient counts (guarded by ack_mutex_)
  std::mutex ack_mutex_;
  std::condition_variable ack_cv_;

  int64_t epochs_completed_ = 0;
  int64_t next_global_batch_ = 0;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_ASP_TRAINER_H_
