// Pipelined inference serving: each stage is a long-lived server loop behind the transport.
//
// Training pipelines (pipeline_trainer.h) spawn workers per epoch because the recovery
// state machine leans on join-quiesce semantics. Serving has no epochs: PipelineServer
// spawns one resident thread per stage at Start() and keeps it waiting on its transport
// endpoint until Stop(). Requests are admitted as microbatches into the same forward path
// 1F1B uses for training — while stage 0 runs request k, stage 1 runs request k-1, so a
// continuous request stream keeps every stage busy and per-request latency approaches the
// sum of stage times while throughput approaches the max stage time (the pipeline bound).
//
// Flow control is a bounded admission window: Submit() blocks while `max_inflight` requests
// are between ingress and egress. The window caps the stage-0 inbox depth (backpressure at
// ingress, not unbounded queueing inside the pipeline), so tail latency degrades by waiting
// at the door rather than by queue-buildup amplification.
//
// Every request's wall latency is recorded in the "serve/<transport>/request_seconds"
// histogram (obs/metrics.h), whose reservoir quantiles provide the p50/p99/p999 read back
// by Stats(). On top of the wall number, each request's journey is decomposed per stage
// into three histograms — serve/<transport>/stage<N>/{transport,queue,compute}_seconds:
// transport is send-to-delivery of the hop into the stage, queue is delivery-to-dequeue
// inside the stage's inbox, compute is the stage's Forward. The last hop (final stage to
// the egress collector) lands in serve/<transport>/egress/transport_seconds. Requests also
// carry their id as the wire-level trace id, emitting one "req" flow chain per request so
// a Perfetto trace shows each request hopping stage to stage. The transport is pluggable
// exactly as in training: in-proc mailboxes or the CRC-framed socket transport, selected
// by options or PIPEDREAM_TRANSPORT.
#ifndef SRC_RUNTIME_SERVING_H_
#define SRC_RUNTIME_SERVING_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/sequential.h"
#include "src/planner/plan.h"
#include "src/runtime/transport.h"

namespace pipedream {

namespace obs {
class Histogram;
}

struct ServingOptions {
  // Stage-to-stage transport; unset = in-proc. PIPEDREAM_TRANSPORT takes precedence,
  // mirroring the trainer's override discipline.
  std::optional<TransportKind> transport;
  // Admission window: requests simultaneously between Submit and result collection. The
  // PIPEDREAM_SERVE_QUEUE_DEPTH env variable takes precedence. Bounds the ingress mailbox
  // depth (see serving_test.cc).
  int max_inflight = 8;
  // Stage-loop wait granularity: how often an idle stage re-checks the stop flag.
  int worker_tick_ms = 50;
};

// Aggregate serving statistics, read from the latency histogram at call time.
struct ServingStats {
  int64_t completed = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
  double mean_seconds = 0.0;
};

class PipelineServer {
 public:
  // `model` is the full network; each stage thread owns a deep copy of its layer slice.
  // Only straight plans serve (one replica per stage — request routing needs no rotation).
  // The model is copied; `plan` is copied. Call Start() before the first Submit.
  PipelineServer(const Sequential& model, const PipelinePlan& plan,
                 ServingOptions options = {});
  ~PipelineServer();

  PipelineServer(const PipelineServer&) = delete;
  PipelineServer& operator=(const PipelineServer&) = delete;

  // Spawns the per-stage server loops and the egress collector. Must be called once.
  Status Start();

  // Admits one request (a microbatch tensor) into the pipeline, blocking while the
  // admission window is full. Returns the request id to pass to Wait().
  int64_t Submit(Tensor input);

  // Blocks until request `id` has flowed through every stage; returns its output tensor.
  // Each id may be waited on exactly once.
  Tensor Wait(int64_t id);

  // Submit + Wait: a synchronous single request (pipelining needs concurrent Submits).
  Tensor Infer(const Tensor& input);

  // Waits for all in-flight requests to complete, then stops the stage loops and shuts the
  // transport down. Idempotent; also run by the destructor. Submit after Stop aborts.
  void Stop();

  // Quantiles over every completed request so far (reservoir-sampled past 64k).
  ServingStats Stats() const;

  // Peak depth of the stage-0 (ingress) inbox — the backpressure witness: bounded by the
  // admission window no matter how hard clients over-submit.
  int64_t IngressDepthHighWater() const;

  int num_stages() const { return plan_.num_stages(); }
  const char* transport_name() const { return transport_->name(); }

 private:
  void StageLoop(int stage);
  void CollectLoop();

  // Single-host hop timing: the sender notes its send timestamp per (dest stage, request),
  // the receiver pairs it with the mailbox's delivery stamp to get transport time.
  void NoteSent(int dest_stage, int64_t id);
  std::optional<int64_t> TakeSentNs(int dest_stage, int64_t id);

  PipelinePlan plan_;
  ServingOptions options_;
  int max_inflight_;
  std::unique_ptr<MessageTransport> transport_;  // owns all inboxes; outlives the threads
  std::vector<std::unique_ptr<Sequential>> stage_models_;
  std::vector<Mailbox*> stage_inboxes_;  // [stage], plus the egress inbox at index num_stages
  Mailbox* egress_ = nullptr;

  std::vector<std::thread> stage_threads_;
  std::thread collector_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex mutex_;
  std::condition_variable window_cv_;   // signalled when the admission window opens
  std::condition_variable result_cv_;   // signalled when a result lands
  int inflight_ = 0;
  int64_t next_id_ = 0;
  int64_t completed_ = 0;
  std::map<int64_t, int64_t> start_ns_;  // submit time per in-flight request
  std::map<int64_t, Tensor> results_;    // finished, not yet Wait()ed

  obs::Histogram* latency_ = nullptr;  // "serve/<transport>/request_seconds"

  // Per-stage latency decomposition (see header comment).
  std::vector<obs::Histogram*> transport_hist_;  // serve/<t>/stage<N>/transport_seconds
  std::vector<obs::Histogram*> queue_hist_;      // serve/<t>/stage<N>/queue_seconds
  std::vector<obs::Histogram*> compute_hist_;    // serve/<t>/stage<N>/compute_seconds
  obs::Histogram* egress_transport_hist_ = nullptr;  // serve/<t>/egress/transport_seconds

  std::mutex sent_mutex_;
  std::map<std::pair<int, int64_t>, int64_t> sent_ns_;  // (dest stage, id) -> send ts (ns)
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_SERVING_H_
