// Weight versioning for pipeline-parallel training (paper §3.3).
//
// Modes:
//   kNaive        — no versioning. Forward and backward both use whatever the parameters are
//                   at that moment, so a minibatch's backward generally runs against weights
//                   that already absorbed other minibatches' updates — the "invalid
//                   gradients" baseline the paper warns about.
//   kStashing     — weight stashing: the forward pass uses the latest weights and stashes a
//                   copy; the matching backward swaps the stash back in, so the gradient is a
//                   valid gradient of the loss at the stashed weights.
//   kVerticalSync — additionally pins the version *across* stages: each minibatch carries the
//                   input stage's version number, and every stage runs both passes with its
//                   own snapshot of that version.
//
// The store wraps a stage replica's parameters in place: callers bracket passes with
// BeginForward/EndForward and BeginBackward/EndBackward, and call CommitUpdate after each
// optimizer step.
#ifndef SRC_RUNTIME_WEIGHT_STORE_H_
#define SRC_RUNTIME_WEIGHT_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/stats.h"
#include "src/graph/layer.h"

namespace pipedream {

enum class WeightMode {
  kNaive,
  kStashing,
  kVerticalSync,
};

const char* WeightModeName(WeightMode mode);

class WeightStore {
 public:
  WeightStore(std::vector<Parameter*> params, WeightMode mode);

  WeightMode mode() const { return mode_; }
  // Number of optimizer updates applied so far.
  int64_t version() const { return version_; }

  // Brackets the forward pass of `minibatch`. `input_version` is the version stamped by the
  // input stage (used only by vertical sync). Under stashing, EndForward stashes the weights
  // the forward just used.
  void BeginForward(int64_t minibatch, int64_t input_version);
  void EndForward(int64_t minibatch);

  // Brackets the backward pass: swaps in the weights the forward of `minibatch` used and
  // returns their version. EndBackward restores the latest weights (so the optimizer update
  // applies to them) and releases the stash.
  int64_t BeginBackward(int64_t minibatch);
  void EndBackward(int64_t minibatch);

  // Records that the optimizer applied one update to the (restored) latest weights.
  void CommitUpdate();

  // Logical bytes held by stashed weight copies (excludes the live parameters) — what a
  // naive full-clone-per-stash implementation would allocate.
  int64_t StashBytes() const;
  // Bytes of stash/snapshot storage actually materialized. Under copy-on-write a stash
  // whose tensors still share blocks with the live parameters costs nothing; only tensors
  // whose storage diverged (the optimizer wrote the parameter since the stash was taken)
  // are counted, and shared blocks are deduplicated across stashes. Equals StashBytes()
  // when zero-copy is disabled.
  int64_t MaterializedStashBytes() const;
  size_t StashCount() const { return stashes_.size(); }

  // Staleness of each applied update, in versions: version at update minus version used to
  // compute the gradient. For a straight n-stage pipeline under stashing, stage s observes a
  // constant staleness of n - 1 - s (the formulas of §3.3).
  const RunningStat& staleness() const { return staleness_; }

 private:
  std::vector<Tensor> CopyParams() const;
  void LoadParams(const std::vector<Tensor>& values);

  std::vector<Parameter*> params_;
  WeightMode mode_;
  int64_t version_ = 0;

  struct Stash {
    std::vector<Tensor> values;
    int64_t version = 0;
  };
  std::map<int64_t, Stash> stashes_;        // minibatch id -> weights used by its forward
  std::vector<Tensor> latest_;              // current weights parked during a swapped pass
  bool swapped_ = false;
  int64_t pending_backward_version_ = -1;   // version used by the in-progress backward

  // Vertical sync: snapshots of this stage's weights by version, plus reference counts from
  // in-flight minibatches.
  std::map<int64_t, std::vector<Tensor>> snapshots_;
  std::map<int64_t, int> snapshot_refs_;

  int64_t last_seen_label_ = 0;  // newest vertical-sync label observed

  RunningStat staleness_;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_WEIGHT_STORE_H_
