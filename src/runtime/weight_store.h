// Weight versioning for pipeline-parallel training (paper §3.3; 2BW from the follow-up
// Memory-Efficient Pipeline-Parallel DNN Training — see src/common/weight_mode.h for the
// mode taxonomy).
//
// The store wraps a stage replica's parameters in place: callers bracket passes with
// BeginForward/EndForward and BeginBackward/EndBackward, call BeginUpdate just before the
// optimizer step, and CommitUpdate just after it.
//
// kDoubleBuffered protocol: the forward pass always reads the live (latest) weights and
// records their version; the matching backward swaps in the *shadow* buffer when exactly
// one update committed in between (the 2BW staleness-1 rule), and runs on the live weights
// when none did. BeginUpdate parks the pre-update weights in the shadow buffer (a
// copy-on-write bump), so the store holds at most two weight versions — current + shadow —
// plus the gradient accumulator, regardless of how many minibatches are in flight. A
// version gap of two or more aborts: it means the accumulation boundary is smaller than the
// pipeline's in-flight depth, which 2BW forbids.
#ifndef SRC_RUNTIME_WEIGHT_STORE_H_
#define SRC_RUNTIME_WEIGHT_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/weight_mode.h"
#include "src/graph/layer.h"

namespace pipedream {

class WeightStore {
 public:
  WeightStore(std::vector<Parameter*> params, WeightMode mode);

  WeightMode mode() const { return mode_; }
  // Number of optimizer updates applied so far.
  int64_t version() const { return version_; }

  // Brackets the forward pass of `minibatch`. `input_version` is the version stamped by the
  // input stage (used only by vertical sync). Under stashing, EndForward stashes the weights
  // the forward just used.
  void BeginForward(int64_t minibatch, int64_t input_version);
  void EndForward(int64_t minibatch);

  // Brackets the backward pass: swaps in the weights the forward of `minibatch` used and
  // returns their version. EndBackward restores the latest weights (so the optimizer update
  // applies to them) and releases the stash.
  int64_t BeginBackward(int64_t minibatch);
  void EndBackward(int64_t minibatch);

  // Called immediately before the optimizer step. Under kDoubleBuffered this flips the
  // buffers: the about-to-be-overwritten weights become the shadow version that in-flight
  // minibatches forwarded under them will read at backward time. No-op in other modes.
  void BeginUpdate();

  // Records that the optimizer applied one update to the (restored) latest weights.
  void CommitUpdate();

  // Logical bytes held by stashed weight copies (excludes the live parameters) — what a
  // naive full-clone-per-stash implementation would allocate.
  int64_t StashBytes() const;
  // Bytes of stash/snapshot storage actually materialized. Under copy-on-write a stash
  // whose tensors still share blocks with the live parameters costs nothing; only tensors
  // whose storage diverged (the optimizer wrote the parameter since the stash was taken)
  // are counted, and shared blocks are deduplicated across stashes. Equals StashBytes()
  // when zero-copy is disabled.
  int64_t MaterializedStashBytes() const;
  size_t StashCount() const { return stashes_.size(); }

  // Staleness of each applied update, in versions: version at update minus version used to
  // compute the gradient. For a straight n-stage pipeline under stashing, stage s observes a
  // constant staleness of n - 1 - s (the formulas of §3.3).
  const RunningStat& staleness() const { return staleness_; }

 private:
  std::vector<Tensor> CopyParams() const;
  void LoadParams(const std::vector<Tensor>& values);

  std::vector<Parameter*> params_;
  WeightMode mode_;
  int64_t version_ = 0;

  struct Stash {
    std::vector<Tensor> values;
    int64_t version = 0;
  };
  std::map<int64_t, Stash> stashes_;        // minibatch id -> weights used by its forward
                                            // (version only, no values, under 2BW)
  std::vector<Tensor> latest_;              // current weights parked during a swapped pass
  bool swapped_ = false;
  int64_t pending_backward_version_ = -1;   // version used by the in-progress backward

  // Double buffering (2BW): the previous weight version, parked by BeginUpdate. Exactly one
  // shadow exists no matter the pipeline depth.
  std::vector<Tensor> shadow_;
  int64_t shadow_version_ = -1;

  // Vertical sync: snapshots of this stage's weights by version, plus reference counts from
  // in-flight minibatches.
  std::map<int64_t, std::vector<Tensor>> snapshots_;
  std::map<int64_t, int> snapshot_refs_;

  int64_t last_seen_label_ = 0;  // newest vertical-sync label observed

  RunningStat staleness_;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_WEIGHT_STORE_H_
