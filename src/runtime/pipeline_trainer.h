// Multi-threaded pipeline-parallel training runtime.
//
// One OS thread per stage replica plays the role of a GPU worker: it owns a deep copy of its
// stage's layers, an optimizer, a versioned weight store, and a 1F1B (or GPipe) scheduling
// policy, and exchanges activations/gradients with neighbouring stages through mailboxes.
// This is the real-numerics counterpart of the cluster simulator: identical minibatch
// streams can be trained under 1F1B + weight stashing, naive pipelining, vertical sync,
// GPipe, or BSP data parallelism (a single replicated stage), making statistical-efficiency
// comparisons (paper §5.2, Figures 11/13) apples-to-apples.
#ifndef SRC_RUNTIME_PIPELINE_TRAINER_H_
#define SRC_RUNTIME_PIPELINE_TRAINER_H_

#include <memory>
#include <vector>

#include "src/data/loader.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/graph/sequential.h"
#include "src/optim/optimizer.h"
#include "src/planner/plan.h"
#include "src/runtime/allreduce.h"
#include "src/runtime/mailbox.h"
#include "src/runtime/weight_store.h"
#include "src/schedule/policy.h"
#include "src/simexec/pipeline_sim.h"

namespace pipedream {

struct PipelineTrainerOptions {
  ScheduleKind schedule = ScheduleKind::kOneFOneB;
  WeightMode weight_mode = WeightMode::kStashing;
  int gpipe_microbatches = 4;  // round size for ScheduleKind::kGPipe
  // Activation recomputation (§3.3 / Chen et al.): stash only each minibatch's stage *input*
  // and re-run the forward pass (under the stashed weights) just before the backward,
  // trading compute for activation memory. Identical gradients for deterministic layers;
  // incompatible with Dropout (whose mask would be redrawn).
  bool recompute_activations = false;
  // Gradient accumulation (§3.3's "gradient aggregation"): apply the optimizer every
  // `accumulation_steps` minibatches with the summed gradients scaled by 1/steps, reducing
  // update frequency (and replica sync frequency) without changing the data stream.
  int accumulation_steps = 1;
};

struct EpochStats {
  double mean_loss = 0.0;
  int64_t minibatches = 0;
  double wall_seconds = 0.0;
};

class PipelineTrainer {
 public:
  // `model` is the full network; each stage replica receives a deep copy of its layer slice
  // (replicas therefore start from identical weights). `optimizer_prototype` is cloned per
  // replica. The dataset and loss must outlive the trainer.
  PipelineTrainer(const Sequential& model, const PipelinePlan& plan, const Loss* loss,
                  const Optimizer& optimizer_prototype, const Dataset* dataset,
                  int64_t batch_size, uint64_t seed, PipelineTrainerOptions options = {});
  ~PipelineTrainer();

  PipelineTrainer(const PipelineTrainer&) = delete;
  PipelineTrainer& operator=(const PipelineTrainer&) = delete;

  // Trains one epoch (batches_per_epoch minibatches through the pipeline) and returns the
  // mean training loss. Threads are spawned per call; weights persist across epochs.
  EpochStats TrainEpoch();

  int64_t batches_per_epoch() const;
  int64_t epochs_completed() const { return epochs_completed_; }

  // Deep copy of the full model with the current weights (replica 0 of each stage), for
  // evaluation or checkpointing.
  std::unique_ptr<Sequential> AssembleModel() const;

  // Mean classification accuracy of the assembled model over `eval`.
  double EvaluateAccuracy(const Dataset& eval, int64_t eval_batch) const;
  // Mean loss of the assembled model over `eval` (e.g. for perplexity).
  double EvaluateLoss(const Dataset& eval, int64_t eval_batch) const;

  // Observed update staleness (versions between gradient computation and application) for a
  // stage's replica 0 — validates the §3.3 staleness formulas.
  const RunningStat& StageStaleness(int stage) const;
  // Peak bytes of stashed weight copies observed on a stage's replica 0.
  int64_t StagePeakStashBytes(int stage) const;
  // Peak bytes of stashed activations (layer contexts + recompute inputs) on replica 0.
  int64_t StagePeakActivationBytes(int stage) const;

  const PipelinePlan& plan() const { return plan_; }

  // Per-stage checkpointing (§4): each stage's replica-0 parameters are written for the
  // given epoch; LoadCheckpoint restores every stage (and broadcasts to replicas).
  Status SaveCheckpoint(class CheckpointManager* manager, int64_t epoch) const;
  Status LoadCheckpoint(const class CheckpointManager& manager, int64_t epoch);

 private:
  struct StageRuntime;  // one per stage replica; defined in the .cc

  StageRuntime* RuntimeFor(int stage, int64_t minibatch) const;

  PipelinePlan plan_;
  std::unique_ptr<Sequential> template_model_;  // pristine structure for AssembleModel
  const Loss* loss_;
  const Dataset* dataset_;
  int64_t batch_size_;
  uint64_t seed_;
  PipelineTrainerOptions options_;
  int num_model_layers_;

  std::vector<std::unique_ptr<StageRuntime>> runtimes_;           // flattened
  std::vector<std::vector<StageRuntime*>> by_stage_;              // [stage][replica]
  std::vector<std::unique_ptr<GradientAllReducer>> stage_reducers_;
  std::unique_ptr<FlushBarrier> flush_barrier_;                   // GPipe only
  int64_t epochs_completed_ = 0;
  int64_t next_global_minibatch_ = 0;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_PIPELINE_TRAINER_H_
