// Multi-threaded pipeline-parallel training runtime.
//
// One OS thread per stage replica plays the role of a GPU worker: it owns a deep copy of its
// stage's layers, an optimizer, a versioned weight store, and a scheduling policy from the
// zoo of docs/SCHEDULES.md (1F1B, GPipe, PipeDream-Flush, interleaved virtual stages), and
// exchanges activations/gradients with neighbouring stages through mailboxes. Under
// kInterleaved one thread per *physical worker* instead serializes that worker's chunk-stage
// runtimes in a statically generated order (src/schedule/interleaved.h). This is the
// real-numerics counterpart of the cluster simulator: identical minibatch streams can be
// trained under 1F1B + weight stashing, naive pipelining, vertical sync, GPipe, flush, or
// BSP data parallelism (a single replicated stage), making statistical-efficiency
// comparisons (paper §5.2, Figures 11/13) apples-to-apples.
//
// Failure handling (paper §4): when recovery is enabled, every worker emits heartbeats, a
// watchdog classifies silent workers as dead (and a progress stall as a wedged pipeline),
// and TrainEpoch runs a detection → quiesce → restore → resume state machine: in-flight
// minibatches are discarded, every stage reloads from the newest complete checkpoint epoch,
// the dead worker is respawned (or, for a replicated stage, ejected from the gradient
// all-reduce ring with the 1F1B-RR assignment re-balanced over the survivors), and training
// replays forward from the restored epoch boundary. Weight stashing makes the replay
// semantically transparent; with a stateless optimizer it is bitwise identical to an
// uninterrupted run restored from the same checkpoint.
#ifndef SRC_RUNTIME_PIPELINE_TRAINER_H_
#define SRC_RUNTIME_PIPELINE_TRAINER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/data/loader.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/graph/sequential.h"
#include "src/obs/bubble.h"
#include "src/obs/straggler.h"
#include "src/optim/optimizer.h"
#include "src/planner/plan.h"
#include "src/runtime/allreduce.h"
#include "src/runtime/fault.h"
#include "src/runtime/mailbox.h"
#include "src/runtime/transport.h"
#include "src/runtime/weight_store.h"
#include "src/schedule/interleaved.h"
#include "src/schedule/policy.h"
#include "src/simexec/pipeline_sim.h"

namespace pipedream {

class CheckpointManager;
namespace obs {
class HealthServer;
}

struct PipelineTrainerOptions {
  // Which entry of the schedule zoo (docs/SCHEDULES.md) to execute. The PIPEDREAM_SCHEDULE
  // env variable (1f1b|gpipe|model_parallel|flush|interleaved) takes precedence.
  ScheduleKind schedule = ScheduleKind::kOneFOneB;
  // Global weight-mode override. Unset (the default), every stage uses the mode recorded in
  // its PipelinePlan StageAssignment (kStashing unless the planner chose otherwise — the
  // per-stage knob that lets a memory-squeezed stage run 2BW while its neighbours stash).
  // Set, it forces one mode everywhere, as does the PIPEDREAM_WEIGHT_MODE env variable
  // (naive|stashing|vertical_sync|double_buffered|2bw), which takes precedence over both.
  std::optional<WeightMode> weight_mode;
  int gpipe_microbatches = 4;  // round size per flush (kGPipe / kPipeDreamFlush)
  // Virtual chunk-stages per physical worker for ScheduleKind::kInterleaved: the (straight)
  // plan's num_stages must be divisible by this, chunk-stage s runs on physical worker
  // s mod (num_stages / interleave_chunks), and each worker executes its chunks' ops in the
  // statically generated order of BuildInterleavedSchedule (src/schedule/interleaved.h).
  // The PIPEDREAM_CHUNKS env variable takes precedence. Ignored by other schedules.
  int interleave_chunks = 1;
  // Activation recomputation (§3.3 / Chen et al.): stash only each minibatch's stage *input*
  // and re-run the forward pass (under the stashed weights) just before the backward,
  // trading compute for activation memory. Identical gradients for deterministic layers;
  // incompatible with Dropout (whose mask would be redrawn). `true` forces recomputation on
  // every stage; `false` defers to the planner's per-stage StageAssignment::recompute flags
  // (set by ChooseRecompute when a stage busts the device budget). The PIPEDREAM_RECOMPUTE
  // env variable (0|1|on|off|true|false) overrides both, globally.
  bool recompute_activations = false;
  // Gradient accumulation (§3.3's "gradient aggregation"): apply the optimizer every
  // `accumulation_steps` minibatches with the summed gradients scaled by 1/steps, reducing
  // update frequency (and replica sync frequency) without changing the data stream.
  // kDoubleBuffered requires this to cover each 2BW stage's in-flight depth (checked at
  // construction) so two weight buffers always suffice.
  int accumulation_steps = 1;
  // Stage-to-stage message transport. Unset = in-proc mailboxes; the PIPEDREAM_TRANSPORT
  // env variable (inproc|socket) takes precedence over both, mirroring the weight-mode
  // override discipline.
  std::optional<TransportKind> transport;
  // --- elastic re-planning hooks (see src/runtime/elastic.h) ---
  // First epoch this trainer trains. A trainer rebuilt under a new plan after a re-plan
  // resumes at the epoch the old trainer stopped at, keeping the global epoch grid (and the
  // deterministic minibatch stream) intact instead of restarting at 0.
  int64_t start_epoch = 0;
  // Epoch length override in minibatches (0 = derive from the dataset and plan). Re-planning
  // changes the plan's natural synchronization round, so the elastic layer pins one global
  // epoch length divisible by every candidate plan's round; it must be a multiple of this
  // plan's round and at least the pipeline depth.
  int64_t epoch_length = 0;
  // Plan generation stamped into checkpoint manifests; the elastic layer bumps it on every
  // re-plan so checkpoints record which plan wrote them.
  int64_t plan_generation = 0;
};

// Tuning for failure detection and recovery. Defaults suit unit-test-sized models; real
// deployments would scale the timeouts with per-minibatch compute time.
struct RecoveryOptions {
  int heartbeat_timeout_ms = 2000;  // silent worker -> declared dead
  int progress_timeout_ms = 4000;   // no completed work anywhere -> wedged pipeline
  int worker_tick_ms = 20;          // mailbox-wait granularity (heartbeat cadence)
  int watchdog_poll_ms = 5;
  int max_recoveries = 8;           // recoveries per TrainEpoch before giving up
  bool allow_degraded = true;       // eject dead replicas of replicated stages
  bool auto_checkpoint = true;      // SaveCheckpoint after every successful epoch
  // Re-admission of ejected replicas: a replica ejected into degraded mode rejoins its
  // stage's rotation once this many consecutive epochs complete with no failure anywhere
  // (the epoch-grid analog of a heartbeat probation window — the respawned worker must sit
  // out N clean epochs before it is trusted with minibatches again). 0 disables rejoin
  // (the pre-elastic behavior). The PIPEDREAM_REJOIN_PROBATION env variable overrides.
  int rejoin_probation_epochs = 0;
};

// One detected failure and what recovery did about it.
struct FailureRecord {
  int64_t epoch = 0;        // epoch being trained when the failure was detected
  int stage = -1;           // -1 when no specific worker was implicated (e.g. lost message)
  int replica = -1;
  std::string reason;
  bool degraded = false;    // true when the replica was ejected instead of respawned
  bool worker_dead = false;  // the implicated worker itself died (vs a lost/corrupt message)
  int64_t resumed_epoch = -1;  // checkpoint epoch recovery restored from (-1 = initial)
};

struct EpochStats {
  double mean_loss = 0.0;
  int64_t minibatches = 0;
  double wall_seconds = 0.0;
  int recoveries = 0;           // recovery cycles TrainEpoch performed for this epoch
  int failures_detected = 0;    // failures observed (>= recoveries when several coincide)
};

class PipelineTrainer {
 public:
  // `model` is the full network; each stage replica receives a deep copy of its layer slice
  // (replicas therefore start from identical weights). `optimizer_prototype` is cloned per
  // replica. The dataset and loss must outlive the trainer.
  PipelineTrainer(const Sequential& model, const PipelinePlan& plan, const Loss* loss,
                  const Optimizer& optimizer_prototype, const Dataset* dataset,
                  int64_t batch_size, uint64_t seed, PipelineTrainerOptions options = {});
  ~PipelineTrainer();

  PipelineTrainer(const PipelineTrainer&) = delete;
  PipelineTrainer& operator=(const PipelineTrainer&) = delete;

  // Arms crash recovery: on a detected failure TrainEpoch quiesces, restores from
  // `manager`'s newest complete checkpoint epoch (or the initial weights when none exists),
  // and resumes. `manager` may be null only for tests that want detection without restore;
  // it must outlive the trainer.
  void EnableRecovery(CheckpointManager* manager, RecoveryOptions options = {});

  // Attaches a deterministic fault injector consulted by every worker and send. Pass null
  // to detach. The injector must outlive the trainer.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  // Trains one epoch (batches_per_epoch minibatches through the pipeline) and returns the
  // mean training loss. Threads are spawned per call; weights persist across epochs. With
  // recovery enabled this call survives injected/real failures: it detects, restores, and
  // replays until the epoch completes (or max_recoveries is exhausted).
  EpochStats TrainEpoch();

  int64_t batches_per_epoch() const;
  int64_t epochs_completed() const { return epochs_completed_; }

  // Every failure detected over the trainer's lifetime, in detection order.
  const std::vector<FailureRecord>& failures() const { return failures_; }
  // Replicas of `stage` still in the round-robin rotation (shrinks on degraded recovery).
  int ActiveReplicas(int stage) const;

  // Deep copy of the full model with the current weights (replica 0 of each stage), for
  // evaluation or checkpointing.
  std::unique_ptr<Sequential> AssembleModel() const;

  // Mean classification accuracy of the assembled model over `eval`.
  double EvaluateAccuracy(const Dataset& eval, int64_t eval_batch) const;
  // Mean loss of the assembled model over `eval` (e.g. for perplexity).
  double EvaluateLoss(const Dataset& eval, int64_t eval_batch) const;

  // Observed update staleness (versions between gradient computation and application) for a
  // stage's replica 0 — validates the §3.3 staleness formulas.
  const RunningStat& StageStaleness(int stage) const;
  // Peak bytes of stashed weight copies observed on a stage's replica 0 (logical, i.e.
  // what naive full clones would occupy).
  int64_t StagePeakStashBytes(int stage) const;
  // Same peak, counting only bytes the stashes actually materialized under copy-on-write
  // (blocks no longer shared with the live parameters; see WeightStore).
  int64_t StagePeakMaterializedStashBytes(int stage) const;
  // Peak bytes of stashed activations (layer contexts + recompute inputs) on replica 0.
  int64_t StagePeakActivationBytes(int stage) const;

  const PipelinePlan& plan() const { return plan_; }

  // Per-stage bubble-time attribution (starved / backpressured / weight-sync / recovery)
  // aggregated over the current epoch window; always on. See obs/bubble.h.
  const obs::BubbleAccountant& bubbles() const { return *bubbles_; }
  // Online per-stage straggler scores (smoothed positive z of op times); the elastic layer
  // polls this as a proactive re-plan trigger. See obs/straggler.h.
  const obs::StragglerDetector& straggler() const { return *straggler_; }

  // The weight mode `stage` actually runs: the PIPEDREAM_WEIGHT_MODE / options override
  // when present, otherwise the plan's per-stage assignment (flush-family schedules force
  // kNaive everywhere — flushes make versioning unnecessary).
  WeightMode StageWeightMode(int stage) const;

  // Whether `stage` actually recomputes activations: the PIPEDREAM_RECOMPUTE override when
  // present, otherwise options.recompute_activations OR'd with the plan's per-stage flag.
  bool StageRecompute(int stage) const;

  // Per-stage checkpointing (§4): each stage's replica-0 parameters are written for the
  // given epoch; LoadCheckpoint restores every stage (and broadcasts to replicas).
  Status SaveCheckpoint(class CheckpointManager* manager, int64_t epoch) const;
  Status LoadCheckpoint(const class CheckpointManager& manager, int64_t epoch);

 private:
  struct StageRuntime;  // one per stage replica; defined in the .cc

  StageRuntime* RuntimeFor(int stage, int64_t minibatch) const;
  StageRuntime* ActiveRuntime(int stage) const;  // replica 0 of the active rotation

  // Epoch length in minibatches: batches_per_epoch truncated to a whole number of every
  // synchronization round. Constant across the trainer's lifetime (epoch boundaries must
  // stay aligned across recoveries).
  int64_t EpochLength() const;

  // Runs the workers (and watchdog) over [begin, end). Returns false if the attempt was
  // aborted by a failure.
  bool RunRange(int64_t begin, int64_t end, EpochStats* stats);

  // Executes one physical worker's statically generated interleaved op list strictly in
  // order over its owned chunk-stage runtimes (kInterleaved only). `*current` tracks the
  // runtime of the op being executed so a thrown failure is attributed to the right stage.
  void RunWorkerInterleaved(const std::vector<StageRuntime*>& owned,
                            const std::vector<ChunkOp>& ops, StageRuntime** current);

  // Checksums + injects + routes one boundary message (called from worker threads).
  void Send(StageRuntime* from, int dest_stage, PipeMessage message);

  // Records a failure, flips the abort flag, and wakes every blocked worker. `rt` is null
  // when no specific worker is implicated. Thread-safe.
  void NoteFailure(StageRuntime* rt, const std::string& reason);

  // Post-quiesce recovery: eject or revive dead replicas, restore weights from the newest
  // complete checkpoint (or initial weights), reset weight stores and optimizer state.
  // Returns the epoch to replay from.
  int64_t HandleFailureAndRestore();

  // Re-admits ejected replicas whose probation window has elapsed (called at the top of
  // TrainEpoch, i.e. at an update boundary where surviving replicas hold bitwise-identical
  // weights a rejoiner can copy). Restores the stage's original replica rotation order.
  void MaybeRejoinEjected();

  void RestoreInitialWeights();

  PipelinePlan plan_;
  std::unique_ptr<Sequential> template_model_;  // pristine structure for AssembleModel
  const Loss* loss_;
  const Dataset* dataset_;
  int64_t batch_size_;
  uint64_t seed_;
  PipelineTrainerOptions options_;
  int num_model_layers_;
  std::unique_ptr<Optimizer> optimizer_prototype_;  // fresh-state source for recovery

  std::unique_ptr<obs::BubbleAccountant> bubbles_;     // per-stage stall attribution
  std::unique_ptr<obs::StragglerDetector> straggler_;  // per-stage slow-drift scores
  obs::HealthServer* health_ = nullptr;  // process-wide endpoint (null unless env-armed)

  std::unique_ptr<MessageTransport> transport_;  // owns every stage inbox; outlives runtimes_
  std::vector<std::unique_ptr<StageRuntime>> runtimes_;           // flattened, owns all
  std::vector<std::vector<StageRuntime*>> by_stage_;              // [stage][replica], fixed
  std::vector<std::vector<StageRuntime*>> active_by_stage_;       // shrinks on ejection
  std::vector<std::unique_ptr<GradientAllReducer>> stage_reducers_;
  std::unique_ptr<FlushBarrier> flush_barrier_;                   // flush-family schedules
  std::optional<bool> recompute_override_;  // PIPEDREAM_RECOMPUTE, when set
  int64_t epochs_completed_ = 0;
  int64_t next_global_minibatch_ = 0;

  // --- failure handling
  FaultInjector* injector_ = nullptr;
  CheckpointManager* manager_ = nullptr;
  RecoveryOptions recovery_;
  bool recovery_enabled_ = false;
  std::atomic<bool> epoch_abort_{false};
  std::atomic<int64_t> failure_noted_ns_{0};  // recovery-latency clock (first failure of a burst)
  std::mutex failure_mutex_;
  std::vector<FailureRecord> failures_;
  size_t resolved_failures_ = 0;  // records before this index have resumed_epoch filled in

  // --- rejoin probation (ejected replicas awaiting re-admission)
  struct EjectedReplica {
    StageRuntime* rt = nullptr;
    int64_t ejected_epoch = 0;
  };
  std::vector<EjectedReplica> ejected_replicas_;
  int64_t last_failure_epoch_ = -1;  // any failure resets every pending probation clock
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_PIPELINE_TRAINER_H_
