#include "src/runtime/elastic.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/data/loader.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pipedream {
namespace {

int64_t Lcm(int64_t a, int64_t b) { return a / std::gcd(a, b) * b; }

// Least common multiple of every possible per-plan synchronization round over a cluster of
// `max_workers` devices: any stage's replica count lies in [1, max_workers], so an epoch
// length divisible by lcm(1..max_workers) is divisible by ANY plan's round — the property
// that lets checkpoints from different plan generations share one global epoch grid.
int64_t UniversalRound(int max_workers) {
  int64_t round = 1;
  for (int m = 2; m <= max_workers; ++m) {
    round = Lcm(round, m);
  }
  return round;
}

}  // namespace

std::vector<WorkerSpec> WorkerSpecsFromEnv() {
  std::vector<WorkerSpec> specs;
  const char* env = std::getenv("PIPEDREAM_WORKER_SPEEDS");
  if (env == nullptr || *env == 0) {
    return specs;
  }
  for (const std::string& part : StrSplit(env, ',')) {
    char* end = nullptr;
    const double speed = std::strtod(part.c_str(), &end);
    PD_CHECK(end != part.c_str() && *end == 0 && speed > 0.0)
        << "bad PIPEDREAM_WORKER_SPEEDS component '" << part << "'";
    WorkerSpec spec;
    spec.speed = speed;
    specs.push_back(spec);
  }
  return specs;
}

ElasticTrainer::ElasticTrainer(const Sequential& model, const ModelProfile& profile,
                               const Loss* loss, const Optimizer& optimizer_prototype,
                               const Dataset* dataset, int64_t batch_size, uint64_t seed,
                               std::vector<WorkerSpec> cluster, CheckpointManager* manager,
                               ElasticOptions options)
    : initial_model_(model.Clone()),
      profile_(profile),
      loss_(loss),
      optimizer_prototype_(optimizer_prototype.CloneFresh()),
      dataset_(dataset),
      batch_size_(batch_size),
      seed_(seed),
      manager_(manager),
      options_(std::move(options)),
      cluster_(std::move(cluster)) {
  PD_CHECK(manager_ != nullptr) << "elastic migration requires a CheckpointManager";
  PD_CHECK(loss_ != nullptr && dataset_ != nullptr);
  PD_CHECK_EQ(options_.trainer.start_epoch, 0) << "start_epoch is managed by ElasticTrainer";
  PD_CHECK_EQ(options_.trainer.epoch_length, 0) << "epoch_length is managed by ElasticTrainer";
  PD_CHECK_EQ(options_.trainer.plan_generation, 0)
      << "plan_generation is managed by ElasticTrainer";
  if (cluster_.empty()) {
    cluster_ = WorkerSpecsFromEnv();
  }
  PD_CHECK(!cluster_.empty())
      << "no workers: pass a cluster or set PIPEDREAM_WORKER_SPEEDS";
  if (const char* env = std::getenv("PIPEDREAM_ELASTIC_REPLAN")) {
    options_.replan_on_failure = std::atoi(env) != 0;
  }
  if (const char* env = std::getenv("PIPEDREAM_STRAGGLER_REPLAN")) {
    char* end = nullptr;
    const double threshold = std::strtod(env, &end);
    PD_CHECK(end != env && *end == 0 && threshold >= 0.0)
        << "PIPEDREAM_STRAGGLER_REPLAN must be a non-negative number, got '" << env << "'";
    options_.straggler_replan_threshold = threshold;
  }
  alive_.assign(cluster_.size(), true);

  // Pin the global epoch grid: one epoch length every plan generation can live on.
  if (options_.epoch_length > 0) {
    epoch_length_ = options_.epoch_length;
  } else {
    int64_t round = UniversalRound(static_cast<int>(cluster_.size()));
    if (options_.trainer.schedule == ScheduleKind::kGPipe) {
      round = Lcm(round, options_.trainer.gpipe_microbatches);
    }
    if (options_.trainer.accumulation_steps > 1) {
      round = Lcm(round, options_.trainer.accumulation_steps);
    }
    MinibatchLoader probe(dataset_, batch_size_, seed_);
    epoch_length_ = probe.batches_per_epoch() / round * round;
    PD_CHECK_GT(epoch_length_, 0)
        << "dataset too small for one universal synchronization round (" << round
        << " minibatches) per epoch";
  }

  plan_ = PlanOverLive();
  BuildTrainer(/*start_epoch=*/0);
  obs::GetGauge("elastic/plan_generation")->Set(generation_);
  obs::GetGauge("elastic/live_workers")->Set(live_workers());
}

ElasticTrainer::~ElasticTrainer() = default;

PipelinePlan ElasticTrainer::PlanOverLive() const {
  std::vector<WorkerSpec> live_specs;
  std::vector<int> live_ids;
  for (size_t w = 0; w < cluster_.size(); ++w) {
    if (alive_[w]) {
      live_specs.push_back(cluster_[w]);
      live_ids.push_back(static_cast<int>(w));
    }
  }
  PD_CHECK(!live_specs.empty()) << "every worker is dead";
  const PartitionResult result = PartitionHeterogeneous(
      profile_, live_specs, options_.bandwidth_bytes_per_sec, options_.partitioner);
  // The partitioner's ids index the live subset; plans speak global cluster ids.
  std::vector<StageAssignment> stages = result.plan.stages();
  for (StageAssignment& stage : stages) {
    for (int& id : stage.workers) {
      id = live_ids[static_cast<size_t>(id)];
    }
    std::sort(stage.workers.begin(), stage.workers.end());
  }
  PipelinePlan plan{std::move(stages)};
  plan.Validate(profile_.num_layers());
  return plan;
}

void ElasticTrainer::BuildTrainer(int64_t start_epoch) {
  PipelineTrainerOptions topts = options_.trainer;
  topts.start_epoch = start_epoch;
  topts.epoch_length = epoch_length_;
  topts.plan_generation = generation_;
  trainer_ = std::make_unique<PipelineTrainer>(*initial_model_, plan_, loss_,
                                               *optimizer_prototype_, dataset_, batch_size_,
                                               seed_, topts);
  trainer_->EnableRecovery(manager_, options_.recovery);
  if (injector_ != nullptr) {
    trainer_->SetFaultInjector(injector_);
  }
  if (start_epoch > 0) {
    // Migrate state across the plan change: the newest complete plan-tagged checkpoint is
    // the boundary epoch's; LoadCheckpoint remaps its stages onto OUR stages by layer
    // range, so moved stage boundaries restore correctly.
    const int64_t resume = manager_->LatestCompleteEpoch(plan_.num_stages(), start_epoch - 1);
    PD_CHECK_GE(resume, 0) << "no complete checkpoint to migrate from at epoch "
                           << start_epoch - 1;
    PD_CHECK_EQ(resume, start_epoch - 1)
        << "migration checkpoint missing: wanted epoch " << start_epoch - 1 << ", newest is "
        << resume;
    const Status restored = trainer_->LoadCheckpoint(*manager_, resume);
    PD_CHECK(restored.ok()) << "elastic migration failed to restore checkpoint epoch "
                            << resume << ": " << restored.ToString();
  }
}

void ElasticTrainer::Replan(int64_t boundary_epoch) {
  PD_TRACE_SPAN("replan");
  const int64_t t0 = obs::TraceClockNs();
  if (boundary_epoch > 0) {
    // The pipeline is quiesced (between TrainEpoch calls = an update boundary on the epoch
    // grid). Force the outgoing plan's checkpoint + manifest for the last completed epoch so
    // migration never depends on auto_checkpoint having been left on.
    const Status saved = trainer_->SaveCheckpoint(manager_, boundary_epoch - 1);
    PD_CHECK(saved.ok()) << "pre-replan checkpoint failed: " << saved.ToString();
  }
  plan_ = PlanOverLive();
  ++generation_;
  BuildTrainer(boundary_epoch);
  ++replans_;
  last_replan_seconds_ = static_cast<double>(obs::TraceClockNs() - t0) * 1e-9;
  obs::GetHistogram("elastic/replan_seconds")->Observe(last_replan_seconds_);
  obs::GetCounter("elastic/replans")->Increment();
  obs::GetGauge("elastic/plan_generation")->Set(generation_);
  obs::GetGauge("elastic/live_workers")->Set(live_workers());
  PD_LOG(INFO) << "re-planned at epoch " << boundary_epoch << ": generation " << generation_
               << ", " << live_workers() << " live workers, config "
               << plan_.ConfigString(profile_.num_layers()) << " ("
               << StrFormat("%.1f", last_replan_seconds_ * 1e3) << " ms)";
}

void ElasticTrainer::ScanFailures() {
  const std::vector<FailureRecord>& failures = trainer_->failures();
  for (size_t i = scanned_failures_; i < failures.size(); ++i) {
    const FailureRecord& f = failures[i];
    // Only an EJECTED worker is treated as permanently lost: the inner trainer respawns
    // unreplicated-stage workers in place (a transient fault on the same device), but a
    // degraded ejection is exactly the forever-degraded state re-planning exists to heal.
    if (!f.worker_dead || !f.degraded || f.stage < 0) {
      continue;
    }
    const StageAssignment& stage = plan_.stage(f.stage);
    PD_CHECK(f.replica >= 0 && f.replica < static_cast<int>(stage.workers.size()));
    const int worker = stage.workers[static_cast<size_t>(f.replica)];
    if (alive_[static_cast<size_t>(worker)]) {
      alive_[static_cast<size_t>(worker)] = false;
      obs::GetGauge("elastic/live_workers")->Set(live_workers());
      PD_LOG(WARNING) << "worker " << worker << " lost (stage " << f.stage << " replica "
                      << f.replica << "); "
                      << (options_.replan_on_failure ? "re-plan scheduled for the next epoch"
                                                     : "staying degraded");
      if (options_.replan_on_failure) {
        pending_replan_ = true;
      }
    }
  }
  scanned_failures_ = failures.size();
}

EpochStats ElasticTrainer::TrainEpoch() {
  if (pending_replan_) {
    Replan(trainer_->epochs_completed());
    pending_replan_ = false;
  }
  EpochStats stats = trainer_->TrainEpoch();
  ScanFailures();
  // Proactive drift check: a stage scoring past the straggler threshold is healed like a
  // failure, but before it degrades to one. The rebuilt trainer starts a fresh detector,
  // so one drifting stage triggers at most one re-plan per drift episode.
  if (options_.straggler_replan_threshold > 0.0 && !pending_replan_) {
    const obs::StragglerDetector& detector = trainer_->straggler();
    const int worst = detector.WorstStage(options_.straggler_replan_threshold);
    if (worst >= 0) {
      const double score = detector.Score(worst);
      // Fold the observed drift into the straggling workers' speed factors so the
      // re-partition moves layers off them instead of reproducing the old plan.
      for (const int w : plan_.stage(worst).workers) {
        cluster_[static_cast<size_t>(w)].speed /= 1.0 + score;
      }
      obs::GetCounter("elastic/straggler_replans")->Increment();
      PD_LOG(WARNING) << "stage " << worst << " straggling (score "
                      << StrFormat("%.2f", score) << " >= "
                      << StrFormat("%.2f", options_.straggler_replan_threshold)
                      << "); re-plan scheduled for the next epoch";
      pending_replan_ = true;
    }
  }
  if (stats.wall_seconds > 0 && stats.minibatches > 0) {
    // Per-generation throughput: one callback gauge per plan generation, so a dump shows
    // the degraded-vs-replanned recovery the bench quantifies.
    const double mbps = static_cast<double>(stats.minibatches) / stats.wall_seconds;
    auto it = gen_throughput_.find(generation_);
    if (it == gen_throughput_.end()) {
      auto cell = std::make_shared<double>(mbps);
      gen_throughput_.emplace(generation_, cell);
      obs::MetricsRegistry::Get().SetCallback(
          StrFormat("elastic/gen%lld/minibatches_per_sec",
                    static_cast<long long>(generation_)),
          [cell] { return *cell; });
    } else {
      *it->second = mbps;
    }
  }
  return stats;
}

int ElasticTrainer::AddWorker(WorkerSpec spec) {
  PD_CHECK_GT(spec.speed, 0.0);
  const int id = static_cast<int>(cluster_.size());
  // The pinned epoch length must stay divisible by every plan round the larger cluster can
  // produce; size the cluster (or pass an explicit epoch_length) for the eventual maximum.
  int64_t round = UniversalRound(id + 1);
  if (options_.trainer.accumulation_steps > 1) {
    round = Lcm(round, options_.trainer.accumulation_steps);
  }
  PD_CHECK_EQ(epoch_length_ % round, 0)
      << "epoch length " << epoch_length_ << " cannot host " << id + 1
      << " workers; construct with the eventual cluster (dead members) or a compatible "
         "epoch_length";
  cluster_.push_back(spec);
  alive_.push_back(true);
  pending_replan_ = true;
  PD_LOG(INFO) << "worker " << id << " (speed " << StrFormat("%.2f", spec.speed)
               << ") joining at the next epoch boundary";
  return id;
}

void ElasticTrainer::ReviveWorker(int worker_id) {
  PD_CHECK(worker_id >= 0 && worker_id < static_cast<int>(cluster_.size()));
  PD_CHECK(!alive_[static_cast<size_t>(worker_id)])
      << "worker " << worker_id << " is already live";
  alive_[static_cast<size_t>(worker_id)] = true;
  pending_replan_ = true;
  PD_LOG(INFO) << "worker " << worker_id << " revived; rejoining at the next epoch boundary";
}

void ElasticTrainer::SetFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  if (trainer_ != nullptr) {
    trainer_->SetFaultInjector(injector);
  }
}

const PipelinePlan& ElasticTrainer::plan() const { return plan_; }

int64_t ElasticTrainer::epochs_completed() const { return trainer_->epochs_completed(); }

int ElasticTrainer::live_workers() const {
  return static_cast<int>(std::count(alive_.begin(), alive_.end(), true));
}

bool ElasticTrainer::worker_alive(int worker_id) const {
  PD_CHECK(worker_id >= 0 && worker_id < static_cast<int>(cluster_.size()));
  return alive_[static_cast<size_t>(worker_id)];
}

std::unique_ptr<Sequential> ElasticTrainer::AssembleModel() const {
  return trainer_->AssembleModel();
}

}  // namespace pipedream
