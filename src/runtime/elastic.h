// Elastic re-planning: self-healing pipelines over heterogeneous workers.
//
// PR 2's fault path detects a dead worker and keeps the pipeline alive, but a lost replica
// leaves the plan degraded forever and the partitioner keeps assuming uniform devices. This
// layer closes the loop the paper's own §3.1 profiler→partitioner machinery suggests: when
// cluster membership changes (a worker dies, a worker joins, a dead worker comes back), the
// ElasticTrainer re-runs the partitioner over the *live* WorkerSpec set — per-worker speed
// factors included — and migrates training onto the new plan:
//
//   quiesce          TrainEpoch returns; every in-flight minibatch is retired, every stage
//                    sits at an update boundary on the global epoch grid.
//   plan-tagged ckpt the outgoing plan writes its stage files plus a PlanManifest (stage
//                    count, layer ranges, generation, CRC) for the boundary epoch.
//   re-partition     PartitionHeterogeneous over the live workers' speeds/memory.
//   rebuild          a fresh PipelineTrainer under the new plan: new stage slices,
//                    mailboxes/transport endpoints, all-reduce rings, weight stores.
//   layer-range      weights restore by LAYER RANGE via the manifest — stage boundaries
//   restore          moved, so stage->stage restore would be wrong.
//   resume           start_epoch/epoch_length pin the new trainer to the same global epoch
//                    grid; the post-resume loss stream is bitwise what a fresh trainer
//                    launched from the migrated checkpoint would produce.
//
// The simulator mirrors the same flow (SimFault replan/join events) so policy code can
// price re-plan-vs-degraded without running threads; bench_elastic measures both.
#ifndef SRC_RUNTIME_ELASTIC_H_
#define SRC_RUNTIME_ELASTIC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/planner/partitioner.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/pipeline_trainer.h"

namespace pipedream {

struct ElasticOptions {
  // Options forwarded to every inner PipelineTrainer generation. start_epoch, epoch_length,
  // and plan_generation are managed by the elastic layer and must be left at their defaults.
  PipelineTrainerOptions trainer;
  RecoveryOptions recovery;
  PartitionerOptions partitioner;
  // Interconnect bandwidth fed to the partitioner and predictor (flat topology).
  double bandwidth_bytes_per_sec = 1e9;
  // Global epoch length in minibatches, constant across plan generations. 0 = auto: the
  // dataset's batches-per-epoch truncated to a multiple of lcm(1..cluster_size) *
  // accumulation_steps, which divides every plan's synchronization round for any live set.
  int64_t epoch_length = 0;
  // Re-plan when a worker is lost (vs staying degraded forever, the pre-elastic behavior).
  // The PIPEDREAM_ELASTIC_REPLAN env variable (0|1) overrides.
  bool replan_on_failure = true;
  // Proactive straggler-triggered re-planning: when > 0, a stage whose smoothed straggler
  // score (obs/straggler.h) reaches this threshold at an epoch boundary schedules a
  // re-plan, first scaling the straggling workers' speed factors down by the observed
  // drift so the re-partition actually moves layers off them. The
  // PIPEDREAM_STRAGGLER_REPLAN env variable (a non-negative double) overrides; 0 disables.
  double straggler_replan_threshold = 0.0;
};

// Parses PIPEDREAM_WORKER_SPEEDS ("1,1,0.5" = three workers, the third at half speed) into
// WorkerSpecs. Empty when the variable is unset or empty.
std::vector<WorkerSpec> WorkerSpecsFromEnv();

class ElasticTrainer {
 public:
  // `cluster` describes every worker that may ever participate; ids are indices into it.
  // Empty = read PIPEDREAM_WORKER_SPEEDS (which must then be set). The initial plan is the
  // heterogeneous partition over the full cluster. `manager` stores the plan-tagged
  // checkpoints migration depends on and must be non-null and outlive the trainer.
  ElasticTrainer(const Sequential& model, const ModelProfile& profile, const Loss* loss,
                 const Optimizer& optimizer_prototype, const Dataset* dataset,
                 int64_t batch_size, uint64_t seed, std::vector<WorkerSpec> cluster,
                 CheckpointManager* manager, ElasticOptions options = {});
  ~ElasticTrainer();

  ElasticTrainer(const ElasticTrainer&) = delete;
  ElasticTrainer& operator=(const ElasticTrainer&) = delete;

  // Trains one epoch on the global epoch grid. Applies any pending membership change
  // (death detected last epoch, queued join/revival) by re-planning FIRST, so the epoch
  // runs entirely under one plan. Failures inside the epoch are handled by the inner
  // trainer's recovery machinery; permanently lost workers trigger a re-plan at the next
  // boundary.
  EpochStats TrainEpoch();

  // Queues a brand-new worker; it is admitted (with a re-plan) at the next epoch boundary.
  // Returns the new worker's id.
  int AddWorker(WorkerSpec spec);
  // Marks a previously lost worker live again; re-admitted at the next epoch boundary.
  void ReviveWorker(int worker_id);

  void SetFaultInjector(FaultInjector* injector);

  const PipelinePlan& plan() const;
  PipelineTrainer* trainer() { return trainer_.get(); }
  int64_t plan_generation() const { return generation_; }
  int64_t epochs_completed() const;
  int64_t epoch_length() const { return epoch_length_; }
  int replans() const { return replans_; }
  double last_replan_seconds() const { return last_replan_seconds_; }
  int live_workers() const;
  bool worker_alive(int worker_id) const;
  const std::vector<WorkerSpec>& cluster() const { return cluster_; }

  std::unique_ptr<Sequential> AssembleModel() const;

 private:
  // Re-partitions over the live set and rebuilds the inner trainer at `boundary_epoch`
  // (weights migrated through the newest plan-tagged checkpoint).
  void Replan(int64_t boundary_epoch);
  // Builds a fresh PipelineTrainer generation under plan_ starting at `start_epoch`.
  void BuildTrainer(int64_t start_epoch);
  // Harvests new failure records from the inner trainer; ejected workers become dead
  // cluster members and schedule a re-plan.
  void ScanFailures();
  PipelinePlan PlanOverLive() const;

  std::unique_ptr<Sequential> initial_model_;  // pristine weights for generation rebuilds
  ModelProfile profile_;
  const Loss* loss_;
  std::unique_ptr<Optimizer> optimizer_prototype_;
  const Dataset* dataset_;
  int64_t batch_size_;
  uint64_t seed_;
  CheckpointManager* manager_;
  ElasticOptions options_;
  FaultInjector* injector_ = nullptr;

  std::vector<WorkerSpec> cluster_;
  std::vector<bool> alive_;
  bool pending_replan_ = false;

  PipelinePlan plan_;
  std::unique_ptr<PipelineTrainer> trainer_;
  int64_t epoch_length_ = 0;
  int64_t generation_ = 0;
  int replans_ = 0;
  double last_replan_seconds_ = 0.0;
  size_t scanned_failures_ = 0;
  // Per-generation throughput cells backing the elastic/gen<g>/minibatches_per_sec callback
  // gauges; shared_ptr because the metrics registry outlives this trainer.
  std::map<int64_t, std::shared_ptr<double>> gen_throughput_;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_ELASTIC_H_
