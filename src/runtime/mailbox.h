// Thread-safe per-worker mailbox: the runtime analogue of the simulator's ready queues.
//
// Upstream/downstream stage workers push forward activations and backward gradients here;
// the owning worker blocks until its scheduling policy can act. Messages carry minibatch ids
// so 1F1B-RR routing and weight stashing can match forwards with backwards exactly.
//
// Wakeup protocol: every state change that could unblock the owner (a delivery, or any
// change to external state the owner's wait predicate consults, signalled via Poke()) bumps
// a change counter under the mailbox mutex. WaitUntil re-evaluates its predicate whenever
// the counter moves, so wakeups cannot be lost between a predicate check and the sleep.
#ifndef SRC_RUNTIME_MAILBOX_H_
#define SRC_RUNTIME_MAILBOX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <type_traits>

#include "src/common/crc32.h"
#include "src/obs/trace.h"
#include "src/schedule/work.h"
#include "src/tensor/tensor.h"

namespace pipedream {

// One hop's payload. Forward messages carry activations plus the minibatch's training
// targets (threaded through to the loss stage); backward messages carry the gradient with
// respect to the receiving stage's output.
struct PipeMessage {
  int64_t minibatch = 0;
  WorkType type = WorkType::kForward;
  Tensor payload;
  Tensor targets;             // forward only
  int64_t input_version = 0;  // weight version assigned at the input stage (vertical sync)
  int64_t trace_id = -1;      // causal-chain key: minibatch id (training) / request id
                              // (serving); travels the wire so flow events line up across
                              // stages even over the socket transport
  uint32_t checksum = 0;      // CRC32 over payload + targets, stamped at send time
  int64_t delivered_ns = 0;   // local metadata: TraceClockNs() at mailbox delivery. NOT
                              // serialized — single-host receive-side timestamp used for
                              // the serving latency decomposition (queue vs transport)
};

// The steady-state hop is move-through: senders move tensors into the message, Deliver
// moves the message into the queue, Take moves it out — zero payload copies end to end.
// (Receivers that *retain* a payload, e.g. recompute stashes, take a copy-on-write share;
// see tensor.h.) Nothrow moves keep the std::map emplace/extract paths from ever falling
// back to copies.
static_assert(std::is_nothrow_move_constructible_v<PipeMessage>,
              "PipeMessage moves must be noexcept for the zero-copy mailbox path");
static_assert(std::is_nothrow_move_assignable_v<PipeMessage>,
              "PipeMessage moves must be noexcept for the zero-copy mailbox path");

// CRC32 over a message's tensor contents and identifying fields. Senders stamp, receivers
// verify — a link that corrupts a payload in flight is detected at receive time instead of
// silently poisoning the gradient stream.
inline uint32_t MessageChecksum(const PipeMessage& m) {
  uint32_t crc = Crc32(&m.minibatch, sizeof(m.minibatch));
  crc = Crc32(&m.trace_id, sizeof(m.trace_id), crc);
  crc = Crc32(m.payload.data(), static_cast<size_t>(m.payload.SizeBytes()), crc);
  crc = Crc32(m.targets.data(), static_cast<size_t>(m.targets.SizeBytes()), crc);
  return crc;
}

inline void StampChecksum(PipeMessage* m) { m->checksum = MessageChecksum(*m); }

inline bool VerifyChecksum(const PipeMessage& m) { return m.checksum == MessageChecksum(m); }

class Mailbox {
 public:
  // Delivers a message (called from other workers' threads).
  void Deliver(PipeMessage message) {
    PD_TRACE_INSTANT(message.type == WorkType::kForward ? "send_fwd" : "send_bwd", -1,
                     message.minibatch);
    message.delivered_ns = obs::TraceClockNs();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto& queue = message.type == WorkType::kForward ? forward_ : backward_;
      queue.emplace(message.minibatch, std::move(message));
      ++change_count_;
      const int64_t depth = static_cast<int64_t>(forward_.size() + backward_.size());
      if (depth > depth_hwm_) {
        depth_hwm_ = depth;
      }
    }
    cv_.notify_one();
  }

  // Signals that external state consulted by the owner's wait predicate changed (flush
  // barriers, stop flags, admission tokens). Must be called *after* that state is visible.
  void Poke() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++change_count_;
    }
    cv_.notify_one();
  }

  // Discards all queued messages (between epoch attempts, when in-flight minibatches from an
  // aborted run must not leak into the replay).
  void Clear() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      forward_.clear();
      backward_.clear();
      ++change_count_;
    }
    cv_.notify_one();
  }

  // Removes and returns the lowest-minibatch-id message of the given type, if any.
  std::optional<PipeMessage> Take(WorkType type) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& queue = type == WorkType::kForward ? forward_ : backward_;
    if (queue.empty()) {
      return std::nullopt;
    }
    PipeMessage message = std::move(queue.begin()->second);
    queue.erase(queue.begin());
    PD_TRACE_INSTANT(type == WorkType::kForward ? "recv_fwd" : "recv_bwd", -1,
                     message.minibatch);
    return message;
  }

  // Largest queue occupancy (both work types) ever observed at delivery time. Survives
  // Clear() so an epoch's peak backlog is still readable after the epoch drains.
  int64_t DepthHighWater() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return depth_hwm_;
  }

  // Blocks until predicate(min_forward_id, min_backward_id) returns true, where each
  // argument is the lowest queued minibatch id of that type or -1 when none is queued.
  // Exposing ids rather than counts lets the owner consume work in its deterministic
  // round-robin order even when neighbouring replicated stages deliver out of order (a
  // message being *present* does not make it *next*). The predicate runs with the mailbox
  // locked; it may also read external state, provided every writer of that state calls
  // Poke() afterwards.
  template <typename Predicate>
  void WaitUntil(Predicate predicate) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const int64_t min_fwd = forward_.empty() ? -1 : forward_.begin()->first;
      const int64_t min_bwd = backward_.empty() ? -1 : backward_.begin()->first;
      if (predicate(min_fwd, min_bwd)) {
        return;
      }
      const uint64_t seen = change_count_;
      cv_.wait(lock, [&] { return change_count_ != seen; });
    }
  }

  // Deadline-aware WaitUntil: returns true as soon as the predicate holds, false once
  // `timeout` elapses without it holding. Poke-safe like WaitUntil — every counter bump
  // re-evaluates the predicate, and the deadline is absolute (repeated wakeups that don't
  // satisfy the predicate cannot extend it). This is what keeps a worker from blocking
  // forever on a mailbox whose upstream died: the owner regains control every timeout tick
  // to emit a heartbeat and check for an epoch abort.
  template <typename Predicate>
  bool WaitUntilFor(Predicate predicate, std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const int64_t min_fwd = forward_.empty() ? -1 : forward_.begin()->first;
      const int64_t min_bwd = backward_.empty() ? -1 : backward_.begin()->first;
      if (predicate(min_fwd, min_bwd)) {
        return true;
      }
      const uint64_t seen = change_count_;
      if (!cv_.wait_until(lock, deadline, [&] { return change_count_ != seen; })) {
        return false;
      }
    }
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<int64_t, PipeMessage> forward_;
  std::map<int64_t, PipeMessage> backward_;
  uint64_t change_count_ = 0;
  int64_t depth_hwm_ = 0;
};

}  // namespace pipedream

#endif  // SRC_RUNTIME_MAILBOX_H_
