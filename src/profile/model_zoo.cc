#include "src/profile/model_zoo.h"

#include "src/common/strings.h"

namespace pipedream {
namespace {

constexpr int64_t kF32 = 4;  // bytes per element

// Accumulates layers with FLOP-derived times. Forward FLOPs are passed in; the backward pass
// is charged at 2x forward, matching the paper's observation that "the backward pass is
// always larger than the forward pass" (§3.2, with Figures 2/4 drawn at exactly 2x).
class ProfileBuilder {
 public:
  ProfileBuilder(std::string model_name, int64_t batch, const DeviceSpec& device)
      : batch_(batch), device_(device) {
    profile_.model_name = std::move(model_name);
    profile_.device_name = device.name;
    profile_.minibatch_size = batch;
  }

  void AddRaw(const std::string& name, double fwd_flops, int64_t activation_elems,
              int64_t param_elems) {
    LayerProfile layer;
    layer.name = name;
    layer.fwd_seconds = fwd_flops / device_.effective_flops();
    layer.bwd_seconds = 2.0 * layer.fwd_seconds;
    layer.activation_bytes = activation_elems * kF32;
    layer.param_bytes = param_elems * kF32;
    profile_.layers.push_back(std::move(layer));
  }

  // Conv with square kernel, same-ish padding. (h, w) are *output* spatial dims.
  void AddConv(const std::string& name, int64_t h, int64_t w, int64_t cin, int64_t cout,
               int64_t kernel) {
    const double flops =
        2.0 * static_cast<double>(batch_ * h * w * cout) * static_cast<double>(cin) *
        static_cast<double>(kernel * kernel);
    AddRaw(name, flops, batch_ * cout * h * w, (kernel * kernel * cin + 1) * cout);
  }

  // Max pool: negligible compute, shrinks activations. (h, w) are output dims.
  void AddPool(const std::string& name, int64_t h, int64_t w, int64_t channels) {
    const double flops = static_cast<double>(batch_ * channels * h * w) * 4.0;
    AddRaw(name, flops, batch_ * channels * h * w, 0);
  }

  void AddDense(const std::string& name, int64_t in, int64_t out, int64_t rows_per_example = 1) {
    const double flops = 2.0 * static_cast<double>(batch_ * rows_per_example) *
                         static_cast<double>(in) * static_cast<double>(out);
    AddRaw(name, flops, batch_ * rows_per_example * out, (in + 1) * out);
  }

  // One LSTM layer over a sequence of `steps` tokens.
  void AddLstm(const std::string& name, int64_t steps, int64_t in, int64_t hidden) {
    const double flops = 2.0 * static_cast<double>(batch_ * steps) *
                         static_cast<double>(in + hidden) * static_cast<double>(4 * hidden);
    AddRaw(name, flops, batch_ * steps * hidden, 4 * hidden * (in + hidden + 1));
  }

  void AddEmbedding(const std::string& name, int64_t steps, int64_t vocab, int64_t dim) {
    // Lookup is bandwidth-bound; charge a token-copy cost rather than a matmul.
    const double flops = static_cast<double>(batch_ * steps * dim);
    AddRaw(name, flops, batch_ * steps * dim, vocab * dim);
  }

  // Bahdanau-style attention over `steps` encoder states of width `hidden`.
  void AddAttention(const std::string& name, int64_t steps, int64_t hidden) {
    // Scores (B*T*T*H) plus context combination (B*T*H*H).
    const double flops = 2.0 * static_cast<double>(batch_) *
                         (static_cast<double>(steps * steps * hidden) +
                          static_cast<double>(steps) * hidden * hidden);
    AddRaw(name, flops, batch_ * steps * hidden, 2 * hidden * hidden);
  }

  // ResNet bottleneck block (1x1 -> 3x3 -> 1x1 with residual); one profile entry per block.
  // (h, w) are output dims; `downsample` adds the 1x1 projection on the shortcut.
  void AddBottleneck(const std::string& name, int64_t h, int64_t w, int64_t cin, int64_t cmid,
                     int64_t cout, bool downsample) {
    double flops = 2.0 * static_cast<double>(batch_ * h * w) *
                   (static_cast<double>(cin) * cmid + 9.0 * static_cast<double>(cmid) * cmid +
                    static_cast<double>(cmid) * cout);
    int64_t params = cin * cmid + 9 * cmid * cmid + cmid * cout + 3 * cmid + cout;
    if (downsample) {
      flops += 2.0 * static_cast<double>(batch_ * h * w) * static_cast<double>(cin) * cout;
      params += cin * cout;
    }
    AddRaw(name, flops, batch_ * cout * h * w, params);
  }

  ModelProfile Build() { return std::move(profile_); }

 private:
  int64_t batch_;
  DeviceSpec device_;
  ModelProfile profile_;
};

}  // namespace

ModelProfile MakeVgg16Profile(int64_t batch, const DeviceSpec& device) {
  ProfileBuilder b("VGG-16", batch, device);
  b.AddConv("conv1_1", 224, 224, 3, 64, 3);
  b.AddConv("conv1_2", 224, 224, 64, 64, 3);
  b.AddPool("pool1", 112, 112, 64);
  b.AddConv("conv2_1", 112, 112, 64, 128, 3);
  b.AddConv("conv2_2", 112, 112, 128, 128, 3);
  b.AddPool("pool2", 56, 56, 128);
  b.AddConv("conv3_1", 56, 56, 128, 256, 3);
  b.AddConv("conv3_2", 56, 56, 256, 256, 3);
  b.AddConv("conv3_3", 56, 56, 256, 256, 3);
  b.AddPool("pool3", 28, 28, 256);
  b.AddConv("conv4_1", 28, 28, 256, 512, 3);
  b.AddConv("conv4_2", 28, 28, 512, 512, 3);
  b.AddConv("conv4_3", 28, 28, 512, 512, 3);
  b.AddPool("pool4", 14, 14, 512);
  b.AddConv("conv5_1", 14, 14, 512, 512, 3);
  b.AddConv("conv5_2", 14, 14, 512, 512, 3);
  b.AddConv("conv5_3", 14, 14, 512, 512, 3);
  b.AddPool("pool5", 7, 7, 512);
  b.AddDense("fc6", 25088, 4096);
  b.AddDense("fc7", 4096, 4096);
  b.AddDense("fc8", 4096, 1000);
  return b.Build();
}

ModelProfile MakeResnet50Profile(int64_t batch, const DeviceSpec& device) {
  ProfileBuilder b("ResNet-50", batch, device);
  b.AddConv("conv1", 112, 112, 3, 64, 7);
  b.AddPool("pool1", 56, 56, 64);
  b.AddBottleneck("conv2_1", 56, 56, 64, 64, 256, true);
  b.AddBottleneck("conv2_2", 56, 56, 256, 64, 256, false);
  b.AddBottleneck("conv2_3", 56, 56, 256, 64, 256, false);
  b.AddBottleneck("conv3_1", 28, 28, 256, 128, 512, true);
  b.AddBottleneck("conv3_2", 28, 28, 512, 128, 512, false);
  b.AddBottleneck("conv3_3", 28, 28, 512, 128, 512, false);
  b.AddBottleneck("conv3_4", 28, 28, 512, 128, 512, false);
  b.AddBottleneck("conv4_1", 14, 14, 512, 256, 1024, true);
  b.AddBottleneck("conv4_2", 14, 14, 1024, 256, 1024, false);
  b.AddBottleneck("conv4_3", 14, 14, 1024, 256, 1024, false);
  b.AddBottleneck("conv4_4", 14, 14, 1024, 256, 1024, false);
  b.AddBottleneck("conv4_5", 14, 14, 1024, 256, 1024, false);
  b.AddBottleneck("conv4_6", 14, 14, 1024, 256, 1024, false);
  b.AddBottleneck("conv5_1", 7, 7, 1024, 512, 2048, true);
  b.AddBottleneck("conv5_2", 7, 7, 2048, 512, 2048, false);
  b.AddBottleneck("conv5_3", 7, 7, 2048, 512, 2048, false);
  b.AddPool("avgpool", 1, 1, 2048);
  b.AddDense("fc", 2048, 1000);
  return b.Build();
}

ModelProfile MakeAlexNetProfile(int64_t batch, const DeviceSpec& device) {
  ProfileBuilder b("AlexNet", batch, device);
  b.AddConv("conv1", 55, 55, 3, 64, 11);
  b.AddPool("pool1", 27, 27, 64);
  b.AddConv("conv2", 27, 27, 64, 192, 5);
  b.AddPool("pool2", 13, 13, 192);
  b.AddConv("conv3", 13, 13, 192, 384, 3);
  b.AddConv("conv4", 13, 13, 384, 256, 3);
  b.AddConv("conv5", 13, 13, 256, 256, 3);
  b.AddPool("pool5", 6, 6, 256);
  b.AddDense("fc6", 9216, 4096);
  b.AddDense("fc7", 4096, 4096);
  b.AddDense("fc8", 4096, 1000);
  return b.Build();
}

ModelProfile MakeGnmtProfile(int lstm_layers, int64_t batch, const DeviceSpec& device) {
  PD_CHECK(lstm_layers >= 2 && lstm_layers % 2 == 0)
      << "GNMT profile needs an even LSTM count, got " << lstm_layers;
  const int64_t hidden = 1024;
  const int64_t vocab = 32000;
  const int64_t steps = 40;  // average WMT16 sentence length after BPE, roughly
  ProfileBuilder b(StrFormat("GNMT-%d", lstm_layers), batch, device);
  const int enc = lstm_layers / 2;
  const int dec = lstm_layers / 2;
  b.AddEmbedding("enc_embed", steps, vocab, hidden);
  for (int i = 0; i < enc; ++i) {
    b.AddLstm(StrFormat("enc_lstm%d", i + 1), steps, hidden, hidden);
  }
  b.AddAttention("attention", steps, hidden);
  b.AddEmbedding("dec_embed", steps, vocab, hidden);
  for (int i = 0; i < dec; ++i) {
    // Decoder layers consume [context; h] on the first layer.
    const int64_t in = i == 0 ? 2 * hidden : hidden;
    b.AddLstm(StrFormat("dec_lstm%d", i + 1), steps, in, hidden);
  }
  b.AddDense("softmax", hidden, vocab, steps);
  return b.Build();
}

ModelProfile MakeAwdLmProfile(int64_t batch, const DeviceSpec& device) {
  // Merity et al.'s AWD LM, sized so total parameters land near the paper's quoted 0.41 GB.
  const int64_t vocab = 10000;
  const int64_t embed = 400;
  const int64_t hidden = 1500;
  const int64_t steps = 70;
  ProfileBuilder b("AWD-LM", batch, device);
  b.AddEmbedding("embed", steps, vocab, embed);
  b.AddLstm("lstm1", steps, embed, hidden);
  for (int i = 2; i <= 6; ++i) {
    b.AddLstm(StrFormat("lstm%d", i), steps, hidden, hidden);
  }
  b.AddDense("softmax", hidden, vocab, steps);
  return b.Build();
}

ModelProfile MakeS2vtProfile(int64_t batch, const DeviceSpec& device) {
  // Sequence-to-sequence video captioning: frame features -> 2-layer LSTM -> vocab.
  const int64_t frames = 80;
  const int64_t feature = 4096;  // per-frame CNN feature (VGG fc7)
  const int64_t hidden = 1000;
  const int64_t vocab = 13000;
  ProfileBuilder b("S2VT", batch, device);
  b.AddDense("feat_proj", feature, 500, frames);
  b.AddLstm("lstm1", frames, 500, hidden);
  b.AddLstm("lstm2", frames, hidden, hidden);
  b.AddDense("softmax", hidden, vocab, frames);
  return b.Build();
}

std::vector<std::string> ModelZooNames() {
  return {"VGG-16", "ResNet-50", "AlexNet", "GNMT-8", "GNMT-16", "AWD-LM", "S2VT"};
}

ModelProfile MakeProfileByName(const std::string& name, const DeviceSpec& device) {
  if (name == "VGG-16") {
    return MakeVgg16Profile(64, device);
  }
  if (name == "ResNet-50") {
    return MakeResnet50Profile(128, device);
  }
  if (name == "AlexNet") {
    return MakeAlexNetProfile(256, device);
  }
  if (name == "GNMT-8") {
    return MakeGnmtProfile(8, 64, device);
  }
  if (name == "GNMT-16") {
    return MakeGnmtProfile(16, 64, device);
  }
  if (name == "AWD-LM") {
    return MakeAwdLmProfile(80, device);
  }
  if (name == "S2VT") {
    return MakeS2vtProfile(80, device);
  }
  PD_CHECK(false) << "unknown model: " << name;
  return {};
}

}  // namespace pipedream
