// Analytic per-layer profiles of the paper's seven evaluation models.
//
// The paper obtains profiles by running 1000 minibatches on one GPU. Without GPUs, we derive
// the same three quantities analytically from the published architectures:
//   T_l  — FLOPs of the layer (forward; backward charged at 2x) divided by the device's
//          effective FLOP rate,
//   a_l  — output activation bytes for one minibatch (fp32),
//   w_l  — parameter bytes (fp32).
// Parameter counts and activation shapes are exact for the published architectures (modulo
// aggregating each ResNet bottleneck into one profile entry, which only coarsens partition
// granularity). This is the substitution DESIGN.md §1 documents: the paper itself shows
// (Fig. 15) that throughput is predictable from exactly these quantities.
#ifndef SRC_PROFILE_MODEL_ZOO_H_
#define SRC_PROFILE_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "src/profile/layer_profile.h"

namespace pipedream {

// Image classification, ImageNet.
ModelProfile MakeVgg16Profile(int64_t batch = 64, const DeviceSpec& device = DeviceSpec::V100());
ModelProfile MakeResnet50Profile(int64_t batch = 128,
                                 const DeviceSpec& device = DeviceSpec::V100());
ModelProfile MakeAlexNetProfile(int64_t batch = 256,
                                const DeviceSpec& device = DeviceSpec::V100());

// Translation (WMT16 En-De). `lstm_layers` is the total LSTM count (8 or 16 in the paper),
// split evenly between encoder and decoder.
ModelProfile MakeGnmtProfile(int lstm_layers, int64_t batch = 64,
                             const DeviceSpec& device = DeviceSpec::V100());

// Language modelling (Penn Treebank), AWD LM.
ModelProfile MakeAwdLmProfile(int64_t batch = 80, const DeviceSpec& device = DeviceSpec::V100());

// Video captioning (MSVD), S2VT. Evaluated on Cluster-C in the paper.
ModelProfile MakeS2vtProfile(int64_t batch = 80,
                             const DeviceSpec& device = DeviceSpec::TitanX());

// All zoo model names, and lookup by name (paper minibatch sizes).
std::vector<std::string> ModelZooNames();
ModelProfile MakeProfileByName(const std::string& name,
                               const DeviceSpec& device = DeviceSpec::V100());

}  // namespace pipedream

#endif  // SRC_PROFILE_MODEL_ZOO_H_
