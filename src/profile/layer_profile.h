// Per-layer profiles — the T_l / a_l / w_l triples of paper §3.1 that drive the optimizer
// and the cluster simulator.
#ifndef SRC_PROFILE_LAYER_PROFILE_H_
#define SRC_PROFILE_LAYER_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace pipedream {

// A compute device. Times in the model zoo are derived as FLOPs / effective_flops().
struct DeviceSpec {
  std::string name;
  double peak_flops = 0.0;    // fp32 peak
  double efficiency = 0.45;   // achieved fraction of peak on DNN kernels (cuDNN-era MFU)
  int64_t memory_bytes = 0;

  double effective_flops() const { return peak_flops * efficiency; }

  static DeviceSpec V100() { return {"V100", 15.7e12, 0.45, 16LL << 30}; }
  static DeviceSpec Gtx1080Ti() { return {"1080Ti", 11.3e12, 0.42, 11LL << 30}; }
  static DeviceSpec TitanX() { return {"TitanX", 6.7e12, 0.42, 12LL << 30}; }
};

struct LayerProfile {
  std::string name;
  double fwd_seconds = 0.0;      // forward-pass compute time for one minibatch
  double bwd_seconds = 0.0;      // backward-pass compute time for one minibatch
  int64_t activation_bytes = 0;  // a_l: output activations (== backward input gradient size)
  int64_t param_bytes = 0;       // w_l: trainable parameter bytes

  // T_l of the paper: total fwd+bwd compute for the layer.
  double total_seconds() const { return fwd_seconds + bwd_seconds; }
};

struct ModelProfile {
  std::string model_name;
  std::string device_name;
  int64_t minibatch_size = 0;
  std::vector<LayerProfile> layers;

  int num_layers() const { return static_cast<int>(layers.size()); }

  // Sum of T_l over layers [begin, end).
  double ComputeSeconds(int begin, int end) const;
  double TotalComputeSeconds() const { return ComputeSeconds(0, num_layers()); }

  // Sum of w_l over layers [begin, end).
  int64_t ParamBytes(int begin, int end) const;
  int64_t TotalParamBytes() const { return ParamBytes(0, num_layers()); }

  // Sum of a_l over layers [begin, end) — the activation working set of a stage.
  int64_t ActivationBytes(int begin, int end) const;

  // a_l at the boundary after layer `index` (activation sent to the next stage).
  int64_t BoundaryActivationBytes(int index) const {
    PD_CHECK(index >= 0 && index < num_layers());
    return layers[static_cast<size_t>(index)].activation_bytes;
  }

  // Returns a copy with compute scaled by 1/speedup and bytes scaled by byte_factor — used
  // for the fp16 what-if (Figure 12: compute ~2.5x faster, tensors half the size).
  ModelProfile Scaled(double compute_speedup, double byte_factor) const;

  // Returns a copy describing a minibatch scaled by `factor` (e.g. a GPipe microbatch at
  // factor = 1/m): compute time and activation sizes scale linearly, parameters do not.
  ModelProfile WithBatchScaled(double factor) const;
};

// Measured per-stage op times for one pipeline stage, aggregated from a live run (the
// runtime's runtime/stage<s>/{fwd,bwd}_seconds histograms): mean seconds per minibatch on
// one replica, plus the layer range the stage hosted so the times map back onto a
// ModelProfile. This is the feedback half of the paper's profiler loop (§3.1): estimates
// seed the first plan, measurements recalibrate the next one.
struct MeasuredStageOps {
  int stage = 0;
  int begin_layer = 0;  // inclusive
  int end_layer = 0;    // exclusive
  double fwd_seconds = 0.0;  // mean per minibatch
  double bwd_seconds = 0.0;  // mean per minibatch
  int64_t samples = 0;       // observations behind the means (0 = stage never ran)

  double total_seconds() const { return fwd_seconds + bwd_seconds; }
};

// A runtime-measured profile: one entry per pipeline stage, covering disjoint layer
// ranges. Produced by CollectMeasuredProfile (profiler.h); consumed by RecalibrateProfile
// and the planner's MeasuredWorkerSpecs.
struct MeasuredProfile {
  std::string source;  // e.g. "runtime" — where the measurements came from
  std::vector<MeasuredStageOps> stages;

  // True when no stage recorded any observation (nothing to recalibrate from).
  bool empty() const {
    for (const MeasuredStageOps& s : stages) {
      if (s.samples > 0) {
        return false;
      }
    }
    return true;
  }
};

// Replaces estimated per-layer costs with measured ones: within each measured stage's
// layer range, per-layer fwd/bwd times are scaled so their sums match the stage's measured
// means (intra-stage ratios are preserved; a stage whose estimated time is zero spreads
// the measurement uniformly over its layers). Stages with no samples and layers outside
// every measured range keep their estimates. Sizes (activation/param bytes) are exact
// already and pass through untouched.
ModelProfile RecalibrateProfile(const ModelProfile& estimated, const MeasuredProfile& measured);

}  // namespace pipedream

#endif  // SRC_PROFILE_LAYER_PROFILE_H_
