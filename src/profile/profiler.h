// Runtime profiler: measures per-layer forward/backward wall time and records activation and
// parameter sizes for a real (CPU) model — the counterpart of the paper's "short profiling
// run on a single GPU" (Figure 6, left box).
#ifndef SRC_PROFILE_PROFILER_H_
#define SRC_PROFILE_PROFILER_H_

#include "src/graph/sequential.h"
#include "src/profile/layer_profile.h"

namespace pipedream {

struct ProfilerOptions {
  int warmup_batches = 1;    // un-timed passes to touch memory
  int measure_batches = 5;   // timed passes, averaged
};

// Runs `measure_batches` forward+backward passes of `model` on `sample_input` (a
// representative minibatch) and returns a ModelProfile with measured times and exact sizes.
// The backward pass is seeded with a uniform gradient of the output's shape.
ModelProfile ProfileModel(const Sequential& model, const Tensor& sample_input,
                          const std::string& model_name, const ProfilerOptions& options = {});

}  // namespace pipedream

#endif  // SRC_PROFILE_PROFILER_H_
