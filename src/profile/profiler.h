// Runtime profiler: measures per-layer forward/backward wall time and records activation and
// parameter sizes for a real (CPU) model — the counterpart of the paper's "short profiling
// run on a single GPU" (Figure 6, left box).
#ifndef SRC_PROFILE_PROFILER_H_
#define SRC_PROFILE_PROFILER_H_

#include <utility>
#include <vector>

#include "src/graph/sequential.h"
#include "src/profile/layer_profile.h"

namespace pipedream {

struct ProfilerOptions {
  int warmup_batches = 1;    // un-timed passes to touch memory
  int measure_batches = 5;   // timed passes, averaged
};

// Runs `measure_batches` forward+backward passes of `model` on `sample_input` (a
// representative minibatch) and returns a ModelProfile with measured times and exact sizes.
// The backward pass is seeded with a uniform gradient of the output's shape.
ModelProfile ProfileModel(const Sequential& model, const Tensor& sample_input,
                          const std::string& model_name, const ProfilerOptions& options = {});

// The feedback half of the paper's profiler loop: aggregates the live runtime's per-stage
// op-time histograms (runtime/stage<s>/{fwd,bwd}_seconds in the metrics registry) into a
// MeasuredProfile. `stage_layers[s]` is the [begin, end) layer range stage s hosted (see
// planner/calibration.h for the plan-driven convenience). Stages whose histograms recorded
// nothing come back with samples == 0. Bracket the measured region with
// obs::MetricsRegistry::Get().Reset() so warmup minibatches don't dilute the means.
MeasuredProfile CollectMeasuredProfile(const std::vector<std::pair<int, int>>& stage_layers);

}  // namespace pipedream

#endif  // SRC_PROFILE_PROFILER_H_
