#include "src/profile/layer_profile.h"

#include <cmath>

namespace pipedream {

double ModelProfile::ComputeSeconds(int begin, int end) const {
  PD_CHECK(begin >= 0 && begin <= end && end <= num_layers());
  double total = 0.0;
  for (int i = begin; i < end; ++i) {
    total += layers[static_cast<size_t>(i)].total_seconds();
  }
  return total;
}

int64_t ModelProfile::ParamBytes(int begin, int end) const {
  PD_CHECK(begin >= 0 && begin <= end && end <= num_layers());
  int64_t total = 0;
  for (int i = begin; i < end; ++i) {
    total += layers[static_cast<size_t>(i)].param_bytes;
  }
  return total;
}

int64_t ModelProfile::ActivationBytes(int begin, int end) const {
  PD_CHECK(begin >= 0 && begin <= end && end <= num_layers());
  int64_t total = 0;
  for (int i = begin; i < end; ++i) {
    total += layers[static_cast<size_t>(i)].activation_bytes;
  }
  return total;
}

ModelProfile ModelProfile::Scaled(double compute_speedup, double byte_factor) const {
  PD_CHECK_GT(compute_speedup, 0.0);
  PD_CHECK_GT(byte_factor, 0.0);
  ModelProfile out = *this;
  for (LayerProfile& layer : out.layers) {
    layer.fwd_seconds /= compute_speedup;
    layer.bwd_seconds /= compute_speedup;
    layer.activation_bytes =
        static_cast<int64_t>(std::llround(static_cast<double>(layer.activation_bytes) * byte_factor));
    layer.param_bytes =
        static_cast<int64_t>(std::llround(static_cast<double>(layer.param_bytes) * byte_factor));
  }
  return out;
}

ModelProfile RecalibrateProfile(const ModelProfile& estimated, const MeasuredProfile& measured) {
  ModelProfile out = estimated;
  for (const MeasuredStageOps& stage : measured.stages) {
    PD_CHECK(stage.begin_layer >= 0 && stage.begin_layer <= stage.end_layer &&
             stage.end_layer <= out.num_layers())
        << "measured stage " << stage.stage << " covers layers [" << stage.begin_layer
        << ", " << stage.end_layer << ") outside the profile";
    if (stage.samples <= 0 || stage.begin_layer == stage.end_layer) {
      continue;
    }
    double est_fwd = 0.0;
    double est_bwd = 0.0;
    for (int i = stage.begin_layer; i < stage.end_layer; ++i) {
      est_fwd += out.layers[static_cast<size_t>(i)].fwd_seconds;
      est_bwd += out.layers[static_cast<size_t>(i)].bwd_seconds;
    }
    const int layer_count = stage.end_layer - stage.begin_layer;
    for (int i = stage.begin_layer; i < stage.end_layer; ++i) {
      LayerProfile& layer = out.layers[static_cast<size_t>(i)];
      // Scale within the stage so the sum matches the measurement; with no estimate to
      // apportion by, spread uniformly.
      layer.fwd_seconds = est_fwd > 0.0
                              ? layer.fwd_seconds * (stage.fwd_seconds / est_fwd)
                              : stage.fwd_seconds / layer_count;
      layer.bwd_seconds = est_bwd > 0.0
                              ? layer.bwd_seconds * (stage.bwd_seconds / est_bwd)
                              : stage.bwd_seconds / layer_count;
    }
  }
  return out;
}

ModelProfile ModelProfile::WithBatchScaled(double factor) const {
  PD_CHECK_GT(factor, 0.0);
  ModelProfile out = *this;
  out.minibatch_size = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(static_cast<double>(minibatch_size) * factor)));
  for (LayerProfile& layer : out.layers) {
    layer.fwd_seconds *= factor;
    layer.bwd_seconds *= factor;
    layer.activation_bytes = static_cast<int64_t>(
        std::llround(static_cast<double>(layer.activation_bytes) * factor));
  }
  return out;
}

}  // namespace pipedream
