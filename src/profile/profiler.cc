#include "src/profile/profiler.h"

#include <algorithm>
#include <chrono>

#include "src/common/strings.h"
#include "src/obs/metrics.h"

namespace pipedream {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ModelProfile ProfileModel(const Sequential& model, const Tensor& sample_input,
                          const std::string& model_name, const ProfilerOptions& options) {
  PD_CHECK_GT(options.measure_batches, 0);
  const size_t n = model.size();

  ModelProfile profile;
  profile.model_name = model_name;
  profile.device_name = "cpu";
  profile.minibatch_size = sample_input.dim(0);
  profile.layers.resize(n);

  std::vector<LayerContext> contexts(n);
  const int total_passes = options.warmup_batches + options.measure_batches;
  for (int pass = 0; pass < total_passes; ++pass) {
    const bool timed = pass >= options.warmup_batches;
    // Forward, per layer.
    Tensor current = sample_input;
    for (size_t i = 0; i < n; ++i) {
      const double start = NowSeconds();
      current = model.layer(i)->Forward(current, &contexts[i], /*training=*/true);
      if (timed) {
        profile.layers[i].fwd_seconds += NowSeconds() - start;
        profile.layers[i].activation_bytes = current.SizeBytes();
      }
    }
    // Backward, per layer, seeded with a small uniform gradient.
    Tensor grad(current.shape());
    grad.Fill(1e-3f);
    model.ZeroGrads();
    for (size_t i = n; i > 0; --i) {
      const double start = NowSeconds();
      grad = model.layer(i - 1)->Backward(grad, &contexts[i - 1]);
      if (timed) {
        profile.layers[i - 1].bwd_seconds += NowSeconds() - start;
      }
    }
  }

  const double inv = 1.0 / options.measure_batches;
  for (size_t i = 0; i < n; ++i) {
    profile.layers[i].name = model.layer(i)->name();
    profile.layers[i].fwd_seconds *= inv;
    profile.layers[i].bwd_seconds *= inv;
    profile.layers[i].param_bytes = model.layer(i)->ParamBytes();
  }
  return profile;
}

MeasuredProfile CollectMeasuredProfile(const std::vector<std::pair<int, int>>& stage_layers) {
  MeasuredProfile measured;
  measured.source = "runtime";
  measured.stages.reserve(stage_layers.size());
  for (size_t s = 0; s < stage_layers.size(); ++s) {
    MeasuredStageOps ops;
    ops.stage = static_cast<int>(s);
    ops.begin_layer = stage_layers[s].first;
    ops.end_layer = stage_layers[s].second;
    const RunningStat fwd =
        obs::GetHistogram(StrFormat("runtime/stage%d/fwd_seconds", ops.stage))->snapshot();
    const RunningStat bwd =
        obs::GetHistogram(StrFormat("runtime/stage%d/bwd_seconds", ops.stage))->snapshot();
    // A forward-only tail (pipeline drain) can leave the counts slightly unequal; the
    // means are per-op either way. `samples` reports the smaller side so consumers can
    // judge confidence.
    ops.fwd_seconds = fwd.count() > 0 ? fwd.mean() : 0.0;
    ops.bwd_seconds = bwd.count() > 0 ? bwd.mean() : 0.0;
    ops.samples = std::min(fwd.count(), bwd.count());
    if (ops.samples == 0) {
      ops.samples = std::max(fwd.count(), bwd.count());
    }
    measured.stages.push_back(ops);
  }
  return measured;
}

}  // namespace pipedream
