// PipeDream's partitioning optimizer (paper §3.1).
//
// Two variants:
//   PartitionFlat         — the dynamic program over a single interconnect level, used
//                           directly when the topology is flat and as the per-level kernel.
//   PartitionHierarchical — the full level-by-level composition of Figure 7's hierarchy:
//                           level k's "workers" are whole level-(k-1) components, and
//                           replicating a stage at level k replicates the entire optimal
//                           sub-pipeline computed for the lower level.
//
// Both return the plan plus the predicted slowest-stage time A (seconds per minibatch,
// amortized per input), which upper-bounds pipeline throughput in steady state.
#ifndef SRC_PLANNER_PARTITIONER_H_
#define SRC_PLANNER_PARTITIONER_H_

#include "src/planner/plan.h"
#include "src/profile/layer_profile.h"
#include "src/sim/topology.h"

namespace pipedream {

struct PartitionerOptions {
  bool allow_replication = true;   // false restricts to straight pipelines (model parallel)
  int64_t device_memory_bytes = 0;  // 0 = unconstrained; otherwise stages that cannot fit
                                    // (weights + stashes for their in-flight depth) are
                                    // rejected during the search
  int max_workers_used = 0;         // 0 = use all workers; otherwise an upper bound
  // Bandwidth derating applied by PartitionFlat (PartitionHierarchical reads the per-level
  // factors from the topology instead). 1.0 = the raw bandwidth argument is already
  // effective.
  double collective_efficiency = 1.0;
  double p2p_efficiency = 1.0;
  // PartitionFlat only: model the interconnect as one shared medium (PCIe-tree semantics)
  // rather than per-worker links. See TopologyLevel::shared_bus.
  bool collective_shared_bus = false;
};

struct PartitionResult {
  PipelinePlan plan;
  // Effective time of the slowest stage per input minibatch (the A value of §3.1); the
  // steady-state pipeline emits one minibatch per this interval.
  double bottleneck_seconds = 0.0;
};

// Dynamic program over `workers` identical devices joined by links of a single bandwidth.
PartitionResult PartitionFlat(const ModelProfile& profile, int workers,
                              double bandwidth_bytes_per_sec,
                              const PartitionerOptions& options = {});

// Dynamic program over heterogeneous devices joined by links of a single bandwidth.
// `workers[w].speed` stretches any stage hosted on worker w by 1/speed, and a replicated
// stage's round-robin round is gated by its slowest member, so a block's effective compute
// is raw_compute / min(speed). The search considers contiguous blocks of the speed-sorted
// worker order (both directions, keeping the better plan) — slow devices end up grouped on
// thin layer ranges, the BaPipe-style behavior the skewed-cluster tests assert. Worker ids
// in the returned plan index into `workers`; every worker is used unless
// options.max_workers_used caps the count (the fastest are kept). Per-worker memory_bytes,
// when set, overrides options.device_memory_bytes for that device.
PartitionResult PartitionHeterogeneous(const ModelProfile& profile,
                                       const std::vector<WorkerSpec>& workers,
                                       double bandwidth_bytes_per_sec,
                                       const PartitionerOptions& options = {});

// Level-by-level dynamic program over a hierarchical topology. Worker ids in the returned
// plan respect component boundaries (replicated sub-pipelines land on distinct components).
PartitionResult PartitionHierarchical(const ModelProfile& profile,
                                      const HardwareTopology& topology,
                                      const PartitionerOptions& options = {});

// Convenience: picks flat vs hierarchical based on the topology's level count.
PartitionResult Partition(const ModelProfile& profile, const HardwareTopology& topology,
                          const PartitionerOptions& options = {});

// Per-stage weight-mode selection under a device memory budget (2BW, the follow-up paper):
// any stage whose kStashing peak — weights * (in_flight + 1) + activations * in_flight,
// with in_flight the 1F1B stash depth — exceeds `device_memory_bytes` is flipped to
// kDoubleBuffered, whose footprint (weights * 3 + activations * in_flight) is constant in
// the pipeline depth. Returns the number of stages flipped; a zero/negative budget is
// unconstrained and leaves the plan untouched. Called automatically by the Partition*
// entry points when options.device_memory_bytes is set.
int ChooseWeightModes(const ModelProfile& profile, int64_t device_memory_bytes,
                      PipelinePlan* plan);

// Per-stage activation-recompute selection, run after ChooseWeightModes: any stage whose
// peak under its chosen weight mode still exceeds `device_memory_bytes` is flipped to
// recompute (StageAssignment::recompute), which replaces the act * in_flight stash with
// boundary_in * in_flight + one materialized working set (src/planner/memory_model.h) at
// the cost of ~1 extra stage-forward per minibatch. Stages are only flipped when recompute
// actually shrinks the peak. Returns the number of stages flipped; a zero/negative budget
// leaves the plan untouched. Called automatically by the Partition* entry points when
// options.device_memory_bytes is set.
int ChooseRecompute(const ModelProfile& profile, int64_t device_memory_bytes,
                    PipelinePlan* plan);

}  // namespace pipedream

#endif  // SRC_PLANNER_PARTITIONER_H_
