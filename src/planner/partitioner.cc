#include "src/planner/partitioner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "src/common/logging.h"
#include "src/planner/memory_model.h"

namespace pipedream {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One level's dynamic-programming tables: A[i][j][m] is the time taken by the slowest stage
// of the optimal pipeline over layers i..j (inclusive) using m workers, where a "worker" is
// one component of the level below. Choice records how each optimum was achieved.
struct Choice {
  int split = -1;          // -1: single stage over the whole range; else last stage starts at split+1
  int right_workers = 0;   // workers given to the last stage when split >= 0
};

class DpTables {
 public:
  DpTables(int n, int mmax)
      : n_(n), mmax_(mmax), a_(static_cast<size_t>(n) * n * mmax, kInf),
        choice_(static_cast<size_t>(n) * n * mmax) {}

  double& A(int i, int j, int m) { return a_[Index(i, j, m)]; }
  double A(int i, int j, int m) const { return a_[Index(i, j, m)]; }
  Choice& choice(int i, int j, int m) { return choice_[Index(i, j, m)]; }
  const Choice& choice(int i, int j, int m) const { return choice_[Index(i, j, m)]; }

  int mmax() const { return mmax_; }

 private:
  size_t Index(int i, int j, int m) const {
    PD_DCHECK(i >= 0 && i < n_ && j >= 0 && j < n_ && m >= 1 && m <= mmax_);
    return (static_cast<size_t>(i) * n_ + j) * mmax_ + (m - 1);
  }

  int n_;
  int mmax_;
  std::vector<double> a_;
  std::vector<Choice> choice_;
};

// Solves one level of the §3.1 recurrence.
//   substrate(i, j): compute time of layers i..j on a single worker of this level
//                    (level 1: sum of T_l; level k: A_{k-1}(i -> j, m_{k-1})).
//   T(i,j,m) = (1/m) max(substrate(i,j), 2(m-1) sum_w(i,j) / (m B_coll))
//   A(i,j,m) = min(T(i,j,m), min_{s,m'} max(A(i,s,m-m'), 2 a_s / B_p2p, T(s+1,j,m')))
//
// The sync term divides by m once more than the paper prints it: a ring all_reduce moves
// 2(m-1)/m * |w| per worker per round of m minibatches, so its *wall* time per round is
// 2(m-1)|w|/(m B). The paper's literal expression reads as a shared bus at every level,
// which contradicts its own measured baselines (per-server NICs); the ring form matches
// them and is what NCCL/Gloo implement. DESIGN.md records this substitution.
// `unit_size` is the number of actual workers inside one substrate component (1 at level
// 1). A level-k sync round aggregates gradients from units that each processed unit_size
// minibatches, so the sync wall amortizes over m * unit_size minibatches — without this the
// recurrence would under-amortize collectives at upper levels by the component size.
DpTables SolveLevel(const ModelProfile& profile,
                    const std::function<double(int, int)>& substrate, int mmax,
                    double collective_bandwidth, double p2p_bandwidth, bool shared_bus,
                    int unit_size, const PartitionerOptions& options) {
  const int n = profile.num_layers();
  DpTables tables(n, mmax);

  // Prefix sums for O(1) range weight queries.
  std::vector<double> weight_prefix(static_cast<size_t>(n + 1), 0.0);
  for (int l = 0; l < n; ++l) {
    weight_prefix[static_cast<size_t>(l + 1)] =
        weight_prefix[static_cast<size_t>(l)] +
        static_cast<double>(profile.layers[static_cast<size_t>(l)].param_bytes);
  }
  auto range_weight = [&](int i, int j) {
    return weight_prefix[static_cast<size_t>(j + 1)] - weight_prefix[static_cast<size_t>(i)];
  };
  // Rejects stages that cannot fit on a device even with a single in-flight minibatch:
  // weights + gradients + one weight stash + one activation stash.
  auto stage_fits = [&](int i, int j) -> bool {
    if (options.device_memory_bytes <= 0) {
      return true;
    }
    const int64_t weights = static_cast<int64_t>(range_weight(i, j));
    const int64_t activations = profile.ActivationBytes(i, j + 1);
    return 3 * weights + activations <= options.device_memory_bytes;
  };
  // Single-stage (possibly replicated) time per the T^k formula.
  auto stage_time = [&](int i, int j, int m) -> double {
    const double compute = substrate(i, j);
    if (compute == kInf || !stage_fits(i, j)) {
      return kInf;
    }
    if (m == 1) {
      return compute;
    }
    if (!options.allow_replication) {
      return kInf;
    }
    const double ring_divisor = shared_bus ? 1.0 : static_cast<double>(m);
    const double sync = 2.0 * static_cast<double>(m - 1) * range_weight(i, j) /
                        (ring_divisor * collective_bandwidth * static_cast<double>(unit_size));
    return std::max(compute, sync) / static_cast<double>(m);
  };

  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      for (int m = 1; m <= mmax; ++m) {
        // Option 1: the whole range as one (replicated) stage.
        double best = stage_time(i, j, m);
        Choice best_choice;
        // Option 2: optimal sub-pipeline over i..s plus a single stage s+1..j.
        for (int s = i; s < j; ++s) {
          const double boundary =
              2.0 * static_cast<double>(profile.BoundaryActivationBytes(s)) / p2p_bandwidth;
          for (int mp = 1; mp < m; ++mp) {
            const double left = tables.A(i, s, m - mp);
            if (left == kInf) {
              continue;
            }
            const double right = stage_time(s + 1, j, mp);
            if (right == kInf) {
              continue;
            }
            const double candidate = std::max({left, boundary, right});
            if (candidate < best) {
              best = candidate;
              best_choice.split = s;
              best_choice.right_workers = mp;
            }
          }
        }
        tables.A(i, j, m) = best;
        tables.choice(i, j, m) = best_choice;
      }
    }
  }
  return tables;
}

// Recursively expands one level's choice tree into a flat stage list. `components` is one
// contiguous worker-id block per level-(k-1) component available to this range.
// `expand_component` renders layers i..j onto a single component (level 1: a leaf stage;
// level k: the lower level's reconstruction).
void ReconstructLevel(
    const DpTables& tables, int i, int j, int m,
    const std::vector<std::vector<int>>& components,
    const std::function<void(int, int, const std::vector<int>&, std::vector<StageAssignment>*)>&
        expand_component,
    std::vector<StageAssignment>* out) {
  PD_CHECK_EQ(static_cast<int>(components.size()), m);
  const Choice& choice = tables.choice(i, j, m);
  if (choice.split < 0) {
    // Single stage replicated over the m components: expand the range onto the first
    // component, then mirror the resulting stage structure onto the remaining components.
    std::vector<StageAssignment> inner;
    expand_component(i, j, components[0], &inner);
    for (int c = 1; c < m; ++c) {
      std::vector<StageAssignment> mirror;
      expand_component(i, j, components[static_cast<size_t>(c)], &mirror);
      PD_CHECK_EQ(mirror.size(), inner.size());
      for (size_t s = 0; s < inner.size(); ++s) {
        PD_CHECK_EQ(mirror[s].begin_layer, inner[s].begin_layer);
        inner[s].replicas += mirror[s].replicas;
        inner[s].workers.insert(inner[s].workers.end(), mirror[s].workers.begin(),
                                mirror[s].workers.end());
      }
    }
    out->insert(out->end(), inner.begin(), inner.end());
    return;
  }
  // Left sub-pipeline over the first m - m' components, then the last stage on the rest.
  const int mp = choice.right_workers;
  std::vector<std::vector<int>> left_components(components.begin(),
                                                components.end() - mp);
  std::vector<std::vector<int>> right_components(components.end() - mp, components.end());
  ReconstructLevel(tables, i, choice.split, m - mp, left_components, expand_component, out);
  // The right side is a single stage over m' components — same mirroring as above.
  std::vector<StageAssignment> inner;
  expand_component(choice.split + 1, j, right_components[0], &inner);
  for (int c = 1; c < mp; ++c) {
    std::vector<StageAssignment> mirror;
    expand_component(choice.split + 1, j, right_components[static_cast<size_t>(c)], &mirror);
    PD_CHECK_EQ(mirror.size(), inner.size());
    for (size_t s = 0; s < inner.size(); ++s) {
      inner[s].replicas += mirror[s].replicas;
      inner[s].workers.insert(inner[s].workers.end(), mirror[s].workers.begin(),
                              mirror[s].workers.end());
    }
  }
  out->insert(out->end(), inner.begin(), inner.end());
}

}  // namespace

PartitionResult PartitionFlat(const ModelProfile& profile, int workers,
                              double bandwidth_bytes_per_sec,
                              const PartitionerOptions& options) {
  PD_CHECK_GE(workers, 1);
  PD_CHECK_GT(bandwidth_bytes_per_sec, 0.0);
  const int n = profile.num_layers();
  const int usable =
      options.max_workers_used > 0 ? std::min(workers, options.max_workers_used) : workers;

  auto substrate = [&](int i, int j) { return profile.ComputeSeconds(i, j + 1); };
  const DpTables tables =
      SolveLevel(profile, substrate, usable, bandwidth_bytes_per_sec * options.collective_efficiency,
                 bandwidth_bytes_per_sec * options.p2p_efficiency,
                 options.collective_shared_bus, /*unit_size=*/1, options);

  PD_CHECK(tables.A(0, n - 1, usable) < kInf)
      << "no feasible partition of " << profile.model_name << " over " << usable << " workers";

  // Leaf expansion: one stage on one worker.
  auto expand_leaf = [](int i, int j, const std::vector<int>& component,
                        std::vector<StageAssignment>* out) {
    PD_CHECK_EQ(component.size(), 1u);
    StageAssignment s;
    s.begin_layer = i;
    s.end_layer = j + 1;
    s.replicas = 1;
    s.workers = component;
    out->push_back(std::move(s));
  };
  std::vector<std::vector<int>> components;
  components.reserve(static_cast<size_t>(usable));
  for (int w = 0; w < usable; ++w) {
    components.push_back({w});
  }
  std::vector<StageAssignment> stages;
  ReconstructLevel(tables, 0, n - 1, usable, components, expand_leaf, &stages);

  PartitionResult result;
  result.plan = PipelinePlan(std::move(stages));
  result.plan.Validate(n);
  result.bottleneck_seconds = tables.A(0, n - 1, usable);
  ChooseWeightModes(profile, options.device_memory_bytes, &result.plan);
  ChooseRecompute(profile, options.device_memory_bytes, &result.plan);
  return result;
}

namespace {

// One DP pass over a fixed worker order: H[j][c] is the slowest-stage time of the best
// pipeline covering layers 0..j (inclusive) using exactly the first c workers of `order`,
// where every stage is a contiguous block of the order. HetChoice records the last stage's
// layer split and worker count for reconstruction.
struct HetChoice {
  int split = -1;       // -1: single stage over layers 0..j; else last stage starts at split+1
  int right_workers = 0;  // workers in the last stage's block when split >= 0
};

struct HetSolution {
  double bottleneck = kInf;
  std::vector<StageAssignment> stages;
};

HetSolution SolveHeterogeneousOrdered(const ModelProfile& profile,
                                      const std::vector<WorkerSpec>& specs,
                                      const std::vector<int>& order, double bandwidth,
                                      const PartitionerOptions& options) {
  const int n = profile.num_layers();
  const int w = static_cast<int>(order.size());
  const double coll_bw = bandwidth * options.collective_efficiency;
  const double p2p_bw = bandwidth * options.p2p_efficiency;
  constexpr int64_t kNoBudget = std::numeric_limits<int64_t>::max();

  // Block [a, b) aggregates: slowest member gates the round-robin round; tightest memory
  // budget gates feasibility (per-worker memory_bytes overrides the global option).
  std::vector<double> min_speed(static_cast<size_t>(w) * (w + 1), 0.0);
  std::vector<int64_t> min_budget(static_cast<size_t>(w) * (w + 1), kNoBudget);
  auto block_index = [w](int a, int b) { return static_cast<size_t>(a) * (w + 1) + b; };
  for (int a = 0; a < w; ++a) {
    double speed = kInf;
    int64_t budget = kNoBudget;
    for (int b = a + 1; b <= w; ++b) {
      const WorkerSpec& spec = specs[static_cast<size_t>(order[static_cast<size_t>(b - 1)])];
      speed = std::min(speed, spec.speed);
      const int64_t device = spec.memory_bytes > 0 ? spec.memory_bytes
                             : options.device_memory_bytes > 0 ? options.device_memory_bytes
                                                               : kNoBudget;
      budget = std::min(budget, device);
      min_speed[block_index(a, b)] = speed;
      min_budget[block_index(a, b)] = budget;
    }
  }

  // Stage over layers [i..j] replicated across the worker block [a, b) of the order.
  auto stage_time = [&](int i, int j, int a, int b) -> double {
    const int m = b - a;
    const double compute =
        profile.ComputeSeconds(i, j + 1) / min_speed[block_index(a, b)];
    const int64_t weights = profile.ParamBytes(i, j + 1);
    const int64_t budget = min_budget[block_index(a, b)];
    if (budget != kNoBudget &&
        3 * weights + profile.ActivationBytes(i, j + 1) > budget) {
      return kInf;
    }
    if (m == 1) {
      return compute;
    }
    if (!options.allow_replication) {
      return kInf;
    }
    const double ring_divisor = options.collective_shared_bus ? 1.0 : static_cast<double>(m);
    const double sync = 2.0 * static_cast<double>(m - 1) * static_cast<double>(weights) /
                        (ring_divisor * coll_bw);
    return std::max(compute, sync) / static_cast<double>(m);
  };

  std::vector<double> best(static_cast<size_t>(n) * (w + 1), kInf);
  std::vector<HetChoice> choice(static_cast<size_t>(n) * (w + 1));
  auto dp_index = [w](int j, int c) { return static_cast<size_t>(j) * (w + 1) + c; };
  for (int j = 0; j < n; ++j) {
    for (int c = 1; c <= w; ++c) {
      double b = stage_time(0, j, 0, c);
      HetChoice ch;
      for (int s = 0; s < j; ++s) {
        const double boundary =
            2.0 * static_cast<double>(profile.BoundaryActivationBytes(s)) / p2p_bw;
        for (int mp = 1; mp < c; ++mp) {
          const double left = best[dp_index(s, c - mp)];
          if (left >= kInf) {
            continue;
          }
          const double right = stage_time(s + 1, j, c - mp, c);
          if (right >= kInf) {
            continue;
          }
          const double candidate = std::max({left, boundary, right});
          if (candidate < b) {
            b = candidate;
            ch.split = s;
            ch.right_workers = mp;
          }
        }
      }
      best[dp_index(j, c)] = b;
      choice[dp_index(j, c)] = ch;
    }
  }

  HetSolution solution;
  solution.bottleneck = best[dp_index(n - 1, w)];
  if (solution.bottleneck >= kInf) {
    return solution;
  }
  // Reconstruct back to front: each stage is a block [c - right, c) of the order.
  std::vector<StageAssignment> reversed;
  int j = n - 1;
  int c = w;
  while (true) {
    const HetChoice& ch = choice[dp_index(j, c)];
    StageAssignment stage;
    if (ch.split < 0) {
      stage.begin_layer = 0;
      stage.end_layer = j + 1;
      stage.replicas = c;
      stage.workers.assign(order.begin(), order.begin() + c);
      std::sort(stage.workers.begin(), stage.workers.end());
      reversed.push_back(std::move(stage));
      break;
    }
    stage.begin_layer = ch.split + 1;
    stage.end_layer = j + 1;
    stage.replicas = ch.right_workers;
    stage.workers.assign(order.begin() + (c - ch.right_workers), order.begin() + c);
    std::sort(stage.workers.begin(), stage.workers.end());
    reversed.push_back(std::move(stage));
    j = ch.split;
    c -= ch.right_workers;
  }
  solution.stages.assign(reversed.rbegin(), reversed.rend());
  return solution;
}

}  // namespace

PartitionResult PartitionHeterogeneous(const ModelProfile& profile,
                                       const std::vector<WorkerSpec>& workers,
                                       double bandwidth_bytes_per_sec,
                                       const PartitionerOptions& options) {
  PD_CHECK(!workers.empty());
  PD_CHECK_GT(bandwidth_bytes_per_sec, 0.0);
  const int n = profile.num_layers();

  // Worker ids sorted fastest-first; an optional cap keeps the fastest devices.
  std::vector<int> by_speed(workers.size());
  std::iota(by_speed.begin(), by_speed.end(), 0);
  std::stable_sort(by_speed.begin(), by_speed.end(), [&](int a, int b) {
    return workers[static_cast<size_t>(a)].speed > workers[static_cast<size_t>(b)].speed;
  });
  if (options.max_workers_used > 0 &&
      static_cast<int>(by_speed.size()) > options.max_workers_used) {
    by_speed.resize(static_cast<size_t>(options.max_workers_used));
  }

  bool uniform = true;
  for (int id : by_speed) {
    const WorkerSpec& spec = workers[static_cast<size_t>(id)];
    PD_CHECK_GT(spec.speed, 0.0) << "worker " << id << " has non-positive speed";
    uniform = uniform && spec.speed == workers[static_cast<size_t>(by_speed[0])].speed &&
              spec.memory_bytes == workers[static_cast<size_t>(by_speed[0])].memory_bytes;
  }
  if (uniform) {
    // Identical devices: delegate to the flat DP on a speed-scaled profile so plans and
    // bottlenecks line up exactly with the homogeneous path.
    const WorkerSpec& spec = workers[static_cast<size_t>(by_speed[0])];
    PartitionerOptions flat_options = options;
    flat_options.max_workers_used = 0;  // the cap was applied above
    if (spec.memory_bytes > 0) {
      flat_options.device_memory_bytes = spec.memory_bytes;
    }
    PartitionResult result =
        PartitionFlat(profile.Scaled(spec.speed, 1.0), static_cast<int>(by_speed.size()),
                      bandwidth_bytes_per_sec, flat_options);
    if (static_cast<int>(by_speed.size()) < static_cast<int>(workers.size())) {
      // Remap the flat DP's dense 0..k-1 ids onto the retained (fastest) workers.
      std::vector<StageAssignment> stages = result.plan.stages();
      for (StageAssignment& stage : stages) {
        for (int& id : stage.workers) {
          id = by_speed[static_cast<size_t>(id)];
        }
        std::sort(stage.workers.begin(), stage.workers.end());
      }
      result.plan = PipelinePlan(std::move(stages));
      result.plan.Validate(n);
    }
    return result;
  }

  // Heterogeneous: contiguous blocks of the speed-sorted order, tried in both directions
  // (fastest-first puts fast workers on the deep input stages; slowest-first the reverse).
  HetSolution best = SolveHeterogeneousOrdered(profile, workers, by_speed,
                                               bandwidth_bytes_per_sec, options);
  std::vector<int> reversed(by_speed.rbegin(), by_speed.rend());
  HetSolution alt = SolveHeterogeneousOrdered(profile, workers, reversed,
                                              bandwidth_bytes_per_sec, options);
  if (alt.bottleneck < best.bottleneck) {
    best = std::move(alt);
  }
  PD_CHECK(best.bottleneck < kInf)
      << "no feasible heterogeneous partition of " << profile.model_name << " over "
      << by_speed.size() << " workers";

  PartitionResult result;
  result.plan = PipelinePlan(std::move(best.stages));
  result.plan.Validate(n);
  result.bottleneck_seconds = best.bottleneck;
  ChooseWeightModes(profile, options.device_memory_bytes, &result.plan);
  ChooseRecompute(profile, options.device_memory_bytes, &result.plan);
  return result;
}

PartitionResult PartitionHierarchical(const ModelProfile& profile,
                                      const HardwareTopology& topology,
                                      const PartitionerOptions& options) {
  const int n = profile.num_layers();
  const int num_levels = topology.num_levels();
  PD_CHECK_GE(num_levels, 1);

  // Solve bottom-up: level k's substrate is level k-1's optimum on a full component.
  std::vector<DpTables> per_level;
  per_level.reserve(static_cast<size_t>(num_levels));
  for (int k = 1; k <= num_levels; ++k) {
    const int mk = topology.level(k).fanout;
    const double coll_bw = topology.level(k).effective_collective_bandwidth();
    const double p2p_bw = topology.level(k).effective_p2p_bandwidth();
    std::function<double(int, int)> substrate;
    if (k == 1) {
      substrate = [&profile](int i, int j) { return profile.ComputeSeconds(i, j + 1); };
    } else {
      const DpTables& below = per_level.back();
      const int below_m = below.mmax();
      substrate = [&below, below_m](int i, int j) { return below.A(i, j, below_m); };
    }
    per_level.push_back(SolveLevel(profile, substrate, mk, coll_bw, p2p_bw,
                                   topology.level(k).shared_bus,
                                   topology.WorkersPerComponent(k - 1), options));
  }

  // Expansion functions, one per level, built top-down over the recursion.
  // expand[k](i, j, component_workers, out) renders layers i..j on one level-k component.
  std::vector<std::function<void(int, int, const std::vector<int>&,
                                 std::vector<StageAssignment>*)>>
      expand(static_cast<size_t>(num_levels + 1));
  expand[0] = [](int i, int j, const std::vector<int>& component,
                 std::vector<StageAssignment>* out) {
    PD_CHECK_EQ(component.size(), 1u);
    StageAssignment s;
    s.begin_layer = i;
    s.end_layer = j + 1;
    s.replicas = 1;
    s.workers = component;
    out->push_back(std::move(s));
  };
  for (int k = 1; k <= num_levels; ++k) {
    const DpTables& tables = per_level[static_cast<size_t>(k - 1)];
    const int fanout = topology.level(k).fanout;
    const auto& expand_below = expand[static_cast<size_t>(k - 1)];
    expand[static_cast<size_t>(k)] = [&tables, fanout, &expand_below](
                                         int i, int j, const std::vector<int>& component,
                                         std::vector<StageAssignment>* out) {
      // Split this component's workers into its level-(k-1) sub-components.
      PD_CHECK_EQ(static_cast<int>(component.size()) % fanout, 0);
      const size_t per = component.size() / static_cast<size_t>(fanout);
      std::vector<std::vector<int>> sub_components;
      sub_components.reserve(static_cast<size_t>(fanout));
      for (int c = 0; c < fanout; ++c) {
        sub_components.emplace_back(component.begin() + static_cast<long>(c * per),
                                    component.begin() + static_cast<long>((c + 1) * per));
      }
      ReconstructLevel(tables, i, j, fanout, sub_components, expand_below, out);
    };
  }

  const DpTables& top = per_level.back();
  const int top_m = topology.level(num_levels).fanout;
  PD_CHECK(top.A(0, n - 1, top_m) < kInf)
      << "no feasible hierarchical partition of " << profile.model_name;

  std::vector<int> all_workers(static_cast<size_t>(topology.num_workers()));
  for (int w = 0; w < topology.num_workers(); ++w) {
    all_workers[static_cast<size_t>(w)] = w;
  }
  std::vector<StageAssignment> stages;
  expand[static_cast<size_t>(num_levels)](0, n - 1, all_workers, &stages);

  PartitionResult result;
  result.plan = PipelinePlan(std::move(stages));
  result.plan.Validate(n);
  result.bottleneck_seconds = top.A(0, n - 1, top_m);
  ChooseWeightModes(profile, options.device_memory_bytes, &result.plan);
  ChooseRecompute(profile, options.device_memory_bytes, &result.plan);
  return result;
}

PartitionResult Partition(const ModelProfile& profile, const HardwareTopology& topology,
                          const PartitionerOptions& options) {
  // The hierarchical solver composes optimal sub-pipelines per level (§3.1), but its
  // replication factors are constrained to whole lower-level components — the paper's
  // "15-1" on a 4x4 cluster is not expressible that way. Solve both the hierarchical and a
  // flat relaxation (every worker pair charged the outermost level's link), then keep the
  // plan with the lower bottleneck.
  PartitionResult best = PartitionHierarchical(profile, topology, options);
  if (topology.num_levels() > 1) {
    const TopologyLevel& outer = topology.level(topology.num_levels());
    PartitionerOptions flat_options = options;
    flat_options.collective_efficiency = outer.collective_efficiency;
    flat_options.p2p_efficiency = outer.p2p_efficiency;
    flat_options.collective_shared_bus = outer.shared_bus;
    const PartitionResult flat = PartitionFlat(profile, topology.num_workers(),
                                               outer.bandwidth_bytes_per_sec, flat_options);
    if (flat.bottleneck_seconds < best.bottleneck_seconds) {
      best = flat;
    }
  }
  return best;
}

int ChooseWeightModes(const ModelProfile& profile, int64_t device_memory_bytes,
                      PipelinePlan* plan) {
  if (device_memory_bytes <= 0 || plan->num_stages() == 0) {
    return 0;
  }
  const int num_stages = plan->num_stages();
  const int noam = plan->Noam();
  std::vector<StageAssignment> stages = plan->stages();
  int flipped = 0;
  for (int s = 0; s < num_stages; ++s) {
    StageAssignment& stage = stages[static_cast<size_t>(s)];
    // 1F1B stash depth at this stage (the predictor's shared model in memory_model.h): the
    // input stage holds NOAM in-flight minibatches, tapering to 1 at the output.
    const int in_flight =
        InFlightDepth(noam, num_stages, s, ScheduleKind::kOneFOneB, /*flush_microbatches=*/1);
    const int64_t weights = profile.ParamBytes(stage.begin_layer, stage.end_layer);
    const int64_t activations = profile.ActivationBytes(stage.begin_layer, stage.end_layer);
    const int64_t stashing_peak =
        StagePeakMemoryBytes(weights, activations, /*boundary_in_bytes=*/0,
                             WeightMode::kStashing, /*recompute=*/false, in_flight);
    if (stashing_peak > device_memory_bytes) {
      // 2BW footprint (weights * 3 + activation stashes) is what the DP's stage_fits
      // admitted, so the flipped stage is guaranteed to fit.
      stage.weight_mode = WeightMode::kDoubleBuffered;
      ++flipped;
    }
  }
  if (flipped > 0) {
    *plan = PipelinePlan(std::move(stages));
  }
  return flipped;
}

int ChooseRecompute(const ModelProfile& profile, int64_t device_memory_bytes,
                    PipelinePlan* plan) {
  if (device_memory_bytes <= 0 || plan->num_stages() == 0) {
    return 0;
  }
  const int num_stages = plan->num_stages();
  const int noam = plan->Noam();
  std::vector<StageAssignment> stages = plan->stages();
  int flipped = 0;
  for (int s = 0; s < num_stages; ++s) {
    StageAssignment& stage = stages[static_cast<size_t>(s)];
    const int in_flight =
        InFlightDepth(noam, num_stages, s, ScheduleKind::kOneFOneB, /*flush_microbatches=*/1);
    const int64_t weights = profile.ParamBytes(stage.begin_layer, stage.end_layer);
    const int64_t activations = profile.ActivationBytes(stage.begin_layer, stage.end_layer);
    const int64_t boundary_in =
        s > 0 ? profile.BoundaryActivationBytes(stages[static_cast<size_t>(s - 1)].end_layer - 1)
              : 0;
    const int64_t current_peak = StagePeakMemoryBytes(
        weights, activations, boundary_in, stage.weight_mode, stage.recompute, in_flight);
    if (current_peak <= device_memory_bytes || stage.recompute) {
      continue;
    }
    // Still busting the budget after weight-mode selection: drop the stash term if that
    // actually shrinks the peak (it always does unless the stage's working set is a single
    // boundary-sized activation already).
    const int64_t recompute_peak = StagePeakMemoryBytes(
        weights, activations, boundary_in, stage.weight_mode, /*recompute=*/true, in_flight);
    if (recompute_peak < current_peak) {
      stage.recompute = true;
      ++flipped;
    }
  }
  if (flipped > 0) {
    *plan = PipelinePlan(std::move(stages));
  }
  return flipped;
}

}  // namespace pipedream
