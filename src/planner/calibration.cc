#include "src/planner/calibration.h"

#include <algorithm>

namespace pipedream {

std::vector<std::pair<int, int>> StageLayerRanges(const PipelinePlan& plan) {
  std::vector<std::pair<int, int>> ranges;
  ranges.reserve(static_cast<size_t>(plan.num_stages()));
  for (const StageAssignment& stage : plan.stages()) {
    ranges.emplace_back(stage.begin_layer, stage.end_layer);
  }
  return ranges;
}

MeasuredProfile CollectMeasuredProfileForPlan(const PipelinePlan& plan) {
  return CollectMeasuredProfile(StageLayerRanges(plan));
}

std::vector<WorkerSpec> MeasuredWorkerSpecs(const ModelProfile& estimated,
                                            const PipelinePlan& plan,
                                            const MeasuredProfile& measured) {
  int max_worker = -1;
  for (const StageAssignment& stage : plan.stages()) {
    for (int w : stage.workers) {
      max_worker = std::max(max_worker, w);
    }
  }
  std::vector<WorkerSpec> specs(static_cast<size_t>(max_worker + 1));
  for (const MeasuredStageOps& ops : measured.stages) {
    if (ops.stage < 0 || ops.stage >= plan.num_stages()) {
      continue;
    }
    if (ops.samples <= 0 || ops.total_seconds() <= 0.0) {
      continue;
    }
    const double est = estimated.ComputeSeconds(ops.begin_layer, ops.end_layer);
    if (est <= 0.0) {
      continue;
    }
    const double speed = est / ops.total_seconds();
    for (int w : plan.stage(ops.stage).workers) {
      specs[static_cast<size_t>(w)].speed = speed;
    }
  }
  return specs;
}

}  // namespace pipedream
