// Measured-speed feedback: closes the paper's profiler loop (§3.1) over a live run.
//
// The estimated ModelProfile seeds the first plan; once the pipeline has run, the obs
// layer holds per-stage op-time histograms. This module maps those measurements back onto
// planner inputs: a recalibrated per-layer profile (RecalibrateProfile, layer_profile.h)
// and per-worker WorkerSpec.speed values, so PartitionHeterogeneous and PredictPlan run on
// observed numbers instead of configured ones.
#ifndef SRC_PLANNER_CALIBRATION_H_
#define SRC_PLANNER_CALIBRATION_H_

#include <utility>
#include <vector>

#include "src/planner/plan.h"
#include "src/profile/layer_profile.h"
#include "src/profile/profiler.h"

namespace pipedream {

// The [begin, end) layer range each stage of `plan` hosts, indexed by stage.
std::vector<std::pair<int, int>> StageLayerRanges(const PipelinePlan& plan);

// Aggregates the metrics registry's runtime/stage<s>/{fwd,bwd}_seconds histograms for
// every stage of `plan` (CollectMeasuredProfile over StageLayerRanges).
MeasuredProfile CollectMeasuredProfileForPlan(const PipelinePlan& plan);

// Derives per-worker speeds from measured stage times: every worker hosting stage s gets
// speed = estimated_stage_seconds / measured_stage_seconds, i.e. how much faster (>1) or
// slower (<1) the device ran the stage than the profile's reference device predicted.
// Replicas of a stage share one histogram, so they share one measured speed. The result is
// indexed by global worker id (size = max worker id + 1); workers outside the plan and
// stages with no samples or a zero estimate keep speed 1. Feed the result to
// PartitionHeterogeneous / PredictPlan to re-plan on observed throughput.
std::vector<WorkerSpec> MeasuredWorkerSpecs(const ModelProfile& estimated,
                                            const PipelinePlan& plan,
                                            const MeasuredProfile& measured);

}  // namespace pipedream

#endif  // SRC_PLANNER_CALIBRATION_H_
