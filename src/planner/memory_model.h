// The per-stage peak-memory model shared by the predictor, the partitioner's
// ChooseWeightModes/ChooseRecompute post-passes, and the event simulator's accounting — one
// implementation so "planner-predicted" and "sim-priced" peaks agree by construction (the
// schedule_memory tests pin the runtime-measured peak against it too). The formulas are the
// ones documented in docs/SCHEDULES.md.
#ifndef SRC_PLANNER_MEMORY_MODEL_H_
#define SRC_PLANNER_MEMORY_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/common/schedule.h"
#include "src/common/weight_mode.h"

namespace pipedream {

// Peak number of minibatches whose state stage `stage` of `num_stages` holds at once.
//
//   1F1B / interleaved:  ceil(noam * (S - s) / S)      — the §3.2 stash-depth ramp; for a
//                                                        straight pipeline this is S - s.
//   GPipe:               m (flush_microbatches)        — all m forwards complete before any
//                                                        backward frees a stash.
//   model parallel:      1
//   PipeDream-Flush:     min(ceil ramp, m)             — 1F1B ordering inside the round caps
//                                                        live stashes at the 1F1B depth, and
//                                                        the round size caps them at m.
inline int InFlightDepth(int noam, int num_stages, int stage, ScheduleKind kind,
                         int flush_microbatches) {
  const int base = std::max(
      1, static_cast<int>(std::ceil(static_cast<double>(noam) *
                                    static_cast<double>(num_stages - stage) / num_stages)));
  switch (kind) {
    case ScheduleKind::kGPipe:
      return flush_microbatches;
    case ScheduleKind::kModelParallel:
      return 1;
    case ScheduleKind::kPipeDreamFlush:
      return std::min(base, flush_microbatches);
    case ScheduleKind::kOneFOneB:
    case ScheduleKind::kInterleaved:
      return base;
  }
  return base;
}

// Peak bytes one replica of a stage holds:
//
//   weight term   kNaive           2w   (current weights + gradient buffer)
//                 kDoubleBuffered  3w   (+ one shadow version — constant in depth: 2BW)
//                 kStashing /      (in_flight + 1) w   (+ in_flight - 1 stashed versions)
//                 kVerticalSync
//   activation    stashing      act * in_flight
//   term          recompute     boundary_in * in_flight + act
//
// Recompute keeps only the stage's *input* activation per in-flight minibatch and re-runs
// the forward before the backward, so exactly one full working set (`act`) is ever
// materialized; it trades ~1 extra stage-forward of compute for dropping the
// act * (in_flight - 1) stash overhang. `boundary_in_bytes` is the inbound boundary
// activation (0 at the input stage, whose input comes from the data loader).
inline int64_t StagePeakMemoryBytes(int64_t weight_bytes, int64_t activation_bytes,
                                    int64_t boundary_in_bytes, WeightMode mode,
                                    bool recompute, int in_flight) {
  int64_t weight_copies;
  switch (mode) {
    case WeightMode::kNaive:
      weight_copies = 2;
      break;
    case WeightMode::kDoubleBuffered:
      weight_copies = 3;
      break;
    case WeightMode::kStashing:
    case WeightMode::kVerticalSync:
    default:
      weight_copies = in_flight + 1;
      break;
  }
  const int64_t activation_term =
      recompute ? boundary_in_bytes * in_flight + activation_bytes
                : activation_bytes * in_flight;
  return weight_bytes * weight_copies + activation_term;
}

}  // namespace pipedream

#endif  // SRC_PLANNER_MEMORY_MODEL_H_
