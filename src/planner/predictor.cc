#include "src/planner/predictor.h"

#include <algorithm>
#include <cmath>

namespace pipedream {
namespace {

// The outermost (slowest) level any pair of the given workers must cross.
int BottleneckLevel(const HardwareTopology& topology, const std::vector<int>& workers) {
  int worst = 1;
  for (size_t a = 0; a < workers.size(); ++a) {
    for (size_t b = a + 1; b < workers.size(); ++b) {
      worst = std::max(worst, topology.SharedLevel(workers[a], workers[b]));
    }
  }
  return worst;
}

// Ring (or shared-bus) all_reduce wall time for m replicas' gradients of `bytes` each.
double SyncWallSeconds(const HardwareTopology& topology, const std::vector<int>& workers,
                       int64_t bytes) {
  const TopologyLevel& level =
      topology.level(BottleneckLevel(topology, workers));
  const auto m = static_cast<double>(workers.size());
  const double divisor = level.shared_bus ? 1.0 : m;
  return 2.0 * (m - 1.0) * static_cast<double>(bytes) /
         (divisor * level.effective_collective_bandwidth());
}

// Slowest effective point-to-point link between any worker of one stage and any of the next.
double MinCrossP2pBandwidth(const HardwareTopology& topology, const std::vector<int>& from,
                            const std::vector<int>& to) {
  double min_bw = 1e300;
  for (int a : from) {
    for (int b : to) {
      if (a != b) {
        min_bw = std::min(min_bw, topology.EffectiveP2pBandwidthBetween(a, b));
      }
    }
  }
  return min_bw;
}

}  // namespace

PlanPrediction PredictPlan(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology, int pipeline_depth) {
  return PredictPlan(profile, plan, topology, std::vector<WorkerSpec>(), pipeline_depth);
}

PlanPrediction PredictPlan(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology,
                           const std::vector<WorkerSpec>& workers, int pipeline_depth) {
  plan.Validate(profile.num_layers());
  // Compute on a replicated stage proceeds at the pace of its slowest member: round-robin
  // hands every replica an equal share, so the round closes when the slowest finishes.
  auto stage_speed = [&](const StageAssignment& stage) -> double {
    if (workers.empty()) {
      return 1.0;
    }
    double speed = 1e300;
    for (int w : stage.workers) {
      PD_CHECK(w >= 0 && w < static_cast<int>(workers.size()))
          << "plan worker " << w << " outside the WorkerSpec set";
      speed = std::min(speed, workers[static_cast<size_t>(w)].speed);
    }
    PD_CHECK_GT(speed, 0.0);
    return speed;
  };
  const int num_stages = plan.num_stages();
  const int noam = pipeline_depth > 0 ? pipeline_depth : plan.Noam();
  const int64_t batch = profile.minibatch_size;

  PlanPrediction prediction;
  prediction.stages.resize(static_cast<size_t>(num_stages));

  double bottleneck = 0.0;
  double bytes_per_minibatch = 0.0;

  for (int s = 0; s < num_stages; ++s) {
    const StageAssignment& stage = plan.stage(s);
    StagePrediction& sp = prediction.stages[static_cast<size_t>(s)];
    const int m = stage.replicas;

    sp.compute_seconds =
        profile.ComputeSeconds(stage.begin_layer, stage.end_layer) / stage_speed(stage);
    sp.weight_bytes = profile.ParamBytes(stage.begin_layer, stage.end_layer);
    sp.activation_stash_bytes = profile.ActivationBytes(stage.begin_layer, stage.end_layer);

    if (m > 1) {
      // All_reduce wall time per round of m minibatches (the §3.1 sync term in its
      // physically-consistent form — see the SolveLevel comment in partitioner.cc).
      sp.sync_seconds = SyncWallSeconds(topology, stage.workers, sp.weight_bytes);
      // Gradient all_reduce bytes, DDP-style: one collective aggregates the m replicas'
      // gradients, moving 2(m-1)/m * |w| per replica — so 2(m-1)|w|/m per synchronized group
      // of m minibatches... i.e. 2(m-1)|w|/m per minibatch group member.
      bytes_per_minibatch +=
          2.0 * static_cast<double>(m - 1) * static_cast<double>(sp.weight_bytes) /
          static_cast<double>(m);
    }
    sp.effective_seconds = std::max(sp.compute_seconds, sp.sync_seconds) / m;
    bottleneck = std::max(bottleneck, sp.effective_seconds);

    if (s > 0) {
      const StageAssignment& prev = plan.stage(s - 1);
      const int64_t boundary_bytes = profile.BoundaryActivationBytes(prev.end_layer - 1);
      const double bw = MinCrossP2pBandwidth(topology, prev.workers, stage.workers);
      sp.input_comm_seconds = 2.0 * static_cast<double>(boundary_bytes) / bw;
      bottleneck = std::max(bottleneck, sp.input_comm_seconds);
      // Forward activations + backward gradients cross the boundary once per minibatch.
      bytes_per_minibatch += 2.0 * static_cast<double>(boundary_bytes);
    }

    // 1F1B stash depth: the input stage holds NOAM in-flight minibatches; later stages hold
    // proportionally fewer, down to 1 at the output stage.
    sp.in_flight = std::max(
        1, static_cast<int>(std::ceil(static_cast<double>(noam) *
                                      static_cast<double>(num_stages - s) / num_stages)));
    // Activation stashes are held for every in-flight minibatch regardless of mode; the
    // weight term is where the modes differ (§3.3 vs the 2BW follow-up).
    sp.weight_mode = stage.weight_mode;
    const int64_t weight_term = [&]() -> int64_t {
      switch (stage.weight_mode) {
        case WeightMode::kNaive:
          // Current weights + gradient buffer, no versioning.
          return sp.weight_bytes * 2;
        case WeightMode::kDoubleBuffered:
          // Current weights + ONE shadow buffer + the gradient accumulator — constant in
          // the in-flight depth (the whole point of 2BW).
          return sp.weight_bytes * 3;
        case WeightMode::kStashing:
        case WeightMode::kVerticalSync:
          // Current weights + gradient buffer + (in_flight - 1) stashed versions.
          return sp.weight_bytes * (sp.in_flight + 1);
      }
      return sp.weight_bytes * (sp.in_flight + 1);
    }();
    sp.peak_memory_bytes = weight_term + sp.activation_stash_bytes * sp.in_flight;
    prediction.max_worker_memory_bytes =
        std::max(prediction.max_worker_memory_bytes, sp.peak_memory_bytes);
  }

  prediction.bottleneck_seconds = bottleneck;
  prediction.throughput_samples_per_sec =
      bottleneck > 0.0 ? static_cast<double>(batch) / bottleneck : 0.0;
  prediction.comm_bytes_per_sample = bytes_per_minibatch / static_cast<double>(batch);
  return prediction;
}

}  // namespace pipedream
