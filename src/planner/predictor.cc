#include "src/planner/predictor.h"

#include <algorithm>
#include <cmath>

#include "src/planner/memory_model.h"

namespace pipedream {
namespace {

// The outermost (slowest) level any pair of the given workers must cross.
int BottleneckLevel(const HardwareTopology& topology, const std::vector<int>& workers) {
  int worst = 1;
  for (size_t a = 0; a < workers.size(); ++a) {
    for (size_t b = a + 1; b < workers.size(); ++b) {
      worst = std::max(worst, topology.SharedLevel(workers[a], workers[b]));
    }
  }
  return worst;
}

// Ring (or shared-bus) all_reduce wall time for m replicas' gradients of `bytes` each.
double SyncWallSeconds(const HardwareTopology& topology, const std::vector<int>& workers,
                       int64_t bytes) {
  const TopologyLevel& level =
      topology.level(BottleneckLevel(topology, workers));
  const auto m = static_cast<double>(workers.size());
  const double divisor = level.shared_bus ? 1.0 : m;
  return 2.0 * (m - 1.0) * static_cast<double>(bytes) /
         (divisor * level.effective_collective_bandwidth());
}

// Slowest effective point-to-point link between any worker of one stage and any of the next.
double MinCrossP2pBandwidth(const HardwareTopology& topology, const std::vector<int>& from,
                            const std::vector<int>& to) {
  double min_bw = 1e300;
  for (int a : from) {
    for (int b : to) {
      if (a != b) {
        min_bw = std::min(min_bw, topology.EffectiveP2pBandwidthBetween(a, b));
      }
    }
  }
  return min_bw;
}

}  // namespace

PlanPrediction PredictPlan(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology, int pipeline_depth) {
  return PredictPlan(profile, plan, topology, std::vector<WorkerSpec>(), pipeline_depth);
}

PlanPrediction PredictPlan(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology,
                           const std::vector<WorkerSpec>& workers, int pipeline_depth) {
  return PredictPlanScheduled(profile, plan, topology, ScheduleSpec(), workers,
                              pipeline_depth);
}

PlanPrediction PredictPlanScheduled(const ModelProfile& profile, const PipelinePlan& plan,
                                    const HardwareTopology& topology,
                                    const ScheduleSpec& schedule,
                                    const std::vector<WorkerSpec>& workers,
                                    int pipeline_depth) {
  plan.Validate(profile.num_layers());
  // Compute on a replicated stage proceeds at the pace of its slowest member: round-robin
  // hands every replica an equal share, so the round closes when the slowest finishes.
  auto stage_speed = [&](const StageAssignment& stage) -> double {
    if (workers.empty()) {
      return 1.0;
    }
    double speed = 1e300;
    for (int w : stage.workers) {
      PD_CHECK(w >= 0 && w < static_cast<int>(workers.size()))
          << "plan worker " << w << " outside the WorkerSpec set";
      speed = std::min(speed, workers[static_cast<size_t>(w)].speed);
    }
    PD_CHECK_GT(speed, 0.0);
    return speed;
  };
  const int num_stages = plan.num_stages();
  const int noam = pipeline_depth > 0 ? pipeline_depth : plan.Noam();
  const int64_t batch = profile.minibatch_size;
  const bool flush_family = IsFlushFamily(schedule.kind);
  const bool interleaved = schedule.kind == ScheduleKind::kInterleaved;
  const int chunks = interleaved ? schedule.interleave_chunks : 1;
  if (interleaved) {
    PD_CHECK(plan.IsStraight()) << "interleaved schedules need an unreplicated plan";
    PD_CHECK_GE(chunks, 1);
    PD_CHECK(num_stages % chunks == 0)
        << "interleaving needs num_stages (" << num_stages << ") divisible by chunks ("
        << chunks << ")";
  }
  const int physical_workers = interleaved ? num_stages / chunks : num_stages;

  PlanPrediction prediction;
  prediction.stages.resize(static_cast<size_t>(num_stages));

  double bottleneck = 0.0;
  double bytes_per_minibatch = 0.0;
  // Interleaved accounting: a physical worker hosts chunk-stages {w, W + w, ...}, so its
  // occupancy and memory are sums over those chunks, not a single stage's.
  std::vector<double> worker_occupancy(static_cast<size_t>(physical_workers), 0.0);
  std::vector<int64_t> worker_memory(static_cast<size_t>(physical_workers), 0);

  for (int s = 0; s < num_stages; ++s) {
    const StageAssignment& stage = plan.stage(s);
    StagePrediction& sp = prediction.stages[static_cast<size_t>(s)];
    const int m = stage.replicas;

    sp.compute_seconds =
        profile.ComputeSeconds(stage.begin_layer, stage.end_layer) / stage_speed(stage);
    sp.weight_bytes = profile.ParamBytes(stage.begin_layer, stage.end_layer);
    sp.activation_stash_bytes = profile.ActivationBytes(stage.begin_layer, stage.end_layer);

    // Recompute trades ~1 extra stage-forward per minibatch for dropping the stash term.
    sp.recompute = schedule.recompute.value_or(stage.recompute);
    if (sp.recompute) {
      double fwd_seconds = 0.0;
      for (int l = stage.begin_layer; l < stage.end_layer; ++l) {
        fwd_seconds += profile.layers[static_cast<size_t>(l)].fwd_seconds;
      }
      sp.compute_seconds += fwd_seconds / stage_speed(stage);
    }

    if (m > 1) {
      // All_reduce wall time per round of m minibatches (the §3.1 sync term in its
      // physically-consistent form — see the SolveLevel comment in partitioner.cc).
      sp.sync_seconds = SyncWallSeconds(topology, stage.workers, sp.weight_bytes);
      // Gradient all_reduce bytes, DDP-style: one collective aggregates the m replicas'
      // gradients, moving 2(m-1)/m * |w| per replica — so 2(m-1)|w|/m per synchronized group
      // of m minibatches... i.e. 2(m-1)|w|/m per minibatch group member.
      bytes_per_minibatch +=
          2.0 * static_cast<double>(m - 1) * static_cast<double>(sp.weight_bytes) /
          static_cast<double>(m);
    }
    sp.effective_seconds = std::max(sp.compute_seconds, sp.sync_seconds) / m;
    if (interleaved) {
      worker_occupancy[static_cast<size_t>(s % physical_workers)] += sp.effective_seconds;
    } else {
      bottleneck = std::max(bottleneck, sp.effective_seconds);
    }

    if (s > 0) {
      const StageAssignment& prev = plan.stage(s - 1);
      const int64_t boundary_bytes = profile.BoundaryActivationBytes(prev.end_layer - 1);
      const double bw = MinCrossP2pBandwidth(topology, prev.workers, stage.workers);
      sp.input_comm_seconds = 2.0 * static_cast<double>(boundary_bytes) / bw;
      bottleneck = std::max(bottleneck, sp.input_comm_seconds);
      // Forward activations + backward gradients cross the boundary once per minibatch.
      bytes_per_minibatch += 2.0 * static_cast<double>(boundary_bytes);
    }

    // Stash depth and peak memory come from the shared model (memory_model.h): the schedule
    // sets how many minibatches are live at this stage, the weight mode sets the number of
    // weight copies, and recompute swaps the act * in_flight stash for boundary_in *
    // in_flight + one materialized working set. Flush-family schedules are priced under
    // kNaive — no update commits inside a round, so the runtime forces it.
    sp.in_flight =
        InFlightDepth(noam, num_stages, s, schedule.kind, schedule.flush_microbatches);
    sp.weight_mode = flush_family ? WeightMode::kNaive : stage.weight_mode;
    const int64_t boundary_in =
        s > 0 ? profile.BoundaryActivationBytes(plan.stage(s - 1).end_layer - 1) : 0;
    sp.peak_memory_bytes =
        StagePeakMemoryBytes(sp.weight_bytes, sp.activation_stash_bytes, boundary_in,
                             sp.weight_mode, sp.recompute, sp.in_flight);
    worker_memory[static_cast<size_t>(interleaved ? s % physical_workers : s)] +=
        sp.peak_memory_bytes;
  }
  for (int64_t memory : worker_memory) {
    prediction.max_worker_memory_bytes = std::max(prediction.max_worker_memory_bytes, memory);
  }
  if (interleaved) {
    for (double occupancy : worker_occupancy) {
      bottleneck = std::max(bottleneck, occupancy);
    }
  }
  if (flush_family) {
    // Each round of m minibatches pays a full pipeline drain: (m + S - 1) slots of work for
    // m outputs, so the steady-state interval stretches by (m + S - 1) / m. kModelParallel
    // (m = 1) degenerates to no pipelining at all, factor S.
    const int m = schedule.kind == ScheduleKind::kModelParallel
                      ? 1
                      : std::max(1, schedule.flush_microbatches);
    bottleneck *= static_cast<double>(m + num_stages - 1) / static_cast<double>(m);
  }

  prediction.bottleneck_seconds = bottleneck;
  prediction.throughput_samples_per_sec =
      bottleneck > 0.0 ? static_cast<double>(batch) / bottleneck : 0.0;
  prediction.comm_bytes_per_sample = bytes_per_minibatch / static_cast<double>(batch);
  return prediction;
}

}  // namespace pipedream
