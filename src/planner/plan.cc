#include "src/planner/plan.h"

#include <cstdlib>
#include <set>

#include "src/common/strings.h"

namespace pipedream {

int PipelinePlan::total_workers() const {
  int total = 0;
  for (const StageAssignment& s : stages_) {
    total += s.replicas;
  }
  return total;
}

bool PipelinePlan::IsDataParallel(int num_layers) const {
  return num_stages() == 1 && stages_[0].begin_layer == 0 && stages_[0].end_layer == num_layers;
}

bool PipelinePlan::IsStraight() const {
  for (const StageAssignment& s : stages_) {
    if (s.replicas != 1) {
      return false;
    }
  }
  return num_stages() > 1;
}

int PipelinePlan::Noam() const {
  PD_CHECK_GT(num_stages(), 0);
  const int workers = total_workers();
  const int input_replicas = stages_[0].replicas;
  return (workers + input_replicas - 1) / input_replicas;  // ceil
}

std::string PipelinePlan::ConfigString(int num_layers) const {
  if (IsDataParallel(num_layers)) {
    return StrFormat("%d", stages_[0].replicas);
  }
  if (IsStraight()) {
    return "straight";
  }
  std::vector<std::string> parts;
  parts.reserve(stages_.size());
  for (const StageAssignment& s : stages_) {
    parts.push_back(StrFormat("%d", s.replicas));
  }
  return StrJoin(parts, "-");
}

void PipelinePlan::Validate(int num_layers) const {
  PD_CHECK_GT(num_stages(), 0) << "empty plan";
  int expected_begin = 0;
  std::set<int> seen_workers;
  for (int i = 0; i < num_stages(); ++i) {
    const StageAssignment& s = stages_[static_cast<size_t>(i)];
    PD_CHECK_EQ(s.begin_layer, expected_begin)
        << "stage " << i << " does not start where the previous stage ended";
    PD_CHECK_GT(s.end_layer, s.begin_layer) << "stage " << i << " is empty";
    PD_CHECK_GE(s.replicas, 1);
    PD_CHECK_EQ(static_cast<int>(s.workers.size()), s.replicas)
        << "stage " << i << ": replica count and worker list disagree";
    for (int w : s.workers) {
      PD_CHECK(seen_workers.insert(w).second) << "worker " << w << " assigned twice";
    }
    expected_begin = s.end_layer;
  }
  PD_CHECK_EQ(expected_begin, num_layers) << "plan does not cover all layers";
}

namespace {

// Assigns worker ids 0..N-1 to stages in order.
void AssignWorkersContiguously(std::vector<StageAssignment>* stages) {
  int next = 0;
  for (StageAssignment& s : *stages) {
    s.workers.clear();
    for (int r = 0; r < s.replicas; ++r) {
      s.workers.push_back(next++);
    }
  }
}

}  // namespace

PipelinePlan MakeDataParallelPlan(int num_layers, int workers) {
  PD_CHECK_GE(workers, 1);
  StageAssignment stage;
  stage.begin_layer = 0;
  stage.end_layer = num_layers;
  stage.replicas = workers;
  std::vector<StageAssignment> stages = {stage};
  AssignWorkersContiguously(&stages);
  PipelinePlan plan(std::move(stages));
  plan.Validate(num_layers);
  return plan;
}

PipelinePlan MakeStraightPlan(int num_layers, const std::vector<int>& cuts) {
  std::vector<StageAssignment> stages;
  int begin = 0;
  for (int cut : cuts) {
    PD_CHECK(cut > begin && cut < num_layers) << "bad cut " << cut;
    StageAssignment s;
    s.begin_layer = begin;
    s.end_layer = cut;
    stages.push_back(s);
    begin = cut;
  }
  StageAssignment last;
  last.begin_layer = begin;
  last.end_layer = num_layers;
  stages.push_back(last);
  AssignWorkersContiguously(&stages);
  PipelinePlan plan(std::move(stages));
  plan.Validate(num_layers);
  return plan;
}

PipelinePlan MakePlanFromShape(const std::vector<std::pair<int, int>>& layers_and_replicas) {
  std::vector<StageAssignment> stages;
  int begin = 0;
  for (const auto& [layer_count, replicas] : layers_and_replicas) {
    StageAssignment s;
    s.begin_layer = begin;
    s.end_layer = begin + layer_count;
    s.replicas = replicas;
    stages.push_back(s);
    begin = s.end_layer;
  }
  AssignWorkersContiguously(&stages);
  PipelinePlan plan(std::move(stages));
  plan.Validate(begin);
  return plan;
}

PipelinePlan MakeBalancedPlanWithReplicas(const ModelProfile& profile,
                                          const std::vector<int>& replicas) {
  const int n = profile.num_layers();
  const int num_stages = static_cast<int>(replicas.size());
  PD_CHECK(num_stages >= 1 && num_stages <= n)
      << "cannot split " << n << " layers into " << num_stages << " stages";

  // DP over (layers 0..j, k stages): minimize max per-replica compute.
  constexpr double kInf = 1e300;
  std::vector<std::vector<double>> best(
      static_cast<size_t>(n + 1), std::vector<double>(static_cast<size_t>(num_stages + 1), kInf));
  std::vector<std::vector<int>> split(
      static_cast<size_t>(n + 1), std::vector<int>(static_cast<size_t>(num_stages + 1), -1));
  best[0][0] = 0.0;
  for (int j = 1; j <= n; ++j) {
    for (int k = 1; k <= std::min(j, num_stages); ++k) {
      const double divisor = static_cast<double>(replicas[static_cast<size_t>(k - 1)]);
      for (int s = k - 1; s < j; ++s) {
        if (best[static_cast<size_t>(s)][static_cast<size_t>(k - 1)] >= kInf) {
          continue;
        }
        const double stage_time = profile.ComputeSeconds(s, j) / divisor;
        const double candidate =
            std::max(best[static_cast<size_t>(s)][static_cast<size_t>(k - 1)], stage_time);
        if (candidate < best[static_cast<size_t>(j)][static_cast<size_t>(k)]) {
          best[static_cast<size_t>(j)][static_cast<size_t>(k)] = candidate;
          split[static_cast<size_t>(j)][static_cast<size_t>(k)] = s;
        }
      }
    }
  }
  std::vector<int> boundaries;  // stage start layers, reconstructed back to front
  int j = n;
  for (int k = num_stages; k > 1; --k) {
    j = split[static_cast<size_t>(j)][static_cast<size_t>(k)];
    boundaries.push_back(j);
  }
  std::vector<std::pair<int, int>> shape;
  int begin = 0;
  for (int k = 0; k < num_stages; ++k) {
    const int end =
        k + 1 < num_stages ? boundaries[static_cast<size_t>(num_stages - 2 - k)] : n;
    shape.emplace_back(end - begin, replicas[static_cast<size_t>(k)]);
    begin = end;
  }
  return MakePlanFromShape(shape);
}

Result<PipelinePlan> MakePlanFromConfigString(const ModelProfile& profile,
                                              const std::string& config, int workers) {
  if (config == "straight") {
    if (workers < 1 || workers > profile.num_layers()) {
      return Status::InvalidArgument("straight config needs 1..num_layers workers");
    }
    return MakeBalancedStraightPlan(profile, workers);
  }
  std::vector<int> replicas;
  for (const std::string& part : StrSplit(config, '-')) {
    char* end = nullptr;
    const long value = std::strtol(part.c_str(), &end, 10);
    if (end == part.c_str() || *end != 0 || value < 1) {
      return Status::InvalidArgument("bad config component '" + part + "' in '" + config +
                                     "'");
    }
    replicas.push_back(static_cast<int>(value));
  }
  if (replicas.empty()) {
    return Status::InvalidArgument("empty config string");
  }
  int total = 0;
  for (int r : replicas) {
    total += r;
  }
  if (workers > 0 && total != workers) {
    return Status::InvalidArgument(StrFormat(
        "config '%s' uses %d workers but %d were requested", config.c_str(), total, workers));
  }
  if (static_cast<int>(replicas.size()) > profile.num_layers()) {
    return Status::InvalidArgument("more stages than layers");
  }
  if (replicas.size() == 1) {
    return MakeDataParallelPlan(profile.num_layers(), replicas[0]);
  }
  return MakeBalancedPlanWithReplicas(profile, replicas);
}

PipelinePlan MakeBalancedStraightPlan(const ModelProfile& profile, int num_stages) {
  const int n = profile.num_layers();
  PD_CHECK(num_stages >= 1 && num_stages <= n)
      << "cannot split " << n << " layers into " << num_stages << " stages";

  // DP over (layers 0..j, k stages): minimize the max per-stage compute time.
  constexpr double kInf = 1e300;
  std::vector<std::vector<double>> best(static_cast<size_t>(n + 1),
                                        std::vector<double>(static_cast<size_t>(num_stages + 1), kInf));
  std::vector<std::vector<int>> split(static_cast<size_t>(n + 1),
                                      std::vector<int>(static_cast<size_t>(num_stages + 1), -1));
  best[0][0] = 0.0;
  for (int j = 1; j <= n; ++j) {
    for (int k = 1; k <= std::min(j, num_stages); ++k) {
      for (int s = k - 1; s < j; ++s) {
        if (best[static_cast<size_t>(s)][static_cast<size_t>(k - 1)] >= kInf) {
          continue;
        }
        const double stage_time = profile.ComputeSeconds(s, j);
        const double candidate =
            std::max(best[static_cast<size_t>(s)][static_cast<size_t>(k - 1)], stage_time);
        if (candidate < best[static_cast<size_t>(j)][static_cast<size_t>(k)]) {
          best[static_cast<size_t>(j)][static_cast<size_t>(k)] = candidate;
          split[static_cast<size_t>(j)][static_cast<size_t>(k)] = s;
        }
      }
    }
  }

  std::vector<int> cuts;
  int j = n;
  for (int k = num_stages; k > 1; --k) {
    j = split[static_cast<size_t>(j)][static_cast<size_t>(k)];
    cuts.push_back(j);
  }
  std::vector<int> ordered(cuts.rbegin(), cuts.rend());
  return MakeStraightPlan(n, ordered);
}

}  // namespace pipedream
