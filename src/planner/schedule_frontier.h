// The schedule zoo as a priced frontier: every (schedule, weight-mode, recompute) cell the
// runtime can execute, predicted under one memory/throughput model (memory_model.h via
// PredictPlanScheduled) so the planner can pick the best schedule that fits a device budget
// before the runtime commits to one. BENCH_2bw.json's schedule_frontier section and the
// docs/SCHEDULES.md tables are generated from exactly these cells.
#ifndef SRC_PLANNER_SCHEDULE_FRONTIER_H_
#define SRC_PLANNER_SCHEDULE_FRONTIER_H_

#include <vector>

#include "src/planner/plan.h"
#include "src/planner/predictor.h"
#include "src/profile/layer_profile.h"
#include "src/sim/topology.h"

namespace pipedream {

struct ScheduleCandidate {
  ScheduleSpec schedule;
  // Global weight mode the cell was priced under (flush-family cells are always kNaive —
  // the runtime forces it).
  WeightMode weight_mode = WeightMode::kStashing;
  bool recompute = false;
  // The plan the cell runs: the input plan, except for interleaved cells, which re-split
  // the model into interleave_chunks * workers chunk-stages.
  PipelinePlan plan;
  PlanPrediction prediction;
  // prediction.max_worker_memory_bytes <= device_memory_bytes (always true when the budget
  // is unconstrained).
  bool fits = true;
};

// Prices the zoo over a straight plan:
//   1F1B   x {kStashing, kDoubleBuffered} x {stash, recompute}
//   flush  (PipeDream-Flush, m = flush_microbatches, kNaive) x {stash, recompute}
//   gpipe  (m = flush_microbatches, kNaive) x {stash, recompute}
//   interleaved (k = 2 chunk-stages per worker, same worker count) x {kStashing,
//          kDoubleBuffered}
// The interleaved cells re-balance the model over 2 * workers chunk-stages, so `topology`
// must cover that many worker ids. `device_memory_bytes` <= 0 means unconstrained (every
// cell fits).
std::vector<ScheduleCandidate> EnumerateScheduleFrontier(const ModelProfile& profile,
                                                         const PipelinePlan& plan,
                                                         const HardwareTopology& topology,
                                                         int64_t device_memory_bytes,
                                                         int flush_microbatches = 4);

// Best-throughput candidate that fits, or nullptr when none does. Pointer into `frontier`.
const ScheduleCandidate* ChooseSchedule(const std::vector<ScheduleCandidate>& frontier);

}  // namespace pipedream

#endif  // SRC_PLANNER_SCHEDULE_FRONTIER_H_
