// Pipeline plans: the output of PipeDream's optimizer (§3.1).
//
// A plan assigns consecutive layer ranges to stages, gives each stage a replication factor
// (data parallelism within the stage), and maps stage replicas to global worker ids. Vanilla
// data parallelism is the special case of a single stage covering every layer, replicated
// across all workers; model parallelism and "straight" pipelines have one worker per stage.
#ifndef SRC_PLANNER_PLAN_H_
#define SRC_PLANNER_PLAN_H_

#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/status.h"
#include "src/common/weight_mode.h"
#include "src/profile/layer_profile.h"

namespace pipedream {

struct StageAssignment {
  int begin_layer = 0;  // inclusive
  int end_layer = 0;    // exclusive
  int replicas = 1;
  std::vector<int> workers;  // global worker ids; size() == replicas
  // Weight-update discipline for this stage (§3.3; 2BW from the follow-up paper). The
  // partitioner flips memory-squeezed stages to kDoubleBuffered when given a device budget;
  // runtime options or PIPEDREAM_WEIGHT_MODE override it globally.
  WeightMode weight_mode = WeightMode::kStashing;
  // Activation recomputation for this stage: stash only the inbound boundary activation and
  // re-run the forward (under the minibatch's stashed weights) just before the backward,
  // trading ~1 extra stage-forward for dropping the act * (in_flight - 1) stash overhang
  // (docs/SCHEDULES.md). Set by the partitioner's ChooseRecompute post-pass when a stage
  // still busts device_memory_bytes after weight-mode selection; PIPEDREAM_RECOMPUTE
  // overrides it globally.
  bool recompute = false;

  int num_layers() const { return end_layer - begin_layer; }
};

// One physical worker as the elastic planner sees it. `speed` is a relative compute factor
// against the profile's reference device (0.5 = half speed, so any stage hosted there takes
// 1/speed longer); `memory_bytes` optionally overrides the global
// PartitionerOptions::device_memory_bytes budget for this device (0 = use the global
// budget). Membership changes re-run the partitioner over the live WorkerSpec set.
struct WorkerSpec {
  double speed = 1.0;
  int64_t memory_bytes = 0;
};

class PipelinePlan {
 public:
  PipelinePlan() = default;
  explicit PipelinePlan(std::vector<StageAssignment> stages) : stages_(std::move(stages)) {}

  int num_stages() const { return static_cast<int>(stages_.size()); }
  const StageAssignment& stage(int i) const {
    PD_CHECK(i >= 0 && i < num_stages());
    return stages_[static_cast<size_t>(i)];
  }
  const std::vector<StageAssignment>& stages() const { return stages_; }

  int total_workers() const;

  // True when the plan is one stage over every layer (vanilla data parallelism).
  bool IsDataParallel(int num_layers) const;
  // True when no stage is replicated.
  bool IsStraight() const;

  // NUM_OPT_ACTIVE_MINIBATCHES (§3.2): minibatches admitted per input-stage replica to keep
  // the pipeline full: ceil(total workers / input-stage replicas).
  int Noam() const;

  // Paper-style config string: "16" for 16-way DP, "15-1", "2-1-1", or "straight" for an
  // unreplicated multi-stage pipeline.
  std::string ConfigString(int num_layers) const;

  // Checks layer coverage (contiguous [0, num_layers)), replica/worker consistency, and that
  // no worker is assigned twice.
  void Validate(int num_layers) const;

 private:
  std::vector<StageAssignment> stages_;
};

// One stage covering all layers, replicated over workers 0..workers-1 (vanilla DP).
PipelinePlan MakeDataParallelPlan(int num_layers, int workers);

// A straight pipeline from explicit layer boundaries: cuts[i] is the first layer of stage
// i+1. Workers are assigned in stage order.
PipelinePlan MakeStraightPlan(int num_layers, const std::vector<int>& cuts);

// A plan from per-stage (layer-count, replicas) pairs, assigning workers contiguously.
PipelinePlan MakePlanFromShape(const std::vector<std::pair<int, int>>& layers_and_replicas);

// Balanced straight pipeline over `stages` workers minimizing the max per-stage compute time
// (single-level DP with replication disabled). Used for model-parallel baselines and GPipe.
PipelinePlan MakeBalancedStraightPlan(const ModelProfile& profile, int stages);

// Builds a plan from a paper-style config string against a profile: "16" (that many DP
// replicas), "straight" (`workers` supplies the stage count), or "15-1"-style per-stage
// replica lists. Layer boundaries are chosen to balance per-replica compute.
// `workers` > 0 additionally validates that the config uses exactly that many workers.
Result<PipelinePlan> MakePlanFromConfigString(const ModelProfile& profile,
                                              const std::string& config, int workers);

// Balanced layer split for a fixed per-stage replica vector: minimizes
// max_i compute(stage_i) / replicas_i.
PipelinePlan MakeBalancedPlanWithReplicas(const ModelProfile& profile,
                                          const std::vector<int>& replicas);

}  // namespace pipedream

#endif  // SRC_PLANNER_PLAN_H_
