// Analytic performance predictions for a (profile, plan, topology) triple — the model the
// optimizer reasons with. The event-driven simulator (src/simexec) measures the same
// quantities by actually executing the schedule; Figure 15's reproduction compares the two.
#ifndef SRC_PLANNER_PREDICTOR_H_
#define SRC_PLANNER_PREDICTOR_H_

#include <optional>
#include <vector>

#include "src/common/schedule.h"
#include "src/planner/plan.h"
#include "src/profile/layer_profile.h"
#include "src/sim/topology.h"

namespace pipedream {

// The schedule dimension of a prediction — which member of the zoo (docs/SCHEDULES.md) the
// plan will run under, plus its shape parameters. The planner prices every (schedule,
// weight-mode, recompute) cell through PredictPlanScheduled before the runtime commits to
// one (EnumerateScheduleFrontier in schedule_frontier.h).
struct ScheduleSpec {
  ScheduleKind kind = ScheduleKind::kOneFOneB;
  // Round size m for the flush family (kGPipe / kPipeDreamFlush); kModelParallel is m = 1.
  int flush_microbatches = 4;
  // Virtual chunks per physical worker for kInterleaved; the plan must be straight with
  // num_stages divisible by this. 1 elsewhere.
  int interleave_chunks = 1;
  // Global activation-recompute override: set → every stage priced with/without recompute;
  // unset → each stage follows its plan flag (StageAssignment::recompute).
  std::optional<bool> recompute;
};

struct StagePrediction {
  double compute_seconds = 0.0;        // per-minibatch fwd+bwd on one replica (incl. recompute)
  double sync_seconds = 0.0;           // weight-sync wall time if replicated (whole iteration)
  double effective_seconds = 0.0;      // max(compute, sync) / replicas
  double input_comm_seconds = 0.0;     // activation+gradient transfer on the inbound boundary
  int64_t weight_bytes = 0;            // per replica
  int64_t activation_stash_bytes = 0;  // per replica, one in-flight minibatch
  int in_flight = 1;                   // stashed minibatch depth under the priced schedule
  WeightMode weight_mode = WeightMode::kStashing;  // mode the memory model was priced under
  bool recompute = false;              // whether the memory model dropped the stash term
  int64_t peak_memory_bytes = 0;       // per replica: weights, grads, stashes
};

struct PlanPrediction {
  std::vector<StagePrediction> stages;
  // Steady-state minibatch interval. For the flush family this already includes the
  // amortized drain bubble — the per-stage bottleneck scaled by (m + S - 1) / m — and for
  // interleaved plans it is the per-physical-worker occupancy (sum over the worker's
  // chunks), not the per-chunk time.
  double bottleneck_seconds = 0.0;
  double throughput_samples_per_sec = 0.0;  // minibatch_size / bottleneck
  double comm_bytes_per_sample = 0.0;       // total network bytes / samples processed
  // Max over *physical workers* (an interleaved worker sums its chunks' peaks).
  int64_t max_worker_memory_bytes = 0;

  double EpochSeconds(int64_t dataset_samples) const {
    return throughput_samples_per_sec > 0.0
               ? static_cast<double>(dataset_samples) / throughput_samples_per_sec
               : 0.0;
  }
};

// `pipeline_depth` overrides the in-flight minibatch count (0 = the plan's NOAM). Used by
// the Figure 18 sweep; everything else derives from the paper's formulas.
PlanPrediction PredictPlan(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology, int pipeline_depth = 0);

// Heterogeneity-aware variant: `workers[w].speed` stretches compute hosted on worker w by
// 1/speed, and a replicated stage's round-robin round is gated by its slowest replica, so
// stage compute is scaled by 1 / min(speed over the stage's workers). An empty vector means
// uniform unit speed (the overload above delegates here). Plan worker ids must index into
// `workers` when it is non-empty.
PlanPrediction PredictPlan(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology,
                           const std::vector<WorkerSpec>& workers, int pipeline_depth = 0);

// Schedule-aware prediction: prices the plan under any member of the schedule zoo, folding
// recompute-vs-stash into the memory objective (src/planner/memory_model.h) and the extra
// recompute forward into compute. Flush-family schedules are priced with kNaive weights
// (what the runtime enforces — no update commits inside a round) and their throughput
// carries the (m + S - 1) / m drain bubble; interleaved plans must be straight with
// num_stages divisible by interleave_chunks, and memory/occupancy aggregate over the k
// chunk-stages each physical worker (stage mod num_workers) hosts. The two PredictPlan
// overloads above are this with a default-constructed ScheduleSpec (plain 1F1B).
PlanPrediction PredictPlanScheduled(const ModelProfile& profile, const PipelinePlan& plan,
                                    const HardwareTopology& topology,
                                    const ScheduleSpec& schedule,
                                    const std::vector<WorkerSpec>& workers = {},
                                    int pipeline_depth = 0);

}  // namespace pipedream

#endif  // SRC_PLANNER_PREDICTOR_H_
