// Analytic performance predictions for a (profile, plan, topology) triple — the model the
// optimizer reasons with. The event-driven simulator (src/simexec) measures the same
// quantities by actually executing the schedule; Figure 15's reproduction compares the two.
#ifndef SRC_PLANNER_PREDICTOR_H_
#define SRC_PLANNER_PREDICTOR_H_

#include <vector>

#include "src/planner/plan.h"
#include "src/profile/layer_profile.h"
#include "src/sim/topology.h"

namespace pipedream {

struct StagePrediction {
  double compute_seconds = 0.0;        // per-minibatch fwd+bwd on one replica
  double sync_seconds = 0.0;           // weight-sync wall time if replicated (whole iteration)
  double effective_seconds = 0.0;      // max(compute, sync) / replicas
  double input_comm_seconds = 0.0;     // activation+gradient transfer on the inbound boundary
  int64_t weight_bytes = 0;            // per replica
  int64_t activation_stash_bytes = 0;  // per replica, one in-flight minibatch
  int in_flight = 1;                   // stashed minibatch depth at this stage under 1F1B
  WeightMode weight_mode = WeightMode::kStashing;  // mode the memory model was priced under
  int64_t peak_memory_bytes = 0;       // per replica: weights, grads, stashes
};

struct PlanPrediction {
  std::vector<StagePrediction> stages;
  double bottleneck_seconds = 0.0;          // pipeline emits one minibatch per this interval
  double throughput_samples_per_sec = 0.0;  // minibatch_size / bottleneck
  double comm_bytes_per_sample = 0.0;       // total network bytes / samples processed
  int64_t max_worker_memory_bytes = 0;

  double EpochSeconds(int64_t dataset_samples) const {
    return throughput_samples_per_sec > 0.0
               ? static_cast<double>(dataset_samples) / throughput_samples_per_sec
               : 0.0;
  }
};

// `pipeline_depth` overrides the in-flight minibatch count (0 = the plan's NOAM). Used by
// the Figure 18 sweep; everything else derives from the paper's formulas.
PlanPrediction PredictPlan(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology, int pipeline_depth = 0);

// Heterogeneity-aware variant: `workers[w].speed` stretches compute hosted on worker w by
// 1/speed, and a replicated stage's round-robin round is gated by its slowest replica, so
// stage compute is scaled by 1 / min(speed over the stage's workers). An empty vector means
// uniform unit speed (the overload above delegates here). Plan worker ids must index into
// `workers` when it is non-empty.
PlanPrediction PredictPlan(const ModelProfile& profile, const PipelinePlan& plan,
                           const HardwareTopology& topology,
                           const std::vector<WorkerSpec>& workers, int pipeline_depth = 0);

}  // namespace pipedream

#endif  // SRC_PLANNER_PREDICTOR_H_
