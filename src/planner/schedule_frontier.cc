#include "src/planner/schedule_frontier.h"

#include <utility>

#include "src/common/check.h"

namespace pipedream {

namespace {

PipelinePlan WithWeightMode(const PipelinePlan& plan, WeightMode mode) {
  std::vector<StageAssignment> stages = plan.stages();
  for (StageAssignment& stage : stages) {
    stage.weight_mode = mode;
  }
  return PipelinePlan(std::move(stages));
}

}  // namespace

std::vector<ScheduleCandidate> EnumerateScheduleFrontier(const ModelProfile& profile,
                                                         const PipelinePlan& plan,
                                                         const HardwareTopology& topology,
                                                         int64_t device_memory_bytes,
                                                         int flush_microbatches) {
  PD_CHECK(plan.IsStraight()) << "the schedule frontier is defined over straight plans";
  PD_CHECK_GE(flush_microbatches, 1);
  const int workers = plan.num_stages();

  std::vector<ScheduleCandidate> frontier;
  auto price = [&](ScheduleKind kind, WeightMode mode, bool recompute,
                   const PipelinePlan& cell_plan, int chunks) {
    ScheduleCandidate candidate;
    candidate.schedule.kind = kind;
    candidate.schedule.flush_microbatches = flush_microbatches;
    candidate.schedule.interleave_chunks = chunks;
    candidate.schedule.recompute = recompute;
    candidate.weight_mode = mode;
    candidate.recompute = recompute;
    candidate.plan = WithWeightMode(cell_plan, mode);
    candidate.prediction =
        PredictPlanScheduled(profile, candidate.plan, topology, candidate.schedule);
    candidate.fits = device_memory_bytes <= 0 ||
                     candidate.prediction.max_worker_memory_bytes <= device_memory_bytes;
    frontier.push_back(std::move(candidate));
  };

  for (const bool recompute : {false, true}) {
    price(ScheduleKind::kOneFOneB, WeightMode::kStashing, recompute, plan, 1);
    price(ScheduleKind::kOneFOneB, WeightMode::kDoubleBuffered, recompute, plan, 1);
    // Flush-family cells run kNaive regardless of the requested mode; price them as such.
    price(ScheduleKind::kPipeDreamFlush, WeightMode::kNaive, recompute, plan, 1);
    price(ScheduleKind::kGPipe, WeightMode::kNaive, recompute, plan, 1);
  }
  if (workers >= 1 && profile.num_layers() >= 2 * workers) {
    // Interleaved cells re-split the model into 2 chunk-stages per worker. The chunk plan
    // has 2 * workers stage ids; PredictPlanScheduled folds them back onto the physical
    // workers (stage mod workers) for memory and occupancy.
    const PipelinePlan chunk_plan = MakeBalancedStraightPlan(profile, 2 * workers);
    price(ScheduleKind::kInterleaved, WeightMode::kStashing, false, chunk_plan, 2);
    price(ScheduleKind::kInterleaved, WeightMode::kDoubleBuffered, false, chunk_plan, 2);
  }
  return frontier;
}

const ScheduleCandidate* ChooseSchedule(const std::vector<ScheduleCandidate>& frontier) {
  const ScheduleCandidate* best = nullptr;
  for (const ScheduleCandidate& candidate : frontier) {
    if (!candidate.fits) {
      continue;
    }
    if (best == nullptr || candidate.prediction.throughput_samples_per_sec >
                               best->prediction.throughput_samples_per_sec) {
      best = &candidate;
    }
  }
  return best;
}

}  // namespace pipedream
