// Pipelined serving throughput and tail latency over both transports.
//
// Usage: bench_serving [--json] [--smoke]
//   --json    emit a machine-readable report (the format stored in BENCH_serve.json)
//   --smoke   small request counts; fast enough for ctest (`ctest -L serve`)
//
// One MLP is partitioned into straight pipelines of depth 2 and 4 and served by
// PipelineServer under a closed-loop load: several client threads each keep a burst of
// requests outstanding, together over-admitting the ingress window 2x. For each
// (transport, depth) configuration the bench reports requests/s, p50/p99 request latency
// from the serving histogram, and the ingress mailbox's depth high-water mark next to the
// admission window — the backpressure demonstration: despite 2x over-admission, the
// ingress queue never grows past the window, over either transport.
//
// The in-proc vs socket delta is the measured cost of the byte-stream transport
// (serialize + frame + CRC + syscalls); SimOptions::transport_latency_s can be fit from it
// so the simulator prices socket deployments without running one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/graph/models.h"
#include "src/obs/metrics.h"
#include "src/planner/plan.h"
#include "src/runtime/serving.h"

using namespace pipedream;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  std::string transport;
  int depth = 0;
  int window = 0;
  int clients = 0;
  int64_t requests = 0;
  double requests_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t ingress_hwm = 0;
};

RunResult RunServe(const Sequential& model, int depth, TransportKind kind,
                   int64_t requests, int clients, int window) {
  const int layers = static_cast<int>(model.size());
  std::vector<int> cuts;
  for (int s = 1; s < depth; ++s) {
    cuts.push_back(std::max(1, layers * s / depth));
  }
  const auto plan = MakeStraightPlan(layers, cuts);

  ServingOptions options;
  options.transport = kind;
  options.max_inflight = window;
  options.worker_tick_ms = 5;
  PipelineServer server(model, plan, options);
  PD_CHECK(server.Start().ok());

  Tensor request({4, 16});
  request.Fill(0.5f);

  // Warm up (thread pools, pools, socket buffers), then reset the metrics so the timed
  // region's histogram holds only its own samples.
  for (int i = 0; i < 8; ++i) {
    server.Infer(request);
  }
  obs::MetricsRegistry::Get().Reset();

  // Closed-loop over-admission: each client keeps `2 * window / clients` requests
  // outstanding, so together they push 2x the admission window at the ingress.
  const int64_t per_client = requests / clients;
  const int64_t burst = std::max<int64_t>(1, 2 * window / clients);
  const double t0 = NowSeconds();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&server, &request, per_client, burst] {
      std::vector<int64_t> outstanding;
      for (int64_t i = 0; i < per_client; ++i) {
        outstanding.push_back(server.Submit(request));
        if (static_cast<int64_t>(outstanding.size()) >= burst) {
          for (const int64_t id : outstanding) {
            server.Wait(id);
          }
          outstanding.clear();
        }
      }
      for (const int64_t id : outstanding) {
        server.Wait(id);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double elapsed = NowSeconds() - t0;

  RunResult result;
  result.transport = server.transport_name();
  result.depth = depth;
  result.window = window;
  result.clients = clients;
  result.requests = per_client * clients;
  result.requests_per_s = static_cast<double>(result.requests) / elapsed;
  const ServingStats stats = server.Stats();
  result.p50_ms = stats.p50_seconds * 1e3;
  result.p99_ms = stats.p99_seconds * 1e3;
  result.ingress_hwm = server.IngressDepthHighWater();
  server.Stop();
  return result;
}

int Main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  Rng rng(3);
  const auto model = BuildMlpClassifier(16, {64, 64, 64}, 4, &rng);
  const int64_t requests = smoke ? 64 : 2048;
  const int clients = 4;
  const int window = 8;

  std::vector<RunResult> results;
  for (const TransportKind kind : {TransportKind::kInProc, TransportKind::kUnixSocket}) {
    for (const int depth : {2, 4}) {
      results.push_back(RunServe(*model, depth, kind, requests, clients, window));
    }
  }

  bool bounded = true;
  for (const RunResult& r : results) {
    bounded = bounded && r.ingress_hwm <= r.window;
  }

  if (json) {
    std::printf(
        "{\n  \"note\": \"pipelined inference serving under closed-loop 2x "
        "over-admission: requests/s and p50/p99 request latency per (transport, pipeline "
        "depth), with the ingress mailbox depth high-water mark against the admission "
        "window (backpressure holds when hwm <= window)\",\n");
    std::printf("  \"backpressure_bounded\": %s,\n", bounded ? "true" : "false");
    std::printf("  \"configs\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::printf(
          "    {\"transport\": \"%s\", \"depth\": %d, \"clients\": %d, \"window\": %d, "
          "\"requests\": %lld, \"requests_per_s\": %.1f, \"p50_ms\": %.3f, "
          "\"p99_ms\": %.3f, \"ingress_depth_hwm\": %lld}%s\n",
          r.transport.c_str(), r.depth, r.clients, r.window,
          static_cast<long long>(r.requests), r.requests_per_s, r.p50_ms, r.p99_ms,
          static_cast<long long>(r.ingress_hwm), i + 1 < results.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return bounded ? 0 : 1;
  }

  Table table({"transport", "depth", "requests/s", "p50 ms", "p99 ms", "ingress hwm",
               "window"});
  for (const RunResult& r : results) {
    table.AddRow({r.transport, StrFormat("%d", r.depth), StrFormat("%.1f", r.requests_per_s),
                  StrFormat("%.3f", r.p50_ms), StrFormat("%.3f", r.p99_ms),
                  StrFormat("%lld", static_cast<long long>(r.ingress_hwm)),
                  StrFormat("%d", r.window)});
  }
  table.Print("Pipelined serving: throughput and tail latency under 2x over-admission");
  std::printf("\nBackpressure %s: ingress depth high-water %s the admission window over "
              "every configuration.\n",
              bounded ? "held" : "FAILED",
              bounded ? "never exceeded" : "exceeded");
  return bounded ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
