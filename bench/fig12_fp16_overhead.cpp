// Figure 12: DP communication overhead for GNMT-8 with fp16 vs fp32 across server types.
//
// fp16 halves every tensor but speeds compute by ~2.5x on V100 tensor cores, so the
// communication *fraction* rises — the paper's argument that pipeline parallelism's benefits
// carry over (or grow) under mixed precision.
#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("Reproduction of Figure 12: GNMT-8 data-parallel communication overhead,\n"
              "fp32 vs fp16 (compute 2.5x faster, tensors half the size).\n");

  const ModelProfile fp32 = MakeGnmtProfile(8);
  const ModelProfile fp16 = fp32.Scaled(/*compute_speedup=*/2.5, /*byte_factor=*/0.5);

  struct ServerType {
    const char* label;
    HardwareTopology (*make)(int);
    int gpus_per_server;
  };
  const ServerType servers[] = {
      {"4xV100 PCIe 10Gbps (A)", &HardwareTopology::ClusterA, 4},
      {"8xV100 NVLink 25Gbps (B)", &HardwareTopology::ClusterB, 8},
  };

  for (const ServerType& server : servers) {
    Table table({"GPUs", "fp32 overhead", "fp16 overhead"});
    for (int gpus : {1, 2, 4, 8, 16, 32}) {
      const int num_servers = std::max(1, (gpus + server.gpus_per_server - 1) / server.gpus_per_server);
      const HardwareTopology topo = server.make(num_servers);
      const DataParallelResult full = SimulateDataParallelBsp(fp32, topo, gpus);
      const DataParallelResult half = SimulateDataParallelBsp(fp16, topo, gpus);
      table.AddRow({StrFormat("%d", gpus),
                    StrFormat("%.0f%%", 100.0 * full.comm_overhead_fraction),
                    StrFormat("%.0f%%", 100.0 * half.comm_overhead_fraction)});
    }
    table.Print(StrFormat("Figure 12 — %s", server.label));
  }

  std::printf("\nShape check: at every multi-GPU point the fp16 column's overhead is at least\n"
              "the fp32 column's — mixed precision makes communication relatively MORE\n"
              "expensive, so pipeline parallelism's advantage carries over.\n");
  return 0;
}
