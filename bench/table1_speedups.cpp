// Table 1: PipeDream's configuration and speedup over data parallelism for the paper's
// seven models on their cluster setups.
//
// Both systems are measured by the same event-driven cluster simulator: the PipeDream column
// simulates the optimizer's plan under 1F1B(-RR); the DP column simulates the
// single-replicated-stage plan under BSP gating. Epoch time scales as 1/throughput, and the
// statistical-efficiency experiments (bench_fig11_accuracy_vs_epoch) show weight stashing
// matches DP epoch-for-epoch, so the epoch-time speedup here is the TTA speedup analogue.
// The paper's reported TTA speedups are shown alongside for shape comparison.
#include <cstdio>
#include <string>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/pipedream.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

namespace {

struct Row {
  const char* model;
  const char* cluster_label;
  HardwareTopology topology;
  DeviceSpec device;
  const char* paper_config;
  const char* paper_tta;
};

}  // namespace

int main() {
  std::printf("Reproduction of Table 1: PipeDream vs data parallelism (simulated cluster).\n");

  const Row rows[] = {
      {"VGG-16", "4x4 (A)", HardwareTopology::ClusterA(4), DeviceSpec::V100(), "15-1", "5.28x"},
      {"VGG-16", "2x8 (B)", HardwareTopology::ClusterB(2), DeviceSpec::V100(), "15-1", "2.46x"},
      {"ResNet-50", "4x4 (A)", HardwareTopology::ClusterA(4), DeviceSpec::V100(), "16", "1x"},
      {"ResNet-50", "2x8 (B)", HardwareTopology::ClusterB(2), DeviceSpec::V100(), "16", "1x"},
      {"AlexNet", "4x4 (A)", HardwareTopology::ClusterA(4), DeviceSpec::V100(), "15-1", "4.92x"},
      {"AlexNet", "2x8 (B)", HardwareTopology::ClusterB(2), DeviceSpec::V100(), "15-1", "2.04x"},
      {"GNMT-16", "1x4 (A)", HardwareTopology::ClusterA(1), DeviceSpec::V100(), "straight", "2.2x"},
      {"GNMT-16", "4x4 (A)", HardwareTopology::ClusterA(4), DeviceSpec::V100(), "straight", "2.92x"},
      {"GNMT-16", "2x8 (B)", HardwareTopology::ClusterB(2), DeviceSpec::V100(), "straight", "3.14x"},
      {"GNMT-8", "1x4 (A)", HardwareTopology::ClusterA(1), DeviceSpec::V100(), "straight", "1.5x"},
      {"GNMT-8", "3x4 (A)", HardwareTopology::ClusterA(3), DeviceSpec::V100(), "straight", "2.95x"},
      {"GNMT-8", "2x8 (B)", HardwareTopology::ClusterB(2), DeviceSpec::V100(), "16", "1x"},
      {"AWD-LM", "1x4 (A)", HardwareTopology::ClusterA(1), DeviceSpec::V100(), "straight", "4.25x"},
      {"S2VT", "4x1 (C)", HardwareTopology::ClusterC(4), DeviceSpec::TitanX(), "2-1-1", "3.01x"},
  };

  Table table({"model", "cluster", "config (ours)", "config (paper)", "PipeDream samples/s",
               "paper-config samples/s", "DP samples/s", "speedup (ours)",
               "TTA speedup (paper)"});

  for (const Row& row : rows) {
    const ModelProfile profile = MakeProfileByName(row.model, row.device);
    const int workers = row.topology.num_workers();

    const AutoPlanResult planned = AutoPlan(profile, row.topology);

    // DP baseline: the hierarchical wait-free-backprop BSP simulator (same machinery as
    // Figure 1). PipeDream's plan runs in the event-driven pipeline simulator; when the
    // optimizer picks vanilla DP the two systems are identical by construction.
    const DataParallelResult dp = SimulateDataParallelBsp(profile, row.topology, workers);
    double pd_throughput;
    if (planned.partition.plan.IsDataParallel(profile.num_layers())) {
      pd_throughput = dp.throughput_samples_per_sec;
    } else {
      SimOptions options;
      options.num_minibatches = 128;
      const SimResult pd =
          SimulatePipeline(profile, planned.partition.plan, row.topology, options);
      pd_throughput = pd.throughput_samples_per_sec;
    }
    // Also simulate the paper's own hand configuration for this row.
    std::string paper_throughput = "-";
    const int stages_for_straight = std::min(workers, profile.num_layers());
    const auto paper_plan = MakePlanFromConfigString(
        profile, std::string(row.paper_config) == "straight" ? "straight" : row.paper_config,
        std::string(row.paper_config) == "straight" ? stages_for_straight : workers);
    if (paper_plan.ok()) {
      if (paper_plan->IsDataParallel(profile.num_layers())) {
        paper_throughput = StrFormat("%.0f", dp.throughput_samples_per_sec);
      } else {
        SimOptions options;
        options.num_minibatches = 128;
        const SimResult sim = SimulatePipeline(profile, *paper_plan, row.topology, options);
        paper_throughput = StrFormat("%.0f", sim.throughput_samples_per_sec);
      }
    }

    const double speedup = pd_throughput / dp.throughput_samples_per_sec;
    table.AddRow({row.model, row.cluster_label,
                  planned.partition.plan.ConfigString(profile.num_layers()),
                  row.paper_config,
                  StrFormat("%.0f", pd_throughput), paper_throughput,
                  StrFormat("%.0f", dp.throughput_samples_per_sec),
                  StrFormat("%.2fx", speedup), row.paper_tta});
  }
  table.Print("Table 1 — PipeDream vs DP, epoch-time speedup (simulated)");

  std::printf(
      "\nShape checks: VGG/AlexNet/GNMT/AWD-LM show multi-x wins that grow on the slower\n"
      "Cluster-A interconnect; ResNet-50 gains ~nothing (DP is already optimal); per-stage\n"
      "configs replicate conv-heavy stages and keep dense layers unreplicated.\n");
  return 0;
}
