// Weight-stash memory vs pipeline depth: PipeDream weight stashing against PipeDream-2BW
// double buffering (the follow-up paper's constant-memory scheme).
//
// Usage: bench_2bw_memory [--json] [--smoke]
//   --json    emit a machine-readable report (the format stored in BENCH_2bw.json)
//   --smoke   tiny dataset / one timed epoch; fast enough for ctest (`ctest -L perf`)
//
// One fixed MLP is partitioned into straight pipelines of depth 2, 4, 6, 8 and trained for
// real under three weight disciplines:
//   full-clone  kStashing with zero-copy sharing disabled — every stash is a deep copy,
//               so materialized == logical bytes (the paper's naive cost model).
//   cow-stash   kStashing with pooled copy-on-write tensors (this repo's default): a stash
//               costs only the blocks the optimizer has overwritten since it was taken.
//   2bw         kDoubleBuffered with accumulation_steps = depth: one shadow buffer per
//               stage regardless of the in-flight depth.
// The claim under test: summed across stages, stashing's footprint grows linearly with
// depth (total ~ |w| * (d-1) / 2) while 2BW stays flat at exactly one extra copy of the
// model (total ~ |w|), because each stage's shadow is one buffer no matter how many
// minibatches are in flight. Throughput (minibatches/s) rides along for context.
//
// The second half of the report is the SCHEDULE FRONTIER (docs/SCHEDULES.md): the same
// model trained for real under every memory-relevant (schedule, weight-mode, recompute)
// cell — 1F1B + stashing, 1F1B + 2BW, 1F1B + 2BW + recompute, PipeDream-Flush (m = 4), and
// interleaved virtual stages (k = 2) — with three peak-memory numbers per cell:
//   measured   per-physical-worker bytes assembled from the runtime's own peaks
//              (2 |w| live+grad copies + logical weight-stash peak + activation peak)
//   sim        the event simulator's worker_peak_memory under identical options
//   predicted  PredictPlanScheduled's max_worker_memory_bytes (memory_model.h)
// plus a budget demo: the largest device budget that flush/recompute fit and plain
// stashing/2BW bust, proving the planner's new schedule dimension buys real (depth, memory)
// points. EXPERIMENTS.md's frontier section reads the "schedule_frontier" JSON emitted here.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/planner/predictor.h"
#include "src/profile/profiler.h"
#include "src/runtime/pipeline_trainer.h"
#include "src/simexec/pipeline_sim.h"
#include "src/tensor/pool.h"

using namespace pipedream;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  int64_t logical_stash_bytes = 0;       // sum over stages of the full-clone-equivalent peak
  int64_t materialized_stash_bytes = 0;  // sum over stages of COW-aware peaks
  double minibatches_per_s = 0.0;
};

std::unique_ptr<Sequential> MakeModel(Rng* rng) {
  // 7 hidden layers -> 15 graph layers: enough to cut into 8 nonempty stages while the
  // total parameter count stays identical across depths.
  return BuildMlpClassifier(16, {64, 64, 64, 64, 64, 64, 64}, 3, rng);
}

ModeResult RunMode(const Dataset& data, int depth, WeightMode mode, bool zero_copy,
                   int timed_epochs) {
  BufferPool::SetZeroCopyEnabledForTesting(zero_copy ? 1 : 0);
  Rng rng(3);
  const auto model = MakeModel(&rng);
  const int layers = static_cast<int>(model->size());
  std::vector<int> cuts;
  for (int s = 1; s < depth; ++s) {
    cuts.push_back(std::max(1, layers * s / depth));
  }
  const auto plan = MakeStraightPlan(layers, cuts);
  SoftmaxCrossEntropy loss;
  Sgd sgd(0.01);
  PipelineTrainerOptions options;
  options.weight_mode = mode;
  // 2BW requires the accumulation boundary to cover the in-flight depth; stashing runs in
  // PipeDream's natural per-minibatch-update regime.
  options.accumulation_steps = mode == WeightMode::kDoubleBuffered ? depth : 1;
  PipelineTrainer trainer(*model, plan, &loss, sgd, &data, /*batch=*/8, /*seed=*/5, options);

  trainer.TrainEpoch();  // warm-up: reaches steady state (and, for 2BW, the first flip)

  ModeResult result;
  double best_epoch_seconds = 1e30;
  int64_t epoch_minibatches = 0;
  for (int e = 0; e < timed_epochs; ++e) {
    const double t0 = NowSeconds();
    const EpochStats stats = trainer.TrainEpoch();
    best_epoch_seconds = std::min(best_epoch_seconds, NowSeconds() - t0);
    epoch_minibatches = stats.minibatches;
  }
  result.minibatches_per_s = static_cast<double>(epoch_minibatches) / best_epoch_seconds;
  for (int s = 0; s < plan.num_stages(); ++s) {
    result.logical_stash_bytes += trainer.StagePeakStashBytes(s);
    result.materialized_stash_bytes += trainer.StagePeakMaterializedStashBytes(s);
  }
  BufferPool::SetZeroCopyEnabledForTesting(-1);
  return result;
}

struct Row {
  int depth = 0;
  ModeResult full_clone;  // kStashing, zero-copy off
  ModeResult cow;         // kStashing, zero-copy on
  ModeResult two_bw;      // kDoubleBuffered, zero-copy on
};

// ---------------------------------------------------------------------------------------
// Schedule frontier: one (schedule, weight-mode, recompute) cell trained for real, priced
// by the simulator, and priced by the planner's predictor — all on the same plan.

struct FrontierCell {
  std::string name;
  int depth = 0;  // physical workers
  ScheduleKind schedule = ScheduleKind::kOneFOneB;
  WeightMode mode = WeightMode::kStashing;
  bool recompute = false;
  int chunks = 1;  // virtual chunk-stages per worker (kInterleaved)
  double minibatches_per_s = 0.0;
  int64_t measured_peak_bytes = 0;   // max per-physical-worker, runtime-measured
  int64_t sim_peak_bytes = 0;        // max worker_peak_memory from the event simulator
  int64_t predicted_peak_bytes = 0;  // PredictPlanScheduled max_worker_memory_bytes
};

PipelinePlan WithModes(const PipelinePlan& plan, WeightMode mode, bool recompute) {
  std::vector<StageAssignment> stages = plan.stages();
  for (StageAssignment& stage : stages) {
    stage.weight_mode = mode;
    stage.recompute = recompute;
  }
  return PipelinePlan(std::move(stages));
}

FrontierCell RunFrontierCell(const Dataset& data, const ModelProfile& profile,
                             const HardwareTopology& topo, int depth, const char* name,
                             ScheduleKind schedule, WeightMode mode, bool recompute,
                             int chunks, int timed_epochs) {
  FrontierCell cell;
  cell.name = name;
  cell.depth = depth;
  cell.schedule = schedule;
  cell.mode = mode;
  cell.recompute = recompute;
  cell.chunks = chunks;

  Rng rng(3);
  const auto model = MakeModel(&rng);
  const int layers = static_cast<int>(model->size());
  const int num_stages = schedule == ScheduleKind::kInterleaved ? chunks * depth : depth;
  PipelinePlan plan = [&] {
    if (schedule == ScheduleKind::kInterleaved) {
      // k chunk-stages per worker, balanced by profiled compute (the frontier idiom).
      return MakeBalancedStraightPlan(profile, num_stages);
    }
    std::vector<int> cuts;
    for (int s = 1; s < depth; ++s) {
      cuts.push_back(std::max(1, layers * s / depth));
    }
    return MakeStraightPlan(layers, cuts);
  }();
  plan = WithModes(plan, mode, recompute);

  SoftmaxCrossEntropy loss;
  Sgd sgd(0.01);
  PipelineTrainerOptions options;
  options.schedule = schedule;
  options.weight_mode = mode;
  options.recompute_activations = recompute;
  options.interleave_chunks = chunks;
  options.gpipe_microbatches = 4;
  options.accumulation_steps = mode == WeightMode::kDoubleBuffered ? num_stages : 1;
  PipelineTrainer trainer(*model, plan, &loss, sgd, &data, /*batch=*/8, /*seed=*/5, options);

  trainer.TrainEpoch();  // warm-up to steady state
  double best_epoch_seconds = 1e30;
  int64_t epoch_minibatches = 0;
  for (int e = 0; e < timed_epochs; ++e) {
    const double t0 = NowSeconds();
    const EpochStats stats = trainer.TrainEpoch();
    best_epoch_seconds = std::min(best_epoch_seconds, NowSeconds() - t0);
    epoch_minibatches = stats.minibatches;
  }
  cell.minibatches_per_s = static_cast<double>(epoch_minibatches) / best_epoch_seconds;

  // Per-physical-worker measured peak, in the memory model's own terms: 2 weight copies
  // (live + gradients) + the logical weight-stash peak (shadow/stash versions) + the
  // activation-stash peak. Interleaved chunk-stages fold onto worker = stage mod depth,
  // exactly as the simulator and predictor fold them.
  std::vector<int64_t> worker_bytes(static_cast<size_t>(depth), 0);
  for (int s = 0; s < plan.num_stages(); ++s) {
    const int w = schedule == ScheduleKind::kInterleaved ? s % depth : s;
    const int64_t weight_bytes =
        profile.ParamBytes(plan.stage(s).begin_layer, plan.stage(s).end_layer);
    worker_bytes[static_cast<size_t>(w)] += 2 * weight_bytes +
                                            trainer.StagePeakStashBytes(s) +
                                            trainer.StagePeakActivationBytes(s);
  }
  cell.measured_peak_bytes = *std::max_element(worker_bytes.begin(), worker_bytes.end());

  SimOptions sim;
  sim.schedule = schedule;
  sim.num_minibatches = 96;
  sim.gpipe_microbatches = 4;
  sim.interleave_chunks = chunks;
  sim.recompute = recompute;
  sim.weight_mode = mode;
  sim.accumulation_steps = options.accumulation_steps;
  const SimResult simmed = SimulatePipeline(profile, plan, topo, sim);
  for (const int64_t bytes : simmed.worker_peak_memory) {
    cell.sim_peak_bytes = std::max(cell.sim_peak_bytes, bytes);
  }

  ScheduleSpec spec;
  spec.kind = schedule;
  spec.flush_microbatches = 4;
  spec.interleave_chunks = chunks;
  spec.recompute = recompute;
  cell.predicted_peak_bytes =
      PredictPlanScheduled(profile, plan, topo, spec).max_worker_memory_bytes;
  return cell;
}

int Main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // Batches per epoch must be divisible by every accumulation boundary swept (2, 4, 6, 8)
  // so no gradient tail is dropped: 24 batches in smoke mode, 96 otherwise.
  const Dataset data = MakeGaussianMixture(3, 16, smoke ? 64 : 256, 0.4, 7);
  const int timed_epochs = smoke ? 1 : 3;

  const std::vector<int> depths = {2, 4, 6, 8};
  std::vector<Row> rows;
  for (const int depth : depths) {
    Row row;
    row.depth = depth;
    row.full_clone =
        RunMode(data, depth, WeightMode::kStashing, /*zero_copy=*/false, timed_epochs);
    row.cow = RunMode(data, depth, WeightMode::kStashing, /*zero_copy=*/true, timed_epochs);
    row.two_bw = RunMode(data, depth, WeightMode::kDoubleBuffered, /*zero_copy=*/true,
                         timed_epochs);
    rows.push_back(row);
  }

  // --- schedule frontier: profile once, then price + run every cell at every depth.
  const ModelProfile profile = [&] {
    Rng rng(3);
    const auto model = MakeModel(&rng);
    Tensor sample;
    Tensor targets;
    MinibatchLoader loader(&data, /*batch=*/8, /*seed=*/5);
    loader.BatchAt(0, &sample, &targets);
    return ProfileModel(*model, sample, "mlp_2bw_bench");
  }();
  const HardwareTopology topo = HardwareTopology::Flat(16, 1e9);
  const int model_layers = profile.num_layers();

  std::vector<FrontierCell> frontier;
  for (const int depth : depths) {
    frontier.push_back(RunFrontierCell(data, profile, topo, depth, "1f1b_stash",
                                       ScheduleKind::kOneFOneB, WeightMode::kStashing,
                                       /*recompute=*/false, 1, timed_epochs));
    frontier.push_back(RunFrontierCell(data, profile, topo, depth, "1f1b_2bw",
                                       ScheduleKind::kOneFOneB, WeightMode::kDoubleBuffered,
                                       /*recompute=*/false, 1, timed_epochs));
    frontier.push_back(RunFrontierCell(data, profile, topo, depth, "1f1b_2bw_recompute",
                                       ScheduleKind::kOneFOneB, WeightMode::kDoubleBuffered,
                                       /*recompute=*/true, 1, timed_epochs));
    frontier.push_back(RunFrontierCell(data, profile, topo, depth, "flush_m4",
                                       ScheduleKind::kPipeDreamFlush, WeightMode::kNaive,
                                       /*recompute=*/false, 1, timed_epochs));
    if (2 * depth <= model_layers) {  // interleaving needs >= 1 layer per chunk-stage
      frontier.push_back(RunFrontierCell(data, profile, topo, depth, "interleaved_k2",
                                         ScheduleKind::kInterleaved, WeightMode::kStashing,
                                         /*recompute=*/false, 2, timed_epochs));
    }
  }

  // Budget demo at the deepest pipeline: the largest budget band where a memory-efficient
  // schedule (flush or recompute) fits and plain 1F1B stashing/2BW both bust. A budget in
  // the middle of that band is a (depth, memory) point the schedule dimension unlocked.
  const int demo_depth = depths.back();
  int64_t efficient_lo = INT64_MAX;  // best of {flush, recompute} (must fit)
  int64_t plain_hi = INT64_MAX;      // best of {1f1b_stash, 1f1b_2bw} (must NOT fit)
  for (const FrontierCell& cell : frontier) {
    if (cell.depth != demo_depth) continue;
    if (cell.name == "flush_m4" || cell.name == "1f1b_2bw_recompute") {
      efficient_lo = std::min(efficient_lo, cell.measured_peak_bytes);
    }
    if (cell.name == "1f1b_stash" || cell.name == "1f1b_2bw") {
      plain_hi = std::min(plain_hi, cell.measured_peak_bytes);
    }
  }
  const int64_t budget_bytes =
      efficient_lo < plain_hi ? (efficient_lo + plain_hi) / 2 : 0;

  if (json) {
    std::printf(
        "{\n  \"note\": \"summed per-stage peak weight-stash bytes (materialized under "
        "copy-on-write unless noted) and minibatches/s for one MLP partitioned into "
        "straight pipelines of increasing depth; full_clone = kStashing with zero-copy "
        "disabled (logical bytes), cow_stash = kStashing pooled, 2bw = kDoubleBuffered "
        "with accumulation_steps = depth\",\n");
    std::printf("  \"depths\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "    {\"depth\": %d, \"full_clone_bytes\": %lld, \"cow_stash_bytes\": %lld, "
          "\"2bw_bytes\": %lld, \"stashing_logical_bytes\": %lld, "
          "\"full_clone_minibatches_per_s\": %.2f, \"cow_stash_minibatches_per_s\": %.2f, "
          "\"2bw_minibatches_per_s\": %.2f}%s\n",
          r.depth, static_cast<long long>(r.full_clone.materialized_stash_bytes),
          static_cast<long long>(r.cow.materialized_stash_bytes),
          static_cast<long long>(r.two_bw.materialized_stash_bytes),
          static_cast<long long>(r.cow.logical_stash_bytes),
          r.full_clone.minibatches_per_s, r.cow.minibatches_per_s,
          r.two_bw.minibatches_per_s, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf(
        "  \"schedule_frontier_note\": \"per-(schedule, weight-mode, recompute) cell at "
        "each pipeline depth: real-runtime throughput and max per-worker peak memory "
        "(measured = 2 weight copies + logical stash peak + activation peak), against the "
        "event simulator's and the planner predictor's peaks for the same plan; flush runs "
        "PipeDream-Flush with m = 4 rounds, interleaved runs k = 2 virtual chunk-stages "
        "per worker\",\n");
    std::printf("  \"schedule_frontier\": [\n");
    for (size_t i = 0; i < frontier.size(); ++i) {
      const FrontierCell& c = frontier[i];
      std::printf(
          "    {\"depth\": %d, \"cell\": \"%s\", \"schedule\": \"%s\", \"weight_mode\": "
          "\"%s\", \"recompute\": %s, \"chunks\": %d, \"minibatches_per_s\": %.2f, "
          "\"measured_peak_bytes\": %lld, \"sim_peak_bytes\": %lld, "
          "\"predicted_peak_bytes\": %lld}%s\n",
          c.depth, c.name.c_str(), ScheduleKindName(c.schedule), WeightModeName(c.mode),
          c.recompute ? "true" : "false", c.chunks, c.minibatches_per_s,
          static_cast<long long>(c.measured_peak_bytes),
          static_cast<long long>(c.sim_peak_bytes),
          static_cast<long long>(c.predicted_peak_bytes),
          i + 1 < frontier.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf(
        "  \"budget_demo\": {\"depth\": %d, \"budget_bytes\": %lld, \"fits\": [", demo_depth,
        static_cast<long long>(budget_bytes));
    bool first_item = true;
    for (const FrontierCell& c : frontier) {
      if (c.depth != demo_depth || budget_bytes <= 0 ||
          c.measured_peak_bytes > budget_bytes) {
        continue;
      }
      std::printf("%s\"%s\"", first_item ? "" : ", ", c.name.c_str());
      first_item = false;
    }
    std::printf("], \"does_not_fit\": [");
    first_item = true;
    for (const FrontierCell& c : frontier) {
      if (c.depth != demo_depth ||
          (budget_bytes > 0 && c.measured_peak_bytes <= budget_bytes)) {
        continue;
      }
      std::printf("%s\"%s\"", first_item ? "" : ", ", c.name.c_str());
      first_item = false;
    }
    std::printf("]}\n");
    std::printf("}\n");
    return 0;
  }

  Table table({"depth", "full-clone stash", "COW stash", "2BW", "full-clone mb/s",
               "COW mb/s", "2BW mb/s"});
  for (const Row& r : rows) {
    table.AddRow({StrFormat("%d", r.depth),
                  HumanBytes(static_cast<double>(r.full_clone.materialized_stash_bytes)),
                  HumanBytes(static_cast<double>(r.cow.materialized_stash_bytes)),
                  HumanBytes(static_cast<double>(r.two_bw.materialized_stash_bytes)),
                  StrFormat("%.1f", r.full_clone.minibatches_per_s),
                  StrFormat("%.1f", r.cow.minibatches_per_s),
                  StrFormat("%.1f", r.two_bw.minibatches_per_s)});
  }
  table.Print("Summed per-stage peak weight-stash bytes vs pipeline depth");

  const double first = static_cast<double>(rows.front().two_bw.materialized_stash_bytes);
  const double last = static_cast<double>(rows.back().two_bw.materialized_stash_bytes);
  const double drift = first > 0.0 ? std::abs(last - first) / first : 0.0;
  const double stash_growth =
      rows.front().full_clone.materialized_stash_bytes > 0
          ? static_cast<double>(rows.back().full_clone.materialized_stash_bytes) /
                static_cast<double>(rows.front().full_clone.materialized_stash_bytes)
          : 0.0;
  std::printf("\n2BW footprint drift across depth %d -> %d: %.1f%% (flat = one shadow copy "
              "of the model).\nStashing grew %.1fx over the same sweep (depth grew %.1fx).\n",
              depths.front(), depths.back(), 100.0 * drift, stash_growth,
              static_cast<double>(depths.back()) / static_cast<double>(depths.front()));

  Table ftable({"depth", "cell", "mb/s", "measured peak", "sim peak", "predicted peak"});
  for (const FrontierCell& c : frontier) {
    ftable.AddRow({StrFormat("%d", c.depth), c.name, StrFormat("%.1f", c.minibatches_per_s),
                   HumanBytes(static_cast<double>(c.measured_peak_bytes)),
                   HumanBytes(static_cast<double>(c.sim_peak_bytes)),
                   HumanBytes(static_cast<double>(c.predicted_peak_bytes))});
  }
  ftable.Print("Schedule frontier: max per-worker peak memory per (schedule, mode, recompute)");
  if (budget_bytes > 0) {
    std::printf("\nBudget demo at depth %d: under a %s device budget, flush/recompute fit "
                "while plain 1F1B stashing and 2BW both bust — the schedule dimension "
                "admits a (depth, memory) point the weight modes alone cannot.\n",
                demo_depth, HumanBytes(static_cast<double>(budget_bytes)).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
