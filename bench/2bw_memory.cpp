// Weight-stash memory vs pipeline depth: PipeDream weight stashing against PipeDream-2BW
// double buffering (the follow-up paper's constant-memory scheme).
//
// Usage: bench_2bw_memory [--json] [--smoke]
//   --json    emit a machine-readable report (the format stored in BENCH_2bw.json)
//   --smoke   tiny dataset / one timed epoch; fast enough for ctest (`ctest -L perf`)
//
// One fixed MLP is partitioned into straight pipelines of depth 2, 4, 6, 8 and trained for
// real under three weight disciplines:
//   full-clone  kStashing with zero-copy sharing disabled — every stash is a deep copy,
//               so materialized == logical bytes (the paper's naive cost model).
//   cow-stash   kStashing with pooled copy-on-write tensors (this repo's default): a stash
//               costs only the blocks the optimizer has overwritten since it was taken.
//   2bw         kDoubleBuffered with accumulation_steps = depth: one shadow buffer per
//               stage regardless of the in-flight depth.
// The claim under test: summed across stages, stashing's footprint grows linearly with
// depth (total ~ |w| * (d-1) / 2) while 2BW stays flat at exactly one extra copy of the
// model (total ~ |w|), because each stage's shadow is one buffer no matter how many
// minibatches are in flight. Throughput (minibatches/s) rides along for context.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/runtime/pipeline_trainer.h"
#include "src/tensor/pool.h"

using namespace pipedream;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  int64_t logical_stash_bytes = 0;       // sum over stages of the full-clone-equivalent peak
  int64_t materialized_stash_bytes = 0;  // sum over stages of COW-aware peaks
  double minibatches_per_s = 0.0;
};

std::unique_ptr<Sequential> MakeModel(Rng* rng) {
  // 7 hidden layers -> 15 graph layers: enough to cut into 8 nonempty stages while the
  // total parameter count stays identical across depths.
  return BuildMlpClassifier(16, {64, 64, 64, 64, 64, 64, 64}, 3, rng);
}

ModeResult RunMode(const Dataset& data, int depth, WeightMode mode, bool zero_copy,
                   int timed_epochs) {
  BufferPool::SetZeroCopyEnabledForTesting(zero_copy ? 1 : 0);
  Rng rng(3);
  const auto model = MakeModel(&rng);
  const int layers = static_cast<int>(model->size());
  std::vector<int> cuts;
  for (int s = 1; s < depth; ++s) {
    cuts.push_back(std::max(1, layers * s / depth));
  }
  const auto plan = MakeStraightPlan(layers, cuts);
  SoftmaxCrossEntropy loss;
  Sgd sgd(0.01);
  PipelineTrainerOptions options;
  options.weight_mode = mode;
  // 2BW requires the accumulation boundary to cover the in-flight depth; stashing runs in
  // PipeDream's natural per-minibatch-update regime.
  options.accumulation_steps = mode == WeightMode::kDoubleBuffered ? depth : 1;
  PipelineTrainer trainer(*model, plan, &loss, sgd, &data, /*batch=*/8, /*seed=*/5, options);

  trainer.TrainEpoch();  // warm-up: reaches steady state (and, for 2BW, the first flip)

  ModeResult result;
  double best_epoch_seconds = 1e30;
  int64_t epoch_minibatches = 0;
  for (int e = 0; e < timed_epochs; ++e) {
    const double t0 = NowSeconds();
    const EpochStats stats = trainer.TrainEpoch();
    best_epoch_seconds = std::min(best_epoch_seconds, NowSeconds() - t0);
    epoch_minibatches = stats.minibatches;
  }
  result.minibatches_per_s = static_cast<double>(epoch_minibatches) / best_epoch_seconds;
  for (int s = 0; s < plan.num_stages(); ++s) {
    result.logical_stash_bytes += trainer.StagePeakStashBytes(s);
    result.materialized_stash_bytes += trainer.StagePeakMaterializedStashBytes(s);
  }
  BufferPool::SetZeroCopyEnabledForTesting(-1);
  return result;
}

struct Row {
  int depth = 0;
  ModeResult full_clone;  // kStashing, zero-copy off
  ModeResult cow;         // kStashing, zero-copy on
  ModeResult two_bw;      // kDoubleBuffered, zero-copy on
};

int Main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // Batches per epoch must be divisible by every accumulation boundary swept (2, 4, 6, 8)
  // so no gradient tail is dropped: 24 batches in smoke mode, 96 otherwise.
  const Dataset data = MakeGaussianMixture(3, 16, smoke ? 64 : 256, 0.4, 7);
  const int timed_epochs = smoke ? 1 : 3;

  const std::vector<int> depths = {2, 4, 6, 8};
  std::vector<Row> rows;
  for (const int depth : depths) {
    Row row;
    row.depth = depth;
    row.full_clone =
        RunMode(data, depth, WeightMode::kStashing, /*zero_copy=*/false, timed_epochs);
    row.cow = RunMode(data, depth, WeightMode::kStashing, /*zero_copy=*/true, timed_epochs);
    row.two_bw = RunMode(data, depth, WeightMode::kDoubleBuffered, /*zero_copy=*/true,
                         timed_epochs);
    rows.push_back(row);
  }

  if (json) {
    std::printf(
        "{\n  \"note\": \"summed per-stage peak weight-stash bytes (materialized under "
        "copy-on-write unless noted) and minibatches/s for one MLP partitioned into "
        "straight pipelines of increasing depth; full_clone = kStashing with zero-copy "
        "disabled (logical bytes), cow_stash = kStashing pooled, 2bw = kDoubleBuffered "
        "with accumulation_steps = depth\",\n");
    std::printf("  \"depths\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "    {\"depth\": %d, \"full_clone_bytes\": %lld, \"cow_stash_bytes\": %lld, "
          "\"2bw_bytes\": %lld, \"stashing_logical_bytes\": %lld, "
          "\"full_clone_minibatches_per_s\": %.2f, \"cow_stash_minibatches_per_s\": %.2f, "
          "\"2bw_minibatches_per_s\": %.2f}%s\n",
          r.depth, static_cast<long long>(r.full_clone.materialized_stash_bytes),
          static_cast<long long>(r.cow.materialized_stash_bytes),
          static_cast<long long>(r.two_bw.materialized_stash_bytes),
          static_cast<long long>(r.cow.logical_stash_bytes),
          r.full_clone.minibatches_per_s, r.cow.minibatches_per_s,
          r.two_bw.minibatches_per_s, i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  Table table({"depth", "full-clone stash", "COW stash", "2BW", "full-clone mb/s",
               "COW mb/s", "2BW mb/s"});
  for (const Row& r : rows) {
    table.AddRow({StrFormat("%d", r.depth),
                  HumanBytes(static_cast<double>(r.full_clone.materialized_stash_bytes)),
                  HumanBytes(static_cast<double>(r.cow.materialized_stash_bytes)),
                  HumanBytes(static_cast<double>(r.two_bw.materialized_stash_bytes)),
                  StrFormat("%.1f", r.full_clone.minibatches_per_s),
                  StrFormat("%.1f", r.cow.minibatches_per_s),
                  StrFormat("%.1f", r.two_bw.minibatches_per_s)});
  }
  table.Print("Summed per-stage peak weight-stash bytes vs pipeline depth");

  const double first = static_cast<double>(rows.front().two_bw.materialized_stash_bytes);
  const double last = static_cast<double>(rows.back().two_bw.materialized_stash_bytes);
  const double drift = first > 0.0 ? std::abs(last - first) / first : 0.0;
  const double stash_growth =
      rows.front().full_clone.materialized_stash_bytes > 0
          ? static_cast<double>(rows.back().full_clone.materialized_stash_bytes) /
                static_cast<double>(rows.front().full_clone.materialized_stash_bytes)
          : 0.0;
  std::printf("\n2BW footprint drift across depth %d -> %d: %.1f%% (flat = one shadow copy "
              "of the model).\nStashing grew %.1fx over the same sweep (depth grew %.1fx).\n",
              depths.front(), depths.back(), 100.0 * drift, stash_growth,
              static_cast<double>(depths.back()) / static_cast<double>(depths.front()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
