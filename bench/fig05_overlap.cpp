// Figure 5: a pipeline-parallel assignment on 4 GPUs, highlighting how one worker's
// activation/gradient communication overlaps with the computation of other minibatches.
//
// The paper draws worker 3's timeline; here we simulate VGG-16 split over 4 workers and
// report, for each worker, compute busy time vs. NIC busy time vs. how much of the NIC time
// ran concurrently with compute — the overlap the figure illustrates.
#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/planner/partitioner.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("Reproduction of Figure 5: overlap of computation and communication in a\n"
              "4-GPU pipeline-parallel assignment (VGG-16).\n");

  const ModelProfile profile = MakeVgg16Profile();
  PartitionerOptions options;
  options.allow_replication = false;  // the figure shows a straight 4-stage assignment
  const auto partition = PartitionFlat(profile, 4, 1.25e9 * 0.7, options);

  SimOptions sim_options;
  sim_options.num_minibatches = 64;
  sim_options.record_trace = true;
  const auto topo = HardwareTopology::ClusterA(1);
  const SimResult result = SimulatePipeline(profile, partition.plan, topo, sim_options);

  Table table({"worker", "stage layers", "compute busy", "steady-state utilization"});
  for (int w = 0; w < 4; ++w) {
    const StageAssignment& stage = partition.plan.stage(w);
    table.AddRow({StrFormat("%d", w),
                  StrFormat("[%d..%d)", stage.begin_layer, stage.end_layer),
                  StrFormat("%.1f%%", 100.0 * result.worker_utilization[static_cast<size_t>(w)]),
                  StrFormat("%.2f", result.trace.WorkerUtilization(w))});
  }
  table.Print("Figure 5 — per-worker busy fractions under 1F1B");

  // Overlap evidence: total communicated bytes vs. the time they would have cost if
  // serialized with compute.
  const double comm_seconds =
      result.comm_bytes_total / topo.level(1).effective_p2p_bandwidth();
  std::printf(
      "\ntotal activation/gradient traffic: %s (%.3f s at link speed)\n"
      "total simulated run time:           %.3f s\n"
      "had communication NOT overlapped with compute, the run would be ~%.0f%% longer;\n"
      "the 1F1B schedule hides it behind other minibatches' compute (Figure 5's point).\n",
      HumanBytes(result.comm_bytes_total).c_str(), comm_seconds, result.total_seconds,
      100.0 * comm_seconds / result.total_seconds);
  return 0;
}
