// Figure 18: effect of pipeline depth on throughput and memory for GNMT-8 on 4 V100s
// (Cluster-A). Depth = number of in-flight minibatches admitted by the input stage.
#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/planner/plan.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("Reproduction of Figure 18: pipeline depth vs throughput and memory\n"
              "(GNMT-8, 4 workers, straight pipeline; NOAM = 4).\n");

  const ModelProfile profile = MakeGnmtProfile(8);
  const PipelinePlan plan = MakeBalancedStraightPlan(profile, 4);
  const auto topo = HardwareTopology::ClusterA(1);

  Table table({"pipeline depth", "throughput (samples/s)", "max worker memory",
               "stage stash depths"});
  for (int depth : {2, 3, 4, 5, 6, 7}) {
    SimOptions options;
    options.num_minibatches = 96;
    options.pipeline_depth_override = depth;
    const SimResult result = SimulatePipeline(profile, plan, topo, options);
    int64_t max_mem = 0;
    for (int64_t m : result.worker_peak_memory) {
      max_mem = std::max(max_mem, m);
    }
    std::string stashes;
    for (size_t s = 0; s < result.stage_peak_stash.size(); ++s) {
      if (s > 0) {
        stashes += ",";
      }
      stashes += StrFormat("%d", result.stage_peak_stash[s]);
    }
    table.AddRow({StrFormat("%d%s", depth, depth == plan.Noam() ? " (NOAM)" : ""),
                  StrFormat("%.0f", result.throughput_samples_per_sec),
                  HumanBytes(static_cast<double>(max_mem)), stashes});
  }
  table.Print("Figure 18 — GNMT-8 pipeline-depth sweep");

  std::printf("\nShape checks: (a) throughput rises with depth and saturates at ~NOAM, since\n"
              "deeper pipelines hide more communication; (b) memory grows with depth as the\n"
              "number of stashed weight/activation versions grows proportionally.\n");
  return 0;
}
