// Figure 2: model-parallel training with 4 workers — one minibatch in the system at a time,
// so at most one GPU is ever busy. Backward passes take twice as long as forwards.
#include <cstdio>

#include "bench/timeline_util.h"
#include "src/common/sim_time.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("Reproduction of Figure 2: non-pipelined model parallelism, 4 workers.\n\n");
  const ModelProfile profile = UniformTimelineProfile(4);
  const PipelinePlan plan = MakeStraightPlan(4, {1, 2, 3});

  SimOptions options;
  options.schedule = ScheduleKind::kModelParallel;
  options.num_minibatches = 4;
  options.record_trace = true;
  const auto topo = HardwareTopology::Flat(4, 1e12, 0.0);
  const SimResult result = SimulatePipeline(profile, plan, topo, options);

  std::printf("%s\n", result.trace.RenderAscii(SimTime::Millis(10), 4, 52).c_str());
  double total_util = 0.0;
  for (double u : result.worker_utilization) {
    total_util += u;
  }
  std::printf("mean worker utilization: %.0f%% (the figure's point: most boxes are idle)\n",
              100.0 * total_util / 4.0);
  std::printf("throughput: %.1f minibatches/s\n",
              result.throughput_samples_per_sec / profile.minibatch_size);
  return 0;
}
