// Figure 17: bytes communicated per training sample by data parallelism vs the best non-DP
// configuration, 4 GPUs on Cluster-A. The claim: pipeline-parallel configurations
// communicate far less for VGG-16 and the GNMTs (>85% reduction), but MORE for ResNet-50 —
// which is exactly why the optimizer keeps ResNet-50 data-parallel.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/planner/partitioner.h"
#include "src/planner/predictor.h"
#include "src/profile/model_zoo.h"

using namespace pipedream;

int main() {
  std::printf("Reproduction of Figure 17: communication per training sample, 4 GPUs.\n");

  const auto topo = HardwareTopology::ClusterA(1);
  const char* models[] = {"VGG-16", "GNMT-8", "GNMT-16", "ResNet-50"};

  Table table({"model", "DP bytes/sample", "best non-DP config", "non-DP bytes/sample",
               "reduction"});
  for (const char* name : models) {
    const ModelProfile profile = MakeProfileByName(name);
    const auto dp =
        PredictPlan(profile, MakeDataParallelPlan(profile.num_layers(), 4), topo);

    // Best non-DP configuration, chosen the way the optimizer reasons: among every
    // 2-stage hybrid (k-(4-k) at each boundary) and the balanced straight pipeline, keep
    // the candidates whose predicted throughput is competitive with the best non-DP
    // candidate, then take the one communicating the least.
    std::vector<PipelinePlan> candidates;
    candidates.push_back(MakeBalancedStraightPlan(profile, 4));
    for (int split = 1; split < profile.num_layers(); ++split) {
      for (int left_replicas : {1, 2, 3}) {
        candidates.push_back(MakePlanFromShape(
            {{split, left_replicas}, {profile.num_layers() - split, 4 - left_replicas}}));
      }
    }
    double best_bottleneck = 1e300;
    for (const PipelinePlan& plan : candidates) {
      best_bottleneck =
          std::min(best_bottleneck, PredictPlan(profile, plan, topo).bottleneck_seconds);
    }
    PipelinePlan best_plan = candidates[0];
    double best_bytes = 1e300;
    for (const PipelinePlan& plan : candidates) {
      const auto prediction = PredictPlan(profile, plan, topo);
      if (prediction.bottleneck_seconds <= best_bottleneck * 1.10 &&
          prediction.comm_bytes_per_sample < best_bytes) {
        best_bytes = prediction.comm_bytes_per_sample;
        best_plan = plan;
      }
    }
    const auto pp = PredictPlan(profile, best_plan, topo);

    table.AddRow({name, HumanBytes(dp.comm_bytes_per_sample),
                  best_plan.ConfigString(profile.num_layers()),
                  HumanBytes(pp.comm_bytes_per_sample),
                  StrFormat("%+.0f%%", 100.0 * (1.0 - pp.comm_bytes_per_sample /
                                                          dp.comm_bytes_per_sample))});
  }
  table.Print("Figure 17 — bytes on the wire per training sample (4 GPUs, Cluster-A)");

  std::printf("\nShape check: VGG and the GNMTs cut communication by >85%%; ResNet-50's best\n"
              "non-DP configuration communicates MORE than DP (negative reduction), matching\n"
              "the paper's explanation for its data-parallel recommendation.\n");
  return 0;
}
