// Figure 13: statistical efficiency of large-minibatch data parallelism with LARS.
//
// Paper: VGG-16 on 8 GPUs with global minibatches of 1024/4096/8192 — 1024 trains, 4096 and
// 8192 never reach the target. Here: the VGG analogue on the (hard, non-linearly-separable)
// spiral task with LARS and the same x4 batch escalation relative to the dataset. The claim:
// large-minibatch + LARS "lacks generality" — beyond some size the model stops reaching the
// target within any reasonable budget, while PipeDream at the normal batch size just works.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/lars.h"
#include "src/optim/sgd.h"
#include "src/runtime/pipeline_trainer.h"

using namespace pipedream;

namespace {

constexpr double kTarget = 0.93;
constexpr int kMaxEpochs = 8;

struct Outcome {
  int epochs_to_target = -1;
  double best_accuracy = 0.0;
};

Outcome RunLarsDp(const Dataset& train, const Dataset& eval, int64_t batch, int workers) {
  Rng rng(3);
  const auto model = BuildMlpClassifier(8, {24, 16}, 3, &rng);
  SoftmaxCrossEntropy loss;
  // LARS learning rate scaled linearly with the global batch, per the large-batch recipe.
  const double base_lr = 0.5 * static_cast<double>(batch * workers) / 32.0;
  Lars lars(base_lr, 0.9, 1e-4, 0.01);
  const auto plan = MakeDataParallelPlan(static_cast<int>(model->size()), workers);
  PipelineTrainer trainer(*model, plan, &loss, lars, &train, batch, 5);
  Outcome out;
  for (int e = 0; e < kMaxEpochs; ++e) {
    trainer.TrainEpoch();
    const double acc = trainer.EvaluateAccuracy(eval, 18);
    out.best_accuracy = std::max(out.best_accuracy, acc);
    if (acc >= kTarget && out.epochs_to_target < 0) {
      out.epochs_to_target = e + 1;
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 13: large-minibatch DP with LARS vs PipeDream.\n");

  const Dataset all = MakeGaussianMixture(3, 8, 600, 0.6, 17);
  Dataset train;
  Dataset eval;
  SplitDataset(all, 0.8, &train, &eval);

  Table table({"system", "global minibatch", "reached target?", "epochs", "best accuracy"});

  // LARS DP at escalating global batch sizes (4 workers x per-worker batch).
  for (int64_t per_worker : {8, 30, 90, 360}) {
    const Outcome out = RunLarsDp(train, eval, per_worker, 4);
    table.AddRow({"DP + LARS", StrFormat("%lld", static_cast<long long>(per_worker * 4)),
                  out.epochs_to_target > 0 ? "yes" : "NO",
                  out.epochs_to_target > 0 ? StrFormat("%d", out.epochs_to_target) : "-",
                  StrFormat("%.3f", out.best_accuracy)});
  }

  // PipeDream at the normal minibatch size.
  {
    Rng rng(3);
    const auto model = BuildMlpClassifier(8, {24, 16}, 3, &rng);
    SoftmaxCrossEntropy loss;
    Sgd sgd(0.05, 0.9);
    const auto plan = MakeStraightPlan(static_cast<int>(model->size()), {2, 4});
    PipelineTrainer trainer(*model, plan, &loss, sgd, &train, 8, 5);
    int reached = -1;
    double best = 0.0;
    for (int e = 0; e < kMaxEpochs; ++e) {
      trainer.TrainEpoch();
      const double acc = trainer.EvaluateAccuracy(eval, 18);
      best = std::max(best, acc);
      if (acc >= kTarget) {
        reached = e + 1;
        break;
      }
    }
    table.AddRow({"PipeDream (1F1B)", "8 x 3 stages", reached > 0 ? "yes" : "NO",
                  reached > 0 ? StrFormat("%d", reached) : "-", StrFormat("%.3f", best)});
  }

  table.Print("Figure 13 — statistical efficiency of large minibatches (LARS)");
  std::printf("\nShape check: moderate LARS batches reach the target; the largest ones fail\n"
              "or crawl (fewer, noisier updates per epoch), while PipeDream at the normal\n"
              "batch size converges — the paper's generality argument against the\n"
              "large-minibatch workaround.\n");
  return 0;
}
