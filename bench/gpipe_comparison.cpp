// §5.4 inter-batch comparison: GNMT-16 on 16 workers under PipeDream's 1F1B vs our GPipe
// implementation with (a) pipeline depth = NOAM and (b) the largest depth that fits in GPU
// memory. The paper reports GPipe slowdowns of 55%/71% (depth = NOAM) and 35%/42% (max
// depth) on Clusters A/B, driven by pipeline flushes (and recompute overhead at max depth).
#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/planner/plan.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

namespace {

// Largest GPipe round size whose boundary-activation stash fits device memory alongside the
// stage's weights and one full activation set (GPipe discards + recomputes activations).
int MaxMicrobatchesForMemory(const ModelProfile& profile, const PipelinePlan& plan,
                             int64_t device_memory) {
  int best = 1;
  for (int m = 1; m <= 64; ++m) {
    bool fits = true;
    for (int s = 0; s < plan.num_stages(); ++s) {
      const StageAssignment& stage = plan.stage(s);
      const int64_t weights = profile.ParamBytes(stage.begin_layer, stage.end_layer);
      const int64_t full_acts = profile.ActivationBytes(stage.begin_layer, stage.end_layer);
      const int64_t boundary =
          s > 0 ? profile.BoundaryActivationBytes(stage.begin_layer - 1) : 0;
      const int64_t bytes = 2 * weights + boundary * m + full_acts;
      if (bytes > device_memory) {
        fits = false;
        break;
      }
    }
    if (fits) {
      best = m;
    }
  }
  return best;
}

void Panel(const char* label, const HardwareTopology& topo) {
  const ModelProfile profile = MakeGnmtProfile(16);
  // GPipe "does not specify an algorithm for partitioning; we use the same partitions as
  // PipeDream" (§5.4) — a straight 16-stage pipeline for GNMT-16.
  const PipelinePlan plan = MakeBalancedStraightPlan(profile, 16);
  const int noam = plan.Noam();
  const int max_depth = MaxMicrobatchesForMemory(profile, plan, DeviceSpec::V100().memory_bytes);

  SimOptions pd_options;
  pd_options.num_minibatches = 192;
  const SimResult pd = SimulatePipeline(profile, plan, topo, pd_options);

  auto run_gpipe = [&](int m, double recompute) {
    SimOptions options;
    options.schedule = ScheduleKind::kGPipe;
    options.gpipe_microbatches = m;
    options.gpipe_recompute_overhead = recompute;
    options.gpipe_discard_activations = recompute > 0.0;
    options.num_minibatches = (192 / m) * m;
    return SimulatePipeline(profile, plan, topo, options);
  };
  const SimResult gpipe_noam = run_gpipe(noam, 0.0);
  // At max depth GPipe must discard + recompute activations (extra forward work on backward).
  const SimResult gpipe_max = run_gpipe(max_depth, 1.0);

  Table table({"system", "pipeline depth", "samples/s", "slowdown vs PipeDream"});
  table.AddRow({"PipeDream 1F1B", StrFormat("%d (NOAM)", noam),
                StrFormat("%.0f", pd.throughput_samples_per_sec), "-"});
  table.AddRow({"GPipe", StrFormat("%d (= NOAM)", noam),
                StrFormat("%.0f", gpipe_noam.throughput_samples_per_sec),
                StrFormat("%.0f%%", 100.0 * (1.0 - gpipe_noam.throughput_samples_per_sec /
                                                       pd.throughput_samples_per_sec))});
  table.AddRow({"GPipe + recompute", StrFormat("%d (max for 16 GB)", max_depth),
                StrFormat("%.0f", gpipe_max.throughput_samples_per_sec),
                StrFormat("%.0f%%", 100.0 * (1.0 - gpipe_max.throughput_samples_per_sec /
                                                       pd.throughput_samples_per_sec))});
  table.Print(StrFormat("§5.4 — GNMT-16, 16 workers, %s (paper: 55%%/71%% and 35%%/42%%)",
                        label));
}

}  // namespace

int main() {
  std::printf("Reproduction of §5.4: PipeDream vs GPipe (GNMT-16, 16 workers).\n");
  Panel("Cluster-A", HardwareTopology::ClusterA(4));
  Panel("Cluster-B", HardwareTopology::ClusterB(2));
  std::printf("\nShape checks: GPipe at depth = NOAM loses heavily to pipeline flushes; a\n"
              "deeper pipeline amortizes flushes but pays activation recomputation, leaving a\n"
              "smaller-but-substantial slowdown — the two regimes the paper quantifies.\n");
  return 0;
}
