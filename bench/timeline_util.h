// Shared helpers for the timeline-figure reproductions (Figures 2, 3, 4, 8): a uniform
// model whose forward takes one time unit and backward two per stage, matching the paper's
// figures.
#ifndef BENCH_TIMELINE_UTIL_H_
#define BENCH_TIMELINE_UTIL_H_

#include <string>

#include "src/profile/layer_profile.h"

namespace pipedream {

// `layers` identical layers; a balanced split into S stages gives each stage a forward of
// `unit_ms` and a backward of 2x that (the paper's figures use exactly this ratio).
inline ModelProfile UniformTimelineProfile(int layers, double unit_ms = 10.0) {
  ModelProfile profile;
  profile.model_name = "uniform";
  profile.minibatch_size = 1;
  for (int i = 0; i < layers; ++i) {
    LayerProfile layer;
    layer.name = "l" + std::to_string(i);
    layer.fwd_seconds = unit_ms * 1e-3;
    layer.bwd_seconds = 2.0 * layer.fwd_seconds;
    layer.activation_bytes = 1;  // negligible transfer time, like the figures assume
    layer.param_bytes = 1;
    profile.layers.push_back(layer);
  }
  return profile;
}

}  // namespace pipedream

#endif  // BENCH_TIMELINE_UTIL_H_
