// Ablations of the design choices DESIGN.md calls out, beyond what the paper's figures show:
//   (1) topology-aware hierarchical partitioning vs a flat relaxation vs the combined search;
//   (2) activation recomputation: memory saved vs compute paid (real runtime);
//   (3) gradient accumulation: update frequency vs gradient traffic.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/pipedream.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/profile/model_zoo.h"
#include "src/runtime/pipeline_trainer.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

namespace {

void PartitionerAblation() {
  Table table({"model", "strategy", "config", "simulated samples/s"});
  const auto topo = HardwareTopology::ClusterA(4);
  for (const char* name : {"VGG-16", "GNMT-16", "AlexNet"}) {
    const ModelProfile profile = MakeProfileByName(name);
    const TopologyLevel& outer = topo.level(topo.num_levels());

    PartitionerOptions flat_options;
    flat_options.collective_efficiency = outer.collective_efficiency;
    flat_options.p2p_efficiency = outer.p2p_efficiency;
    flat_options.collective_shared_bus = outer.shared_bus;
    const PartitionResult flat = PartitionFlat(
        profile, topo.num_workers(), outer.bandwidth_bytes_per_sec, flat_options);
    const PartitionResult hier = PartitionHierarchical(profile, topo, {});
    const PartitionResult combined = Partition(profile, topo, {});

    SimOptions options;
    options.num_minibatches = 96;
    for (const auto& [label, result] :
         {std::pair<const char*, const PartitionResult*>{"flat (worst-link)", &flat},
          {"hierarchical (paper §3.1)", &hier},
          {"combined (this repo)", &combined}}) {
      const SimResult sim = SimulatePipeline(profile, result->plan, topo, options);
      table.AddRow({name, label, result->plan.ConfigString(profile.num_layers()),
                    StrFormat("%.0f", sim.throughput_samples_per_sec)});
    }
  }
  table.Print("Ablation 1 — partitioning strategy (16 workers, Cluster-A)");
  std::printf("flat can express fine-grained replication (15-1) that the hierarchical DP\n"
              "cannot; hierarchical respects server boundaries flat ignores. The combined\n"
              "search takes the better of the two per model.\n");
}

void RecomputeAblation() {
  const Dataset all = MakeSyntheticImages(4, 1, 8, 60, 0.9, 11);
  Dataset train;
  Dataset eval;
  SplitDataset(all, 0.8, &train, &eval);
  Table table({"mode", "stage-0 peak activation stash", "epoch wall time", "epoch loss"});
  for (const bool recompute : {false, true}) {
    Rng rng(3);
    const auto model = BuildMiniVgg(1, 8, 4, &rng);
    const auto plan = MakeStraightPlan(static_cast<int>(model->size()), {3, 6, 8});
    SoftmaxCrossEntropy loss;
    Sgd sgd(0.03, 0.8);
    PipelineTrainerOptions options;
    options.recompute_activations = recompute;
    PipelineTrainer trainer(*model, plan, &loss, sgd, &train, 16, 5, options);
    const EpochStats stats = trainer.TrainEpoch();
    table.AddRow({recompute ? "recompute (stash inputs only)" : "stash everything",
                  HumanBytes(static_cast<double>(trainer.StagePeakActivationBytes(0))),
                  StrFormat("%.3f s", stats.wall_seconds),
                  StrFormat("%.4f", stats.mean_loss)});
  }
  table.Print("Ablation 2 — activation recomputation (real 4-stage runtime, CNN)");
  std::printf("recomputation shrinks the activation stash at the cost of an extra forward\n"
              "pass per backward; gradients are bit-identical (see equivalence_test).\n");
}

void AccumulationAblation() {
  const Dataset all = MakeGaussianMixture(3, 8, 400, 0.5, 17);
  Dataset train;
  Dataset eval;
  SplitDataset(all, 0.8, &train, &eval);
  Table table({"accumulation steps", "updates/epoch", "epochs to 95%", "best accuracy"});
  for (const int steps : {1, 2, 4, 8}) {
    Rng rng(3);
    const auto model = BuildMlpClassifier(8, {24, 16}, 3, &rng);
    const auto plan = MakeStraightPlan(static_cast<int>(model->size()), {2, 4});
    SoftmaxCrossEntropy loss;
    Sgd sgd(0.05, 0.9);
    PipelineTrainerOptions options;
    options.accumulation_steps = steps;
    PipelineTrainer trainer(*model, plan, &loss, sgd, &train, 8, 5, options);
    int reached = -1;
    double best = 0.0;
    const int64_t updates = trainer.batches_per_epoch() / steps;
    for (int e = 0; e < 20 && reached < 0; ++e) {
      trainer.TrainEpoch();
      const double acc = trainer.EvaluateAccuracy(eval, 16);
      best = std::max(best, acc);
      if (acc >= 0.95) {
        reached = e + 1;
      }
    }
    table.AddRow({StrFormat("%d", steps), StrFormat("%lld", static_cast<long long>(updates)),
                  reached > 0 ? StrFormat("%d", reached) : "> 20",
                  StrFormat("%.3f", best)});
  }
  table.Print("Ablation 3 — gradient accumulation (§3.3 memory/communication option)");
  std::printf("larger accumulation means fewer (bigger) updates per epoch — the same\n"
              "statistical trade large minibatches make, but without growing activations.\n");
}

}  // namespace

int main() {
  std::printf("Design-choice ablations (see DESIGN.md §5).\n");
  PartitionerAblation();
  RecomputeAblation();
  AccumulationAblation();
  return 0;
}
