// Steady-state training throughput with the zero-copy layer on vs off.
//
// Usage: bench_steady_state [--json] [--smoke]
//   --json    emit a machine-readable report (the format stored in BENCH_steady.json)
//   --smoke   tiny datasets / one timed epoch; fast enough for ctest (`ctest -L perf`)
//
// Measures end-to-end minibatches/s of the threaded pipeline runtime on a VGG-ish CNN and a
// stacked-LSTM pipeline, A/B over the allocator mode: pooled tensors + copy-on-write sharing
// (the default) vs the PIPEDREAM_NO_POOL=1 escape hatch (heap alloc + eager deep copies —
// the pre-pool behaviour). Both modes run in one process via the testing override; pool
// blocks self-describe their size class, so toggling mid-process is safe. The pooled run
// also reports allocator stats from the post-warm-up epochs: the claim is not just "faster"
// but "off the heap" — misses after warm-up should be ~0 because every steady-state shape
// repeats each minibatch.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/runtime/pipeline_trainer.h"
#include "src/tensor/pool.h"

using namespace pipedream;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class ModelKind { kVgg, kLstm };

struct BenchConfig {
  std::string name;
  ModelKind kind = ModelKind::kVgg;
  int stages = 4;
  int64_t batch = 16;
  int timed_epochs = 3;
  // Dataset scale knobs (interpreted per model kind).
  int64_t scale = 0;
};

struct ModeResult {
  double minibatches_per_s = 0.0;
  int64_t minibatches = 0;
  PoolStats steady_stats;  // pooled mode only: stats over the timed epochs
};

struct Row {
  std::string name;
  ModeResult pooled;
  ModeResult baseline;

  double speedup() const { return pooled.minibatches_per_s / baseline.minibatches_per_s; }
  double misses_per_minibatch() const {
    return static_cast<double>(pooled.steady_stats.HeapAllocations()) /
           static_cast<double>(std::max<int64_t>(1, pooled.minibatches));
  }
  double hit_rate() const {
    const PoolStats& s = pooled.steady_stats;
    return s.allocations > 0
               ? static_cast<double>(s.hits) / static_cast<double>(s.allocations)
               : 0.0;
  }
};

Dataset MakeData(const BenchConfig& cfg) {
  switch (cfg.kind) {
    case ModelKind::kVgg:
      // [N, 1, 8, 8] synthetic images, 4 classes.
      return MakeSyntheticImages(4, 1, 8, /*per_class=*/cfg.scale, 0.9, 11);
    case ModelKind::kLstm:
      // [N, 6] token sequences over an 8-symbol vocabulary.
      return MakeSequenceCopy(8, 6, /*num_sequences=*/cfg.scale, /*reverse=*/false, 13);
  }
  return {};
}

std::unique_ptr<Sequential> MakeModel(const BenchConfig& cfg, Rng* rng) {
  switch (cfg.kind) {
    case ModelKind::kVgg:
      return BuildMiniVgg(1, 8, 4, rng);
    case ModelKind::kLstm:
      return BuildLstmSeqModel(8, 12, 24, 2, rng);
  }
  return nullptr;
}

// Trains warm-up + timed epochs under the given allocator mode and returns throughput of
// the best timed epoch (best-of sheds scheduler noise the same way micro_kernels does).
// A fresh model/trainer is built per mode so both sides do identical numerical work from
// identical seeds.
ModeResult RunMode(const BenchConfig& cfg, bool zero_copy) {
  BufferPool::SetZeroCopyEnabledForTesting(zero_copy ? 1 : 0);
  const Dataset data = MakeData(cfg);
  Rng rng(3);
  const auto model = MakeModel(cfg, &rng);
  const int layers = static_cast<int>(model->size());
  std::vector<int> cuts;
  for (int s = 1; s < cfg.stages; ++s) {
    cuts.push_back(std::max(1, layers * s / cfg.stages));
  }
  const auto plan = MakeStraightPlan(layers, cuts);
  SoftmaxCrossEntropy loss;
  Sgd sgd(0.01, 0.8);
  PipelineTrainerOptions options;
  options.weight_mode = WeightMode::kStashing;
  PipelineTrainer trainer(*model, plan, &loss, sgd, &data, cfg.batch, /*seed=*/5, options);

  trainer.TrainEpoch();  // warm-up: populates the free lists / faults in every code path

  BufferPool* pool = BufferPool::Get();
  pool->ResetStats();
  ModeResult result;
  double best_epoch_seconds = 1e30;
  int64_t epoch_minibatches = 0;
  for (int e = 0; e < cfg.timed_epochs; ++e) {
    const double t0 = NowSeconds();
    const EpochStats stats = trainer.TrainEpoch();
    best_epoch_seconds = std::min(best_epoch_seconds, NowSeconds() - t0);
    epoch_minibatches = stats.minibatches;
    result.minibatches += stats.minibatches;
  }
  result.minibatches_per_s = static_cast<double>(epoch_minibatches) / best_epoch_seconds;
  if (zero_copy) {
    result.steady_stats = pool->Snapshot();
  }
  BufferPool::SetZeroCopyEnabledForTesting(-1);
  return result;
}

Row RunConfig(const BenchConfig& cfg) {
  Row row;
  row.name = cfg.name;
  row.baseline = RunMode(cfg, /*zero_copy=*/false);
  row.pooled = RunMode(cfg, /*zero_copy=*/true);
  return row;
}

int Main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<BenchConfig> configs;
  {
    BenchConfig vgg;
    vgg.name = "vgg_cnn_4stage";
    vgg.kind = ModelKind::kVgg;
    vgg.scale = smoke ? 24 : 90;  // images per class
    vgg.timed_epochs = smoke ? 1 : 3;
    configs.push_back(vgg);

    BenchConfig lstm;
    lstm.name = "lstm_seq_4stage";
    lstm.kind = ModelKind::kLstm;
    lstm.scale = smoke ? 96 : 480;  // sequences
    lstm.timed_epochs = smoke ? 1 : 3;
    configs.push_back(lstm);
  }

  std::vector<Row> rows;
  rows.reserve(configs.size());
  for (const BenchConfig& cfg : configs) {
    rows.push_back(RunConfig(cfg));
  }

  if (json) {
    std::printf("{\n  \"note\": \"steady-state minibatches/s, best epoch after warm-up; "
                "baseline = PIPEDREAM_NO_POOL=1 (heap alloc + eager deep copies)\",\n");
    std::printf("  \"configs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf(
          "    {\"config\": \"%s\", \"pooled_minibatches_per_s\": %.2f, "
          "\"baseline_minibatches_per_s\": %.2f, \"speedup\": %.3f, "
          "\"steady_pool_hits\": %lld, \"steady_heap_allocs\": %lld, "
          "\"misses_per_minibatch\": %.4f, \"hit_rate\": %.4f}%s\n",
          r.name.c_str(), r.pooled.minibatches_per_s, r.baseline.minibatches_per_s,
          r.speedup(), static_cast<long long>(r.pooled.steady_stats.hits),
          static_cast<long long>(r.pooled.steady_stats.HeapAllocations()),
          r.misses_per_minibatch(), r.hit_rate(), i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  std::printf("%-18s %14s %14s %9s %12s %10s\n", "config", "pooled mb/s", "no-pool mb/s",
              "speedup", "miss/mb", "hit rate");
  for (const Row& r : rows) {
    std::printf("%-18s %14.2f %14.2f %8.2fx %12.4f %9.1f%%\n", r.name.c_str(),
                r.pooled.minibatches_per_s, r.baseline.minibatches_per_s, r.speedup(),
                r.misses_per_minibatch(), 100.0 * r.hit_rate());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
