// Figure 1: communication overhead of data-parallel training (fraction of time in
// communication stalls) for five models on three server types, weak scaling 1..32 GPUs.
//
// Paper setup: PyTorch 1.1 + NCCL, fp32, largest per-GPU minibatch. Here: the wait-free-
// backprop BSP simulator over the analytic model profiles and the Table 2 interconnects.
// Expected shape (paper's four takeaways): overheads are high for dense-weight models
// (VGG/GNMT/LM), low for ResNet-50; they spike when training crosses servers; they grow with
// worker count; and faster GPUs make them worse.
#include <cstdio>
#include <functional>
#include <vector>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

namespace {

struct ServerType {
  const char* label;
  std::function<HardwareTopology(int)> make;  // servers -> topology
  int gpus_per_server;
  DeviceSpec device;
};

void RunPanel(const ServerType& server) {
  Table table({"model", "1 GPU", "2", "4", "8", "16", "32"});
  const char* models[] = {"VGG-16", "ResNet-50", "AlexNet", "GNMT-8", "AWD-LM"};
  for (const char* name : models) {
    const ModelProfile profile = MakeProfileByName(name, server.device);
    std::vector<std::string> row = {name};
    for (int gpus : {1, 2, 4, 8, 16, 32}) {
      const int servers = std::max(1, (gpus + server.gpus_per_server - 1) / server.gpus_per_server);
      const HardwareTopology topo = server.make(servers);
      const DataParallelResult r = SimulateDataParallelBsp(profile, topo, gpus);
      row.push_back(StrFormat("%.0f%%", 100.0 * r.comm_overhead_fraction));
    }
    table.AddRow(row);
  }
  table.Print(StrFormat("Figure 1 — DP communication overhead, %s (weak scaling)",
                        server.label));
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 1: fraction of data-parallel training time spent in\n"
              "communication stalls (BSP with wait-free backpropagation).\n");

  const ServerType panels[] = {
      {"(a) 8x 1080Ti per server, PCIe + 25Gbps",
       [](int s) { return HardwareTopology::Private1080Ti(s); }, 8,
       DeviceSpec::Gtx1080Ti()},
      {"(b) 4x V100 per server, PCIe + 10Gbps (Cluster-A)",
       [](int s) { return HardwareTopology::ClusterA(s); }, 4, DeviceSpec::V100()},
      {"(c) 8x V100 per server, NVLink + 25Gbps (Cluster-B)",
       [](int s) { return HardwareTopology::ClusterB(s); }, 8, DeviceSpec::V100()},
  };
  for (const ServerType& server : panels) {
    RunPanel(server);
  }

  std::printf(
      "\nTakeaways to check against the paper: (1) dense-weight models (VGG, GNMT, LM)\n"
      "suffer far more than ResNet-50; (2) overhead jumps when scaling crosses servers;\n"
      "(3) overhead rises with worker count; (4) V100s show more overhead than 1080Tis.\n");
  return 0;
}
