// Figure 3: GPipe's inter-batch parallelism with m = 4 microbatches per flush. Frequent
// pipeline flushes leave idle gaps between rounds.
#include <cstdio>

#include "bench/timeline_util.h"
#include "src/common/sim_time.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("Reproduction of Figure 3: GPipe scheduling, 4 workers, m = 4 microbatches.\n\n");
  const ModelProfile profile = UniformTimelineProfile(4);
  const PipelinePlan plan = MakeStraightPlan(4, {1, 2, 3});

  SimOptions options;
  options.schedule = ScheduleKind::kGPipe;
  options.gpipe_microbatches = 4;
  options.num_minibatches = 8;  // two flush rounds
  options.record_trace = true;
  const auto topo = HardwareTopology::Flat(4, 1e12, 0.0);
  const SimResult result = SimulatePipeline(profile, plan, topo, options);

  std::printf("%s\n", result.trace.RenderAscii(SimTime::Millis(10), 4, 60).c_str());
  double total_util = 0.0;
  for (double u : result.worker_utilization) {
    total_util += u;
  }
  std::printf("mean worker utilization: %.0f%%\n", 100.0 * total_util / 4.0);
  std::printf("note the bubble between rounds: every stage drains before the flush, then the\n"
              "next round's microbatches refill the pipeline from scratch.\n");
  return 0;
}
