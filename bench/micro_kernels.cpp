// Naive-vs-blocked kernel throughput: GFLOP/s for matmul and conv across sizes.
//
// Usage: bench_micro_kernels [--json]
//   --json   emit a machine-readable report (the format stored in BENCH_kernels.json)
//
// Both kernels are timed from the same binary with identical compiler flags, so the ratio
// isolates the algorithmic win (cache blocking + register tiling + packing) from compiler
// settings. Timings use best-of-N to shed scheduler noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/init.h"
#include "src/tensor/ops.h"
#include "src/tensor/ref_ops.h"

namespace pipedream {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-reps wall time of fn().
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    fn();
    best = std::min(best, NowSeconds() - t0);
  }
  return best;
}

struct Row {
  std::string label;
  double flops = 0.0;
  double naive_seconds = 0.0;
  double blocked_seconds = 0.0;

  double naive_gflops() const { return flops / naive_seconds / 1e9; }
  double blocked_gflops() const { return flops / blocked_seconds / 1e9; }
  double speedup() const { return naive_seconds / blocked_seconds; }
};

Row BenchMatmul(int64_t n, int reps) {
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c_naive;
  Tensor c_blocked;
  InitGaussian(&a, 1.0f, &rng);
  InitGaussian(&b, 1.0f, &rng);
  Row row;
  row.label = "matmul " + std::to_string(n) + "x" + std::to_string(n) + "x" + std::to_string(n);
  row.flops = 2.0 * static_cast<double>(n) * n * n;
  row.naive_seconds = TimeBest(reps, [&] { ref::Gemm(a, false, b, false, 1.0f, 0.0f, &c_naive); });
  row.blocked_seconds = TimeBest(reps, [&] { Gemm(a, false, b, false, 1.0f, 0.0f, &c_blocked); });
  return row;
}

Row BenchConv(int64_t batch, int64_t ic, int64_t oc, int64_t hw, int64_t k, int reps) {
  ConvGeometry g;
  g.batch = batch;
  g.in_channels = ic;
  g.in_h = hw;
  g.in_w = hw;
  g.out_channels = oc;
  g.kernel = k;
  g.stride = 1;
  g.padding = k / 2;
  Rng rng(2);
  Tensor input({batch, ic, hw, hw});
  Tensor weight({oc, ic, k, k});
  Tensor bias({oc});
  Tensor out_naive;
  Tensor out_blocked;
  InitGaussian(&input, 1.0f, &rng);
  InitGaussian(&weight, 0.1f, &rng);
  Row row;
  char label[128];
  std::snprintf(label, sizeof(label), "conv n%lld c%lld->%lld %lldx%lld k%lld",
                static_cast<long long>(batch), static_cast<long long>(ic),
                static_cast<long long>(oc), static_cast<long long>(hw),
                static_cast<long long>(hw), static_cast<long long>(k));
  row.label = label;
  row.flops = 2.0 * static_cast<double>(batch) * oc * g.out_h() * g.out_w() * ic * k * k;
  row.naive_seconds = TimeBest(reps, [&] { ref::Conv2dForward(input, weight, bias, g, &out_naive); });
  row.blocked_seconds = TimeBest(reps, [&] { Conv2dForward(input, weight, bias, g, &out_blocked); });
  return row;
}

int Main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  std::vector<Row> matmul;
  for (const int64_t n : {128, 256, 384, 512}) {
    matmul.push_back(BenchMatmul(n, n <= 256 ? 5 : 3));
  }
  std::vector<Row> conv;
  conv.push_back(BenchConv(4, 8, 16, 32, 3, 5));
  conv.push_back(BenchConv(8, 16, 32, 32, 3, 3));
  conv.push_back(BenchConv(4, 32, 64, 16, 3, 3));

  if (json) {
    std::printf("{\n  \"note\": \"GFLOP/s, best-of-N wall time, single thread\",\n");
    auto emit = [](const char* key, const std::vector<Row>& rows, bool last) {
      std::printf("  \"%s\": [\n", key);
      for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::printf("    {\"case\": \"%s\", \"naive_gflops\": %.3f, \"blocked_gflops\": %.3f, "
                    "\"speedup\": %.2f}%s\n",
                    r.label.c_str(), r.naive_gflops(), r.blocked_gflops(), r.speedup(),
                    i + 1 < rows.size() ? "," : "");
      }
      std::printf("  ]%s\n", last ? "" : ",");
    };
    emit("matmul", matmul, false);
    emit("conv_forward", conv, true);
    std::printf("}\n");
    return 0;
  }

  std::printf("%-28s %12s %12s %9s\n", "case", "naive GF/s", "blocked GF/s", "speedup");
  for (const auto& rows : {&matmul, &conv}) {
    for (const Row& r : *rows) {
      std::printf("%-28s %12.3f %12.3f %8.2fx\n", r.label.c_str(), r.naive_gflops(),
                  r.blocked_gflops(), r.speedup());
    }
  }
  return 0;
}

}  // namespace
}  // namespace pipedream

int main(int argc, char** argv) { return pipedream::Main(argc, argv); }
