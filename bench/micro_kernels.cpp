// Kernel-variant throughput + roofline: GFLOP/s for matmul and conv across sizes, for
// every kernel variant (naive / blocked / simd), against the measured micro-kernel peak.
//
// Usage: bench_micro_kernels [--json]
//   --json   emit a machine-readable report (the format stored in BENCH_kernels.json)
//
// All variants are timed from the same binary with identical compiler flags, so the
// ratios isolate the algorithmic win (cache blocking, register tiling, packing, explicit
// SIMD) from compiler settings. The roofline ceiling is the in-L1 register-tile rate from
// MicroKernelPeakGflops: pct_peak says how much of the pure-FMA rate survives packing,
// cache traffic, and edge tiles. Timings use best-of-N to shed scheduler noise, and every
// variant of a case runs in one process so ratios hold under host frequency drift.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/init.h"
#include "src/tensor/ops.h"

namespace pipedream {
namespace {

constexpr KernelVariant kVariants[] = {KernelVariant::kNaive, KernelVariant::kBlocked,
                                       KernelVariant::kSimd};
constexpr int kNumVariants = 3;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-reps wall time of fn().
template <typename Fn>
double TimeBest(int reps, Fn&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowSeconds();
    fn();
    best = std::min(best, NowSeconds() - t0);
  }
  return best;
}

struct Row {
  std::string label;
  double flops = 0.0;
  double seconds[kNumVariants] = {0.0, 0.0, 0.0};

  double gflops(int v) const { return flops / seconds[v] / 1e9; }
  // Interleaving the variants' timing loops would be fairer still, but best-of-N per
  // variant back to back keeps each measurement inside one frequency regime in practice.
  double speedup_vs_naive(int v) const { return seconds[0] / seconds[v]; }
  double simd_over_blocked() const { return seconds[1] / seconds[2]; }
};

// Times fn() once per kernel variant (the variant is pinned around each run).
template <typename Fn>
void TimeVariants(int reps, Row* row, Fn&& fn) {
  for (int v = 0; v < kNumVariants; ++v) {
    SetKernelVariantForTesting(kVariants[v]);
    row->seconds[v] = TimeBest(reps, fn);
  }
  ClearKernelVariantForTesting();
}

Row BenchMatmul(int64_t n, int reps) {
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c;
  InitGaussian(&a, 1.0f, &rng);
  InitGaussian(&b, 1.0f, &rng);
  Row row;
  row.label = "matmul " + std::to_string(n) + "x" + std::to_string(n) + "x" + std::to_string(n);
  row.flops = 2.0 * static_cast<double>(n) * n * n;
  TimeVariants(reps, &row, [&] { Gemm(a, false, b, false, 1.0f, 0.0f, &c); });
  return row;
}

Row BenchConv(int64_t batch, int64_t ic, int64_t oc, int64_t hw, int64_t k, int reps) {
  ConvGeometry g;
  g.batch = batch;
  g.in_channels = ic;
  g.in_h = hw;
  g.in_w = hw;
  g.out_channels = oc;
  g.kernel = k;
  g.stride = 1;
  g.padding = k / 2;
  Rng rng(2);
  Tensor input({batch, ic, hw, hw});
  Tensor weight({oc, ic, k, k});
  Tensor bias({oc});
  Tensor out;
  InitGaussian(&input, 1.0f, &rng);
  InitGaussian(&weight, 0.1f, &rng);
  Row row;
  char label[128];
  std::snprintf(label, sizeof(label), "conv n%lld c%lld->%lld %lldx%lld k%lld",
                static_cast<long long>(batch), static_cast<long long>(ic),
                static_cast<long long>(oc), static_cast<long long>(hw),
                static_cast<long long>(hw), static_cast<long long>(k));
  row.label = label;
  row.flops = 2.0 * static_cast<double>(batch) * oc * g.out_h() * g.out_w() * ic * k * k;
  TimeVariants(reps, &row, [&] { Conv2dForward(input, weight, bias, g, &out); });
  return row;
}

int Main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  // Micro-kernel peaks first (cold caches elsewhere don't matter: panels live in L1).
  const double peak_blocked = MicroKernelPeakGflops(KernelVariant::kBlocked);
  const double peak_simd = MicroKernelPeakGflops(KernelVariant::kSimd);
  const double ceiling = std::max(peak_blocked, peak_simd);

  std::vector<Row> matmul;
  for (const int64_t n : {128, 256, 384, 512}) {
    matmul.push_back(BenchMatmul(n, n <= 256 ? 9 : 7));
  }
  std::vector<Row> conv;
  conv.push_back(BenchConv(4, 8, 16, 32, 3, 7));
  conv.push_back(BenchConv(8, 16, 32, 32, 3, 5));
  conv.push_back(BenchConv(4, 32, 64, 16, 3, 5));

  if (json) {
    std::printf("{\n  \"note\": \"GFLOP/s, best-of-N wall time, single thread; pct_peak "
                "is vs the measured in-L1 micro-kernel roofline\",\n");
    std::printf("  \"simd_isa\": \"%s\",\n", SimdKernelIsa());
    std::printf("  \"micro_kernel_peak_gflops\": {\"blocked\": %.3f, \"simd\": %.3f},\n",
                peak_blocked, peak_simd);
    std::printf("  \"roofline_ceiling_gflops\": %.3f,\n", ceiling);
    auto emit = [&](const char* key, const std::vector<Row>& rows, bool last) {
      std::printf("  \"%s\": [\n", key);
      for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        for (int v = 0; v < kNumVariants; ++v) {
          const bool end = i + 1 == rows.size() && v + 1 == kNumVariants;
          std::printf("    {\"case\": \"%s\", \"kernel_variant\": \"%s\", "
                      "\"gflops\": %.3f, \"pct_peak\": %.1f, \"speedup_vs_naive\": %.2f, "
                      "\"simd_over_blocked\": %.2f}%s\n",
                      r.label.c_str(), KernelVariantName(kVariants[v]), r.gflops(v),
                      100.0 * r.gflops(v) / ceiling, r.speedup_vs_naive(v),
                      r.simd_over_blocked(), end ? "" : ",");
        }
      }
      std::printf("  ]%s\n", last ? "" : ",");
    };
    emit("matmul", matmul, false);
    emit("conv_forward", conv, true);
    std::printf("}\n");
    return 0;
  }

  std::printf("micro-kernel roofline: blocked %.1f GF/s, simd(%s) %.1f GF/s, ceiling %.1f GF/s\n\n",
              peak_blocked, SimdKernelIsa(), peak_simd, ceiling);
  std::printf("%-28s %10s %9s %7s %11s %11s\n", "case", "variant", "GF/s", "%peak",
              "vs naive", "simd/blkd");
  for (const auto& rows : {&matmul, &conv}) {
    for (const Row& r : *rows) {
      for (int v = 0; v < kNumVariants; ++v) {
        std::printf("%-28s %10s %9.3f %6.1f%% %10.2fx %10.2fx\n", r.label.c_str(),
                    KernelVariantName(kVariants[v]), r.gflops(v),
                    100.0 * r.gflops(v) / ceiling, r.speedup_vs_naive(v),
                    v == 2 ? r.simd_over_blocked() : 0.0);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace pipedream

int main(int argc, char** argv) { return pipedream::Main(argc, argv); }
