// Microbenchmarks for the discrete-event engine and the pipeline simulator.
#include <benchmark/benchmark.h>

#include "src/planner/plan.h"
#include "src/profile/model_zoo.h"
#include "src/sim/engine.h"
#include "src/simexec/pipeline_sim.h"

namespace pipedream {
namespace {

void BM_EventEngine(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    SimEngine engine;
    int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < events) {
        engine.ScheduleAfter(SimTime::Nanos(10), tick);
      }
    };
    engine.ScheduleAt(SimTime(), tick);
    engine.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventEngine)->Arg(1000)->Arg(100000);

void BM_SimulateVggPipeline(benchmark::State& state) {
  const ModelProfile profile = MakeVgg16Profile();
  const PipelinePlan plan = MakeBalancedStraightPlan(profile, 4);
  const auto topo = HardwareTopology::ClusterA(1);
  SimOptions options;
  options.num_minibatches = state.range(0);
  for (auto _ : state) {
    const SimResult result = SimulatePipeline(profile, plan, topo, options);
    benchmark::DoNotOptimize(result.total_seconds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateVggPipeline)->Arg(64)->Arg(512);

void BM_SimulateDataParallel(benchmark::State& state) {
  const ModelProfile profile = MakeVgg16Profile();
  const auto topo = HardwareTopology::ClusterA(4);
  for (auto _ : state) {
    const DataParallelResult result = SimulateDataParallelBsp(profile, topo, 16);
    benchmark::DoNotOptimize(result.iteration_seconds);
  }
}
BENCHMARK(BM_SimulateDataParallel);

}  // namespace
}  // namespace pipedream
