// Figure 11: accuracy vs. epoch for PipeDream (1F1B + weight stashing) and data parallelism
// on the same minibatch stream — the statistical-efficiency parity claim.
//
// Paper: VGG-16 and GNMT-16 on 16 GPUs, Cluster-B. Here: the scaled-down analogues (a
// VGG-style CNN on synthetic images; a stacked-LSTM sequence model on the copy task) trained
// for real by the threaded runtime. The claim to check: the pipelined curve tracks the DP
// curve epoch-for-epoch, because weight stashing keeps gradients valid.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/adam.h"
#include "src/optim/sgd.h"
#include "src/runtime/pipeline_trainer.h"

using namespace pipedream;

namespace {

// Trains `epochs` epochs under the given plan; returns eval accuracy after each epoch.
std::vector<double> Curve(const Sequential& model, const PipelinePlan& plan,
                          const Optimizer& opt, const Dataset& train, const Dataset& eval,
                          int64_t batch, int epochs, WeightMode mode) {
  SoftmaxCrossEntropy loss;
  PipelineTrainerOptions options;
  options.weight_mode = mode;
  PipelineTrainer trainer(model, plan, &loss, opt, &train, batch, /*seed=*/5, options);
  std::vector<double> curve;
  for (int e = 0; e < epochs; ++e) {
    trainer.TrainEpoch();
    curve.push_back(trainer.EvaluateAccuracy(eval, batch));
  }
  return curve;
}

void Panel(const char* title, const Sequential& model, const Optimizer& opt,
           const Dataset& train, const Dataset& eval, int64_t batch, int epochs) {
  const int layers = static_cast<int>(model.size());
  // PipeDream: a 4-stage straight pipeline with weight stashing.
  std::vector<int> cuts;
  for (int s = 1; s < 4; ++s) {
    cuts.push_back(std::max(1, layers * s / 4));
  }
  const auto pd_plan = MakeStraightPlan(layers, cuts);
  const auto pd = Curve(model, pd_plan, opt, train, eval, batch, epochs,
                        WeightMode::kStashing);
  // The statistical-efficiency reference: sequential minibatch SGD (one worker) — identical
  // update granularity, zero staleness. The paper's claim is that stashed-but-stale
  // gradients track this.
  const auto sequential = Curve(model, MakeDataParallelPlan(layers, 1), opt, train, eval,
                                batch, epochs, WeightMode::kStashing);
  // DP: 4 replicas, BSP. Its global batch is 4x larger, so it applies 4x fewer updates per
  // epoch — the paper's Figure 11 setting.
  const auto dp = Curve(model, MakeDataParallelPlan(layers, 4), opt, train, eval, batch,
                        epochs, WeightMode::kStashing);
  // Ablation: naive pipelining (no stashing) on the same pipeline.
  const auto naive = Curve(model, pd_plan, opt, train, eval, batch, epochs,
                           WeightMode::kNaive);

  Table table({"epoch", "PipeDream (1F1B+stash)", "sequential SGD", "DP (BSP x4)",
               "naive pipeline"});
  double worst_gap = 0.0;
  for (int e = 0; e < epochs; ++e) {
    worst_gap = std::max(worst_gap, std::abs(pd[static_cast<size_t>(e)] -
                                             sequential[static_cast<size_t>(e)]));
    table.AddRow({StrFormat("%d", e + 1),
                  StrFormat("%.3f", pd[static_cast<size_t>(e)]),
                  StrFormat("%.3f", sequential[static_cast<size_t>(e)]),
                  StrFormat("%.3f", dp[static_cast<size_t>(e)]),
                  StrFormat("%.3f", naive[static_cast<size_t>(e)])});
  }
  table.Print(title);
  std::printf("max |PipeDream - sequential| accuracy gap over the run: %.3f\n", worst_gap);
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 11: accuracy vs epoch, PipeDream vs DP (plus the naive\n"
              "no-stashing ablation the paper's §3.3 warns about).\n");

  {
    // (b) VGG-16 analogue: conv net on synthetic images.
    const Dataset all = MakeSyntheticImages(4, 1, 8, 90, 0.9, 11);
    Dataset train;
    Dataset eval;
    SplitDataset(all, 0.8, &train, &eval);
    Rng rng(3);
    const auto model = BuildMiniVgg(1, 8, 4, &rng);
    Sgd sgd(0.03, 0.8);
    Panel("Figure 11b analogue — VGG-style CNN, 4 workers", *model, sgd, train, eval,
          /*batch=*/16, /*epochs=*/8);
  }
  {
    // (a) GNMT-16 analogue: stacked LSTMs on sequence copy.
    const Dataset all = MakeSequenceCopy(8, 6, 480, /*reverse=*/false, 13);
    Dataset train;
    Dataset eval;
    SplitDataset(all, 0.8, &train, &eval);
    Rng rng(4);
    const auto model = BuildLstmSeqModel(8, 12, 24, 2, &rng);
    Adam adam(0.01);
    Panel("Figure 11a analogue — stacked-LSTM translation model, 4 workers", *model, adam,
          train, eval, /*batch=*/16, /*epochs=*/8);
  }

  std::printf(
      "\nShape checks: the PipeDream column tracks sequential SGD closely (weight stashing\n"
      "keeps gradients valid despite bounded staleness); DP lags per-epoch only because its\n"
      "global batch is 4x larger (fewer updates); the naive column lags or wobbles.\n");
  return 0;
}
