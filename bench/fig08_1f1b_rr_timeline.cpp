// Figure 8: 1F1B-RR on a 2-1 configuration — the first stage is replicated on workers 0 and
// 1 (even minibatches on worker 0, odd on worker 1), the second stage runs on worker 2. The
// first stage's passes take two time units, the second stage's one, so the replication
// balances throughput.
#include <cstdio>

#include "src/common/sim_time.h"
#include "src/profile/layer_profile.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("Reproduction of Figure 8: 1F1B-RR, 2-1 configuration on 3 workers.\n\n");
  // Stage 0 (layer 0): fwd = bwd = 20 ms. Stage 1 (layer 1): fwd = bwd = 10 ms — the
  // figure's 2:1 stage ratio with equal forward/backward, as the caption specifies.
  ModelProfile profile;
  profile.model_name = "fig8";
  profile.minibatch_size = 1;
  LayerProfile slow;
  slow.name = "stage0";
  slow.fwd_seconds = 0.020;
  slow.bwd_seconds = 0.020;
  slow.activation_bytes = 1;
  slow.param_bytes = 1;
  LayerProfile fast = slow;
  fast.name = "stage1";
  fast.fwd_seconds = 0.010;
  fast.bwd_seconds = 0.010;
  profile.layers = {slow, fast};

  const PipelinePlan plan = MakePlanFromShape({{1, 2}, {1, 1}});
  std::printf("config %s; startup depth: stage0 = 2 per replica, stage1 = 1\n\n",
              plan.ConfigString(2).c_str());

  SimOptions options;
  options.num_minibatches = 12;
  options.record_trace = true;
  const auto topo = HardwareTopology::Flat(3, 1e12, 0.0);
  const SimResult result = SimulatePipeline(profile, plan, topo, options);

  std::printf("%s\n", result.trace.RenderAscii(SimTime::Millis(10), 3, 60).c_str());
  const Status valid = result.trace.Validate(plan);
  std::printf("round-robin affinity + dependencies: %s\n", valid.ToString().c_str());
  std::printf("worker 0 handles even minibatches, worker 1 odd ones (both passes of each),\n"
              "and worker 2 alternates 1F1B over every minibatch at twice the rate.\n");
  return 0;
}
