// Microbenchmarks for the tensor substrate (GEMM, elementwise, softmax).
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/tensor/init.h"
#include "src/tensor/ops.h"

namespace pipedream {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c;
  InitGaussian(&a, 1.0f, &rng);
  InitGaussian(&b, 1.0f, &rng);
  for (auto _ : state) {
    MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransposedA(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n});
  Tensor b({n, n});
  Tensor c;
  InitGaussian(&a, 1.0f, &rng);
  InitGaussian(&b, 1.0f, &rng);
  for (auto _ : state) {
    Gemm(a, true, b, false, 1.0f, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransposedA)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(1);
  Tensor logits({rows, 1000});
  Tensor probs;
  InitGaussian(&logits, 1.0f, &rng);
  for (auto _ : state) {
    SoftmaxRows(logits, &probs);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * 1000);
}
BENCHMARK(BM_SoftmaxRows)->Arg(16)->Arg(64);

void BM_Axpy(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n});
  Tensor b({n});
  InitGaussian(&a, 1.0f, &rng);
  InitGaussian(&b, 1.0f, &rng);
  for (auto _ : state) {
    Axpy(0.5f, b, &a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_Axpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
}  // namespace pipedream
