// Microbenchmark for the partitioning optimizer. §5.5's claim: the optimizer generates
// configurations "in under 8 seconds for all models and hardware deployments evaluated" —
// this implementation runs in milliseconds per (model, topology) pair.
#include <benchmark/benchmark.h>

#include "src/planner/partitioner.h"
#include "src/profile/model_zoo.h"

namespace pipedream {
namespace {

void BM_PartitionFlat16(benchmark::State& state) {
  const auto names = ModelZooNames();
  const auto& name = names[static_cast<size_t>(state.range(0)) % names.size()];
  const ModelProfile profile = MakeProfileByName(name);
  for (auto _ : state) {
    const auto result = PartitionFlat(profile, 16, 1.25e9);
    benchmark::DoNotOptimize(result.bottleneck_seconds);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_PartitionFlat16)->DenseRange(0, 6);

void BM_PartitionHierarchical(benchmark::State& state) {
  const ModelProfile profile = MakeGnmtProfile(16);
  const auto topo = HardwareTopology::ClusterA(4);
  for (auto _ : state) {
    const auto result = PartitionHierarchical(profile, topo, {});
    benchmark::DoNotOptimize(result.bottleneck_seconds);
  }
}
BENCHMARK(BM_PartitionHierarchical);

void BM_PartitionAllModelsAllClusters(benchmark::State& state) {
  // The §5.5 statement measured end to end: every model on every cluster.
  for (auto _ : state) {
    for (const auto& name : ModelZooNames()) {
      const ModelProfile profile = MakeProfileByName(name);
      for (int servers : {1, 2, 4}) {
        const auto result = PartitionHierarchical(profile, HardwareTopology::ClusterA(servers), {});
        benchmark::DoNotOptimize(result.bottleneck_seconds);
      }
    }
  }
}
BENCHMARK(BM_PartitionAllModelsAllClusters)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pipedream
