// Failure sweep over the cluster simulator: what a device failure costs a pipeline under
// restart recovery (detection + restart + re-execution from the last checkpoint) versus
// degraded recovery (eject the dead replica, rebalance 1F1B-RR over the survivors).
//
// Usage: bench_fault_recovery [--json]
//   --json   emit the machine-readable report stored in BENCH_fault.json
//
// All numbers are deterministic virtual time from the discrete-event simulator, so the
// report is reproducible bit-for-bit across runs and machines.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/planner/plan.h"
#include "src/sim/topology.h"
#include "src/simexec/pipeline_sim.h"

namespace pipedream {
namespace {

ModelProfile UniformProfile(int layers, double fwd_seconds = 0.010,
                            int64_t activation_bytes = 1 << 20,
                            int64_t param_bytes = 4 << 20) {
  ModelProfile profile;
  profile.model_name = "uniform";
  profile.minibatch_size = 32;
  for (int i = 0; i < layers; ++i) {
    LayerProfile layer;
    layer.name = "l" + std::to_string(i);
    layer.fwd_seconds = fwd_seconds;
    layer.bwd_seconds = 2.0 * fwd_seconds;
    layer.activation_bytes = activation_bytes;
    layer.param_bytes = param_bytes;
    profile.layers.push_back(layer);
  }
  return profile;
}

struct SweepRow {
  std::string scenario;
  int64_t checkpoint_every = 0;
  double clean_seconds = 0.0;
  double faulty_seconds = 0.0;
  double recovery_cost_seconds = 0.0;  // makespan delta vs. the clean run
  int64_t reexecuted = 0;
  double clean_throughput = 0.0;
  double post_recovery_throughput = 0.0;
};

SweepRow RunOne(const std::string& scenario, const ModelProfile& profile,
                const PipelinePlan& plan, const HardwareTopology& topo, SimOptions options) {
  SweepRow row;
  row.scenario = scenario;
  row.checkpoint_every = options.fault.checkpoint_every;

  SimOptions clean = options;
  clean.fault.enabled = false;
  const SimResult base = SimulatePipeline(profile, plan, topo, clean);
  row.clean_seconds = base.total_seconds;
  row.clean_throughput = base.throughput_samples_per_sec;

  options.fault.enabled = true;
  const SimResult faulty = SimulatePipeline(profile, plan, topo, options);
  row.faulty_seconds = faulty.total_seconds;
  row.recovery_cost_seconds = faulty.total_seconds - base.total_seconds;
  row.reexecuted = faulty.reexecuted_minibatches;
  row.post_recovery_throughput = faulty.post_recovery_throughput_samples_per_sec;
  return row;
}

void PrintHuman(const std::vector<SweepRow>& rows) {
  std::printf("%-34s %8s %10s %10s %10s %8s %12s %12s\n", "scenario", "ckpt", "clean_s",
              "faulty_s", "cost_s", "reexec", "clean_tput", "post_tput");
  for (const SweepRow& r : rows) {
    std::printf("%-34s %8lld %10.2f %10.2f %10.2f %8lld %12.1f %12.1f\n", r.scenario.c_str(),
                static_cast<long long>(r.checkpoint_every), r.clean_seconds, r.faulty_seconds,
                r.recovery_cost_seconds, static_cast<long long>(r.reexecuted),
                r.clean_throughput, r.post_recovery_throughput);
  }
}

void PrintJson(const std::vector<SweepRow>& rows) {
  std::printf("{\n");
  std::printf(
      "  \"note\": \"simulated device-failure sweep: makespan cost, re-executed minibatches, "
      "and steady-state throughput before/after recovery (deterministic virtual time)\",\n");
  std::printf("  \"fault_sweep\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::printf(
        "    {\"scenario\": \"%s\", \"checkpoint_every\": %lld, \"clean_seconds\": %.3f, "
        "\"faulty_seconds\": %.3f, \"recovery_cost_seconds\": %.3f, "
        "\"reexecuted_minibatches\": %lld, \"clean_throughput\": %.2f, "
        "\"post_recovery_throughput\": %.2f}%s\n",
        r.scenario.c_str(), static_cast<long long>(r.checkpoint_every), r.clean_seconds,
        r.faulty_seconds, r.recovery_cost_seconds, static_cast<long long>(r.reexecuted),
        r.clean_throughput, r.post_recovery_throughput, i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

int Main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const auto profile = UniformProfile(8);
  const auto topo = HardwareTopology::Flat(4, 1e12);
  std::vector<SweepRow> rows;

  // Straight 4-stage pipeline, restart recovery, checkpoint cadence sweep.
  const auto straight = MakeStraightPlan(8, {2, 4, 6});
  for (const int64_t every : {25, 50, 100, 200}) {
    SimOptions options;
    options.num_minibatches = 400;
    options.fault.stage = 2;
    options.fault.at_minibatch = 330;
    options.fault.detection_seconds = 0.5;
    options.fault.restart_seconds = 2.0;
    options.fault.checkpoint_every = every;
    rows.push_back(RunOne("1f1b/restart/kill@330", profile, straight, topo, options));
  }

  // Replicated input stage: restart vs. degraded ejection for the same failure.
  const auto replicated = MakePlanFromShape({{4, 2}, {4, 2}});
  {
    SimOptions options;
    options.num_minibatches = 400;
    options.fault.stage = 0;
    options.fault.replica = 1;
    options.fault.at_minibatch = 201;  // replica 1 owns odd minibatches
    options.fault.detection_seconds = 0.5;
    options.fault.restart_seconds = 2.0;
    options.fault.checkpoint_every = 100;
    rows.push_back(RunOne("1f1b-rr/restart/kill@201", profile, replicated, topo, options));
    options.fault.degraded = true;
    rows.push_back(RunOne("1f1b-rr/degraded/kill@201", profile, replicated, topo, options));
  }

  // GPipe flush rounds: rollback lands on a round-aligned checkpoint boundary.
  {
    SimOptions options;
    options.schedule = ScheduleKind::kGPipe;
    options.gpipe_microbatches = 4;
    options.num_minibatches = 400;
    options.fault.stage = 3;
    options.fault.at_minibatch = 330;
    options.fault.detection_seconds = 0.5;
    options.fault.restart_seconds = 2.0;
    options.fault.checkpoint_every = 100;
    rows.push_back(RunOne("gpipe/restart/kill@330", profile, straight, topo, options));
  }

  if (json) {
    PrintJson(rows);
  } else {
    PrintHuman(rows);
  }
  return 0;
}

}  // namespace
}  // namespace pipedream

int main(int argc, char** argv) { return pipedream::Main(argc, argv); }
