// Elastic re-planning benchmark: what losing a worker costs a skewed 4-worker pipeline
// under three policies — restart-in-place, degraded-forever (eject the replica and never
// re-plan), and elastic re-planning (re-partition over the survivors' speeds) — plus the
// measured wall-clock latency of a real ElasticTrainer re-plan + state migration.
//
// Usage: bench_elastic [--json] [--smoke]
//   --json    emit the machine-readable report stored in BENCH_elastic.json
//   --smoke   shrink the sweep for CI (ctest -L elastic)
//
// The policy sweep is deterministic virtual time from the discrete-event simulator; the
// migration-latency section is measured wall clock from the threaded runtime.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>
#include <unistd.h>

#include "src/common/rng.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/planner/plan.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/elastic.h"
#include "src/runtime/fault.h"
#include "src/sim/topology.h"
#include "src/simexec/pipeline_sim.h"

namespace pipedream {
namespace {

ModelProfile UniformProfile(int layers, double fwd_seconds = 0.010,
                            int64_t activation_bytes = 1 << 10,
                            int64_t param_bytes = 1 << 10) {
  ModelProfile profile;
  profile.model_name = "uniform";
  profile.minibatch_size = 32;
  for (int i = 0; i < layers; ++i) {
    LayerProfile layer;
    layer.name = "l" + std::to_string(i);
    layer.fwd_seconds = fwd_seconds;
    layer.bwd_seconds = 2.0 * fwd_seconds;
    layer.activation_bytes = activation_bytes;
    layer.param_bytes = param_bytes;
    profile.layers.push_back(layer);
  }
  return profile;
}

struct PolicyRow {
  std::string scenario;
  double replan_seconds = 0.0;      // charged partitioner + migration latency (sim input)
  double clean_throughput = 0.0;    // samples/s before any failure
  double post_throughput = 0.0;     // steady state after the policy resolved the failure
  double recovered_fraction = 0.0;  // post / clean
  double makespan_seconds = 0.0;
  int replans = 0;
};

PolicyRow RunPolicy(const std::string& scenario, const ModelProfile& profile,
                    const PipelinePlan& plan, const HardwareTopology& topo,
                    SimOptions options, double clean_throughput) {
  const SimResult result = SimulatePipeline(profile, plan, topo, options);
  PolicyRow row;
  row.scenario = scenario;
  row.replan_seconds = options.fault.replan ? options.fault.replan_seconds : 0.0;
  row.clean_throughput = clean_throughput;
  row.post_throughput = result.post_recovery_throughput_samples_per_sec;
  row.recovered_fraction =
      clean_throughput > 0.0 ? row.post_throughput / clean_throughput : 0.0;
  row.makespan_seconds = result.total_seconds;
  row.replans = result.replans;
  return row;
}

struct MigrationRow {
  int64_t epoch_length = 0;
  double replan_wall_seconds = 0.0;        // measured partition + checkpoint + rebuild
  double degraded_minibatches_per_sec = 0.0;  // kill epoch: detection + rollback
                                              // stall + degraded finish
  double replanned_minibatches_per_sec = 0.0;  // epoch throughput after the re-plan
  int plan_generations = 0;
};

// Kills one replicated-stage worker on a real 4-worker heterogeneous ElasticTrainer and
// measures the re-plan + migration wall clock plus per-epoch throughput either side of it.
MigrationRow MeasureMigration(int epochs_after) {
  const Dataset data = MakeGaussianMixture(3, 6, 32, 0.3, 17);
  SoftmaxCrossEntropy loss;
  Sgd sgd(0.05);
  Rng rng(2);
  const auto model = BuildMlpClassifier(6, {16, 12, 8}, 3, &rng);
  // Five heavy layers + cheap tail (see tests/runtime/elastic_test.cc): the skewed optimum
  // replicates the fast trio and the kill target is deterministic.
  ModelProfile profile = UniformProfile(static_cast<int>(model->size()));
  profile.minibatch_size = 4;
  for (size_t i = 5; i < profile.layers.size(); ++i) {
    profile.layers[i].fwd_seconds = 0.004;
    profile.layers[i].bwd_seconds = 0.008;
  }

  const auto dir = std::filesystem::temp_directory_path() /
                   ("pd_bench_elastic_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  CheckpointManager manager(dir.string());
  ElasticOptions options;
  options.recovery.heartbeat_timeout_ms = 1000;
  options.recovery.progress_timeout_ms = 400;
  options.recovery.worker_tick_ms = 5;
  options.recovery.watchdog_poll_ms = 2;
  ElasticTrainer elastic(*model, profile, &loss, sgd, &data, /*batch_size=*/4, /*seed=*/5,
                         {{1.0, 0}, {1.0, 0}, {1.0, 0}, {0.5, 0}}, &manager, options);

  MigrationRow row;
  row.epoch_length = elastic.epoch_length();
  FaultPlan fault_plan;
  fault_plan.events.push_back({FaultKind::kKillWorker, /*stage=*/0, /*replica=*/1,
                               /*minibatch=*/elastic.epoch_length() + 1, WorkType::kForward,
                               0.0});
  FaultInjector injector(fault_plan);
  elastic.SetFaultInjector(&injector);

  elastic.TrainEpoch();                              // clean
  const EpochStats dead = elastic.TrainEpoch();      // kill + degraded finish
  row.degraded_minibatches_per_sec =
      dead.wall_seconds > 0.0 ? static_cast<double>(dead.minibatches) / dead.wall_seconds
                              : 0.0;
  double replanned_mb = 0.0, replanned_s = 0.0;
  for (int e = 0; e < epochs_after; ++e) {           // re-plan fires before the first one
    const EpochStats stats = elastic.TrainEpoch();
    replanned_mb += static_cast<double>(stats.minibatches);
    replanned_s += stats.wall_seconds;
  }
  row.replan_wall_seconds = elastic.last_replan_seconds();
  row.replanned_minibatches_per_sec = replanned_s > 0.0 ? replanned_mb / replanned_s : 0.0;
  row.plan_generations = static_cast<int>(elastic.plan_generation()) + 1;
  std::filesystem::remove_all(dir);
  return row;
}

void PrintHuman(const std::vector<PolicyRow>& rows, const MigrationRow& migration) {
  std::printf("%-30s %10s %12s %12s %10s %10s %8s\n", "scenario", "replan_s", "clean_tput",
              "post_tput", "recovered", "makespan", "replans");
  for (const PolicyRow& r : rows) {
    std::printf("%-30s %10.2f %12.1f %12.1f %9.1f%% %10.2f %8d\n", r.scenario.c_str(),
                r.replan_seconds, r.clean_throughput, r.post_throughput,
                100.0 * r.recovered_fraction, r.makespan_seconds, r.replans);
  }
  std::printf("\nmeasured migration (threaded runtime, 4 workers, kill 1):\n");
  std::printf("  replan+migrate wall: %.1f ms\n", 1e3 * migration.replan_wall_seconds);
  std::printf("  kill+degraded epoch: %.1f minibatches/s\n",
              migration.degraded_minibatches_per_sec);
  std::printf("  re-planned epochs:   %.1f minibatches/s\n",
              migration.replanned_minibatches_per_sec);
}

void PrintJson(const std::vector<PolicyRow>& rows, const MigrationRow& migration) {
  std::printf("{\n");
  std::printf(
      "  \"note\": \"failure policies on a skewed 4-worker cluster (speeds 1/1/1/0.5): "
      "degraded-forever vs elastic re-planning; sim rows are deterministic virtual time, "
      "migration row is measured wall clock\",\n");
  std::printf("  \"policy_sweep\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const PolicyRow& r = rows[i];
    std::printf(
        "    {\"scenario\": \"%s\", \"replan_seconds\": %.3f, \"clean_throughput\": %.2f, "
        "\"post_recovery_throughput\": %.2f, \"recovered_fraction\": %.4f, "
        "\"makespan_seconds\": %.3f, \"replans\": %d}%s\n",
        r.scenario.c_str(), r.replan_seconds, r.clean_throughput, r.post_throughput,
        r.recovered_fraction, r.makespan_seconds, r.replans,
        i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf(
      "  \"measured_migration\": {\"epoch_length\": %lld, \"replan_wall_seconds\": %.6f, "
      "\"degraded_minibatches_per_sec\": %.2f, \"replanned_minibatches_per_sec\": %.2f, "
      "\"plan_generations\": %d}\n",
      static_cast<long long>(migration.epoch_length), migration.replan_wall_seconds,
      migration.degraded_minibatches_per_sec, migration.replanned_minibatches_per_sec,
      migration.plan_generations);
  std::printf("}\n");
}

int Main(int argc, char** argv) {
  bool json = false, smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto profile = UniformProfile(8);
  const auto plan = MakePlanFromShape({{4, 2}, {4, 2}});
  const auto topo = HardwareTopology::Flat(4, 1e12);
  SimOptions base;
  base.num_minibatches = smoke ? 200 : 400;
  base.worker_speeds = {1.0, 1.0, 1.0, 0.5};
  const double clean_tput =
      SimulatePipeline(profile, plan, topo, base).throughput_samples_per_sec;

  base.fault.enabled = true;
  base.fault.stage = 0;
  base.fault.replica = 1;
  base.fault.at_minibatch = base.num_minibatches / 2 + 1;  // replica 1 owns odd minibatches
  base.fault.detection_seconds = 0.5;
  base.fault.restart_seconds = 2.0;
  base.fault.checkpoint_every = 100;

  std::vector<PolicyRow> rows;
  {
    SimOptions options = base;  // restart-in-place: the dead device respawns
    rows.push_back(RunPolicy("restart-in-place", profile, plan, topo, options, clean_tput));
  }
  {
    SimOptions options = base;
    options.fault.degraded = true;
    rows.push_back(RunPolicy("degraded-forever", profile, plan, topo, options, clean_tput));
  }
  for (const double replan_seconds : smoke ? std::vector<double>{0.5}
                                           : std::vector<double>{0.1, 0.5, 2.0}) {
    SimOptions options = base;
    options.fault.replan = true;
    options.fault.replan_seconds = replan_seconds;
    rows.push_back(RunPolicy("elastic-replan", profile, plan, topo, options, clean_tput));
  }

  const MigrationRow migration = MeasureMigration(/*epochs_after=*/smoke ? 1 : 3);

  if (json) {
    PrintJson(rows, migration);
  } else {
    PrintHuman(rows, migration);
  }
  return 0;
}

}  // namespace
}  // namespace pipedream

int main(int argc, char** argv) { return pipedream::Main(argc, argv); }
