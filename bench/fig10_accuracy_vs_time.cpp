// Figure 10: top-1 accuracy vs. training time for VGG-16 on 16 GPUs, Clusters A and B.
//
// Two ingredients, per the paper's methodology: (1) accuracy-vs-epoch curves, which the
// runtime measures on the scaled-down VGG analogue (Figure 11 shows they match DP
// epoch-for-epoch); (2) per-epoch wall time, which the cluster simulator measures for
// full-scale VGG-16 under each system's plan. Accuracy(t) = curve[epoch(t)].
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/pipedream.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

namespace {

constexpr int64_t kImagenetSize = 1281167;  // ILSVRC12 training images
constexpr int kEpochs = 8;

std::vector<double> AccuracyCurve(const PipelinePlan& plan) {
  const Dataset all = MakeSyntheticImages(4, 1, 8, 90, 0.9, 11);
  Dataset train;
  Dataset eval;
  SplitDataset(all, 0.8, &train, &eval);
  Rng rng(3);
  const auto model = BuildMiniVgg(1, 8, 4, &rng);
  SoftmaxCrossEntropy loss;
  Sgd sgd(0.03, 0.8);
  PipelineTrainer trainer(*model, plan, &loss, sgd, &train, 16, 5);
  std::vector<double> curve;
  for (int e = 0; e < kEpochs; ++e) {
    trainer.TrainEpoch();
    curve.push_back(trainer.EvaluateAccuracy(eval, 16));
  }
  return curve;
}

void Panel(const char* label, const HardwareTopology& topology) {
  const ModelProfile profile = MakeVgg16Profile();
  const AutoPlanResult planned = AutoPlan(profile, topology);
  SimOptions options;
  options.num_minibatches = 128;
  const SimResult pd = SimulatePipeline(profile, planned.partition.plan, topology, options);
  const SimResult dp = SimulatePipeline(
      profile, MakeDataParallelPlan(profile.num_layers(), topology.num_workers()), topology,
      options);
  const double pd_epoch_min =
      static_cast<double>(kImagenetSize) / pd.throughput_samples_per_sec / 60.0;
  const double dp_epoch_min =
      static_cast<double>(kImagenetSize) / dp.throughput_samples_per_sec / 60.0;

  // Runtime accuracy curves for each system's actual schedule semantics.
  const int layers = 10;  // BuildMiniVgg layer count
  std::vector<int> cuts = {3, 6, 8};
  const auto pd_curve = AccuracyCurve(MakeStraightPlan(layers, cuts));
  const auto dp_curve = AccuracyCurve(MakeDataParallelPlan(layers, 4));

  Table table({"epoch", "PipeDream t (min)", "PipeDream acc", "DP t (min)", "DP acc"});
  for (int e = 0; e < kEpochs; ++e) {
    table.AddRow({StrFormat("%d", e + 1), StrFormat("%.0f", pd_epoch_min * (e + 1)),
                  StrFormat("%.3f", pd_curve[static_cast<size_t>(e)]),
                  StrFormat("%.0f", dp_epoch_min * (e + 1)),
                  StrFormat("%.3f", dp_curve[static_cast<size_t>(e)])});
  }
  table.Print(StrFormat("Figure 10 — VGG-16 accuracy vs time, %s (config %s)", label,
                        planned.partition.plan.ConfigString(profile.num_layers()).c_str()));
  std::printf("epoch time: PipeDream %.0f min vs DP %.0f min -> %.2fx\n", pd_epoch_min,
              dp_epoch_min, dp_epoch_min / pd_epoch_min);
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 10: accuracy vs wall-clock time for VGG-16, 16 GPUs.\n"
              "(accuracy curves from the real scaled-down runtime; epoch times from the\n"
              " full-scale cluster simulation)\n");
  Panel("(a) Cluster-A", HardwareTopology::ClusterA(4));
  Panel("(b) Cluster-B", HardwareTopology::ClusterB(2));
  std::printf("\nShape check: same accuracy trajectory per epoch, but PipeDream's epochs are\n"
              "several times shorter, so its accuracy-vs-time curve dominates; both systems\n"
              "are faster on Cluster-B than Cluster-A.\n");
  return 0;
}
