// Figure 16: per-worker memory footprint for 4-stage PipeDream configurations vs data
// parallelism, for VGG-16, GNMT-8, and ResNet-50. The claim: PipeDream's *worst-case*
// per-worker footprint is on par with DP even though it stashes multiple weight/activation
// versions, because each stage holds only a fraction of the model.
#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("Reproduction of Figure 16: per-stage memory footprint, 4 GPUs.\n");

  const auto topo = HardwareTopology::ClusterA(1);
  const char* models[] = {"VGG-16", "GNMT-8", "ResNet-50"};

  Table table({"model", "stage 0", "stage 1", "stage 2", "stage 3", "worst stage",
               "DP (per worker)"});
  for (const char* name : models) {
    const ModelProfile profile = MakeProfileByName(name);
    const PipelinePlan plan = MakeBalancedStraightPlan(profile, 4);
    SimOptions options;
    options.num_minibatches = 64;
    const SimResult pd = SimulatePipeline(profile, plan, topo, options);
    const SimResult dp = SimulatePipeline(
        profile, MakeDataParallelPlan(profile.num_layers(), 4), topo, options);

    std::vector<std::string> row = {name};
    int64_t worst = 0;
    for (int w = 0; w < 4; ++w) {
      const int64_t bytes = pd.worker_peak_memory[static_cast<size_t>(w)];
      worst = std::max(worst, bytes);
      row.push_back(HumanBytes(static_cast<double>(bytes)));
    }
    row.push_back(HumanBytes(static_cast<double>(worst)));
    row.push_back(HumanBytes(static_cast<double>(dp.worker_peak_memory[0])));
    table.AddRow(row);
  }
  table.Print("Figure 16 — peak per-worker memory (weights + gradients + stashes)");

  std::printf("\nShape check: the worst PipeDream stage is on par with (not a multiple of)\n"
              "the DP per-worker footprint — stashing multiplies a 1/4-sized stage, and the\n"
              "in-flight depth shrinks along the pipeline (4, 3, 2, 1).\n");
  return 0;
}
