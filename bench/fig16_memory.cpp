// Figure 16: per-worker memory footprint for 4-stage PipeDream configurations vs data
// parallelism, for VGG-16, GNMT-8, and ResNet-50. The claim: PipeDream's *worst-case*
// per-worker footprint is on par with DP even though it stashes multiple weight/activation
// versions, because each stage holds only a fraction of the model.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/profile/model_zoo.h"
#include "src/runtime/pipeline_trainer.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

namespace {

// Measured (not simulated) stash footprint: a 4-stage MLP pipeline trained under weight
// stashing, comparing the logical full-clone-per-stash bytes against what the
// copy-on-write stashes actually materialized (only parameter blocks the optimizer wrote
// since the stash was taken occupy memory; see WeightStore::MaterializedStashBytes).
void RunCowStashSection() {
  const Dataset data = MakeGaussianMixture(3, 16, 128, 0.4, 7);
  Rng rng(5);
  auto model = BuildMlpClassifier(16, {64, 64, 64}, 3, &rng);
  const auto plan = MakeStraightPlan(static_cast<int>(model->size()), {2, 4, 6});
  SoftmaxCrossEntropy loss;
  Sgd sgd(0.01);
  PipelineTrainer trainer(*model, plan, &loss, sgd, &data, /*batch=*/8, /*seed=*/3);
  trainer.TrainEpoch();
  trainer.TrainEpoch();

  Table table({"stage", "full-clone stash peak", "materialized (COW) peak", "ratio"});
  int64_t total_logical = 0;
  int64_t total_materialized = 0;
  for (int s = 0; s < plan.num_stages(); ++s) {
    const int64_t logical = trainer.StagePeakStashBytes(s);
    const int64_t materialized = trainer.StagePeakMaterializedStashBytes(s);
    total_logical += logical;
    total_materialized += materialized;
    table.AddRow({StrFormat("%d", s), HumanBytes(static_cast<double>(logical)),
                  HumanBytes(static_cast<double>(materialized)),
                  logical > 0 ? StrFormat("%.2fx", static_cast<double>(materialized) /
                                                       static_cast<double>(logical))
                              : "-"});
  }
  table.AddRow({"total", HumanBytes(static_cast<double>(total_logical)),
                HumanBytes(static_cast<double>(total_materialized)),
                total_logical > 0
                    ? StrFormat("%.2fx", static_cast<double>(total_materialized) /
                                             static_cast<double>(total_logical))
                    : "-"});
  table.Print("Measured stash footprint under kStashing — naive clones vs copy-on-write");
  if (total_materialized < total_logical) {
    std::printf("COW stashing materialized %s of the %s a full-clone stash would hold.\n",
                HumanBytes(static_cast<double>(total_materialized)).c_str(),
                HumanBytes(static_cast<double>(total_logical)).c_str());
  } else {
    std::printf("WARNING: materialized stash bytes did not undercut full clones.\n");
  }
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 16: per-stage memory footprint, 4 GPUs.\n");

  const auto topo = HardwareTopology::ClusterA(1);
  const char* models[] = {"VGG-16", "GNMT-8", "ResNet-50"};

  Table table({"model", "stage 0", "stage 1", "stage 2", "stage 3", "worst stage",
               "DP (per worker)"});
  for (const char* name : models) {
    const ModelProfile profile = MakeProfileByName(name);
    const PipelinePlan plan = MakeBalancedStraightPlan(profile, 4);
    SimOptions options;
    options.num_minibatches = 64;
    const SimResult pd = SimulatePipeline(profile, plan, topo, options);
    const SimResult dp = SimulatePipeline(
        profile, MakeDataParallelPlan(profile.num_layers(), 4), topo, options);

    std::vector<std::string> row = {name};
    int64_t worst = 0;
    for (int w = 0; w < 4; ++w) {
      const int64_t bytes = pd.worker_peak_memory[static_cast<size_t>(w)];
      worst = std::max(worst, bytes);
      row.push_back(HumanBytes(static_cast<double>(bytes)));
    }
    row.push_back(HumanBytes(static_cast<double>(worst)));
    row.push_back(HumanBytes(static_cast<double>(dp.worker_peak_memory[0])));
    table.AddRow(row);
  }
  table.Print("Figure 16 — peak per-worker memory (weights + gradients + stashes)");

  std::printf("\nShape check: the worst PipeDream stage is on par with (not a multiple of)\n"
              "the DP per-worker footprint — stashing multiplies a 1/4-sized stage, and the\n"
              "in-flight depth shrinks along the pipeline (4, 3, 2, 1).\n\n");

  RunCowStashSection();
  return 0;
}
