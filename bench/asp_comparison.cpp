// §5.2 "Comparison to Asynchronous Parallelism": ASP removes all synchronization overhead
// but loses statistical efficiency to stale gradients. The paper: ASP data parallelism took
// 7.4x longer than PipeDream to reach 48% accuracy on VGG-16 despite zero communication
// delay.
//
// Here: the same minibatch stream trained to a fixed accuracy target by (a) PipeDream 1F1B +
// weight stashing (bounded staleness, n-1-s versions), (b) BSP data parallelism (zero
// staleness), and (c) ASP at increasing staleness depths. On one CPU core, real ASP threads
// serialize and their natural staleness vanishes, so AspTrainer's controlled staleness depth
// recreates the many-fast-workers regime the paper measured (depth d = gradients computed
// against weights d updates old).
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/data/dataset.h"
#include "src/graph/loss.h"
#include "src/graph/models.h"
#include "src/optim/sgd.h"
#include "src/runtime/asp_trainer.h"
#include "src/runtime/pipeline_trainer.h"

using namespace pipedream;

namespace {

constexpr double kTarget = 0.93;
constexpr int kMaxEpochs = 60;

std::unique_ptr<Sequential> FreshModel() {
  Rng rng(3);
  return BuildMlpClassifier(8, {24, 16}, 3, &rng);
}

}  // namespace

int main() {
  std::printf("Reproduction of §5.2 ASP comparison: epochs to %.0f%% accuracy, 4 workers.\n",
              100.0 * kTarget);

  const Dataset all = MakeGaussianMixture(3, 8, 80, 0.7, 17);
  Dataset train;
  Dataset eval;
  SplitDataset(all, 0.8, &train, &eval);
  SoftmaxCrossEntropy loss;

  Table table({"system", "gradient staleness", "epochs to target", "best accuracy",
               "epochs vs PipeDream"});
  int pd_epochs = -1;

  auto run_pipeline = [&](const PipelinePlan& plan, const char* label, const char* staleness) {
    const auto model = FreshModel();
    Sgd sgd(0.12, 0.0);
    PipelineTrainer trainer(*model, plan, &loss, sgd, &train, 8, 5);
    int reached = -1;
    double best = 0.0;
    for (int e = 0; e < kMaxEpochs && reached < 0; ++e) {
      trainer.TrainEpoch();
      const double acc = trainer.EvaluateAccuracy(eval, 18);
      best = std::max(best, acc);
      if (acc >= kTarget) {
        reached = e + 1;
      }
    }
    if (pd_epochs < 0) {
      pd_epochs = reached;
    }
    table.AddRow({label, staleness, reached > 0 ? StrFormat("%d", reached) : "never (budget)",
                  StrFormat("%.3f", best),
                  reached > 0 && pd_epochs > 0
                      ? StrFormat("%.1fx", static_cast<double>(reached) / pd_epochs)
                      : "> budget"});
  };

  {
    const auto model = FreshModel();
    run_pipeline(MakeStraightPlan(static_cast<int>(model->size()), {2, 4}),
                 "PipeDream (1F1B + stashing)", "bounded: n-1-s versions");
    run_pipeline(MakeDataParallelPlan(static_cast<int>(model->size()), 4), "DP (BSP)",
                 "none");
  }

  for (int depth : {0, 8, 16, 24}) {
    const auto model = FreshModel();
    Sgd sgd(0.12, 0.0);
    AspTrainer trainer(*model, 4, &loss, sgd, &train, 8, 5, depth);
    int reached = -1;
    double best = 0.0;
    for (int e = 0; e < kMaxEpochs && reached < 0; ++e) {
      trainer.TrainEpoch();
      const double acc = trainer.EvaluateAccuracy(eval, 18);
      best = std::max(best, acc);
      if (acc >= kTarget) {
        reached = e + 1;
      }
    }
    table.AddRow({"DP (ASP)", StrFormat("%d updates", depth),
                  reached > 0 ? StrFormat("%d", reached) : "never (budget)",
                  StrFormat("%.3f", best),
                  reached > 0 && pd_epochs > 0
                      ? StrFormat("%.1fx", static_cast<double>(reached) / pd_epochs)
                      : "> budget"});
  }

  table.Print("§5.2 — statistical efficiency under asynchrony (4 workers)");
  std::printf(
      "\nShape check (paper: ASP 7.4x slower than PipeDream to target): PipeDream's bounded\n"
      "staleness costs ~nothing, while ASP's epochs-to-target grow with its staleness depth\n"
      "despite zero synchronization delay. (With momentum the degradation is a cliff: depth\n"
      ">= 6 at momentum 0.9 diverges outright.)\n");
  return 0;
}
