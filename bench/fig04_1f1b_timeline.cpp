// Figure 4: PipeDream's 1F1B schedule with 4 workers — startup phase admits NOAM = 4
// minibatches, then every worker alternates forward/backward with no flushes and negligible
// idle time, even though backward passes take twice as long as forwards.
#include <cstdio>

#include "bench/timeline_util.h"
#include "src/common/sim_time.h"
#include "src/schedule/policy.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

int main() {
  std::printf("Reproduction of Figure 4: PipeDream 1F1B, 4 workers (startup + steady state).\n\n");
  const ModelProfile profile = UniformTimelineProfile(4);
  const PipelinePlan plan = MakeStraightPlan(4, {1, 2, 3});
  std::printf("NOAM = %d (== worker count for a straight pipeline)\n\n", plan.Noam());

  SimOptions options;
  options.num_minibatches = 12;
  options.record_trace = true;
  const auto topo = HardwareTopology::Flat(4, 1e12, 0.0);
  const SimResult result = SimulatePipeline(profile, plan, topo, options);

  std::printf("%s\n", result.trace.RenderAscii(SimTime::Millis(10), 4, 60).c_str());
  for (int w = 0; w < 4; ++w) {
    std::printf("worker %d utilization: %.0f%%\n", w,
                100.0 * result.worker_utilization[static_cast<size_t>(w)]);
  }
  const Status valid = result.trace.Validate(plan);
  std::printf("\nschedule validity (dependencies, affinity, exclusivity): %s\n",
              valid.ToString().c_str());
  std::printf("steady state: each worker strictly alternates one forward (1 unit) with one\n"
              "backward (2 units); no pipeline flush ever occurs.\n");
  return 0;
}
