// Figure 14: PipeDream vs non-DP intra-batch techniques on 4-GPU Cluster-A.
//   (a) model parallelism vs straight pipelines vs PipeDream (replication allowed);
//   (b) hybrid (data+model, FlexFlow/OWT-style) without pipelining vs the same plan
//       with 1F1B pipelining.
#include <cstdio>

#include "src/common/strings.h"
#include "src/common/table.h"
#include "src/core/pipedream.h"
#include "src/profile/model_zoo.h"
#include "src/simexec/pipeline_sim.h"

using namespace pipedream;

namespace {

double Simulate(const ModelProfile& profile, const PipelinePlan& plan,
                const HardwareTopology& topo, ScheduleKind kind, int depth_override = 0) {
  SimOptions options;
  options.schedule = kind;
  options.num_minibatches = 96;
  options.pipeline_depth_override = depth_override;
  return SimulatePipeline(profile, plan, topo, options).throughput_samples_per_sec;
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 14: PipeDream vs non-DP intra-batch parallelism\n"
              "(4 GPUs, Cluster-A interconnects). Bars normalized to model parallelism.\n");

  const auto topo = HardwareTopology::ClusterA(1);
  const char* models[] = {"VGG-16", "AlexNet", "GNMT-8", "GNMT-16"};

  Table panel_a({"model", "model parallel", "straight pipeline", "PipeDream (best)",
                 "pipeline/MP", "PipeDream/MP"});
  Table panel_b({"model", "hybrid (no pipelining)", "hybrid + pipelining", "gain"});

  for (const char* name : models) {
    const ModelProfile profile = MakeProfileByName(name);

    // (a) Model parallelism and straight pipelining share the balanced 4-stage split.
    const PipelinePlan straight = MakeBalancedStraightPlan(profile, 4);
    const double mp = Simulate(profile, straight, topo, ScheduleKind::kModelParallel);
    const double sp = Simulate(profile, straight, topo, ScheduleKind::kOneFOneB);
    const AutoPlanResult planned = AutoPlan(profile, topo);
    const double pd = Simulate(profile, planned.partition.plan, topo,
                               ScheduleKind::kOneFOneB);
    panel_a.AddRow({name, StrFormat("%.0f", mp), StrFormat("%.0f", sp),
                    StrFormat("%.0f (%s)", pd,
                              planned.partition.plan.ConfigString(profile.num_layers()).c_str()),
                    StrFormat("%.1fx", sp / mp), StrFormat("%.1fx", pd / mp)});

    // (b) Hybrid parallelism = the optimizer's (possibly replicated) plan run with at most
    // one minibatch in flight per input replica — intra-batch splitting without pipelining.
    const double hybrid = Simulate(profile, planned.partition.plan, topo,
                                   ScheduleKind::kOneFOneB, /*depth_override=*/1);
    panel_b.AddRow({name, StrFormat("%.0f", hybrid), StrFormat("%.0f", pd),
                    StrFormat("%+.0f%%", 100.0 * (pd / hybrid - 1.0))});
  }

  panel_a.Print("Figure 14a — samples/s vs model parallelism (4 GPUs)");
  panel_b.Print("Figure 14b — pipelining on top of hybrid parallelism (4 GPUs)");
  std::printf("\nShape checks: pipelining alone gives >=2x over model parallelism for every\n"
              "model; replication adds more where stages are unbalanced (VGG/AlexNet); and\n"
              "adding pipelining to a hybrid configuration buys up to ~80%% extra throughput\n"
              "with identical bytes on the wire.\n");
  return 0;
}
